"""Legacy setup shim.

The project metadata lives in ``pyproject.toml``; this file only exists so
that ``pip install -e .`` works in environments without the ``wheel``
package (legacy ``setup.py develop`` code path).
"""

from setuptools import setup

setup()
