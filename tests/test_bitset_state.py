"""Tests for the bitset search state: invariants and lockstep parity with SearchState."""

from __future__ import annotations

import random

import pytest

from repro.core import BitsetSearchState, SearchState
from repro.core.bitset_state import bits_of, iter_bits, mask_of
from repro.graphs import gnp_random_graph


def _adjacency_pair(graph):
    """Return (set adjacency list, bitmask adjacency list) for a relabeled graph."""
    relabeled, _, _ = graph.relabel()
    n = relabeled.num_vertices
    adj_sets = [set(relabeled.neighbors(v)) for v in range(n)]
    adj_bits = [mask_of(adj_sets[v]) for v in range(n)]
    return adj_sets, adj_bits, n


class TestBitHelpers:
    def test_mask_of_roundtrip(self):
        assert mask_of([0, 3, 7]) == 0b10001001
        assert bits_of(0b10001001) == [0, 3, 7]
        assert list(iter_bits(0b10001001)) == [0, 3, 7]

    def test_empty_mask(self):
        assert bits_of(0) == []
        assert list(iter_bits(0)) == []
        assert mask_of([]) == 0

    def test_bits_of_matches_iter_bits_on_wide_masks(self):
        rng = random.Random(7)
        for _ in range(50):
            mask = rng.getrandbits(300)
            assert bits_of(mask) == list(iter_bits(mask))


class TestBitsetSearchState:
    def test_initial_state_invariants(self):
        g = gnp_random_graph(15, 0.4, seed=2)
        _, adj_bits, n = _adjacency_pair(g)
        state = BitsetSearchState.initial(adj_bits, k=2)
        state.check_invariants()
        assert state.graph_size == n
        assert state.instance_size == n
        assert state.total_edges() == g.num_edges

    def test_add_and_remove_keep_invariants(self):
        g = gnp_random_graph(14, 0.5, seed=3)
        _, adj_bits, n = _adjacency_pair(g)
        state = BitsetSearchState.initial(adj_bits, k=3)
        state.add_to_solution(0)
        state.check_invariants()
        state.remove_candidate(max(bits_of(state.cand_bits)))
        state.check_invariants()
        assert state.last_added == 0
        assert len(state.solution) == 1

    def test_copy_is_independent(self):
        g = gnp_random_graph(12, 0.4, seed=4)
        _, adj_bits, _ = _adjacency_pair(g)
        state = BitsetSearchState.initial(adj_bits, k=1)
        clone = state.copy()
        clone.add_to_solution(1)
        state.check_invariants()
        clone.check_invariants()
        assert state.solution == []
        assert clone.solution == [1]
        assert state.cand_bits != clone.cand_bits

    def test_detects_corrupted_counters(self):
        g = gnp_random_graph(10, 0.5, seed=5)
        _, adj_bits, _ = _adjacency_pair(g)
        state = BitsetSearchState.initial(adj_bits, k=1)
        state.add_to_solution(0)
        state.missing_in_solution += 1
        with pytest.raises(AssertionError):
            state.check_invariants()

    @pytest.mark.parametrize("seed", range(6))
    def test_lockstep_with_set_state(self, seed):
        """Random transition sequences keep both state types identical."""
        g = gnp_random_graph(16, 0.35 + 0.05 * (seed % 3), seed=seed)
        adj_sets, adj_bits, n = _adjacency_pair(g)
        k = seed % 4
        set_state = SearchState.initial(adj_sets, k)
        bit_state = BitsetSearchState.initial(adj_bits, k)
        rng = random.Random(100 + seed)

        for _ in range(n):
            candidates = sorted(set_state.candidates)
            if not candidates:
                break
            v = rng.choice(candidates)
            if rng.random() < 0.5 and set_state.missing_if_added(v) <= k:
                set_state.add_to_solution(v)
                bit_state.add_to_solution(v)
            else:
                set_state.remove_candidate(v)
                bit_state.remove_candidate(v)
            set_state.check_invariants()
            bit_state.check_invariants()

            assert bit_state.solution == set_state.solution
            assert bits_of(bit_state.cand_bits) == sorted(set_state.candidates)
            assert bit_state.missing_in_solution == set_state.missing_in_solution
            assert bit_state.total_edges() == set_state.total_edges()
            assert bit_state.total_missing() == set_state.total_missing()
            assert bit_state.is_defective_clique() == set_state.is_defective_clique()
            assert bit_state.slack() == set_state.slack()
            for u in set_state.candidates:
                assert bit_state.non_nbrs[u] == set_state.non_nbrs_in_solution[u]
                assert bit_state.degree(u) == set_state.degree_in_graph[u]

    def test_graph_vertices_solution_first(self):
        g = gnp_random_graph(9, 0.6, seed=8)
        _, adj_bits, _ = _adjacency_pair(g)
        state = BitsetSearchState.initial(adj_bits, k=2)
        state.add_to_solution(4)
        verts = state.graph_vertices()
        assert verts[0] == 4
        assert sorted(verts) == list(range(9))
