"""Empirical validation of the complexity analysis (Lemma 3.3, Fact 3, Theorem 3.5)."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import check_node_count_bound, trace_left_spine
from repro.graphs import complete_graph, gnp_random_graph, social_network_graph


class TestLeftSpine:
    def test_complete_graph_is_an_immediate_leaf(self):
        trace = trace_left_spine(complete_graph(6), k=1)
        assert trace.ended_at_leaf
        assert trace.branchings_before_shrink == 0

    def test_fact3_bound_on_random_graphs(self):
        """Fact 3 of Lemma 3.4: at most k + 1 left branches before the instance shrinks by >= 2."""
        for seed in range(10):
            for k in (0, 1, 2, 3):
                g = gnp_random_graph(20, 0.4, seed=seed)
                trace = trace_left_spine(g, k)
                if trace.ended_at_leaf:
                    continue
                assert trace.branchings_before_shrink <= k + 1, (
                    f"seed={seed} k={k}: left spine had {trace.branchings_before_shrink} branchings"
                )

    def test_fact3_bound_on_community_graphs(self):
        for seed in range(4):
            g = social_network_graph(70, num_communities=5, intra_p=0.5, seed=seed)
            for k in (1, 2, 4):
                trace = trace_left_spine(g, k)
                if not trace.ended_at_leaf:
                    assert trace.branchings_before_shrink <= k + 1

    @given(st.integers(min_value=2, max_value=16), st.floats(min_value=0.1, max_value=0.9),
           st.integers(min_value=0, max_value=500), st.integers(min_value=0, max_value=4))
    @settings(max_examples=40, deadline=None)
    def test_fact3_bound_property(self, n, p, seed, k):
        g = gnp_random_graph(n, p, seed=seed)
        trace = trace_left_spine(g, k)
        if not trace.ended_at_leaf:
            assert trace.branchings_before_shrink <= k + 1

    def test_sizes_recorded(self):
        g = gnp_random_graph(15, 0.5, seed=1)
        trace = trace_left_spine(g, 1)
        assert trace.sizes
        assert all(size >= 0 for size in trace.sizes)
        # instance sizes never increase along the spine
        assert all(b <= a for a, b in zip(trace.sizes, trace.sizes[1:]))


class TestNodeCountBound:
    @pytest.mark.parametrize("k", [0, 1, 2])
    def test_theorem_3_5_bound_holds(self, k):
        """The kDC-t search tree never exceeds 2·γ_k^n nodes (Theorem 3.5)."""
        for seed in range(5):
            g = gnp_random_graph(12, 0.5, seed=seed)
            check = check_node_count_bound(g, k)
            assert check.within_bound
            assert check.measured_nodes >= 1
            assert 1.0 < check.gamma_k < 2.0

    def test_bound_grows_with_k(self):
        g = gnp_random_graph(12, 0.5, seed=3)
        bounds = [check_node_count_bound(g, k).node_bound for k in (0, 1, 2, 3)]
        assert all(a < b for a, b in zip(bounds, bounds[1:]))

    def test_practical_solver_far_below_bound(self):
        from repro.core import SolverConfig

        g = gnp_random_graph(18, 0.4, seed=7)
        check = check_node_count_bound(g, 2, config=SolverConfig())
        assert check.within_bound
        # the practical solver should be *dramatically* below the bound
        assert check.measured_nodes < check.node_bound / 1000
