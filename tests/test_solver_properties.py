"""Property-based tests cross-checking all exact solvers against each other and brute force."""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines import (
    KDBBSolver,
    MADECSolver,
    MaxCliqueSolver,
    brute_force_maximum_defective_clique,
)
from repro.core import (
    KDCSolver,
    SolverConfig,
    find_maximum_defective_clique,
    is_k_defective_clique,
    is_maximal_k_defective_clique,
)
from repro.graphs import Graph, gnp_random_graph


def graphs(max_vertices: int = 11):
    """Strategy building small random graphs via seeded G(n, p)."""
    return st.builds(
        gnp_random_graph,
        st.integers(min_value=1, max_value=max_vertices),
        st.floats(min_value=0.0, max_value=1.0),
        seed=st.integers(min_value=0, max_value=10_000),
    )


@given(graphs(), st.integers(min_value=0, max_value=4))
@settings(max_examples=50, deadline=None)
def test_kdc_matches_brute_force(g, k):
    expected = len(brute_force_maximum_defective_clique(g, k))
    result = find_maximum_defective_clique(g, k)
    assert result.size == expected
    assert is_k_defective_clique(g, result.clique, k)
    assert is_maximal_k_defective_clique(g, result.clique, k)


@given(graphs(), st.integers(min_value=0, max_value=4))
@settings(max_examples=30, deadline=None)
def test_kdc_t_matches_brute_force(g, k):
    expected = len(brute_force_maximum_defective_clique(g, k))
    result = find_maximum_defective_clique(g, k, variant="kDC-t")
    assert result.size == expected


@given(graphs(), st.integers(min_value=0, max_value=3))
@settings(max_examples=30, deadline=None)
def test_baselines_match_kdc(g, k):
    reference = find_maximum_defective_clique(g, k).size
    assert KDBBSolver().solve(g, k).size == reference
    assert MADECSolver().solve(g, k).size == reference


@given(graphs(), st.integers(min_value=0, max_value=4))
@settings(max_examples=30, deadline=None)
def test_solution_size_monotone_in_k(g, k):
    smaller = find_maximum_defective_clique(g, k).size
    larger = find_maximum_defective_clique(g, k + 1).size
    assert smaller <= larger <= smaller + 1 + k + 1  # loose sanity bracket
    assert larger <= g.num_vertices


@given(graphs())
@settings(max_examples=30, deadline=None)
def test_k0_equals_maximum_clique(g):
    assert find_maximum_defective_clique(g, 0).size == MaxCliqueSolver().solve(g).size


@given(graphs(), st.integers(min_value=0, max_value=3))
@settings(max_examples=30, deadline=None)
def test_adding_edges_never_shrinks_solution(g, k):
    """Adding an edge can only help: the maximum k-defective clique size is monotone under edge addition."""
    before = find_maximum_defective_clique(g, k).size
    # add one missing edge, if any
    missing = g.missing_edges()
    if not missing:
        return
    augmented = g.copy()
    augmented.add_edge(*missing[0])
    after = find_maximum_defective_clique(augmented, k).size
    assert after >= before


@given(graphs(), st.integers(min_value=0, max_value=3))
@settings(max_examples=25, deadline=None)
def test_solution_size_at_least_heuristic_floor(g, k):
    """The exact solution can never be smaller than sqrt-style trivial floors."""
    result = find_maximum_defective_clique(g, k)
    assert result.size >= 1
    if g.num_edges > 0:
        assert result.size >= 2


@given(graphs(), st.integers(min_value=0, max_value=4))
@settings(max_examples=40, deadline=None)
def test_bitset_backend_matches_set_backend(g, k):
    """The bitset fast path and the dict/set backend find the same optimum."""
    set_result = KDCSolver(SolverConfig(backend="set")).solve(g, k)
    bitset_result = KDCSolver(SolverConfig(backend="bitset")).solve(g, k)
    assert bitset_result.size == set_result.size
    assert is_k_defective_clique(g, bitset_result.clique, k)
    assert is_maximal_k_defective_clique(g, bitset_result.clique, k)


@given(graphs(), st.integers(min_value=0, max_value=4))
@settings(max_examples=30, deadline=None)
def test_decomposed_bitset_backend_matches_set_backend(g, k):
    """Forcing the degeneracy decomposition must not change the optimum."""
    set_result = KDCSolver(SolverConfig(backend="set")).solve(g, k)
    decomposed = KDCSolver(
        SolverConfig(backend="bitset", decompose_threshold=1)
    ).solve(g, k)
    assert decomposed.size == set_result.size
    assert is_k_defective_clique(g, decomposed.clique, k)


@given(graphs(), st.integers(min_value=0, max_value=3))
@settings(max_examples=20, deadline=None)
def test_bitset_backend_matches_for_theoretical_variant(g, k):
    """Backend equivalence also holds with every practical technique disabled."""
    base = SolverConfig(
        use_ub1=False, use_ub2=False, use_ub3=False,
        use_rr3=False, use_rr4=False, use_rr5=False, use_rr6=False,
        initial_heuristic="none",
    )
    from dataclasses import replace

    set_result = KDCSolver(replace(base, backend="set")).solve(g, k)
    bitset_result = KDCSolver(replace(base, backend="bitset")).solve(g, k)
    assert bitset_result.size == set_result.size
