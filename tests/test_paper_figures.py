"""Tests checking the example graphs against the claims made in the paper's text."""

from __future__ import annotations

from repro.baselines import MaxCliqueSolver
from repro.core import find_maximum_defective_clique, is_k_defective_clique
from repro.graphs import figure5_partition


class TestFigure1:
    """Figure 1: maximum clique 4; maximum k-defective clique 4 + k for k <= 4."""

    def test_maximum_clique_size(self, fig1):
        assert MaxCliqueSolver().solve(fig1).size == 4

    def test_defective_clique_sizes(self, fig1):
        for k in range(0, 5):
            assert find_maximum_defective_clique(fig1, k).size == 4 + k

    def test_entire_graph_is_4_defective(self, fig1):
        assert is_k_defective_clique(fig1, fig1.vertices(), 4)

    def test_removing_any_vertex_gives_3_defective(self, fig1):
        for v in fig1.vertices():
            rest = [u for u in fig1.vertices() if u != v]
            assert is_k_defective_clique(fig1, rest, 3)


class TestFigure2:
    """Figure 2: the 12-vertex running example."""

    def test_maximum_clique_is_right_block(self, fig2):
        result = MaxCliqueSolver().solve(fig2)
        assert result.size == 5
        assert set(result.clique) == {8, 9, 10, 11, 12}

    def test_maximum_1_defective_size(self, fig2):
        assert find_maximum_defective_clique(fig2, 1).size == 5

    def test_named_1_defective_cliques(self, fig2):
        assert is_k_defective_clique(fig2, [1, 2, 3, 4, 6], 1)
        assert is_k_defective_clique(fig2, [1, 2, 3, 5, 6], 1)
        assert is_k_defective_clique(fig2, [8, 9, 10, 11, 12], 1)

    def test_maximum_2_defective_clique(self, fig2):
        result = find_maximum_defective_clique(fig2, 2)
        assert result.size == 6
        assert set(result.clique) == {1, 2, 3, 4, 5, 6}

    def test_left_block_misses_exactly_two_edges(self, fig2):
        assert fig2.count_missing_edges([1, 2, 3, 4, 5, 6]) == 2
        assert not fig2.has_edge(2, 4)
        assert not fig2.has_edge(1, 5)


class TestFigure4:
    """Figure 4: the Algorithm 1 running example (Example 3.2)."""

    def test_v1_adjacent_to_everything(self, fig4):
        assert fig4.degree(1) == 8

    def test_full_bipartite_connection(self, fig4):
        for u in (2, 3, 4, 5):
            for v in (6, 7, 8, 9):
                assert fig4.has_edge(u, v)

    def test_inner_blocks_miss_two_edges_each(self, fig4):
        assert fig4.count_missing_edges([2, 3, 4, 5]) == 2
        assert fig4.count_missing_edges([6, 7, 8, 9]) == 2

    def test_example_3_2_rr1_trigger(self, fig4):
        # S2 = {v1..v6, v8} contains three non-edges, as stated in Example 3.2.
        assert fig4.count_missing_edges([1, 2, 3, 4, 5, 6, 8]) == 3

    def test_maximum_3_defective_size(self, fig4):
        # With k = 3 one can take {v1} ∪ g1 plus three mutually compatible
        # vertices of g2 (2 + 1 = 3 missing edges); the whole graph misses 4
        # edges, so the maximum 3-defective clique has 8 of the 9 vertices.
        result = find_maximum_defective_clique(fig4, 3)
        assert result.size == 8
        assert find_maximum_defective_clique(fig4, 4).size == 9


class TestFigure5:
    """Figure 5: the upper-bound running example (Examples 3.6 and 3.7)."""

    def test_structure(self, fig5):
        assert fig5.num_vertices == 11
        assert fig5.num_edges == 27
        s, parts = figure5_partition()
        for label in s:
            assert fig5.degree(label) == 0
        for part in parts:
            for i, u in enumerate(part):
                for v in part[i + 1:]:
                    assert not fig5.has_edge(u, v)

    def test_maximum_3_defective_containing_s(self, fig5):
        # Example 3.6: the largest 3-defective clique containing the two
        # isolated vertices of S has size 3.
        s, _ = figure5_partition()
        best = 0
        for v in fig5.vertices():
            if v in s:
                continue
            candidate = list(s) + [v]
            if is_k_defective_clique(fig5, candidate, 3):
                best = max(best, len(candidate))
        assert best == 3


class TestFigure6:
    """Figure 6: the initial-solution example (Example 3.8)."""

    def test_v1_neighbourhood_is_1_defective(self, fig6):
        assert is_k_defective_clique(fig6, [1, 2, 3, 4], 1)

    def test_maximum_1_defective_size_is_4(self, fig6):
        assert find_maximum_defective_clique(fig6, 1).size == 4

    def test_triangle_exists(self, fig6):
        assert fig6.is_clique([4, 6, 7])
