"""Tests for the solver service: store, scheduler, protocol, client, server."""

from __future__ import annotations

import threading
import time

import pytest

from repro.core import KDCSolver, SolverConfig, is_k_defective_clique, variant_config
from repro.exceptions import ReproError, ServiceClosedError, ServiceError, UnknownGraphError
from repro.graphs import gnp_random_graph
from repro.graphs.graph import Graph
from repro.service import (
    Client,
    GraphStore,
    ServiceServer,
    SolverService,
    handle_request,
    run_server,
)


@pytest.fixture
def graph():
    return gnp_random_graph(40, 0.3, seed=9)


class TestGraphStore:
    def test_add_is_idempotent_by_content(self, graph):
        store = GraphStore()
        digest = store.add(graph, name="g")
        # same graph built in a different insertion order -> same digest slot
        shuffled = Graph()
        for u, v in sorted(graph.iter_edges(), reverse=True):
            shuffled.add_edge(u, v)
        for v in graph:
            shuffled.add_vertex(v)
        assert store.add(shuffled) == digest
        assert len(store) == 1
        assert digest in store
        assert store.graphs() == {digest: "g"}

    def test_store_keeps_its_own_copy(self, graph):
        store = GraphStore()
        digest = store.add(graph)
        graph.add_edge("intruder", "intruder2")
        assert "intruder" not in store.get(digest)

    def test_unknown_digest_raises(self):
        store = GraphStore()
        with pytest.raises(UnknownGraphError):
            store.get("no-such-digest")
        with pytest.raises(UnknownGraphError):
            store.prepared("no-such-digest", 1)

    def test_prepared_slot_is_cached(self, graph):
        store = GraphStore()
        digest = store.add(graph)
        config = SolverConfig()
        first = store.prepared(digest, 1, config)
        assert store.prepared(digest, 1, config) is first
        stats = store.stats()
        assert stats["graphs"] == 1
        assert stats["prepares"] == 1
        assert stats["prepared_hits"] == 1
        assert stats["prepared_artifacts"] == 1
        assert stats["graph_evictions"] == 0
        assert stats["prepared_evictions"] == 0
        # a different k is a different slot
        store.prepared(digest, 2, config)
        assert store.stats()["prepares"] == 2

    def test_prepare_config_keys_the_slot(self, graph):
        store = GraphStore()
        digest = store.add(graph)
        full = store.prepared(digest, 1, SolverConfig())
        bare = store.prepared(digest, 1, variant_config("kDC-t"))
        assert full is not bare
        assert bare.heuristic == ()  # kDC-t prepares without a heuristic
        # execute-side knobs do NOT key the slot
        assert store.prepared(digest, 1, SolverConfig(backend="set", workers=4)) is full

    def test_single_flight_under_concurrency(self, graph):
        store = GraphStore()
        digest = store.add(graph)
        results = []
        barrier = threading.Barrier(4)

        def fetch():
            barrier.wait()
            results.append(store.prepared(digest, 2))

        threads = [threading.Thread(target=fetch) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len(results) == 4
        assert all(r is results[0] for r in results)
        assert store.stats()["prepares"] == 1

    def test_prepare_failure_propagates_and_is_not_cached(self, graph, monkeypatch):
        """A failing prepare reaches *every* concurrent waiter and is retried.

        The owner of the in-flight slot raises; waiters blocked on the
        shared future receive the same exception (not a hang, not a stale
        artifact), nothing is cached, and the next request runs the prepare
        again.
        """
        store = GraphStore()
        digest = store.add(graph)
        entered = threading.Event()
        release = threading.Event()
        calls = []
        failing = [True]
        from repro.core.prepared import prepare_instance as real_prepare

        def fake_prepare(g, k, config):
            calls.append(1)
            entered.set()
            assert release.wait(10), "test orchestration stalled"
            if failing[0]:
                raise RuntimeError("prepare exploded")
            return real_prepare(g, k, config)

        monkeypatch.setattr("repro.service.store.prepare_instance", fake_prepare)

        errors = []

        def fetch():
            try:
                store.prepared(digest, 2)
            except RuntimeError as exc:
                errors.append(exc)

        owner = threading.Thread(target=fetch)
        owner.start()
        assert entered.wait(10)
        waiters = [threading.Thread(target=fetch) for _ in range(3)]
        for t in waiters:
            t.start()
        time.sleep(0.2)  # let the waiters attach to the in-flight future
        release.set()
        owner.join(10)
        for t in waiters:
            t.join(10)

        assert len(errors) == 4
        assert all("prepare exploded" in str(e) for e in errors)
        # single-flight even on the failure path: one prepare served all four
        assert len(calls) == 1
        # the failure is not cached ...
        assert store.stats()["prepares"] == 0
        # ... so the next request retries, and this time succeeds
        failing[0] = False
        artifact = store.prepared(digest, 2)
        assert artifact is not None
        assert store.stats()["prepares"] == 1
        assert len(calls) == 2


class TestSolverService:
    def test_cache_hit_only_after_first_answer(self, graph):
        with SolverService() as service:
            digest = service.store.add(graph)
            first = service.solve(digest, 1)
            second = service.solve(digest, 1)
            assert not first.stats.cache_hit
            assert second.stats.cache_hit
            assert second.size == first.size
            assert second.stats.solve_ms == 0.0
            counters = service.stats()
            assert counters["solves"] == 1
            assert counters["cache_hits"] == 1

    def test_graph_argument_is_auto_added(self, graph):
        with SolverService() as service:
            result = service.solve(graph, 1)
            assert result.optimal
            assert service.stats()["graphs"] == 1

    def test_per_request_budget(self, graph):
        with SolverService() as service:
            digest = service.store.add(graph)
            limited = service.submit(digest, 3, node_limit=1).result()
            assert not limited.optimal
            # non-optimal answers are never cached
            full = service.submit(digest, 3).result()
            assert full.optimal and not full.stats.cache_hit
            assert full.size >= limited.size

    def test_unknown_digest_and_algorithm_fail_fast(self, graph):
        with SolverService() as service:
            digest = service.store.add(graph)
            with pytest.raises(UnknownGraphError):
                service.submit("bogus", 1)
            with pytest.raises(Exception):
                service.submit(digest, 1, algorithm="not-an-algorithm")

    def test_variant_queries(self, graph):
        with SolverService() as service:
            digest = service.store.add(graph)
            full = service.solve(digest, 1)
            bare = service.solve(digest, 1, algorithm="kDC-t")
            assert bare.algorithm == "kDC-t"
            assert bare.size == full.size  # both exact
            # distinct algorithms have distinct result-cache keys
            assert not bare.stats.cache_hit

    def test_request_timings_recorded(self, graph):
        with SolverService() as service:
            digest = service.store.add(graph)
            result = service.solve(digest, 2)
            assert result.stats.prepare_ms > 0
            assert result.stats.queue_ms >= 0
            assert result.stats.solve_ms >= 0

    def test_cache_survives_caller_mutation(self, graph):
        """Mutating the first answer must not corrupt later cache hits."""
        with SolverService() as service:
            digest = service.store.add(graph)
            first = service.solve(digest, 1)
            expected_size = first.size
            expected_nodes = first.stats.nodes
            expected_reductions = dict(first.stats.reductions)
            # A rude caller trashes everything reachable from its answer.
            first.clique.clear()
            first.stats.nodes = -12345
            first.stats.reductions.clear()
            first.stats.reductions["bogus"] = 99

            second = service.solve(digest, 1)
            assert second.stats.cache_hit
            assert second.size == expected_size
            assert len(second.clique) == expected_size
            assert second.stats.nodes == expected_nodes
            assert second.stats.reductions == expected_reductions
            # cache hits are independent copies too: breaking one does not
            # leak into the next
            second.clique.clear()
            third = service.solve(digest, 1)
            assert third.stats.cache_hit
            assert len(third.clique) == expected_size

    def test_submit_after_close_raises_catchable_error(self, graph):
        service = SolverService()
        digest = service.store.add(graph)
        service.close()
        with pytest.raises(ServiceClosedError):
            service.submit(digest, 1)
        # the error is part of the library hierarchy, so `except ReproError`
        # at the CLI/server boundary catches it
        assert issubclass(ServiceClosedError, ServiceError)

    def test_close_submit_race_is_a_service_error(self, graph):
        """Submits racing close() fail with ServiceClosedError, never with the
        executor's raw RuntimeError."""
        for _ in range(5):
            service = SolverService(max_concurrency=2)
            digest = service.store.add(graph)
            unexpected = []
            closed_errors = []
            start = threading.Event()

            def hammer():
                start.wait(5)
                for _ in range(50):
                    try:
                        service.submit(digest, 1, node_limit=1)
                    except ServiceClosedError as exc:
                        closed_errors.append(exc)
                    except BaseException as exc:  # pragma: no cover - the bug
                        unexpected.append(exc)

            threads = [threading.Thread(target=hammer) for _ in range(4)]
            for t in threads:
                t.start()
            start.set()
            time.sleep(0.005)
            service.close()
            for t in threads:
                t.join(10)
            assert not unexpected, f"raw errors escaped: {unexpected!r}"
            assert all(isinstance(e, ReproError) for e in closed_errors)


class TestRetryAfterEstimate:
    """The shed-reply hint must not be held hostage by one stale slow solve."""

    def test_stale_ewma_decays_toward_default(self):
        from repro.service.scheduler import (
            _DEFAULT_SOLVE_ESTIMATE_SECONDS,
            _EWMA_STALE_HALF_LIFE_SECONDS,
        )

        with SolverService(max_concurrency=1) as service:
            with service._lock:
                fresh_now = service._retry_after_locked()
            # One pathologically slow solve finished long ago; no solve has
            # completed since (e.g. because overload is shedding everything).
            service._ewma_solve_seconds = 10.0
            service._ewma_updated = time.monotonic() - 20 * _EWMA_STALE_HALF_LIFE_SECONDS
            with service._lock:
                stale = service._retry_after_locked()
            # The stale measurement has decayed to (essentially) the
            # cold-start default instead of quoting 10s forever.
            assert stale < 2 * _DEFAULT_SOLVE_ESTIMATE_SECONDS
            assert stale == pytest.approx(fresh_now, rel=0.5)

    def test_fresh_ewma_is_quoted_undecayed(self):
        with SolverService(max_concurrency=1) as service:
            service._ewma_solve_seconds = 10.0
            service._ewma_updated = time.monotonic()
            with service._lock:
                assert service._retry_after_locked() == pytest.approx(10.0, rel=0.05)

    def test_completion_refreshes_the_estimate_clock(self, graph):
        with SolverService(max_concurrency=1) as service:
            digest = service.store.add(graph)
            service._ewma_updated = time.monotonic() - 1000.0
            before = service._ewma_updated
            service.solve(digest, 1)
            assert service._ewma_updated > before


class TestConcurrentDifferential:
    """The satellite cell: interleaved service answers == fresh sequential solves."""

    def test_interleaved_requests_match_sequential(self):
        graph_a = gnp_random_graph(40, 0.3, seed=21)
        graph_b = gnp_random_graph(35, 0.35, seed=22)
        graph_c = gnp_random_graph(20, 0.3, seed=23)  # small: kDC-t is unpruned
        # mixed ks, repeated queries (cache hits), several graphs, and a
        # kDC-t request (never decomposes) in the same stream
        stream = [
            (graph_a, 0, "kDC"),
            (graph_a, 1, "kDC"),
            (graph_b, 2, "kDC"),
            (graph_a, 2, "kDC"),
            (graph_a, 1, "kDC"),   # repeat -> cache hit
            (graph_b, 2, "kDC"),   # repeat -> cache hit
            (graph_c, 1, "kDC-t"),
            (graph_b, 0, "kDC"),
            (graph_a, 2, "kDC"),   # repeat -> cache hit
            (graph_a, 0, "kDC"),   # repeat -> cache hit
        ]
        with SolverService(max_concurrency=4) as service:
            digests = {id(g): service.store.add(g) for g in (graph_a, graph_b, graph_c)}
            futures = [
                service.submit(digests[id(g)], k, algorithm=alg) for g, k, alg in stream
            ]
            results = [f.result() for f in futures]
            counters = service.stats()

        for (g, k, alg), result in zip(stream, results):
            solver = KDCSolver(variant_config(alg)) if alg != "kDC" else KDCSolver()
            fresh = solver.solve(g, k)
            assert result.optimal and fresh.optimal
            assert result.size == fresh.size, (k, alg)
            assert is_k_defective_clique(g, result.clique, k)

        # the four repeats never re-entered the engine: answered from the
        # result cache or coalesced onto an identical in-flight request
        assert counters["requests"] == len(stream)
        assert counters["solves"] == len(stream) - 4
        assert counters["cache_hits"] + counters["coalesced"] == 4
        served_cheap = [r for r in results if r.stats.cache_hit]
        assert len(served_cheap) == 4


class TestProtocolAndClient:
    def test_handle_request_ops(self, graph):
        with SolverService() as service:
            assert handle_request(service, {"op": "ping"}) == {"ok": True, "pong": True}
            added = handle_request(
                service, {"op": "add-graph", "edges": [[0, 1], [1, 2], [0, 2]]}
            )
            assert added["ok"] and added["n"] == 3 and added["m"] == 3
            solved = handle_request(
                service, {"op": "solve", "digest": added["digest"], "k": 0}
            )
            assert solved["ok"] and solved["size"] == 3 and solved["optimal"]
            assert solved["stats"]["cache_hit"] is False
            stats = handle_request(service, {"op": "stats"})
            assert stats["ok"] and stats["stats"]["solves"] == 1

    def test_handle_request_errors_do_not_raise(self):
        with SolverService() as service:
            assert handle_request(service, {"op": "wat"})["ok"] is False
            assert handle_request(service, {"op": "solve", "k": 1})["ok"] is False
            reply = handle_request(service, {"op": "solve", "digest": "bogus", "k": 1})
            assert reply["ok"] is False and reply["kind"] == "UnknownGraphError"
            assert handle_request(service, ["not", "a", "dict"])["ok"] is False

    def test_in_process_client(self, graph):
        with SolverService() as service:
            client = Client(service=service)
            assert client.ping()
            digest = client.add_graph(graph)
            assert digest == graph.content_digest()
            first = client.solve(digest, 1)
            second = client.solve(digest, 1)
            assert first["size"] == second["size"]
            assert second["stats"]["cache_hit"] and not first["stats"]["cache_hit"]
            assert client.stats()["solves"] == 1
            with pytest.raises(ServiceError):
                client.solve("bogus", 1)

    def test_client_requires_exactly_one_transport(self):
        with pytest.raises(ServiceError):
            Client()

    def test_socket_server_round_trip(self, graph):
        server = ServiceServer(port=0)
        thread = threading.Thread(target=run_server, args=(server,), daemon=True)
        thread.start()
        host, port = server.address
        try:
            with Client.connect(host, port) as client:
                assert client.ping()
                digest = client.add_graph(graph)
                first = client.solve(digest, 1)
                second = client.solve(digest, 1)
                assert first["size"] == second["size"]
                assert second["stats"]["cache_hit"]
                expected = KDCSolver().solve(graph, 1).size
                assert first["size"] == expected
                assert client.shutdown()
        finally:
            thread.join(timeout=10)
        assert not thread.is_alive()
