"""Dynamic graphs through the service layer: store, scheduler, wire, disk.

Covers the digest chain in :class:`~repro.service.store.GraphStore`
(``apply_delta`` / ``parent_digest`` / ``delta_chain`` / name resolution),
the scheduler's ``mutate`` op and incremental solve routing
(``incremental_hits`` / ``anchors_reused`` / ``anchors_resolved``), the
JSON-lines protocol surface, and the delta WAL in
:class:`~repro.service.persistence.ServicePersistence` — including a
kill/restart cycle that must keep the chain intact and rebuild successors
whose snapshots are missing.
"""

from __future__ import annotations

import pytest

from repro.core import KDCSolver, SolverConfig
from repro.dynamic import EdgeDelta, apply_delta
from repro.exceptions import (
    EdgeNotFoundError,
    InvalidParameterError,
    ServiceClosedError,
    UnknownGraphError,
)
from repro.graphs import gnp_random_graph
from repro.service import Client, GraphStore, ServicePersistence, SolverService

CONFIG = SolverConfig(backend="bitset", decompose_threshold=1, workers=1)
K = 1


@pytest.fixture
def graph():
    return gnp_random_graph(40, 0.15, seed=12)


@pytest.fixture
def state_dir(tmp_path):
    return str(tmp_path / "state")


def valid_delta(graph, adds=1, removes=0):
    """A small delta valid against ``graph``: absent adds, present removes."""
    vertices = sorted(graph.vertex_set())
    add_edges = []
    for u in vertices:
        for v in vertices:
            if u < v and not graph.has_edge(u, v) and (u, v) not in add_edges:
                add_edges.append((u, v))
                if len(add_edges) == adds:
                    break
        if len(add_edges) == adds:
            break
    remove_edges = [tuple(sorted(e)) for e in list(graph.iter_edges())[:removes]]
    return EdgeDelta(adds=add_edges, removes=remove_edges)


# --------------------------------------------------------------------------- #
# GraphStore digest chain
# --------------------------------------------------------------------------- #
class TestGraphStoreDeltas:
    def test_apply_delta_links_parent_and_keeps_predecessor(self, graph):
        store = GraphStore()
        digest = store.add(graph, name="g")
        delta = valid_delta(graph)
        child = store.apply_delta(digest, delta, name="g")
        assert child != digest
        assert store.parent_digest(child) == digest
        assert store.parent_digest(digest) is None
        # predecessor still stored and unmodified
        assert store.get(digest).content_digest() == digest
        expected, expected_digest = apply_delta(graph, delta)
        assert child == expected_digest
        assert store.get(child).content_digest() == child
        assert store.stats()["mutations"] == 1

    def test_delta_chain_walks_multiple_steps(self, graph):
        store = GraphStore()
        root = store.add(graph)
        digests, current_graph, current = [root], graph, root
        for _ in range(3):
            delta = valid_delta(current_graph)
            current = store.apply_delta(current, delta)
            current_graph, _ = apply_delta(current_graph, delta)
            digests.append(current)
        chain = store.delta_chain(root, digests[-1])
        assert [d for d, _ in chain] == digests[1:]
        # middle of the chain works too
        assert len(store.delta_chain(digests[1], digests[-1])) == 2
        # equal endpoints: the empty chain
        assert store.delta_chain(root, root) == []
        # unrelated digest: no path
        assert store.delta_chain(digests[-1], root) is None

    def test_delta_chain_respects_max_steps(self, graph):
        store = GraphStore()
        current_graph, current = graph, store.add(graph)
        root = current
        for _ in range(3):
            delta = valid_delta(current_graph)
            current = store.apply_delta(current, delta)
            current_graph, _ = apply_delta(current_graph, delta)
        assert store.delta_chain(root, current, max_steps=2) is None
        assert store.delta_chain(root, current, max_steps=3) is not None

    def test_resolve_prefers_digest_then_latest_name(self, graph):
        store = GraphStore()
        digest = store.add(graph, name="stream")
        child = store.apply_delta(digest, valid_delta(graph), name="stream")
        assert store.resolve(digest) == digest
        assert store.resolve("stream") == child  # latest bearer wins
        with pytest.raises(UnknownGraphError):
            store.resolve("no-such-graph")

    def test_apply_delta_unknown_digest(self):
        store = GraphStore()
        with pytest.raises(UnknownGraphError):
            store.apply_delta("0" * 64, EdgeDelta(adds=[(0, 1)]))

    def test_invalid_transition_rejected_and_store_unchanged(self, graph):
        store = GraphStore()
        digest = store.add(graph)
        with pytest.raises(EdgeNotFoundError):
            store.apply_delta(digest, EdgeDelta(removes=[(0, 999)]))
        assert store.stats()["mutations"] == 0
        assert len(store) == 1

    def test_mutation_purges_predecessor_prepared_artifacts(self, graph):
        store = GraphStore(max_prepared=8)
        digest = store.add(graph)
        store.prepared(digest, K, CONFIG)
        assert store.stats()["prepared_artifacts"] == 1
        store.apply_delta(digest, valid_delta(graph))
        assert store.stats()["prepared_artifacts"] == 0

    def test_pickle_round_trip_keeps_chain(self, graph):
        import pickle

        store = GraphStore()
        digest = store.add(graph, name="g")
        child = store.apply_delta(digest, valid_delta(graph), name="g")
        clone = pickle.loads(pickle.dumps(store))
        assert clone.parent_digest(child) == digest
        assert clone.delta_chain(digest, child) is not None
        assert clone.stats()["mutations"] == 1


# --------------------------------------------------------------------------- #
# SolverService mutate + incremental routing
# --------------------------------------------------------------------------- #
class TestServiceMutate:
    def test_mutate_reply_shape(self, graph):
        with SolverService(config=CONFIG) as service:
            digest = service.store.add(graph, name="g")
            delta = valid_delta(graph, adds=2, removes=1)
            reply = service.mutate("g", adds=delta.adds, removes=delta.removes)
            assert reply["parent"] == digest
            assert reply["adds"] == 2 and reply["removes"] == 1
            successor = service.store.get(reply["digest"])
            assert reply["n"] == successor.num_vertices
            assert reply["m"] == successor.num_edges

    def test_solve_after_mutate_routes_incrementally(self, graph):
        with SolverService(config=CONFIG) as service:
            digest = service.store.add(graph)
            first = service.solve(digest, K)
            assert first.optimal

            current_graph, current = graph, digest
            for _ in range(2):
                delta = valid_delta(current_graph)
                reply = service.mutate(current, adds=delta.adds, removes=delta.removes)
                current = reply["digest"]
                current_graph, _ = apply_delta(current_graph, delta)
                answer = service.solve(current, K)
                reference = KDCSolver(CONFIG).solve(current_graph, K)
                assert answer.optimal and answer.size == reference.size

            stats = service.stats()
            assert stats["incremental_hits"] == 2
            assert stats["mutations"] == 2
            assert stats["anchors_reused"] > 0

    def test_incremental_answer_lands_in_result_cache(self, graph):
        with SolverService(config=CONFIG) as service:
            digest = service.store.add(graph)
            service.solve(digest, K)
            delta = valid_delta(graph)
            child = service.mutate(digest, adds=delta.adds, removes=delta.removes)["digest"]
            first = service.solve(child, K)
            again = service.solve(child, K)
            assert again.size == first.size
            assert again.stats.cache_hit
            assert service.stats()["incremental_hits"] == 1  # the repeat was a cache hit

    def test_mutate_without_prior_solve_then_solve_full(self, graph):
        """No epoch yet: the successor's solve takes the ordinary path."""
        with SolverService(config=CONFIG) as service:
            digest = service.store.add(graph)
            delta = valid_delta(graph)
            child = service.mutate(digest, adds=delta.adds, removes=delta.removes)["digest"]
            answer = service.solve(child, K)
            successor, _ = apply_delta(graph, delta)
            assert answer.size == KDCSolver(CONFIG).solve(successor, K).size
            assert service.stats()["incremental_hits"] == 0

    def test_mutate_after_close_rejected(self, graph):
        service = SolverService(config=CONFIG)
        digest = service.store.add(graph)
        service.close()
        with pytest.raises(ServiceClosedError):
            service.mutate(digest, adds=[(0, 999)])


# --------------------------------------------------------------------------- #
# Protocol surface (in-process Client -> handle_request)
# --------------------------------------------------------------------------- #
class TestMutateProtocol:
    def test_mutate_round_trip(self, graph):
        with SolverService(config=CONFIG) as service:
            client = Client(service=service)
            digest = client.add_graph(graph, name="g")
            delta = valid_delta(graph)
            reply = client.mutate("g", adds=delta.adds, removes=delta.removes, name="g2")
            assert reply["ok"] and reply["parent"] == digest
            answer = client.solve(reply["digest"], K)
            successor, _ = apply_delta(graph, delta)
            assert answer["size"] == KDCSolver(CONFIG).solve(successor, K).size

    def test_mutate_requires_graph_ref(self, graph):
        with SolverService(config=CONFIG) as service:
            from repro.service import handle_request

            reply = handle_request(service, {"op": "mutate", "adds": [[0, 1]]})
            assert not reply["ok"]
            assert "graph" in reply["error"]

    def test_mutate_bad_delta_answers_typed_error(self, graph):
        with SolverService(config=CONFIG) as service:
            client = Client(service=service)
            client.add_graph(graph, name="g")
            from repro.exceptions import ServiceError

            with pytest.raises(ServiceError) as excinfo:
                client.mutate("g", removes=[(0, 999)])
            assert "EdgeNotFoundError" in str(excinfo.value)
            with pytest.raises(ServiceError) as excinfo:
                client.mutate("g")  # empty delta
            assert "InvalidParameterError" in str(excinfo.value)

    def test_mutate_unknown_ref(self, graph):
        with SolverService(config=CONFIG) as service:
            client = Client(service=service)
            from repro.exceptions import ServiceError

            with pytest.raises(ServiceError) as excinfo:
                client.mutate("missing", adds=[(0, 1)])
            assert "UnknownGraphError" in str(excinfo.value)


# --------------------------------------------------------------------------- #
# Persistence: the delta WAL
# --------------------------------------------------------------------------- #
class TestDeltaPersistence:
    def test_delta_wal_replay_round_trip(self, state_dir, graph):
        persistence = ServicePersistence(state_dir)
        delta = valid_delta(graph)
        persistence.append_delta("parent-d", "child-d", "g", delta)
        persistence.close()
        records = ServicePersistence(state_dir).replay_deltas()
        assert records == [
            ("parent-d", "child-d", "g", tuple(delta.adds), tuple(delta.removes))
        ]

    def test_restart_restores_chain(self, state_dir, graph):
        store = GraphStore(persistence=ServicePersistence(state_dir))
        root = store.add(graph, name="g")
        digests, current_graph, current = [root], graph, root
        for _ in range(3):
            delta = valid_delta(current_graph)
            current = store.apply_delta(current, delta, name="g")
            current_graph, _ = apply_delta(current_graph, delta)
            digests.append(current)
        store._persistence.close()  # simulate an abrupt stop (no clean close path needed)

        restored = GraphStore(persistence=ServicePersistence(state_dir))
        assert restored.stats()["restored_deltas"] == 3
        for parent, child in zip(digests, digests[1:]):
            assert restored.parent_digest(child) == parent
        chain = restored.delta_chain(root, digests[-1])
        assert [d for d, _ in chain] == digests[1:]
        assert restored.resolve("g") == digests[-1]

    def test_restart_rebuilds_missing_snapshot_from_wal(self, state_dir, graph):
        import os

        persistence = ServicePersistence(state_dir)
        store = GraphStore(persistence=persistence)
        root = store.add(graph)
        delta = valid_delta(graph)
        child = store.apply_delta(root, delta)
        persistence.close()
        # lose the successor's snapshot; the WAL must rebuild it from the parent
        os.remove(persistence._graph_path(child))

        restored = GraphStore(persistence=ServicePersistence(state_dir))
        assert child in restored
        assert restored.get(child).content_digest() == child
        assert restored.parent_digest(child) == root

    def test_service_restart_keeps_serving_the_chain(self, state_dir, graph):
        """The acceptance scenario: mutate, kill, restart, chain intact."""
        service = SolverService(config=CONFIG, persistence=ServicePersistence(state_dir))
        digest = service.store.add(graph, name="g")
        first = service.solve(digest, K)
        delta = valid_delta(graph)
        child = service.mutate("g", adds=delta.adds, removes=delta.removes, name="g")["digest"]
        answer = service.solve(child, K)
        service.close()

        revived = SolverService(config=CONFIG, persistence=ServicePersistence(state_dir))
        try:
            assert revived.store.parent_digest(child) == digest
            assert revived.store.resolve("g") == child
            replay = revived.solve(child, K)
            assert replay.size == answer.size
            assert replay.stats.cache_hit  # restored from the results WAL
            # the chain still extends after restart
            successor_graph, _ = apply_delta(graph, delta)
            delta2 = valid_delta(successor_graph)
            grandchild = revived.mutate("g", adds=delta2.adds, removes=delta2.removes)["digest"]
            assert revived.store.parent_digest(grandchild) == child
            final = revived.solve(grandchild, K)
            expected, _ = apply_delta(successor_graph, delta2)
            assert final.size == KDCSolver(CONFIG).solve(expected, K).size
        finally:
            revived.close()

    def test_damaged_wal_tail_truncated(self, state_dir, graph):
        persistence = ServicePersistence(state_dir)
        persistence.append_delta("p1", "c1", None, valid_delta(graph))
        persistence.append_delta("p2", "c2", None, valid_delta(graph))
        persistence.close()
        with open(ServicePersistence(state_dir).deltas_path, "ab") as fh:
            fh.write(b"\x00garbage-tail")
        records = ServicePersistence(state_dir).replay_deltas()
        assert [r[1] for r in records] == ["c1", "c2"]
