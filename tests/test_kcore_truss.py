"""Tests for k-core and k-truss extraction."""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graphs import (
    Graph,
    complete_graph,
    core_reduce_in_place,
    cycle_graph,
    edge_support,
    gnp_random_graph,
    k_core,
    k_core_vertices,
    k_truss,
    k_truss_edges,
    star_graph,
    truss_reduce_in_place,
)


class TestKCore:
    def test_kcore_of_complete_graph(self):
        g = complete_graph(5)
        assert k_core_vertices(g, 4) == set(range(5))
        assert k_core_vertices(g, 5) == set()

    def test_kcore_zero_returns_everything(self):
        g = star_graph(4)
        assert k_core_vertices(g, 0) == g.vertex_set()
        assert k_core_vertices(g, -3) == g.vertex_set()

    def test_star_has_no_2core(self):
        g = star_graph(5)
        assert k_core_vertices(g, 2) == set()

    def test_cycle_is_its_own_2core(self):
        g = cycle_graph(6)
        assert k_core_vertices(g, 2) == g.vertex_set()
        assert k_core_vertices(g, 3) == set()

    def test_figure2_cores(self, fig2):
        # Paper: the entire graph is a 3-core; removing v7 gives a 4-core.
        assert k_core_vertices(fig2, 3) == fig2.vertex_set()
        assert k_core_vertices(fig2, 4) == fig2.vertex_set() - {7}
        assert k_core_vertices(fig2, 5) == set()

    def test_kcore_returns_induced_subgraph(self):
        g = complete_graph(4)
        g.add_edge(0, 4)  # pendant
        core = k_core(g, 3)
        assert core.vertex_set() == {0, 1, 2, 3}
        assert core.num_edges == 6

    def test_core_reduce_in_place(self):
        g = complete_graph(4)
        g.add_edge(0, 4)
        removed = core_reduce_in_place(g, 3)
        assert removed == {4}
        assert g.num_vertices == 4

    def test_kcore_minimum_degree_property(self):
        g = gnp_random_graph(40, 0.15, seed=3)
        for k in (1, 2, 3, 4):
            core = k_core(g, k)
            for v in core:
                assert core.degree(v) >= k

    def test_kcore_is_maximal(self):
        # No vertex outside the k-core can be added while keeping min degree >= k:
        # verify by checking that the peeling of the complement eventually
        # empties, i.e. re-running extraction on the full graph is idempotent.
        g = gnp_random_graph(40, 0.2, seed=4)
        core1 = k_core_vertices(g, 3)
        core2 = k_core_vertices(g.subgraph(core1), 3)
        assert core1 == core2


class TestKTruss:
    def test_truss_of_complete_graph(self):
        g = complete_graph(5)
        # Every edge of K5 lies in 3 triangles, so the 5-truss is the whole graph.
        assert len(k_truss_edges(g, 5)) == 10
        assert k_truss_edges(g, 6) == set()

    def test_truss_small_k_keeps_all_edges(self):
        g = cycle_graph(5)
        assert len(k_truss_edges(g, 2)) == g.num_edges
        assert len(k_truss_edges(g, 0)) == g.num_edges

    def test_triangle_free_graph_has_no_3truss(self):
        g = cycle_graph(6)
        assert k_truss_edges(g, 3) == set()

    def test_figure2_truss_structure(self, fig2):
        # Paper: the whole graph is a 3-truss; the 4-truss removes v7's edges;
        # the subgraph on {v8..v12} is a 5-truss.
        assert len(k_truss_edges(fig2, 3)) == fig2.num_edges
        four_truss = k_truss(fig2, 4)
        assert 7 not in four_truss.vertex_set()
        five_truss = k_truss(fig2, 5)
        assert five_truss.vertex_set() == {8, 9, 10, 11, 12}

    def test_edge_support_counts_triangles(self):
        g = complete_graph(4)
        support = edge_support(g)
        assert all(value == 2 for value in support.values())

    def test_truss_support_property(self):
        g = gnp_random_graph(30, 0.3, seed=5)
        for k in (3, 4):
            truss = k_truss(g, k)
            for u, v in truss.iter_edges():
                assert len(truss.common_neighbors(u, v)) >= k - 2

    def test_truss_is_subgraph_of_core(self):
        g = gnp_random_graph(30, 0.3, seed=6)
        truss_vertices = k_truss(g, 4).vertex_set()
        core_vertices = k_core_vertices(g, 3)
        assert truss_vertices <= core_vertices

    def test_truss_reduce_in_place(self):
        g = complete_graph(4)
        g.add_edge(0, 4)  # edge in no triangle
        removed = truss_reduce_in_place(g, 3)
        assert removed == 1
        assert not g.has_vertex(4)
        assert g.num_edges == 6

    @given(st.integers(min_value=1, max_value=16), st.floats(min_value=0.0, max_value=0.8),
           st.integers(min_value=0, max_value=500), st.integers(min_value=3, max_value=5))
    @settings(max_examples=25, deadline=None)
    def test_truss_idempotent(self, n, p, seed, k):
        g = gnp_random_graph(n, p, seed=seed)
        once = k_truss(g, k)
        twice = k_truss(once, k)
        assert set(map(frozenset, once.iter_edges())) == set(map(frozenset, twice.iter_edges()))
