"""Tests for greedy coloring, connected components and graph statistics."""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graphs import (
    Graph,
    bfs_distances,
    clustering_coefficient,
    color_classes,
    complete_graph,
    connected_components,
    cycle_graph,
    degree_histogram,
    diameter_lower_bound,
    gnp_random_graph,
    graph_stats,
    greedy_coloring,
    is_connected,
    is_proper_coloring,
    largest_component,
    path_graph,
    star_graph,
)


class TestColoring:
    def test_coloring_is_proper_on_random_graphs(self):
        for seed in range(5):
            g = gnp_random_graph(25, 0.3, seed=seed)
            colors = greedy_coloring(g)
            assert is_proper_coloring(g, colors)
            assert set(colors) == g.vertex_set()

    def test_complete_graph_needs_n_colors(self):
        g = complete_graph(6)
        colors = greedy_coloring(g)
        assert len(set(colors.values())) == 6

    def test_bipartite_uses_two_colors(self):
        g = cycle_graph(8)
        colors = greedy_coloring(g)
        assert len(set(colors.values())) <= 3  # greedy on even cycles may use <= 3

    def test_restrict_to_subset(self):
        g = complete_graph(5)
        colors = greedy_coloring(g, restrict_to=[0, 1, 2])
        assert set(colors) == {0, 1, 2}
        assert is_proper_coloring(g, colors)

    def test_explicit_order(self):
        g = path_graph(4)
        colors = greedy_coloring(g, order=[0, 1, 2, 3])
        assert is_proper_coloring(g, colors)

    def test_color_classes_are_independent_sets(self):
        g = gnp_random_graph(20, 0.4, seed=9)
        classes = color_classes(greedy_coloring(g))
        for cls in classes:
            for i, u in enumerate(cls):
                for v in cls[i + 1:]:
                    assert not g.has_edge(u, v)

    def test_color_classes_empty(self):
        assert color_classes({}) == []

    def test_improper_coloring_detected(self):
        g = Graph(edges=[(0, 1)])
        assert not is_proper_coloring(g, {0: 0, 1: 0})

    @given(st.integers(min_value=0, max_value=20), st.floats(min_value=0.0, max_value=1.0),
           st.integers(min_value=0, max_value=500))
    @settings(max_examples=30, deadline=None)
    def test_greedy_never_exceeds_maxdeg_plus_one(self, n, p, seed):
        g = gnp_random_graph(n, p, seed=seed)
        colors = greedy_coloring(g)
        if n:
            used = len(set(colors.values())) if colors else 0
            max_degree = max(g.degrees().values()) if g.num_vertices else 0
            assert used <= max_degree + 1


class TestComponents:
    def test_empty_graph_connected(self):
        assert is_connected(Graph())

    def test_single_component(self):
        assert len(connected_components(complete_graph(4))) == 1

    def test_multiple_components(self):
        g = Graph(edges=[(0, 1), (2, 3)], vertices=[4])
        comps = connected_components(g)
        assert len(comps) == 3
        assert not is_connected(g)

    def test_largest_component(self):
        g = Graph(edges=[(0, 1), (1, 2), (3, 4)])
        largest = largest_component(g)
        assert largest.vertex_set() == {0, 1, 2}

    def test_largest_component_empty(self):
        assert largest_component(Graph()).num_vertices == 0

    def test_bfs_distances(self):
        g = path_graph(4)
        assert bfs_distances(g, 0) == {0: 0, 1: 1, 2: 2, 3: 3}

    def test_diameter_lower_bound(self):
        assert diameter_lower_bound(path_graph(5), source=0) == 4
        assert diameter_lower_bound(Graph(vertices=[0])) == 0


class TestStats:
    def test_clustering_of_complete_graph(self):
        assert clustering_coefficient(complete_graph(5)) == 1.0

    def test_clustering_of_star(self):
        assert clustering_coefficient(star_graph(4)) == 0.0

    def test_clustering_empty(self):
        assert clustering_coefficient(Graph()) == 0.0

    def test_degree_histogram(self):
        hist = degree_histogram(star_graph(4))
        assert hist[1] == 4
        assert hist[4] == 1
        assert degree_histogram(Graph()) == []

    def test_graph_stats_fields(self):
        g = complete_graph(4)
        stats = graph_stats(g)
        assert stats.num_vertices == 4
        assert stats.num_edges == 6
        assert stats.max_degree == 3
        assert stats.min_degree == 3
        assert stats.avg_degree == 3.0
        assert stats.degeneracy == 3
        assert stats.num_components == 1
        assert stats.clustering == 1.0
        as_dict = stats.as_dict()
        assert as_dict["num_vertices"] == 4

    def test_graph_stats_empty(self):
        stats = graph_stats(Graph())
        assert stats.num_vertices == 0
        assert stats.avg_degree == 0.0
