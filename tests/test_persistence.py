"""Durable service state: snapshots, the results journal, and warm restart.

Exercises :class:`~repro.service.persistence.ServicePersistence` directly
(snapshot/journal round trips, damaged-tail and unreadable-entry handling,
the active-checkpoint guard) and through the service layer (GraphStore and
SolverService restarted against the same state directory restore their
graphs, prepared artifacts and optimal-result cache).  Also covers the
GraphStore pickle round trip, which the snapshot layer relies on.
"""

from __future__ import annotations

import logging
import os
import pickle

import pytest

from repro.core.config import SolverConfig
from repro.core.prepared import prepare_instance
from repro.graphs import gnp_random_graph
from repro.service import GraphStore, ServicePersistence, SolverService
from repro.testing.chaos import FaultInjector, InjectedFaultError

CONFIG = SolverConfig(backend="bitset", decompose_threshold=1, workers=1)
K = 2


@pytest.fixture(autouse=True)
def _no_leftover_faults():
    """Chaos rules must never leak between tests (or into workers via env)."""
    from repro.testing import chaos

    chaos.uninstall()
    yield
    chaos.uninstall()


@pytest.fixture
def graph():
    return gnp_random_graph(40, 0.3, seed=2)


@pytest.fixture
def state_dir(tmp_path):
    return str(tmp_path / "state")


class TestSnapshots:
    def test_graph_snapshot_round_trip(self, state_dir, graph):
        persistence = ServicePersistence(state_dir)
        digest = graph.content_digest()
        persistence.save_graph(digest, "toy", graph)
        persistence.save_graph(digest, "ignored-second-write", graph)  # idempotent

        loaded = list(ServicePersistence(state_dir).load_graphs())
        assert len(loaded) == 1
        got_digest, name, got = loaded[0]
        assert got_digest == digest and name == "toy"
        assert got.content_digest() == digest

    def test_prepared_snapshot_round_trip(self, state_dir, graph):
        persistence = ServicePersistence(state_dir)
        digest = graph.content_digest()
        key = (digest, K, CONFIG.initial_heuristic, CONFIG.use_rr5, CONFIG.use_rr6)
        artifact = prepare_instance(graph, K, CONFIG)
        persistence.save_prepared(key, artifact)

        loaded = list(ServicePersistence(state_dir).load_prepared())
        assert len(loaded) == 1
        got_key, got = loaded[0]
        assert got_key == key
        assert got.digest == artifact.digest
        assert got.heuristic == artifact.heuristic
        assert got.working_adj == artifact.working_adj

    def test_unreadable_snapshot_skipped_with_warning(self, state_dir, graph, caplog):
        persistence = ServicePersistence(state_dir)
        persistence.save_graph(graph.content_digest(), None, graph)
        with open(os.path.join(persistence.graphs_dir, "junk.pkl"), "wb") as fh:
            fh.write(b"not a pickle")
        with open(os.path.join(persistence.prepared_dir, "wrongtype.pkl"), "wb") as fh:
            fh.write(pickle.dumps((("key",), "not a PreparedInstance")))
        with caplog.at_level(logging.WARNING, logger="repro.service.persistence"):
            graphs = list(persistence.load_graphs())
            prepared = list(persistence.load_prepared())
        assert len(graphs) == 1 and prepared == []
        messages = [r.message for r in caplog.records]
        assert any("unreadable graph snapshot" in m for m in messages)
        assert any("unreadable prepared snapshot" in m for m in messages)

    def test_crash_in_publish_window_leaves_old_content(self, state_dir, graph):
        """A fault between the temp fsync and the rename never tears the snapshot."""
        persistence = ServicePersistence(state_dir)
        digest = graph.content_digest()
        with FaultInjector().add("persist.write", error="crash before rename"):
            with pytest.raises(InjectedFaultError):
                persistence.save_graph(digest, None, graph)
        # No destination file was published; the stale temp file is ignored.
        assert list(persistence.load_graphs()) == []
        leftovers = os.listdir(persistence.graphs_dir)
        assert leftovers and all(".tmp." in name for name in leftovers)
        # Retrying the publish succeeds despite the stale temp file.
        persistence.save_graph(digest, None, graph)
        assert [d for d, _, _ in persistence.load_graphs()] == [digest]


class TestResultsJournal:
    def _solve(self, graph):
        from repro.core.solver import KDCSolver

        return KDCSolver(CONFIG).solve_prepared(prepare_instance(graph, K, CONFIG), K)

    def test_append_replay_round_trip(self, state_dir, graph):
        persistence = ServicePersistence(state_dir)
        result = self._solve(graph)
        key = (graph.content_digest(), K, "kDC", "bitset", "trail")
        persistence.append_result(key, result)
        persistence.append_result(key + ("other",), result)
        persistence.close()

        entries = ServicePersistence(state_dir).replay_results()
        assert [k for k, _ in entries] == [key, key + ("other",)]
        assert all(r.size == result.size for _, r in entries)

    def test_truncated_tail_discarded_and_truncated(self, state_dir, graph, caplog):
        persistence = ServicePersistence(state_dir)
        result = self._solve(graph)
        persistence.append_result(("a",), result)
        persistence.append_result(("b",), result)
        persistence.close()
        size = os.path.getsize(persistence.results_path)
        with open(persistence.results_path, "rb+") as fh:
            fh.truncate(size - 7)

        fresh = ServicePersistence(state_dir)
        with caplog.at_level(logging.WARNING):
            entries = fresh.replay_results()
        assert [k for k, _ in entries] == [("a",)]
        assert any("truncated or corrupt tail" in r.message for r in caplog.records)
        # The damaged tail was physically truncated: appends land on a clean
        # boundary and the lost record never resurfaces.
        fresh.append_result(("c",), result)
        fresh.close()
        assert [k for k, _ in ServicePersistence(state_dir).replay_results()] == [("a",), ("c",)]

    def test_append_validates_tail_even_without_prior_replay(self, state_dir, graph):
        persistence = ServicePersistence(state_dir)
        result = self._solve(graph)
        persistence.append_result(("a",), result)
        persistence.close()
        with open(persistence.results_path, "ab") as fh:
            fh.write(b"\xff\xff")  # crash residue

        fresh = ServicePersistence(state_dir)
        fresh.append_result(("b",), result)  # no replay_results() first
        fresh.close()
        scan_entries = ServicePersistence(state_dir).replay_results()
        assert [k for k, _ in scan_entries] == [("a",), ("b",)]

    def test_unreadable_record_within_valid_prefix_skipped(self, state_dir, graph, caplog):
        from repro.core.checkpoint import append_record

        persistence = ServicePersistence(state_dir)
        result = self._solve(graph)
        persistence.append_result(("a",), result)
        persistence.close()
        with open(persistence.results_path, "ab") as fh:
            append_record(fh, pickle.dumps((("bad",), "not a SolveResult")))

        with caplog.at_level(logging.WARNING, logger="repro.service.persistence"):
            entries = ServicePersistence(state_dir).replay_results()
        assert [k for k, _ in entries] == [("a",)]
        assert any("unreadable results-journal record" in r.message for r in caplog.records)

    def test_rewrite_compacts(self, state_dir, graph):
        persistence = ServicePersistence(state_dir)
        result = self._solve(graph)
        for i in range(4):
            persistence.append_result(("dup",), result)
        persistence.rewrite_results([(("dup",), result)])
        persistence.append_result(("tail",), result)  # journal still appendable
        persistence.close()
        assert [k for k, _ in ServicePersistence(state_dir).replay_results()] == [
            ("dup",), ("tail",),
        ]

    def test_closed_persistence_drops_appends(self, state_dir, graph):
        persistence = ServicePersistence(state_dir)
        persistence.close()
        persistence.append_result(("a",), self._solve(graph))  # silent no-op
        assert ServicePersistence(state_dir).replay_results() == []


class TestCheckpointGuard:
    def test_second_open_of_same_identity_returns_none(self, state_dir):
        persistence = ServicePersistence(state_dir)
        first = persistence.open_checkpoint("d", K, "kDC", CONFIG)
        assert first is not None
        assert persistence.open_checkpoint("d", K, "kDC", CONFIG) is None
        # A different identity is unaffected.
        other = persistence.open_checkpoint("d", K + 1, "kDC", CONFIG)
        assert other is not None
        other.complete()
        first.close()  # releases the guard...
        reopened = persistence.open_checkpoint("d", K, "kDC", CONFIG)
        assert reopened is not None  # ...so the identity can be reopened
        reopened.complete()

    def test_closed_persistence_refuses_checkpoints(self, state_dir):
        persistence = ServicePersistence(state_dir)
        persistence.close()
        assert persistence.open_checkpoint("d", K, "kDC", CONFIG) is None


class TestGraphStoreRestart:
    def test_store_warm_restart(self, state_dir, graph):
        store = GraphStore(persistence=ServicePersistence(state_dir))
        digest = store.add(graph, name="toy")
        store.prepared(digest, K, CONFIG)

        warm = GraphStore(persistence=ServicePersistence(state_dir))
        stats = warm.stats()
        assert stats["restored_graphs"] == 1
        assert stats["restored_prepared"] == 1
        assert warm.graphs() == {digest: "toy"}
        # The restored artifact answers without a rebuild.
        warm.prepared(digest, K, CONFIG)
        assert warm.stats()["prepares"] == 0
        assert warm.stats()["prepared_hits"] == 1

    def test_orphaned_prepared_snapshot_skipped(self, state_dir, graph):
        """A prepared artifact whose graph snapshot is missing is not restored."""
        persistence = ServicePersistence(state_dir)
        artifact = prepare_instance(graph, K, CONFIG)
        persistence.save_prepared(("missing-digest", K, "degen-opt", True, True), artifact)

        warm = GraphStore(persistence=ServicePersistence(state_dir))
        stats = warm.stats()
        assert stats["restored_graphs"] == 0
        assert stats["restored_prepared"] == 0
        assert stats["prepared_artifacts"] == 0

    def test_restore_respects_lru_caps(self, state_dir):
        persistence = ServicePersistence(state_dir)
        store = GraphStore(persistence=persistence)
        for seed in range(3):
            store.add(gnp_random_graph(12, 0.4, seed=seed))
        warm = GraphStore(max_graphs=2, persistence=ServicePersistence(state_dir))
        assert warm.stats()["graphs"] == 2


class TestGraphStorePickle:
    def test_pickle_round_trip(self, graph):
        store = GraphStore()
        digest = store.add(graph, name="toy")
        store.prepared(digest, K, CONFIG)

        clone = pickle.loads(pickle.dumps(store))
        assert clone.graphs() == {digest: "toy"}
        assert clone.stats()["prepared_artifacts"] == 1
        # The clone has fresh synchronisation state and is fully usable.
        clone.prepared(digest, K, CONFIG)
        assert clone.stats()["prepared_hits"] == 1
        other = gnp_random_graph(10, 0.5, seed=9)
        clone.add(other)
        assert clone.stats()["graphs"] == 2

    def test_pickle_excludes_live_state(self, graph):
        store = GraphStore(persistence=None)
        store.add(graph)
        state = store.__getstate__()
        assert "_lock" not in state and "_inflight" not in state and "_persistence" not in state


class TestServiceWarmRestart:
    def test_results_and_store_survive_restart(self, state_dir, graph):
        with SolverService(config=CONFIG, persistence=ServicePersistence(state_dir)) as service:
            digest = service.store.add(graph)
            cold = service.solve(digest, K)
            assert cold.optimal and not cold.stats.cache_hit

        with SolverService(config=CONFIG, persistence=ServicePersistence(state_dir)) as warm:
            stats = warm.stats()
            assert stats["restored_results"] == 1
            assert warm.store.stats()["restored_graphs"] == 1
            assert warm.store.stats()["restored_prepared"] == 1
            # Same query answered from the restored cache, graph known by digest.
            hit = warm.solve(digest, K)
            assert hit.stats.cache_hit
            assert hit.optimal and hit.size == cold.size and hit.clique == cold.clique

    def test_non_optimal_results_never_restored(self, state_dir):
        hard = gnp_random_graph(80, 0.4, seed=11)
        with SolverService(config=CONFIG, persistence=ServicePersistence(state_dir)) as service:
            partial = service.solve(hard, K, node_limit=5)
            assert not partial.optimal

        with SolverService(config=CONFIG, persistence=ServicePersistence(state_dir)) as warm:
            assert warm.stats()["restored_results"] == 0

    def test_oversized_journal_trimmed_and_compacted(self, state_dir):
        with SolverService(config=CONFIG, persistence=ServicePersistence(state_dir)) as service:
            for seed in range(3):
                service.solve(gnp_random_graph(14, 0.4, seed=seed), K)

        warm = SolverService(
            config=CONFIG, result_cache_size=2, persistence=ServicePersistence(state_dir)
        )
        try:
            assert warm.stats()["restored_results"] == 2
        finally:
            warm.close()
        # The trim was compacted back to disk: the next restart sees 2 entries.
        assert len(ServicePersistence(state_dir).replay_results()) == 2

    def test_replay_failure_starts_cold(self, state_dir, graph, caplog):
        with SolverService(config=CONFIG, persistence=ServicePersistence(state_dir)) as service:
            service.solve(graph, K)

        with FaultInjector().add(
            "persist.replay", error="disk flaked during replay", times=None
        ):
            with caplog.at_level(logging.WARNING, logger="repro.service"):
                cold = SolverService(config=CONFIG, persistence=ServicePersistence(state_dir))
                cold.close()
        assert cold.stats()["restored_results"] == 0
        assert any("starting cold" in r.message for r in caplog.records)
