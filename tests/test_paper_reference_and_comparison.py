"""Tests for the embedded paper results and the shape-comparison helpers."""

from __future__ import annotations

import pytest

from repro.bench.comparison import (
    ShapeCheck,
    compare_table2_shape,
    ordering_holds,
    trend_is_non_decreasing,
)
from repro.datasets.paper_reference import (
    COLLECTION_SIZES,
    PAPER_K_VALUES,
    TABLE2_SOLVED,
    TABLE3_AVG_SPEEDUP_OVER_KDBB,
    TABLE4_PREPROCESSING,
    TABLE5_SIZE_RATIOS,
    TABLE6_EXTENDS_MAX_CLIQUE,
    TABLE7_PCT_NOT_FULLY_CONNECTED,
    paper_winner_table2,
)


class TestReferenceDataConsistency:
    """The embedded paper numbers must satisfy the claims the paper makes about them."""

    def test_every_collection_and_k_present(self):
        for collection, algorithms in TABLE2_SOLVED.items():
            assert collection in COLLECTION_SIZES
            for algorithm, counts in algorithms.items():
                assert set(counts) == set(PAPER_K_VALUES), (collection, algorithm)

    def test_solved_counts_within_collection_size(self):
        for collection, algorithms in TABLE2_SOLVED.items():
            size = COLLECTION_SIZES[collection]
            for counts in algorithms.values():
                assert all(0 <= value <= size for value in counts.values())

    def test_kdc_wins_or_ties_except_known_exception(self):
        """kDC solves the most instances everywhere except Facebook at k=15 (paper text)."""
        for collection in TABLE2_SOLVED:
            for k in PAPER_K_VALUES:
                winners = paper_winner_table2(collection, k)
                if collection == "facebook" and k == 15:
                    assert winners == ["KDBB"]
                else:
                    assert "kDC" in winners

    def test_solved_counts_decrease_with_k_for_kdc(self):
        for collection, algorithms in TABLE2_SOLVED.items():
            counts = [algorithms["kDC"][k] for k in PAPER_K_VALUES]
            assert all(a >= b for a, b in zip(counts, counts[1:]))

    def test_table5_ratios_grow_with_k(self):
        for per_k in TABLE5_SIZE_RATIOS.values():
            avgs = [per_k[k][0] for k in PAPER_K_VALUES]
            maxes = [per_k[k][1] for k in PAPER_K_VALUES]
            assert trend_is_non_decreasing(avgs)
            assert trend_is_non_decreasing(maxes)
            assert all(pair[0] <= pair[1] for pair in per_k.values())

    def test_table6_counts_bounded_by_solved(self):
        for collection, per_k in TABLE6_EXTENDS_MAX_CLIQUE.items():
            solved = TABLE2_SOLVED[collection]["kDC"]
            # Table 6 counts graphs among those solved by kDC; the k=15/20
            # facebook rows exceed kDC's count slightly because KDBB solved
            # them — allow equality against the collection size instead.
            for k, count in per_k.items():
                assert 0 <= count <= COLLECTION_SIZES[collection]
                assert count <= max(solved[k], count)

    def test_table7_percentages_grow_with_k(self):
        for per_k in TABLE7_PCT_NOT_FULLY_CONNECTED.values():
            values = [per_k[k] for k in PAPER_K_VALUES]
            assert trend_is_non_decreasing(values)
            assert all(0.0 <= value <= 100.0 for value in values)

    def test_table4_ratios_on_expected_side_of_one(self):
        for per_k in TABLE4_PREPROCESSING.values():
            for c0_ratio, n_ratio, m_ratio in per_k.values():
                assert c0_ratio >= 1.0
                assert n_ratio <= 1.0
                assert m_ratio <= 1.0

    def test_table3_speedups_are_large(self):
        assert all(speedup > 100 for speedup in TABLE3_AVG_SPEEDUP_OVER_KDBB.values())


class TestShapeComparison:
    def test_ordering_holds(self):
        solved = {"kDC": {1: 10}, "KDBB": {1: 8}, "MADEC": {1: 5}}
        assert ordering_holds(solved, 1)
        assert not ordering_holds({"kDC": {1: 4}, "KDBB": {1: 8}, "MADEC": {1: 5}}, 1)

    def test_trend_helper(self):
        assert trend_is_non_decreasing([1.0, 1.0, 1.2])
        assert not trend_is_non_decreasing([1.0, 0.5])
        assert trend_is_non_decreasing([])

    def test_compare_table2_shape_pass(self):
        measured = {
            "facebook_like": {
                "kDC": {1: 10, 3: 10},
                "KDBB": {1: 9, 3: 8},
                "MADEC": {1: 9, 3: 6},
            }
        }
        checks = compare_table2_shape(measured, k_values=(1, 3))
        assert all(isinstance(c, ShapeCheck) for c in checks)
        assert all(c.passed for c in checks)
        assert any("winner" in c.name for c in checks)

    def test_compare_table2_shape_detects_inversion(self):
        measured = {
            "facebook_like": {
                "kDC": {1: 2},
                "KDBB": {1: 9},
                "MADEC": {1: 1},
            }
        }
        checks = compare_table2_shape(measured, k_values=(1,))
        assert any(not c.passed for c in checks)
        text = str(checks[0])
        assert text.startswith("[")

    def test_unknown_collection_still_checked_for_ordering(self):
        measured = {"custom": {"kDC": {1: 3}, "KDBB": {1: 2}, "MADEC": {1: 1}}}
        checks = compare_table2_shape(measured, k_values=(1,))
        assert len(checks) == 1
        assert checks[0].passed
