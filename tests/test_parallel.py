"""Tests for the parallel decomposition driver: budgets, wiring, re-entrancy."""

from __future__ import annotations

import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import replace

import pytest

from repro.bench.harness import make_solver, run_instance
from repro.cli import main as cli_main
from repro.core import (
    KDCSolver,
    SolverConfig,
    build_ego_subproblem,
    is_k_defective_clique,
    solve_decomposed_parallel,
)
from repro.core.result import SearchStats
from repro.exceptions import InvalidParameterError
from repro.graphs import gnp_random_graph, write_edge_list


class TestConfig:
    def test_default_workers_is_one(self):
        assert SolverConfig().workers == 1

    def test_invalid_workers_rejected(self):
        with pytest.raises(InvalidParameterError):
            SolverConfig(workers=0)
        with pytest.raises(InvalidParameterError):
            SolverConfig(workers=-2)


class TestBudgetPropagation:
    """Time/node budgets must reach the workers and interrupt cleanly."""

    def test_time_limit_interrupts_parallel_decomposition(self):
        graph = gnp_random_graph(250, 0.25, seed=2)
        config = SolverConfig(
            backend="bitset", decompose_threshold=1, workers=2, time_limit=0.2
        )
        start = time.perf_counter()
        result = KDCSolver(config).solve(graph, 3)
        elapsed = time.perf_counter() - start
        assert not result.optimal
        # Must neither hang nor grossly overrun: generous headroom for pool
        # startup/teardown on slow machines, but nowhere near the full solve.
        assert elapsed < 10.0
        assert is_k_defective_clique(graph, result.clique, 3)

    def test_node_limit_interrupts_parallel_decomposition(self):
        graph = gnp_random_graph(250, 0.25, seed=2)
        config = SolverConfig(
            backend="bitset", decompose_threshold=1, workers=2, node_limit=150
        )
        result = KDCSolver(config).solve(graph, 3)
        assert not result.optimal
        assert result.stats.workers == 2
        assert is_k_defective_clique(graph, result.clique, 3)

    def test_interrupted_parallel_solve_keeps_best_found(self):
        graph = gnp_random_graph(200, 0.3, seed=4)
        config = SolverConfig(
            backend="bitset", decompose_threshold=1, workers=2, time_limit=0.2
        )
        result = KDCSolver(config).solve(graph, 2)
        # The heuristic incumbent is computed before the decomposition, so
        # even an interrupted parallel solve can never return less.
        assert result.size >= result.stats.initial_solution_size

    def test_unbudgeted_parallel_solve_is_optimal(self):
        graph = gnp_random_graph(80, 0.3, seed=3)
        config = SolverConfig(backend="bitset", decompose_threshold=1, workers=2)
        result = KDCSolver(config).solve(graph, 2)
        assert result.optimal
        assert result.stats.workers == 2

    def test_budget_interrupt_salvages_improvement_found_mid_engine(self):
        # Regression: an improvement the engine has already recorded into the
        # placeholder incumbent must survive a BudgetExceededError that
        # unwinds engine.run, and travel back with the batch result.
        import multiprocessing

        from repro.core import parallel as parallel_module
        from repro.graphs.degeneracy import degeneracy_ordering

        graph = gnp_random_graph(40, 0.5, seed=3)
        relabeled, _, _ = graph.relabel()
        decomposition = degeneracy_ordering(relabeled)
        adj = {v: tuple(relabeled.neighbors(v)) for v in relabeled}
        position = dict(decomposition.position)
        best_size = multiprocessing.Value("q", 3, lock=False)  # k + 1: decomposition-legal
        node_counter = multiprocessing.Value("q", 0, lock=False)
        # node_limit=25 trips mid-engine, after the engine's first incumbent
        # improvements on this dense instance.
        parallel_module._init_worker(
            adj, position, 2, SolverConfig(), best_size, multiprocessing.Lock(),
            node_counter, multiprocessing.Lock(), node_limit=25, deadline=None,
        )
        try:
            anchors = list(reversed(decomposition.ordering))
            index, local_best, stats, exceeded = parallel_module._solve_batch((0, anchors))
        finally:
            parallel_module._CTX = None
        assert index == 0
        assert exceeded
        assert len(local_best) > 3, "improvement found before the interrupt was lost"
        assert is_k_defective_clique(relabeled, local_best, 2)
        assert best_size.value == len(local_best)

    def test_node_limit_enforced_tightly_across_workers(self):
        # Regression: small batches used to discard their unflushed private
        # poll counts, letting a parallel solve overrun node_limit by an
        # order of magnitude.  The budget must now bind within the
        # workers * flush-interval race margin.
        graph = gnp_random_graph(150, 0.2, seed=1)
        config = SolverConfig(
            backend="bitset", decompose_threshold=1, workers=2, node_limit=100
        )
        result = KDCSolver(config).solve(graph, 2)
        assert not result.optimal
        margin = 2 * 64
        assert result.stats.nodes <= 100 + margin, result.stats.nodes

    def test_solve_decomposed_parallel_requires_usable_incumbent(self):
        graph = gnp_random_graph(30, 0.3, seed=9)
        relabeled, _, _ = graph.relabel()
        with pytest.raises(ValueError):
            solve_decomposed_parallel(
                relabeled, k=3, config=SolverConfig(workers=2), stats=SearchStats(),
                check_budget=lambda: None, incumbent=[0],
            )


class TestWorkerLoss:
    @pytest.mark.slow
    def test_killed_worker_recovers_and_stays_exact(self):
        # A pool worker dying abruptly must not hang the solve or lose its
        # batch: the parent detects child turnover and re-solves unmerged
        # batches in-process, so the result stays optimal.
        import multiprocessing
        import os
        import signal
        import threading

        graph = gnp_random_graph(180, 0.25, seed=3)
        expected = KDCSolver(SolverConfig(backend="bitset")).solve(graph, 2).size

        config = SolverConfig(backend="bitset", decompose_threshold=1, workers=2)
        outcome = {}

        def run():
            outcome["result"] = KDCSolver(config).solve(graph, 2)

        thread = threading.Thread(target=run)
        thread.start()
        victim = None
        deadline = time.perf_counter() + 30
        while time.perf_counter() < deadline and victim is None:
            children = multiprocessing.active_children()
            if children:
                victim = children[0]
            else:
                time.sleep(0.02)
        assert victim is not None, "pool workers never appeared"
        time.sleep(0.2)  # let it pick up a batch
        try:
            os.kill(victim.pid, signal.SIGKILL)
        except ProcessLookupError:
            pass  # already finished: the solve simply completes normally
        thread.join(timeout=120)
        assert not thread.is_alive(), "solve hung after a worker was killed"
        result = outcome["result"]
        assert result.optimal
        assert result.size == expected


class TestReentrancy:
    """Per-solve state is local: one shared solver instance cannot corrupt."""

    def test_sequential_reuse_is_clean(self):
        solver = KDCSolver(SolverConfig(backend="bitset", decompose_threshold=1))
        g1 = gnp_random_graph(50, 0.3, seed=1)
        g2 = gnp_random_graph(50, 0.2, seed=2)
        first = solver.solve(g1, 2)
        second = solver.solve(g2, 2)
        again = solver.solve(g1, 2)
        assert first.size == again.size
        assert first.stats is not second.stats

    def test_concurrent_solves_on_shared_instance(self):
        # Regression for the former per-instance _best/_stats fields: two
        # interleaved solves on one instance must not cross-contaminate
        # incumbents or statistics.
        solver = KDCSolver(SolverConfig())
        graphs = [gnp_random_graph(45, 0.3, seed=s) for s in range(6)]
        expected = [KDCSolver(SolverConfig()).solve(g, 2).size for g in graphs]
        with ThreadPoolExecutor(max_workers=4) as pool:
            results = list(pool.map(lambda g: solver.solve(g, 2), graphs))
        assert [r.size for r in results] == expected
        assert all(r.optimal for r in results)


class TestEgoSubproblemBuilder:
    def test_size_cap_returns_none(self):
        graph = gnp_random_graph(30, 0.2, seed=0)
        relabeled, _, _ = graph.relabel()
        from repro.graphs.degeneracy import degeneracy_ordering

        decomposition = degeneracy_ordering(relabeled)
        v = decomposition.ordering[0]  # lowest-degeneracy anchor: tiny ego net
        sub = build_ego_subproblem(
            relabeled.neighbors, decomposition.position, v,
            lower_bound=relabeled.num_vertices + 1, k=1,
        )
        assert sub is None

    def test_anchor_is_local_zero(self):
        graph = gnp_random_graph(30, 0.4, seed=1)
        relabeled, _, _ = graph.relabel()
        from repro.graphs.degeneracy import degeneracy_ordering

        decomposition = degeneracy_ordering(relabeled)
        position = decomposition.position
        # Anchor with the most higher-ranked neighbours, so the ego net is
        # guaranteed to clear the incumbent size cap.
        v = max(
            relabeled,
            key=lambda u: sum(1 for w in relabeled.neighbors(u) if position[w] > position[u]),
        )
        sub = build_ego_subproblem(
            relabeled.neighbors, decomposition.position, v, lower_bound=2, k=1
        )
        assert sub is not None
        local_vertices, adj_bits = sub
        assert local_vertices[0] == v
        assert len(adj_bits) == len(local_vertices)
        # Local adjacency must be symmetric.
        for i, row in enumerate(adj_bits):
            for j in range(len(local_vertices)):
                assert bool((row >> j) & 1) == bool((adj_bits[j] >> i) & 1)


class TestWiring:
    def test_make_solver_workers_override(self):
        solver = make_solver("kDC", workers=4)
        assert solver.config.workers == 4

    def test_make_solver_rejects_workers_for_baselines(self):
        for name in ("KDBB", "MADEC"):
            with pytest.raises(InvalidParameterError):
                make_solver(name, workers=2)

    def test_run_instance_records_workers(self):
        graph = gnp_random_graph(60, 0.3, seed=6)
        record = run_instance(
            "kDC", graph, 2, time_limit=30.0, backend="bitset", workers=2
        )
        # decompose_threshold (128) exceeds n=60, so the decomposition does
        # not engage and the record reports no decomposition workers.
        assert record.workers == 0
        assert record.as_dict()["workers"] == 0

    @pytest.mark.slow
    def test_run_instance_records_workers_when_decomposed(self):
        # Dense enough that RR5/RR6 preprocessing keeps the reduced instance
        # above the default decompose_threshold, so the pool really engages.
        graph = gnp_random_graph(180, 0.25, seed=6)
        record = run_instance(
            "kDC", graph, 2, time_limit=120.0, backend="bitset", workers=2
        )
        assert record.workers == 2

    def test_cli_workers_flag(self, tmp_path, capsys):
        graph = gnp_random_graph(60, 0.3, seed=8)
        path = tmp_path / "g.edges"
        write_edge_list(graph, path)
        sizes = {}
        for workers in ("1", "2"):
            code = cli_main([
                "solve", str(path), "-k", "2", "--backend", "bitset", "--workers", workers,
            ])
            assert code == 0
            out = capsys.readouterr().out
            assert "|C|=" in out
            sizes[workers] = out.split("|C|=")[1].split(" ")[0]
        assert sizes["1"] == sizes["2"]

    def test_workers_config_survives_variant_replace(self):
        config = replace(SolverConfig(), workers=3)
        assert config.workers == 3
