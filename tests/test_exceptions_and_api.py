"""Tests for the exception hierarchy and the public package surface."""

from __future__ import annotations

import pytest

import repro
from repro.exceptions import (
    BudgetExceededError,
    EdgeNotFoundError,
    GraphError,
    GraphFormatError,
    InvalidParameterError,
    ReproError,
    SelfLoopError,
    SolverError,
    VertexNotFoundError,
)


class TestHierarchy:
    def test_all_derive_from_repro_error(self):
        for exc in (
            GraphError,
            VertexNotFoundError,
            EdgeNotFoundError,
            SelfLoopError,
            GraphFormatError,
            InvalidParameterError,
            SolverError,
            BudgetExceededError,
        ):
            assert issubclass(exc, ReproError)

    def test_lookup_errors_are_key_errors(self):
        assert issubclass(VertexNotFoundError, KeyError)
        assert issubclass(EdgeNotFoundError, KeyError)

    def test_value_style_errors_are_value_errors(self):
        assert issubclass(SelfLoopError, ValueError)
        assert issubclass(InvalidParameterError, ValueError)
        assert issubclass(GraphFormatError, ValueError)

    def test_messages_carry_context(self):
        err = VertexNotFoundError("v42")
        assert "v42" in str(err)
        assert err.vertex == "v42"
        edge_err = EdgeNotFoundError(1, 2)
        assert edge_err.u == 1 and edge_err.v == 2
        budget = BudgetExceededError("time limit exceeded")
        assert budget.reason == "time limit exceeded"


class TestPublicAPI:
    def test_version_string(self):
        assert isinstance(repro.__version__, str)
        assert repro.__version__.count(".") == 2

    def test_all_exports_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), f"missing export {name}"

    def test_catching_with_base_class(self):
        g = repro.Graph()
        with pytest.raises(ReproError):
            g.remove_vertex("missing")
        with pytest.raises(ReproError):
            repro.find_maximum_defective_clique(g, -1)
