"""Tests for text-table rendering, SolveResult/SearchStats helpers and the config module."""

from __future__ import annotations

import pytest

from repro.bench.reporting import format_float, format_solved_table, format_table
from repro.core import SearchStats, SolveResult, SolverConfig, variant_config
from repro.exceptions import InvalidParameterError


class TestFormatting:
    def test_format_float(self):
        assert format_float(1.5) == "1.5"
        assert format_float(2.0) == "2"
        assert format_float(0.1234, digits=2) == "0.12"
        assert format_float(0.0) == "0"

    def test_format_table_alignment(self):
        text = format_table(["name", "value"], [["a", 1], ["longer", 2.5]], title="Demo")
        lines = text.splitlines()
        assert lines[0] == "Demo"
        assert "name" in lines[2]
        assert "longer" in lines[-1]
        # all rows have the same rendered width
        assert len(set(len(line) for line in lines[2:4])) >= 1

    def test_format_solved_table(self):
        solved = {"kDC": {1: 10, 3: 8}, "KDBB": {1: 9, 3: 5}}
        text = format_solved_table(solved, [1, 3], total_instances=12, title="Solved")
        assert "kDC" in text and "KDBB" in text
        assert "k=1" in text and "k=3" in text
        assert "12" in text


class TestSearchStats:
    def test_count_reduction(self):
        stats = SearchStats()
        stats.count_reduction("RR1", 3)
        stats.count_reduction("RR1")
        stats.count_reduction("RR5", 0)
        assert stats.reductions == {"RR1": 4}

    def test_as_dict_includes_reductions(self):
        stats = SearchStats()
        stats.count_reduction("RR3", 2)
        data = stats.as_dict()
        assert data["removed_RR3"] == 2
        assert "nodes" in data


class TestSolveResult:
    def test_size_synced_with_clique(self):
        result = SolveResult(clique=[1, 2, 3], size=99, k=1, optimal=True, algorithm="kDC")
        assert result.size == 3
        assert result.vertices == [1, 2, 3]

    def test_summary_mentions_budget_state(self):
        result = SolveResult(clique=[1], size=1, k=0, optimal=False, algorithm="kDC")
        assert "budget-limited" in result.summary()


class TestSolverConfig:
    def test_defaults_are_full_kdc(self):
        config = SolverConfig()
        assert config.use_ub1 and config.use_rr3 and config.use_rr6
        assert config.initial_heuristic == "degen-opt"
        assert config.uses_practical_techniques

    def test_variant_overrides(self):
        assert variant_config("kDC/UB1").use_ub1 is False
        assert variant_config("kDC/RR3&4").use_rr3 is False
        assert variant_config("kDC/RR3&4").use_rr4 is False
        degen_variant = variant_config("kDC-Degen")
        assert degen_variant.initial_heuristic == "degen"
        assert degen_variant.use_rr6 is False

    def test_budgets_passed_through(self):
        config = variant_config("kDC", time_limit=7.0, node_limit=11)
        assert config.time_limit == 7.0
        assert config.node_limit == 11

    def test_invalid_variant(self):
        with pytest.raises(InvalidParameterError):
            variant_config("unknown")
