"""Tests for the branching-factor analysis (γ_k and σ_k)."""

from __future__ import annotations

import pytest

from repro.core import (
    PAPER_GAMMA_VALUES,
    characteristic_polynomial,
    complexity_comparison,
    gamma,
    sigma,
)
from repro.exceptions import InvalidParameterError


class TestGamma:
    def test_values_match_paper(self):
        """Lemma 3.4 quotes γ_0..γ_5 to three decimals.

        The quoted values are rounded (γ_0 is the golden ratio 1.61803...,
        printed as 1.619 in the paper), so the comparison allows a 2e-3 slack.
        """
        for k, expected in PAPER_GAMMA_VALUES.items():
            assert gamma(k) == pytest.approx(expected, abs=2e-3)

    def test_gamma_is_a_root(self):
        for k in range(0, 12):
            assert characteristic_polynomial(gamma(k), k) == pytest.approx(0.0, abs=1e-8)

    def test_gamma_strictly_between_1_and_2(self):
        for k in range(0, 20):
            assert 1.0 < gamma(k) < 2.0

    def test_gamma_monotone_increasing(self):
        values = [gamma(k) for k in range(0, 15)]
        assert all(a < b for a, b in zip(values, values[1:]))

    def test_gamma_approaches_2(self):
        assert gamma(40) > 1.999

    def test_negative_k_rejected(self):
        with pytest.raises(InvalidParameterError):
            gamma(-1)
        with pytest.raises(InvalidParameterError):
            sigma(-1)


class TestSigma:
    def test_sigma_equals_gamma_2k(self):
        """The paper's observation σ_k = γ_{2k}."""
        for k in range(0, 8):
            assert sigma(k) == pytest.approx(gamma(2 * k), abs=1e-10)

    def test_kdc_bound_beats_madec_bound(self):
        """γ_k < σ_k for every k >= 1 (the headline complexity improvement)."""
        for k in range(1, 10):
            assert gamma(k) < sigma(k)

    def test_k0_bounds_coincide(self):
        assert sigma(0) == pytest.approx(gamma(0))


class TestComparison:
    def test_comparison_rows(self):
        rows = complexity_comparison([1, 3, 5])
        assert [row.k for row in rows] == [1, 3, 5]
        for row in rows:
            assert row.gamma_k < row.sigma_k
            assert row.base_ratio < 1.0
            assert row.speedup_n100 > 1.0

    def test_empty_comparison(self):
        assert complexity_comparison([]) == []
