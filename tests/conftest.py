"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.graphs import (
    Graph,
    complete_graph,
    cycle_graph,
    figure1_graph,
    figure2_graph,
    figure4_graph,
    figure5_graph,
    figure6_graph,
    gnp_random_graph,
    path_graph,
    star_graph,
)


@pytest.fixture
def triangle() -> Graph:
    """The complete graph on three vertices."""
    return complete_graph(3)


@pytest.fixture
def square() -> Graph:
    """The 4-cycle (misses both diagonals)."""
    return cycle_graph(4)


@pytest.fixture
def small_path() -> Graph:
    """A path on five vertices."""
    return path_graph(5)


@pytest.fixture
def small_star() -> Graph:
    """A star with six leaves."""
    return star_graph(6)


@pytest.fixture
def fig1() -> Graph:
    return figure1_graph()


@pytest.fixture
def fig2() -> Graph:
    return figure2_graph()


@pytest.fixture
def fig4() -> Graph:
    return figure4_graph()


@pytest.fixture
def fig5() -> Graph:
    return figure5_graph()


@pytest.fixture
def fig6() -> Graph:
    return figure6_graph()


@pytest.fixture
def random_graph_factory():
    """Factory for seeded G(n, p) graphs, so tests stay deterministic."""

    def build(n: int, p: float, seed: int = 0) -> Graph:
        return gnp_random_graph(n, p, seed=seed)

    return build
