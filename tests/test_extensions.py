"""Tests for the Section 6 extensions: enumeration, top-r, diversified top-r."""

from __future__ import annotations

import pytest

from repro.baselines import enumerate_defective_cliques
from repro.core import is_k_defective_clique, is_maximal_k_defective_clique
from repro.exceptions import InvalidParameterError
from repro.extensions import (
    count_maximal_defective_cliques,
    coverage,
    enumerate_maximal_defective_cliques,
    top_r_diversified_defective_cliques,
    top_r_maximal_defective_cliques,
)
from repro.graphs import Graph, complete_graph, cycle_graph, gnp_random_graph, star_graph


def _maximal_reference(graph, k):
    """All maximal k-defective cliques via the brute-force enumerator."""
    all_cliques = [frozenset(c) for c in enumerate_defective_cliques(graph, k)]
    as_sets = set(all_cliques)
    maximal = set()
    for c in as_sets:
        if not any(c < other for other in as_sets):
            maximal.add(c)
    return maximal


class TestEnumeration:
    def test_empty_graph(self):
        assert list(enumerate_maximal_defective_cliques(Graph(), 1)) == []

    def test_complete_graph_single_maximal(self):
        g = complete_graph(4)
        cliques = list(enumerate_maximal_defective_cliques(g, 0))
        assert len(cliques) == 1
        assert set(cliques[0]) == {0, 1, 2, 3}

    def test_every_result_is_maximal(self):
        g = gnp_random_graph(10, 0.4, seed=3)
        for k in (0, 1, 2):
            for clique in enumerate_maximal_defective_cliques(g, k):
                assert is_maximal_k_defective_clique(g, clique, k)

    def test_no_duplicates(self):
        g = gnp_random_graph(10, 0.5, seed=4)
        cliques = [frozenset(c) for c in enumerate_maximal_defective_cliques(g, 1)]
        assert len(cliques) == len(set(cliques))

    @pytest.mark.parametrize("seed", range(5))
    @pytest.mark.parametrize("k", [0, 1, 2])
    def test_matches_brute_force_reference(self, seed, k):
        g = gnp_random_graph(8, 0.45, seed=seed)
        expected = _maximal_reference(g, k)
        found = {frozenset(c) for c in enumerate_maximal_defective_cliques(g, k)}
        assert found == expected

    def test_min_size_filter(self):
        g = cycle_graph(6)
        large = list(enumerate_maximal_defective_cliques(g, 1, min_size=3))
        assert all(len(c) >= 3 for c in large)

    def test_limit(self):
        g = gnp_random_graph(10, 0.5, seed=7)
        limited = list(enumerate_maximal_defective_cliques(g, 1, limit=3))
        assert len(limited) <= 3

    def test_count_helper(self):
        g = complete_graph(3)
        assert count_maximal_defective_cliques(g, 0) == 1


class TestTopR:
    def test_top_r_sizes_non_increasing(self):
        g = gnp_random_graph(12, 0.4, seed=5)
        cliques = top_r_maximal_defective_cliques(g, 1, r=4)
        sizes = [len(c) for c in cliques]
        assert sizes == sorted(sizes, reverse=True)

    def test_top_1_is_the_maximum(self):
        from repro.core import find_maximum_defective_clique

        g = gnp_random_graph(12, 0.4, seed=6)
        for k in (0, 1, 2):
            top = top_r_maximal_defective_cliques(g, k, r=1)
            assert len(top) == 1
            assert len(top[0]) == find_maximum_defective_clique(g, k).size

    def test_results_are_maximal(self):
        g = gnp_random_graph(10, 0.4, seed=8)
        for clique in top_r_maximal_defective_cliques(g, 1, r=3):
            assert is_maximal_k_defective_clique(g, clique, 1)

    def test_fewer_than_r_available(self):
        g = complete_graph(4)
        assert len(top_r_maximal_defective_cliques(g, 0, r=5)) == 1

    def test_invalid_r(self):
        with pytest.raises(InvalidParameterError):
            top_r_maximal_defective_cliques(complete_graph(3), 1, r=0)


class TestDiversified:
    def test_cliques_are_disjoint(self):
        g = gnp_random_graph(25, 0.3, seed=9)
        cliques = top_r_diversified_defective_cliques(g, 1, r=3)
        seen = set()
        for clique in cliques:
            assert is_k_defective_clique(g, clique, 1)
            assert not (set(clique) & seen)
            seen.update(clique)

    def test_first_clique_is_the_maximum(self):
        from repro.core import find_maximum_defective_clique

        g = gnp_random_graph(20, 0.35, seed=10)
        cliques = top_r_diversified_defective_cliques(g, 2, r=2)
        assert len(cliques[0]) == find_maximum_defective_clique(g, 2).size

    def test_coverage_helper(self):
        assert coverage([[1, 2], [2, 3]]) == {1, 2, 3}
        assert coverage([]) == set()

    def test_stops_when_graph_exhausted(self):
        g = complete_graph(4)
        cliques = top_r_diversified_defective_cliques(g, 0, r=10)
        assert len(cliques) == 1
        assert coverage(cliques) == {0, 1, 2, 3}

    def test_star_graph_rounds(self):
        g = star_graph(4)
        cliques = top_r_diversified_defective_cliques(g, 0, r=10)
        # first round takes {centre, leaf}; remaining leaves are isolated singletons
        assert len(cliques[0]) == 2
        assert sum(len(c) for c in cliques) == 5

    def test_invalid_r(self):
        with pytest.raises(InvalidParameterError):
            top_r_diversified_defective_cliques(complete_graph(3), 1, r=0)
