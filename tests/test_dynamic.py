"""Dynamic-graph subsystem: deltas, temporal replay, incremental exactness.

The load-bearing suite here is the differential block: after *every* step
of a seeded random delta sequence — including deltas engineered to shrink
the optimum — the :class:`~repro.dynamic.incremental.IncrementalSolver`
must agree exactly with a from-scratch solve of the same snapshot, across
backend × engine × workers cells.
"""

from __future__ import annotations

import random

import pytest

from repro.core import KDCSolver, SolverConfig, is_k_defective_clique
from repro.dynamic import (
    EdgeDelta,
    IncrementalSolver,
    TemporalGraph,
    affected_anchors,
    apply_delta,
)
from repro.exceptions import (
    EdgeNotFoundError,
    InvalidParameterError,
    SelfLoopError,
)
from repro.graphs import Graph, gnp_random_graph
from repro.graphs.degeneracy import degeneracy_ordering


# --------------------------------------------------------------------------- #
# EdgeDelta
# --------------------------------------------------------------------------- #
class TestEdgeDelta:
    def test_canonicalization_orders_and_dedupes(self):
        delta = EdgeDelta(adds=[(2, 1), (1, 2), (3, 0)], removes=[(5, 4)])
        assert delta.adds == ((3, 0), (1, 2)) or delta.adds == ((0, 3), (1, 2))
        # endpoint order within an edge is deterministic, duplicates dropped
        assert len(delta.adds) == 2
        assert delta.removes == ((4, 5),)
        assert len(delta) == 3
        assert delta == EdgeDelta(adds=[(1, 2), (0, 3)], removes=[(4, 5)])

    def test_vertices(self):
        delta = EdgeDelta(adds=[(1, 2)], removes=[(3, 4)])
        assert delta.vertices() == {1, 2, 3, 4}

    def test_self_loop_rejected(self):
        with pytest.raises(SelfLoopError):
            EdgeDelta(adds=[(1, 1)])

    def test_empty_delta_rejected(self):
        with pytest.raises(InvalidParameterError):
            EdgeDelta()

    def test_add_remove_overlap_rejected(self):
        with pytest.raises(InvalidParameterError):
            EdgeDelta(adds=[(1, 2)], removes=[(2, 1)])

    def test_malformed_edge_rejected(self):
        with pytest.raises(InvalidParameterError):
            EdgeDelta(adds=[(1, 2, 3)])

    def test_payload_round_trip(self):
        delta = EdgeDelta(adds=[(1, 2), (0, 5)], removes=[(3, 4)])
        assert EdgeDelta.from_payload(delta.as_payload()) == delta

    def test_relabel_raises_on_unknown_vertex(self):
        delta = EdgeDelta(adds=[(1, 99)])
        with pytest.raises(KeyError):
            delta.relabel({1: 0, 2: 1})


class TestApplyDelta:
    def test_builds_successor_without_mutating_input(self):
        graph = Graph(edges=[(0, 1), (1, 2)])
        successor, digest = apply_delta(
            graph, EdgeDelta(adds=[(0, 2)], removes=[(1, 2)])
        )
        assert graph.has_edge(1, 2) and not graph.has_edge(0, 2)
        assert successor.has_edge(0, 2) and not successor.has_edge(1, 2)
        assert digest == successor.content_digest()
        assert digest != graph.content_digest()

    def test_adding_existing_edge_rejected(self):
        graph = Graph(edges=[(0, 1)])
        with pytest.raises(InvalidParameterError):
            apply_delta(graph, EdgeDelta(adds=[(0, 1)]))

    def test_removing_absent_edge_rejected(self):
        graph = Graph(edges=[(0, 1)])
        with pytest.raises(EdgeNotFoundError):
            apply_delta(graph, EdgeDelta(removes=[(0, 2)]))

    def test_adds_may_grow_the_vertex_set(self):
        graph = Graph(edges=[(0, 1)])
        successor, _ = apply_delta(graph, EdgeDelta(adds=[(1, 7)]))
        assert 7 in successor.vertex_set()


# --------------------------------------------------------------------------- #
# affected_anchors
# --------------------------------------------------------------------------- #
class TestAffectedAnchors:
    def test_removal_only_delta_affects_nothing(self):
        graph = gnp_random_graph(30, 0.2, seed=1)
        edge = next(iter(graph.iter_edges()))
        delta = EdgeDelta(removes=[edge])
        successor, _ = apply_delta(graph, delta)
        position = degeneracy_ordering(successor).position
        assert affected_anchors(successor, position, delta, 1) == set()

    def test_anchors_are_in_both_2_balls_and_rank_bounded(self):
        graph = gnp_random_graph(60, 0.08, seed=3)
        u, v = next(
            (a, b)
            for a in sorted(graph.vertex_set())
            for b in sorted(graph.vertex_set())
            if a < b and not graph.has_edge(a, b)
        )
        delta = EdgeDelta(adds=[(u, v)])
        successor, _ = apply_delta(graph, delta)
        position = degeneracy_ordering(successor).position
        anchors = affected_anchors(successor, position, delta, 1)
        cutoff = min(position[u], position[v])

        def ball2(x):
            ball = {x} | set(successor.neighbors(x))
            for w in tuple(ball - {x}):
                ball |= set(successor.neighbors(w))
            return ball

        expected = {
            w for w in ball2(u) & ball2(v) if position[w] <= cutoff
        }
        assert anchors == expected
        assert anchors  # at least the added edge's lower endpoint region

    def test_negative_k_rejected(self):
        graph = Graph(edges=[(0, 1)])
        delta = EdgeDelta(adds=[(0, 2)])
        successor, _ = apply_delta(graph, delta)
        with pytest.raises(InvalidParameterError):
            affected_anchors(successor, {0: 0, 1: 1, 2: 2}, delta, -1)


# --------------------------------------------------------------------------- #
# TemporalGraph
# --------------------------------------------------------------------------- #
class TestTemporalGraph:
    def test_steps_replay_and_digest(self):
        base = Graph(edges=[(0, 1), (1, 2)])
        temporal = TemporalGraph(
            base,
            [(1, EdgeDelta(adds=[(0, 2)])), (2, EdgeDelta(removes=[(1, 2)]))],
        )
        steps = list(temporal.steps())
        assert [s.timestamp for s in steps] == [1, 2]
        assert steps[0].graph.has_edge(0, 2)
        assert not steps[1].graph.has_edge(1, 2)
        assert steps[1].digest == steps[1].graph.content_digest()
        # base is untouched and copies are independent
        assert not base.has_edge(0, 2)
        assert temporal.snapshot_at(2).num_edges == steps[1].graph.num_edges

    def test_non_increasing_timestamps_rejected(self):
        base = Graph(edges=[(0, 1)])
        with pytest.raises(InvalidParameterError):
            TemporalGraph(
                base,
                [(2, EdgeDelta(adds=[(0, 2)])), (2, EdgeDelta(adds=[(1, 2)]))],
            )

    def test_from_events_batches_same_timestamp(self):
        temporal = TemporalGraph.from_events(
            [
                (1, "add", 0, 1),
                (1, "+", 1, 2),
                (2, "add", 0, 2),
                (3, "remove", 1, 2),
            ]
        )
        assert len(temporal) == 3
        assert temporal.timestamps() == (1, 2, 3)
        final = list(temporal.steps())[-1].graph
        assert final.has_edge(0, 1) and final.has_edge(0, 2)
        assert not final.has_edge(1, 2)

    def test_from_events_unknown_op_rejected(self):
        with pytest.raises(InvalidParameterError):
            TemporalGraph.from_events([(1, "frobnicate", 0, 1)])

    def test_inconsistent_step_raises_at_replay(self):
        base = Graph(edges=[(0, 1)])
        temporal = TemporalGraph(base, [(1, EdgeDelta(removes=[(5, 6)]))])
        with pytest.raises(EdgeNotFoundError):
            list(temporal.steps())

    def test_snapshot_at_unknown_timestamp(self):
        base = Graph(edges=[(0, 1)])
        temporal = TemporalGraph(base, [(1, EdgeDelta(adds=[(0, 2)]))])
        with pytest.raises(InvalidParameterError):
            temporal.snapshot_at(99)


# --------------------------------------------------------------------------- #
# IncrementalSolver
# --------------------------------------------------------------------------- #
def random_delta(graph, rng, n_adds, n_removes):
    """A valid delta for ``graph``: ``n_adds`` absent edges + ``n_removes`` present."""
    vertices = sorted(graph.vertex_set())
    adds = set()
    while len(adds) < n_adds:
        u, v = rng.sample(vertices, 2)
        edge = (min(u, v), max(u, v))
        if not graph.has_edge(u, v):
            adds.add(edge)
    edges = [tuple(sorted(e)) for e in graph.iter_edges()]
    removes = set(rng.sample(edges, min(n_removes, len(edges)))) - adds
    return EdgeDelta(adds=sorted(adds), removes=sorted(removes))


def optimum_shrinking_delta(graph, clique):
    """Remove every edge inside the current optimum witness — the optimum
    must drop (or at least the witness must break)."""
    removes = [
        (u, v)
        for i, u in enumerate(clique)
        for v in clique[i + 1:]
        if graph.has_edge(u, v)
    ]
    assert removes, "witness had no internal edges to remove"
    return EdgeDelta(removes=removes)


CELLS = [
    ("set", "copy", 1),
    ("bitset", "copy", 1),
    ("bitset", "trail", 1),
    ("bitset", "trail", 2),
]


class TestIncrementalSolverDifferential:
    @pytest.mark.parametrize("backend,engine,workers", CELLS)
    def test_matches_scratch_after_every_step(self, backend, engine, workers):
        """The acceptance invariant, across backend/engine/workers cells."""
        config = SolverConfig(
            backend=backend, engine=engine, workers=workers, decompose_threshold=1
        )
        rng = random.Random(hash((backend, engine, workers)) & 0xFFFF)
        graph = gnp_random_graph(45, 0.15, seed=11)
        k = 1

        tracker = IncrementalSolver(config)
        scratch = KDCSolver(config)
        first = tracker.solve(graph, k)
        assert first.optimal

        incremental_steps = 0
        for step in range(6):
            delta = random_delta(graph, rng, n_adds=2, n_removes=1)
            report = tracker.apply(delta)
            graph, digest = apply_delta(graph, delta)
            assert report.digest == digest
            reference = scratch.solve(graph, k)
            assert report.result.optimal and reference.optimal
            assert report.result.size == reference.size, f"step {step}"
            assert is_k_defective_clique(graph, report.result.clique, k)
            incremental_steps += bool(report.incremental)

        # the point of the subsystem: at least some steps avoided a full solve
        assert incremental_steps > 0

        # now an optimum-shrinking delta: break the current witness
        delta = optimum_shrinking_delta(graph, tracker.last_result.clique)
        report = tracker.apply(delta)
        graph, _ = apply_delta(graph, delta)
        reference = scratch.solve(graph, k)
        assert report.result.optimal and report.result.size == reference.size
        assert is_k_defective_clique(graph, report.result.clique, k)

    def test_witness_breaking_removal_falls_back(self):
        graph = gnp_random_graph(40, 0.25, seed=5)
        tracker = IncrementalSolver(SolverConfig())
        result = tracker.solve(graph, 1)
        delta = optimum_shrinking_delta(graph, result.clique)
        report = tracker.apply(delta)
        assert not report.incremental
        assert report.fallback_reason in ("witness-broken", "incumbent-below-k+1")
        successor, _ = apply_delta(graph, delta)
        reference = KDCSolver(SolverConfig()).solve(successor, 1)
        assert report.result.size == reference.size

    def test_new_vertex_falls_back(self):
        graph = gnp_random_graph(30, 0.2, seed=6)
        tracker = IncrementalSolver(SolverConfig())
        tracker.solve(graph, 1)
        report = tracker.apply(EdgeDelta(adds=[(0, 1000)]))
        assert not report.incremental
        assert report.fallback_reason == "new-vertex"
        assert 1000 in tracker.graph().vertex_set()
        assert report.result.optimal

    def test_zero_affected_fraction_still_exact(self):
        """max_affected_fraction=0 forces the fallback on every add — the
        guard must never cost exactness, only speed."""
        graph = gnp_random_graph(35, 0.2, seed=7)
        tracker = IncrementalSolver(SolverConfig(), max_affected_fraction=0.0)
        tracker.solve(graph, 1)
        rng = random.Random(2)
        delta = random_delta(graph, rng, n_adds=1, n_removes=0)
        report = tracker.apply(delta)
        assert not report.incremental
        assert report.fallback_reason.startswith("affected-")
        successor, _ = apply_delta(graph, delta)
        assert report.result.size == KDCSolver(SolverConfig()).solve(successor, 1).size

    def test_removal_only_delta_is_pure_reuse(self):
        """A removal that spares the witness re-solves zero anchors."""
        graph = gnp_random_graph(50, 0.1, seed=9)
        tracker = IncrementalSolver(SolverConfig())
        result = tracker.solve(graph, 1)
        witness = set(result.clique)
        edge = next(
            e for e in graph.iter_edges() if not set(e) <= witness
        )
        report = tracker.apply(EdgeDelta(removes=[edge]))
        if report.incremental:  # witness might graze the removed edge
            assert report.anchors_resolved == 0
            assert report.anchors_reused == report.anchors_total
        successor, _ = apply_delta(graph, EdgeDelta(removes=[edge]))
        assert report.result.size == KDCSolver(SolverConfig()).solve(successor, 1).size

    def test_apply_without_solve_rejected(self):
        tracker = IncrementalSolver(SolverConfig())
        with pytest.raises(InvalidParameterError):
            tracker.apply(EdgeDelta(adds=[(0, 1)]))

    def test_seed_adopts_existing_result(self):
        graph = gnp_random_graph(30, 0.2, seed=4)
        result = KDCSolver(SolverConfig()).solve(graph, 1)
        tracker = IncrementalSolver(SolverConfig())
        tracker.seed(graph, 1, result)
        assert tracker.digest == graph.content_digest()
        rng = random.Random(3)
        delta = random_delta(graph, rng, n_adds=1, n_removes=0)
        report = tracker.apply(delta)
        successor, _ = apply_delta(graph, delta)
        assert report.result.size == KDCSolver(SolverConfig()).solve(successor, 1).size

    def test_seed_rejects_non_optimal(self):
        graph = gnp_random_graph(20, 0.2, seed=4)
        result = KDCSolver(SolverConfig()).solve(graph, 1)
        result.optimal = False
        tracker = IncrementalSolver(SolverConfig())
        with pytest.raises(InvalidParameterError):
            tracker.seed(graph, 1, result)

    def test_invalid_max_affected_fraction(self):
        with pytest.raises(InvalidParameterError):
            IncrementalSolver(SolverConfig(), max_affected_fraction=1.5)
