"""Tests for the baseline solvers (KDBB-style, MADEC+-style, max clique, brute force)."""

from __future__ import annotations

import pytest

from repro.baselines import (
    KDBBSolver,
    MADECSolver,
    MaxCliqueSolver,
    brute_force_maximum_defective_clique,
    brute_force_maximum_size,
    enumerate_defective_cliques,
    maximum_clique,
    maximum_clique_size,
)
from repro.core import is_k_defective_clique
from repro.exceptions import InvalidParameterError
from repro.graphs import Graph, complete_graph, cycle_graph, gnp_random_graph, star_graph


class TestBruteForce:
    def test_empty_graph(self):
        assert brute_force_maximum_defective_clique(Graph(), 1) == []

    def test_complete_graph(self):
        assert brute_force_maximum_size(complete_graph(5), 0) == 5

    def test_cycle(self):
        assert brute_force_maximum_size(cycle_graph(5), 0) == 2
        assert brute_force_maximum_size(cycle_graph(5), 1) == 3

    def test_rejects_large_graphs(self):
        with pytest.raises(InvalidParameterError):
            brute_force_maximum_defective_clique(gnp_random_graph(40, 0.1, seed=1), 1)

    def test_result_is_valid(self):
        g = gnp_random_graph(10, 0.5, seed=2)
        for k in (0, 2):
            solution = brute_force_maximum_defective_clique(g, k)
            assert is_k_defective_clique(g, solution, k)

    def test_enumeration(self):
        g = complete_graph(3)
        cliques = list(enumerate_defective_cliques(g, 0, min_size=2))
        # 3 edges + 1 triangle
        assert len(cliques) == 4

    def test_enumeration_size_limit(self):
        with pytest.raises(InvalidParameterError):
            list(enumerate_defective_cliques(gnp_random_graph(30, 0.1, seed=1), 0))


class TestMaxClique:
    def test_known_graphs(self):
        assert maximum_clique_size(complete_graph(7)) == 7
        assert maximum_clique_size(cycle_graph(5)) == 2
        assert maximum_clique_size(cycle_graph(3)) == 3
        assert maximum_clique_size(star_graph(5)) == 2
        assert maximum_clique_size(Graph()) == 0

    def test_clique_is_actually_a_clique(self):
        g = gnp_random_graph(30, 0.4, seed=3)
        clique = maximum_clique(g)
        assert g.is_clique(clique)

    def test_against_networkx(self):
        networkx = pytest.importorskip("networkx")
        for seed in range(6):
            g = gnp_random_graph(25, 0.35, seed=seed)
            nx_graph = networkx.Graph(g.edges())
            nx_graph.add_nodes_from(g.vertices())
            expected = max(
                (len(c) for c in networkx.find_cliques(nx_graph)), default=0
            )
            assert maximum_clique_size(g) == expected

    def test_matches_brute_force_k0(self):
        for seed in range(6):
            g = gnp_random_graph(11, 0.5, seed=seed)
            assert maximum_clique_size(g) == brute_force_maximum_size(g, 0)

    def test_figure2(self, fig2):
        result = MaxCliqueSolver().solve(fig2)
        assert result.size == 5
        assert result.algorithm == "MaxClique"


class TestKDBBAndMADEC:
    @pytest.mark.parametrize("solver_cls", [KDBBSolver, MADECSolver])
    def test_matches_brute_force(self, solver_cls):
        for seed in range(10):
            g = gnp_random_graph(11, 0.45, seed=seed)
            k = seed % 4
            expected = brute_force_maximum_size(g, k)
            result = solver_cls().solve(g, k)
            assert result.optimal
            assert result.size == expected
            assert is_k_defective_clique(g, result.clique, k)

    @pytest.mark.parametrize("solver_cls,name", [(KDBBSolver, "KDBB"), (MADECSolver, "MADEC")])
    def test_algorithm_names(self, solver_cls, name):
        result = solver_cls().solve(complete_graph(4), 1)
        assert result.algorithm == name

    @pytest.mark.parametrize("solver_cls", [KDBBSolver, MADECSolver])
    def test_empty_graph(self, solver_cls):
        result = solver_cls().solve(Graph(), 1)
        assert result.size == 0 and result.optimal

    @pytest.mark.parametrize("solver_cls", [KDBBSolver, MADECSolver])
    def test_budget_interruption(self, solver_cls):
        g = gnp_random_graph(80, 0.35, seed=9)
        result = solver_cls(node_limit=2).solve(g, 3)
        assert is_k_defective_clique(g, result.clique, 3)

    def test_kdc_explores_no_more_nodes_than_madec(self):
        """The pruning machinery of kDC should not lose to MADEC's on community-like graphs."""
        from repro.core import find_maximum_defective_clique
        from repro.graphs import social_network_graph

        g = social_network_graph(60, num_communities=4, intra_p=0.5, seed=2)
        k = 3
        kdc_nodes = find_maximum_defective_clique(g, k).stats.nodes
        madec_nodes = MADECSolver().solve(g, k).stats.nodes
        assert kdc_nodes <= madec_nodes
