"""Chaos suite for the dynamic-graph subsystem.

Scripts exact failures through :class:`repro.testing.chaos.FaultInjector`
at the two dynamic fault points and asserts the crash-safety contract:

* ``dynamic.apply`` — a crash mid-mutation publishes *nothing*: the store
  keeps serving the predecessor digest, no torn state lands on disk, and a
  restart sees only the predecessor;
* ``dynamic.resolve`` — a crash in the incremental route degrades to a
  correct full solve (the route is an accelerator, never a correctness
  dependency);
* ``checkpoint.append`` — a killed incremental re-solve resumes from its
  carry-over checkpoint: the retry skips every journaled anchor instead of
  restarting, and still answers exactly.
"""

from __future__ import annotations

import pytest

from repro.core import KDCSolver, SolverConfig
from repro.dynamic import EdgeDelta, IncrementalSolver, apply_delta
from repro.graphs import gnp_random_graph
from repro.service import Client, GraphStore, ServicePersistence, SolverService
from repro.testing import FaultInjector, InjectedFaultError
from repro.testing import chaos

CONFIG = SolverConfig(backend="bitset", decompose_threshold=1, workers=1)
K = 1


@pytest.fixture(autouse=True)
def _no_leftover_faults():
    chaos.uninstall()
    yield
    chaos.uninstall()


@pytest.fixture
def graph():
    return gnp_random_graph(40, 0.15, seed=12)


@pytest.fixture
def state_dir(tmp_path):
    return str(tmp_path / "state")


def absent_edges(graph, count):
    out = []
    for u in sorted(graph.vertex_set()):
        for v in sorted(graph.vertex_set()):
            if u < v and not graph.has_edge(u, v):
                out.append((u, v))
                if len(out) == count:
                    return out
    raise AssertionError("graph too dense for the requested delta")


class TestDynamicApplyFault:
    def test_crash_mid_mutation_leaves_store_serving_predecessor(
        self, graph, state_dir
    ):
        store = GraphStore(persistence=ServicePersistence(state_dir))
        digest = store.add(graph, name="g")
        delta = EdgeDelta(adds=absent_edges(graph, 1))

        with FaultInjector().add("dynamic.apply", error="crash mid-mutation"):
            with pytest.raises(InjectedFaultError):
                store.apply_delta(digest, delta, name="g")

        # nothing observable happened: predecessor served, no links, no count
        assert store.resolve("g") == digest
        assert store.get(digest).content_digest() == digest
        assert store.stats()["mutations"] == 0
        _, succ_digest = apply_delta(graph, delta)
        assert succ_digest not in store
        assert store.parent_digest(succ_digest) is None
        store._persistence.close()

        # ... and nothing landed on disk: a restart serves the predecessor only
        restored = GraphStore(persistence=ServicePersistence(state_dir))
        assert restored.resolve("g") == digest
        assert succ_digest not in restored
        assert restored.stats()["restored_deltas"] == 0

        # the same delta applies cleanly once the fault is gone
        assert restored.apply_delta(digest, delta, name="g") == succ_digest

    def test_service_answers_typed_error_and_stays_alive(self, graph):
        with SolverService(config=CONFIG) as service:
            client = Client(service=service)
            client.add_graph(graph, name="g")
            from repro.exceptions import ServiceError

            with FaultInjector().add("dynamic.apply", error="boom") as injector:
                with pytest.raises(ServiceError) as excinfo:
                    client.mutate("g", adds=absent_edges(graph, 1))
                assert "InjectedFaultError" in str(excinfo.value)
                assert [p for p, _ in injector.fired] == ["dynamic.apply"]

            # the connection and the service survive; the mutate now works
            assert client.ping()
            reply = client.mutate("g", adds=absent_edges(graph, 1))
            assert reply["ok"]


class TestDynamicResolveFault:
    def test_service_falls_back_to_full_solve(self, graph):
        with SolverService(config=CONFIG) as service:
            digest = service.store.add(graph)
            assert service.solve(digest, K).optimal
            delta = EdgeDelta(adds=absent_edges(graph, 1))
            child = service.mutate(digest, adds=delta.adds)["digest"]

            with FaultInjector().add("dynamic.resolve", error="boom") as injector:
                answer = service.solve(child, K)
                assert [p for p, _ in injector.fired] == ["dynamic.resolve"]

            successor, _ = apply_delta(graph, delta)
            reference = KDCSolver(CONFIG).solve(successor, K)
            assert answer.optimal and answer.size == reference.size
            stats = service.stats()
            assert stats["incremental_hits"] == 0  # the route never completed

    def test_incremental_solver_retry_after_fault_is_exact(self):
        # sparse enough that the single add stays under the affected-fraction
        # guard (the fault point fires only on the incremental route)
        graph = gnp_random_graph(120, 0.04, seed=5)
        tracker = IncrementalSolver(CONFIG, max_affected_fraction=1.0)
        tracker.solve(graph, K)
        delta = EdgeDelta(adds=absent_edges(graph, 1))

        with FaultInjector().add("dynamic.resolve", error="boom") as injector:
            with pytest.raises(InjectedFaultError):
                tracker.apply(delta)
            assert injector.fired

        # no state was committed: still tracking the predecessor
        assert tracker.digest == graph.content_digest()
        report = tracker.apply(delta)
        successor, succ_digest = apply_delta(graph, delta)
        assert report.digest == succ_digest
        assert report.result.size == KDCSolver(CONFIG).solve(successor, K).size


class TestCheckpointResume:
    def test_killed_incremental_resolve_resumes_from_checkpoint(
        self, tmp_path
    ):
        """Twin-solver resume: fault one mid-re-solve, retry, observe the
        journaled anchors restored instead of re-searched."""
        dense = gnp_random_graph(60, 0.25, seed=21)
        delta = EdgeDelta(adds=absent_edges(dense, 3))

        # the unfaulted twin tells us the affected/unaffected split
        twin = IncrementalSolver(CONFIG, max_affected_fraction=1.0)
        twin.solve(dense, K)
        twin_report = twin.apply(delta)
        assert twin_report.incremental, twin_report.fallback_reason
        assert twin_report.anchors_affected >= 2, (
            "resume scenario needs at least two affected anchors"
        )
        n_unaffected = twin_report.anchors_reused

        tracker = IncrementalSolver(
            CONFIG, max_affected_fraction=1.0, checkpoint_dir=str(tmp_path / "ckpt")
        )
        tracker.solve(dense, K)
        # the first affected anchor journals at count == n_unaffected (the
        # carried-over anchors are merged in memory, never journaled), so
        # this rule crashes the re-solve after exactly one affected anchor
        # became durable.
        injector = FaultInjector().add(
            "checkpoint.append", error="killed mid-re-solve",
            match={"count": n_unaffected + 1},
        )
        with injector:
            with pytest.raises(InjectedFaultError):
                tracker.apply(delta)
        assert [p for p, _ in injector.fired] == ["checkpoint.append"]
        assert tracker.digest == dense.content_digest()  # nothing committed

        # retry the same delta: resumes from the journal and answers exactly
        report = tracker.apply(delta)
        assert report.incremental
        assert report.digest == twin_report.digest
        assert report.result.size == twin_report.result.size
        restored = report.result.stats.subproblems_restored
        assert restored > n_unaffected, (
            f"expected the journaled affected anchor to be restored "
            f"(restored={restored}, unaffected={n_unaffected})"
        )

    def test_memory_carry_resumes_without_checkpoint_dir(self):
        """The in-memory carry keeps a failed apply's progress for a retry."""
        dense = gnp_random_graph(60, 0.25, seed=21)
        delta = EdgeDelta(adds=absent_edges(dense, 3))

        twin = IncrementalSolver(CONFIG, max_affected_fraction=1.0)
        twin.solve(dense, K)
        twin_report = twin.apply(delta)
        assert twin_report.incremental
        n_unaffected = twin_report.anchors_reused

        # no checkpoint_dir: the in-memory carry
        tracker = IncrementalSolver(CONFIG, max_affected_fraction=1.0)
        tracker.solve(dense, K)
        injector = FaultInjector().add(
            "checkpoint.append", error="boom", match={"count": n_unaffected + 1}
        )
        with injector:
            with pytest.raises(InjectedFaultError):
                tracker.apply(delta)
        assert injector.fired

        report = tracker.apply(delta)
        assert report.incremental
        assert report.result.size == twin_report.result.size
        assert report.result.stats.subproblems_restored > n_unaffected
