"""Tests for the bound-quality sampling study."""

from __future__ import annotations

from repro.analysis import BoundQualityReport, BoundSample, sample_bound_quality
from repro.graphs import complete_graph, gnp_random_graph, social_network_graph


class TestSampling:
    def test_samples_collected_on_random_graph(self):
        g = gnp_random_graph(40, 0.3, seed=5)
        report = sample_bound_quality(g, k=2, max_depth=6)
        assert isinstance(report, BoundQualityReport)
        assert report.samples
        assert all(isinstance(s, BoundSample) for s in report.samples)
        # depths strictly increase along the left spine
        depths = [s.depth for s in report.samples]
        assert depths == sorted(set(depths))

    def test_ub1_dominates_on_every_sample(self):
        for seed in range(4):
            g = social_network_graph(60, num_communities=4, intra_p=0.5, seed=seed)
            report = sample_bound_quality(g, k=3, max_depth=6)
            assert report.dominance_holds()
            assert report.mean_ub1_vs_eq2_gap >= 0.0
            assert report.mean_ub1_vs_ub3_gap >= 0.0

    def test_clique_yields_no_samples(self):
        # A complete graph is already a k-defective clique at the root, so the
        # spine terminates immediately.
        report = sample_bound_quality(complete_graph(8), k=1)
        assert report.samples == []
        assert report.mean_ub1_vs_eq2_gap == 0.0
        assert report.dominance_holds()

    def test_as_dict(self):
        g = gnp_random_graph(30, 0.4, seed=9)
        report = sample_bound_quality(g, k=2, max_depth=4)
        data = report.as_dict()
        assert set(data) == {"samples", "mean_ub1_vs_eq2_gap", "mean_ub1_vs_ub3_gap"}
        assert data["samples"] == float(len(report.samples))

    def test_max_depth_respected(self):
        g = gnp_random_graph(50, 0.3, seed=11)
        report = sample_bound_quality(g, k=3, max_depth=3)
        assert len(report.samples) <= 3

    def test_solution_grows_along_spine(self):
        g = gnp_random_graph(40, 0.35, seed=13)
        report = sample_bound_quality(g, k=2, max_depth=6)
        sizes = [s.solution_size for s in report.samples]
        assert all(b >= a for a, b in zip(sizes, sizes[1:]))
