"""Trail (undo-stack) engine tests: copy/trail lockstep and push/pop restoration.

Two properties pin the trail engine to the copy engine:

* **Lockstep** — with ``recolor_period=1`` the trail engine recolors at every
  node and runs every reduction sweep the copy engine runs, so the two
  engines must visit *identical DFS node sequences* (same ``(S, cand)``
  pair at every node, in the same order), the same node counts, and the
  same optima — on the plain kDC configuration, on kDC-t (Algorithm 1),
  and through the forced degeneracy decomposition.
* **Push/pop** — any sequence of trailed transitions followed by a rewind
  restores the :class:`BitsetSearchState` bit-for-bit, including nested
  marks, in both edge-tracking modes.

The default configuration (``recolor_period > 1``) legitimately visits a
different (still exact) tree; those cells are pinned on optima only here and
exhaustively in ``tests/test_differential.py``.
"""

from __future__ import annotations

import random
from dataclasses import replace

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    BitsetEngine,
    BitsetSearchState,
    KDCSolver,
    SearchStats,
    SolverConfig,
    variant_config,
)
from repro.core.bitset_state import bits_of, mask_of
from repro.graphs import gnp_random_graph


def _adjacency_bits(graph):
    relabeled, _, _ = graph.relabel()
    n = relabeled.num_vertices
    adj = [mask_of(relabeled.neighbors(v)) for v in range(n)]
    return adj, n


def _run_engine(adj, n, k, config, forced=None):
    """Run one engine over the whole instance, capturing its DFS trace."""
    stats = SearchStats()
    incumbent: list = []
    engine = BitsetEngine(config, stats, lambda: None, incumbent)
    engine.trace = []
    engine.run(adj, (1 << n) - 1, k, forced=forced)
    return engine.trace, stats, incumbent


def graphs(min_vertices=2, max_vertices=24):
    return st.builds(
        gnp_random_graph,
        st.integers(min_value=min_vertices, max_value=max_vertices),
        st.floats(min_value=0.05, max_value=0.9),
        seed=st.integers(min_value=0, max_value=10_000),
    )


class TestLockstep:
    @given(graphs(), st.integers(min_value=0, max_value=4))
    @settings(max_examples=40, deadline=None)
    def test_trail_matches_copy_dfs_kdc(self, g, k):
        """Full kDC: identical DFS sequences, node counts and optima at recolor_period=1."""
        adj, n = _adjacency_bits(g)
        copy_cfg = SolverConfig(backend="bitset", engine="copy")
        trail_cfg = SolverConfig(backend="bitset", engine="trail", recolor_period=1)
        copy_trace, copy_stats, copy_best = _run_engine(adj, n, k, copy_cfg)
        trail_trace, trail_stats, trail_best = _run_engine(adj, n, k, trail_cfg)
        assert trail_trace == copy_trace
        assert trail_stats.nodes == copy_stats.nodes
        assert trail_stats.prunes_by_bound == copy_stats.prunes_by_bound
        assert trail_stats.leaves == copy_stats.leaves
        assert len(trail_best) == len(copy_best)

    @given(graphs(max_vertices=14), st.integers(min_value=0, max_value=4))
    @settings(max_examples=25, deadline=None)
    def test_trail_matches_copy_dfs_kdc_t(self, g, k):
        """kDC-t (Algorithm 1: BR + RR1 + RR2 only) locksteps as well."""
        adj, n = _adjacency_bits(g)
        base = variant_config("kDC-t")
        copy_cfg = replace(base, backend="bitset", engine="copy")
        trail_cfg = replace(base, backend="bitset", engine="trail", recolor_period=1)
        copy_trace, copy_stats, copy_best = _run_engine(adj, n, k, copy_cfg)
        trail_trace, trail_stats, trail_best = _run_engine(adj, n, k, trail_cfg)
        assert trail_trace == copy_trace
        assert trail_stats.nodes == copy_stats.nodes
        assert len(trail_best) == len(copy_best)

    @given(graphs(min_vertices=4), st.integers(min_value=0, max_value=4))
    @settings(max_examples=20, deadline=None)
    def test_trail_matches_copy_forced_anchor(self, g, k):
        """A forced anchor vertex (the decomposition's subproblem shape) locksteps."""
        adj, n = _adjacency_bits(g)
        copy_cfg = SolverConfig(backend="bitset", engine="copy")
        trail_cfg = SolverConfig(backend="bitset", engine="trail", recolor_period=1)
        copy_trace, copy_stats, _ = _run_engine(adj, n, k, copy_cfg, forced=0)
        trail_trace, trail_stats, _ = _run_engine(adj, n, k, trail_cfg, forced=0)
        assert trail_trace == copy_trace
        assert trail_stats.nodes == copy_stats.nodes

    @given(graphs(min_vertices=10, max_vertices=30), st.integers(min_value=0, max_value=4))
    @settings(max_examples=20, deadline=None)
    def test_decomposed_node_counts_match(self, g, k):
        """Forced decomposition: both engines run every ego subproblem in lockstep.

        The sequential driver visits anchors in a deterministic order with a
        shared incumbent, so identical per-subproblem DFS implies identical
        total node counts and subproblem counts.
        """
        copy_cfg = SolverConfig(backend="bitset", engine="copy", decompose_threshold=1)
        trail_cfg = SolverConfig(
            backend="bitset", engine="trail", recolor_period=1, decompose_threshold=1
        )
        copy_result = KDCSolver(copy_cfg).solve(g, k)
        trail_result = KDCSolver(trail_cfg).solve(g, k)
        assert trail_result.size == copy_result.size
        assert trail_result.stats.nodes == copy_result.stats.nodes
        assert trail_result.stats.subproblems == copy_result.stats.subproblems
        assert trail_result.stats.subproblems_pruned == copy_result.stats.subproblems_pruned

    @given(graphs(), st.integers(min_value=0, max_value=4))
    @settings(max_examples=25, deadline=None)
    def test_default_trail_is_exact(self, g, k):
        """The default (amortised) trail configuration still returns the optimum."""
        expected = KDCSolver(SolverConfig(backend="set")).solve(g, k).size
        result = KDCSolver(SolverConfig(backend="bitset", engine="trail")).solve(g, k)
        assert result.size == expected
        if result.stats.nodes > 0:  # preprocessing may solve tiny instances outright
            assert result.stats.engine == "trail"

    def test_trail_counters_balance(self):
        """A completed trail solve pops everything it pushed and counts recolors."""
        g = gnp_random_graph(90, 0.25, seed=5)
        result = KDCSolver(SolverConfig(backend="bitset", engine="trail")).solve(g, 2)
        stats = result.stats
        assert stats.trail_pushes > 0
        assert stats.trail_pushes == stats.trail_pops
        assert stats.recolor_full > 0
        assert stats.dirty_drained > 0


# --------------------------------------------------------------------------- #
# Push/pop restoration property
# --------------------------------------------------------------------------- #
def _snapshot(state):
    return (
        list(state.solution),
        state.solution_bits,
        state.cand_bits,
        state.missing_in_solution,
        list(state.non_nbrs),
        state.edges_in_graph,
        state.last_added,
    )


def _random_ops(state, rng, max_ops):
    """Apply a random mix of trailed adds/removals; return how many were applied."""
    applied = 0
    for _ in range(max_ops):
        cand = bits_of(state.cand_bits)
        if not cand:
            break
        v = rng.choice(cand)
        if rng.random() < 0.5 and state.missing_if_added(v) <= state.k:
            state.add_to_solution(v)
        else:
            state.remove_candidate(v)
        applied += 1
    return applied


class TestPushPop:
    @given(
        graphs(min_vertices=3, max_vertices=18),
        st.integers(min_value=0, max_value=4),
        st.integers(min_value=0, max_value=10_000),
        st.booleans(),
    )
    @settings(max_examples=60, deadline=None)
    def test_rewind_restores_state_bit_for_bit(self, g, k, op_seed, lazy):
        adj, n = _adjacency_bits(g)
        state = BitsetSearchState.initial(adj, k)
        if lazy:
            state.defer_edge_tracking()
        state.begin_trail()
        rng = random.Random(op_seed)

        before = _snapshot(state)
        mark = state.trail_mark()
        applied = _random_ops(state, rng, max_ops=n)
        popped = state.rewind_to(mark)
        assert popped == applied
        assert _snapshot(state) == before
        state.check_invariants()

    @given(
        graphs(min_vertices=4, max_vertices=16),
        st.integers(min_value=0, max_value=4),
        st.integers(min_value=0, max_value=10_000),
    )
    @settings(max_examples=40, deadline=None)
    def test_nested_marks_rewind_independently(self, g, k, op_seed):
        """Branch-like nesting: inner rewinds restore the outer mark's context."""
        adj, n = _adjacency_bits(g)
        state = BitsetSearchState.initial(adj, k)
        state.defer_edge_tracking()
        state.begin_trail()
        rng = random.Random(op_seed)

        outer_before = _snapshot(state)
        outer = state.trail_mark()
        _random_ops(state, rng, max_ops=max(1, n // 3))

        inner_before = _snapshot(state)
        inner = state.trail_mark()
        _random_ops(state, rng, max_ops=max(1, n // 3))
        state.rewind_to(inner)
        assert _snapshot(state) == inner_before

        # A second subtree from the same inner mark, then unwind everything.
        _random_ops(state, rng, max_ops=max(1, n // 3))
        state.rewind_to(inner)
        assert _snapshot(state) == inner_before
        state.rewind_to(outer)
        assert _snapshot(state) == outer_before
        state.check_invariants()

    def test_lazy_edges_leaf_test_matches_tracked(self):
        """The lazy early-exit leaf test agrees with the incremental one everywhere."""
        rng = random.Random(17)
        for seed in range(30):
            g = gnp_random_graph(rng.randint(3, 16), rng.uniform(0.1, 0.95), seed=seed)
            adj, n = _adjacency_bits(g)
            k = seed % 5
            tracked = BitsetSearchState.initial(adj, k)
            lazy = BitsetSearchState.initial(adj, k)
            lazy.defer_edge_tracking()
            for _ in range(n):
                cand = bits_of(tracked.cand_bits)
                if not cand:
                    break
                v = rng.choice(cand)
                if rng.random() < 0.4 and tracked.missing_if_added(v) <= k:
                    tracked.add_to_solution(v)
                    lazy.add_to_solution(v)
                else:
                    tracked.remove_candidate(v)
                    lazy.remove_candidate(v)
                assert lazy.is_defective_clique() == tracked.is_defective_clique()
                assert lazy.total_missing() == tracked.total_missing()
