"""Seeded randomized differential suite across the full backend matrix.

Every cell of the backend x engine x decomposition x workers matrix
implements the same exact algorithm, so on any instance all cells must
return the *same optimal size* (the witness clique may differ, but each
returned witness must be a valid k-defective clique of its size).  The
matrix:

* ``set``                      — dict/set :class:`SearchState` backend;
* ``bitset-copy/trail-whole``  — bitset backend, decomposition disabled,
  one cell per engine (``copy`` baseline / ``trail`` undo-stack);
* ``bitset-copy/trail-decomposed`` — degeneracy decomposition forced,
  per engine;
* ``workers-2/4``              — forced decomposition across 2/4 worker
  processes (trail engine, the default);
* kDC-t variants               — the bare theoretical Algorithm 1 on both
  backends (exact as well, merely slower).

The instances are seeded G(n, p) graphs, so failures reproduce exactly.
Tier-1 runs a compact sweep; the ``slow`` marker widens it (more seeds,
larger n, the full worker matrix) for deep local runs:
``pytest tests/test_differential.py -m slow``.
"""

from __future__ import annotations

from dataclasses import replace

import pytest

from repro.core import (
    KDCSolver,
    SolverConfig,
    is_k_defective_clique,
    prepare_instance,
    variant_config,
)
from repro.graphs import gnp_random_graph

#: Sequential matrix cells: name -> config factory.
SEQUENTIAL_CELLS = {
    "set": lambda: SolverConfig(backend="set"),
    "bitset-copy-whole": lambda: SolverConfig(
        backend="bitset", engine="copy", decompose_threshold=10**9
    ),
    "bitset-trail-whole": lambda: SolverConfig(
        backend="bitset", engine="trail", decompose_threshold=10**9
    ),
    "bitset-copy-decomposed": lambda: SolverConfig(
        backend="bitset", engine="copy", decompose_threshold=1
    ),
    "bitset-trail-decomposed": lambda: SolverConfig(
        backend="bitset", engine="trail", decompose_threshold=1
    ),
}

#: kDC-t (Algorithm 1) cells: exact but unpruned, so exponential on all but
#: the smallest instances — compared on those only.
KDC_T_CELLS = {
    "kDC-t-set": lambda: replace(variant_config("kDC-t"), backend="set"),
    "kDC-t-bitset-copy": lambda: replace(
        variant_config("kDC-t"), backend="bitset", engine="copy"
    ),
    "kDC-t-bitset-trail": lambda: replace(variant_config("kDC-t"), backend="bitset"),
}

#: Parallel matrix cells (forced decomposition + worker pool).
WORKER_CELLS = {
    "workers-2": lambda: SolverConfig(backend="bitset", decompose_threshold=1, workers=2),
    "workers-4": lambda: SolverConfig(backend="bitset", decompose_threshold=1, workers=4),
}


def _solve_size(graph, k, config):
    result = KDCSolver(config).solve(graph, k)
    assert result.optimal, "differential instances must be solved to optimality"
    assert is_k_defective_clique(graph, result.clique, k)
    assert result.size == len(result.clique)
    return result.size


class TestSequentialMatrix:
    """All sequential cells agree on seeded G(n, p) instances, k in 0..4."""

    @pytest.mark.parametrize("n,p,seed", [
        (30, 0.25, 0),
        (30, 0.40, 1),
        (45, 0.30, 2),
        (60, 0.20, 3),
    ])
    @pytest.mark.parametrize("k", [0, 1, 2, 3, 4])
    def test_all_cells_agree(self, n, p, seed, k):
        graph = gnp_random_graph(n, p, seed=seed)
        sizes = {name: _solve_size(graph, k, factory())
                 for name, factory in SEQUENTIAL_CELLS.items()}
        assert len(set(sizes.values())) == 1, f"cells disagree: {sizes}"


class TestWorkerMatrix:
    """Worker pools return the same optimal size as the sequential cells."""

    @pytest.mark.parametrize("n,p,seed", [(60, 0.30, 0), (70, 0.25, 1)])
    @pytest.mark.parametrize("k", [0, 2, 4])
    def test_workers_match_set_backend(self, n, p, seed, k):
        graph = gnp_random_graph(n, p, seed=seed)
        expected = _solve_size(graph, k, SolverConfig(backend="set"))
        for name, factory in WORKER_CELLS.items():
            assert _solve_size(graph, k, factory()) == expected, name

    def test_worker_count_does_not_change_size_across_repeats(self):
        # Worker scheduling is nondeterministic; the returned size must not be.
        graph = gnp_random_graph(55, 0.35, seed=7)
        config = SolverConfig(backend="bitset", decompose_threshold=1, workers=4)
        sizes = {_solve_size(graph, 2, config) for _ in range(3)}
        assert len(sizes) == 1

    def test_worker_solve_records_decomposition_stats(self):
        graph = gnp_random_graph(60, 0.30, seed=5)
        config = SolverConfig(backend="bitset", decompose_threshold=1, workers=2)
        result = KDCSolver(config).solve(graph, 2)
        assert result.stats.workers == 2
        assert result.stats.subproblems + result.stats.subproblems_pruned > 0


class TestPreparedMatrix:
    """``solve_prepared`` joins the matrix: prepare-once-solve-twice per cell.

    For every sequential and worker cell, one artifact is prepared and
    executed twice, and both executes must return the same optimal size as
    two fresh ``solve`` calls — pinning the compile/execute split to the
    classic path across backends, engines, decomposition and worker pools.
    """

    @pytest.mark.parametrize("k", [1, 3])
    def test_prepared_agrees_with_fresh_in_every_cell(self, k):
        graph = gnp_random_graph(45, 0.30, seed=13)
        for name, factory in {**SEQUENTIAL_CELLS, **WORKER_CELLS}.items():
            config = factory()
            solver = KDCSolver(config)
            fresh = [_solve_size(graph, k, config) for _ in range(2)]
            prepared = prepare_instance(graph, k, config)
            repeated = []
            for _ in range(2):
                result = solver.solve_prepared(prepared)
                assert result.optimal, name
                assert is_k_defective_clique(graph, result.clique, k), name
                repeated.append(result.size)
            assert set(fresh) == set(repeated) and len(set(fresh)) == 1, (
                f"{name}: fresh {fresh} vs prepared {repeated}"
            )

    def test_prepared_kdc_t_matches(self):
        graph = gnp_random_graph(25, 0.35, seed=11)
        for name, factory in KDC_T_CELLS.items():
            config = factory()
            expected = _solve_size(graph, 2, config)
            prepared = prepare_instance(graph, 2, config)
            result = KDCSolver(config).solve_prepared(prepared)
            assert result.optimal and result.size == expected, name
            assert is_k_defective_clique(graph, result.clique, 2), name


class TestKdcTVariants:
    """kDC-t (Algorithm 1) is exact too: same sizes, on both backends."""

    @pytest.mark.parametrize("k", [0, 1, 2, 3, 4])
    def test_kdc_t_matches_full_kdc(self, k):
        graph = gnp_random_graph(25, 0.35, seed=11)
        full = _solve_size(graph, k, SolverConfig())
        for name, factory in KDC_T_CELLS.items():
            assert _solve_size(graph, k, factory()) == full, name


@pytest.mark.slow
class TestDeepDifferentialSweep:
    """Wider seeded fuzz tier: more seeds, larger n, full worker matrix."""

    @pytest.mark.parametrize("seed", list(range(8)))
    @pytest.mark.parametrize("k", [0, 1, 2, 3, 4])
    def test_full_matrix_agrees(self, seed, k):
        n = 40 + 10 * (seed % 5)
        p = 0.15 + 0.05 * (seed % 4)
        graph = gnp_random_graph(n, p, seed=seed)
        sizes = {name: _solve_size(graph, k, factory())
                 for name, factory in {**SEQUENTIAL_CELLS, **WORKER_CELLS}.items()}
        assert len(set(sizes.values())) == 1, f"n={n} p={p} seed={seed} k={k}: {sizes}"

    @pytest.mark.parametrize("seed", list(range(5)))
    @pytest.mark.parametrize("k", [0, 1, 2, 3])
    def test_kdc_t_sweep(self, seed, k):
        graph = gnp_random_graph(20 + 2 * seed, 0.30 + 0.03 * seed, seed=seed)
        expected = _solve_size(graph, k, SolverConfig(backend="set"))
        for name, factory in KDC_T_CELLS.items():
            assert _solve_size(graph, k, factory()) == expected, name

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_large_decomposed_instances_agree(self, seed):
        graph = gnp_random_graph(160, 0.15, seed=seed)
        expected = _solve_size(graph, 3, SolverConfig(backend="set"))
        decomposed_cells = {
            name: SEQUENTIAL_CELLS[name]
            for name in ("bitset-copy-decomposed", "bitset-trail-decomposed")
        }
        for name, factory in {**WORKER_CELLS, **decomposed_cells}.items():
            assert _solve_size(graph, 3, factory()) == expected, name
