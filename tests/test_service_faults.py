"""Chaos suite: the service under injected faults.

Every test scripts an exact failure — a slow prepare, a crashing solve, a
dropped socket, a killed pool worker — through
:class:`repro.testing.chaos.FaultInjector` and asserts the hardening
invariants of the service layer:

* every request is *answered*: a result, or a typed error, within its
  deadline — never a hang, never a silently dropped future;
* the server stays serving after each fault (liveness probe + a follow-up
  solve succeed);
* caches are never corrupted: post-chaos answers match a fresh sequential
  solve of the same instance (the differential check).
"""

from __future__ import annotations

import os
import socket
import threading
import time
from concurrent.futures import wait as futures_wait

import pytest

from repro.core import KDCSolver, SolverConfig, is_k_defective_clique
from repro.exceptions import (
    ClientTimeoutError,
    DeadlineExceededError,
    ServiceClosedError,
    ServiceError,
    ServiceOverloadedError,
    UnknownGraphError,
)
from repro.graphs import gnp_random_graph
from repro.service import Client, ServiceServer, SolverService
from repro.testing import FaultInjector, InjectedFaultError
from repro.testing import chaos


@pytest.fixture(autouse=True)
def _no_leftover_faults():
    """Every test starts and ends with no injector installed."""
    chaos.uninstall()
    yield
    chaos.uninstall()


@pytest.fixture
def graph():
    return gnp_random_graph(40, 0.3, seed=9)


def sequential_answer(graph, k):
    return KDCSolver(SolverConfig()).solve(graph, k)


def wait_for_queue_drain(service, timeout=5.0):
    """Spin until every submitted request has left the pending queue.

    Shed tests need the blocker *running* (not queued) before they fill the
    queue, or the admission counter would include the blocker itself.
    """
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if service.stats()["queue_depth"] == 0:
            return
        time.sleep(0.01)
    raise AssertionError("pending queue never drained")


class TestFaultInjector:
    """The harness itself must be deterministic and leak-free."""

    def test_fire_is_noop_without_injector(self):
        chaos.fire("nowhere", anything=1)  # must not raise

    def test_times_and_match_script_exact_sequences(self):
        inj = FaultInjector()
        inj.add("p", error="boom", times=2, match={"idx": 1})
        with inj:
            chaos.fire("p", idx=0)  # filtered out by match
            with pytest.raises(InjectedFaultError):
                chaos.fire("p", idx=1)
            with pytest.raises(InjectedFaultError):
                chaos.fire("p", idx=1)
            chaos.fire("p", idx=1)  # budget of 2 exhausted
        assert [point for point, _ in inj.fired] == ["p", "p"]
        chaos.fire("p", idx=1)  # uninstalled on context exit

    def test_exactly_one_action_enforced(self):
        with pytest.raises(ValueError):
            FaultInjector().add("p")
        with pytest.raises(ValueError):
            FaultInjector().add("p", delay=0.1, error="boom")

    def test_injected_error_is_not_a_repro_error(self):
        from repro.exceptions import ReproError

        assert not issubclass(InjectedFaultError, ReproError)


class TestDeadlines:
    def test_deadline_expired_while_queued(self, graph):
        """A queued request past its deadline is cancelled, typed, promptly.

        One worker, blocked by an injected slow solve; the request queued
        behind it carries a deadline shorter than the block and must fail
        with :class:`DeadlineExceededError` *while the blocker still runs* —
        the watchdog cancels it without waiting for a worker.
        """
        with FaultInjector().add("scheduler.solve", delay=1.5, times=1):
            with SolverService(max_concurrency=1) as service:
                digest = service.store.add(graph)
                blocker = service.submit(digest, 1)
                queued = service.submit(digest, 2, deadline=0.2)
                start = time.perf_counter()
                with pytest.raises(DeadlineExceededError):
                    queued.result(timeout=10)
                assert time.perf_counter() - start < 1.0, (
                    "typed failure must not wait for the blocking solve"
                )
                assert "queued" in str(queued.exception())
                # the blocker is unaffected and the service keeps serving
                assert blocker.result(timeout=30).optimal
                assert service.solve(digest, 2).optimal
                assert service.stats()["deadline_expired"] == 1

    def test_deadline_expires_during_preparation(self, graph):
        with FaultInjector().add("store.prepare", delay=0.6, times=1):
            with SolverService(max_concurrency=1) as service:
                digest = service.store.add(graph)
                with pytest.raises(DeadlineExceededError) as info:
                    service.solve(digest, 1, deadline=0.2)
                assert "preparation" in str(info.value)
                # failed prepares are not cached; the slot still works
                assert service.solve(digest, 1).optimal

    def test_deadline_clamps_running_solve_to_typed_error(self):
        hard = gnp_random_graph(200, 0.3, seed=11)
        with SolverService(max_concurrency=1) as service:
            digest = service.store.add(hard)
            start = time.perf_counter()
            with pytest.raises(DeadlineExceededError) as info:
                service.solve(digest, 3, deadline=1.0)
            assert time.perf_counter() - start < 8.0
            assert "best size so far" in str(info.value)

    def test_time_limit_alone_keeps_partial_result_contract(self):
        """``time_limit`` still yields a partial result — only *deadlines* raise."""
        hard = gnp_random_graph(200, 0.3, seed=11)
        with SolverService() as service:
            digest = service.store.add(hard)
            result = service.solve(digest, 3, time_limit=0.2)
            assert not result.optimal
            assert is_k_defective_clique(hard, result.clique, 3)

    def test_default_deadline_applies_when_request_has_none(self, graph):
        with FaultInjector().add("store.prepare", delay=0.8, times=1):
            with SolverService(default_deadline=0.2) as service:
                digest = service.store.add(graph)
                with pytest.raises(DeadlineExceededError):
                    service.solve(digest, 1)

    def test_invalid_deadline_rejected(self, graph):
        from repro.exceptions import InvalidParameterError

        with SolverService() as service:
            digest = service.store.add(graph)
            with pytest.raises(InvalidParameterError):
                service.submit(digest, 1, deadline=0.0)


class TestAdmissionControl:
    def _blocked_service(self, graph, max_pending):
        """A one-worker service whose worker is stuck in an injected slow solve."""
        service = SolverService(max_concurrency=1, max_pending=max_pending)
        digest = service.store.add(graph)
        blocker = service.submit(digest, 1)
        wait_for_queue_drain(service)
        return service, digest, blocker

    def test_shed_storm_fails_fast_with_retry_after(self, graph):
        with FaultInjector().add("scheduler.solve", delay=1.0, times=1):
            service, digest, blocker = self._blocked_service(graph, max_pending=2)
            try:
                fillers = [service.submit(digest, k) for k in (2, 3)]
                start = time.perf_counter()
                with pytest.raises(ServiceOverloadedError) as info:
                    service.submit(digest, 4)
                assert time.perf_counter() - start < 0.2, "shedding must be fast-fail"
                assert info.value.retry_after > 0
                assert info.value.queue_depth == 2
                stats = service.stats()
                assert stats["shed"] == 1
                assert stats["queue_depth"] == 2
                # the storm passes; admitted work completes and new work is accepted
                assert blocker.result(timeout=30).optimal
                assert all(f.result(timeout=30).optimal for f in fillers)
                assert service.solve(digest, 4).optimal
            finally:
                service.close()

    def test_cache_hits_and_coalesced_requests_bypass_admission(self, graph):
        with SolverService(max_concurrency=1, max_pending=1) as service:
            digest = service.store.add(graph)
            warm = service.solve(digest, 1)  # primes the result cache
            with FaultInjector().add("scheduler.solve", delay=1.0, times=1):
                blocker = service.submit(digest, 2)
                wait_for_queue_drain(service)
                filler = service.submit(digest, 3)  # fills the queue
                # identical to the queued request -> coalesces, not shed
                twin = service.submit(digest, 3)
                # already answered optimally -> cache, not shed
                cached = service.submit(digest, 1).result(timeout=5)
                assert cached.stats.cache_hit
                assert cached.size == warm.size
                assert service.stats()["shed"] == 0
                assert blocker.result(timeout=30).optimal
                assert filler.result(timeout=30).size == twin.result(timeout=30).size

    def test_result_cache_lru_eviction(self, graph):
        with SolverService(result_cache_size=2) as service:
            digest = service.store.add(graph)
            for k in (1, 2, 3):
                service.solve(digest, k)
            stats = service.stats()
            assert stats["result_cache_entries"] == 2
            assert stats["result_cache_evictions"] == 1
            # k=1 was evicted (LRU): answering it again is a real solve
            assert not service.solve(digest, 1).stats.cache_hit

    def test_graph_store_lru_eviction(self):
        from repro.service import GraphStore

        store = GraphStore(max_graphs=2)
        digests = [store.add(gnp_random_graph(12, 0.4, seed=s)) for s in range(3)]
        assert store.stats()["graph_evictions"] == 1
        with pytest.raises(UnknownGraphError):
            store.get(digests[0])
        store.get(digests[1])
        store.get(digests[2])

    def test_prepared_cache_lru_eviction(self, graph):
        from repro.service import GraphStore

        store = GraphStore(max_prepared=1)
        digest = store.add(graph)
        store.prepared(digest, 1)
        store.prepared(digest, 2)
        stats = store.stats()
        assert stats["prepared_artifacts"] == 1
        assert stats["prepared_evictions"] == 1


class TestGracefulDrain:
    def test_drain_answers_running_and_cancels_queued(self, graph):
        """Bounded drain: running work answers partially, queued work fails typed."""
        service = SolverService(max_concurrency=1)
        digest = service.store.add(graph)
        with FaultInjector().add("scheduler.solve", delay=0.8, times=1):
            running = service.submit(digest, 1)
            queued = service.submit(digest, 2)
            time.sleep(0.1)  # let the first request enter its solve slot
            start = time.perf_counter()
            service.close(drain_timeout=0.2)
            # close returned promptly (did not wait out the full solve)...
            assert time.perf_counter() - start < 5.0
            # ...yet every request is answered or typed-failed
            done, not_done = futures_wait([running, queued], timeout=10)
            assert not not_done
            partial = running.result()
            assert is_k_defective_clique(graph, partial.clique, 1)
            with pytest.raises(ServiceClosedError) as info:
                queued.result()
            assert "drain" in str(info.value)
            assert service.stats()["drain_cancelled"] == 2
        with pytest.raises(ServiceClosedError):
            service.submit(digest, 3)

    def test_drain_with_idle_service_returns_immediately(self):
        service = SolverService()
        start = time.perf_counter()
        service.close(drain_timeout=30.0)
        assert time.perf_counter() - start < 1.0

    def test_unbounded_close_still_waits_for_everything(self, graph):
        with FaultInjector().add("scheduler.solve", delay=0.3, times=1):
            service = SolverService(max_concurrency=1)
            digest = service.store.add(graph)
            future = service.submit(digest, 1)
            service.close()  # legacy behaviour: wait for completion
            assert future.done()
            assert future.result().optimal


class TestSolveCrashes:
    def test_injected_crash_is_answered_and_not_cached(self, graph):
        """A solve crashing mid-request answers typed, and poisons nothing."""
        with FaultInjector().add("scheduler.solve", error="solver exploded", times=1) as inj:
            with SolverService() as service:
                digest = service.store.add(graph)
                with pytest.raises(InjectedFaultError):
                    service.submit(digest, 1).result(timeout=10)
                assert inj.fired
                # the failure was not cached: the retry really solves, correctly
                retry = service.solve(digest, 1)
                assert retry.optimal and not retry.stats.cache_hit
                assert retry.size == sequential_answer(graph, 1).size

    def test_crash_reaches_coalesced_followers(self, graph):
        with FaultInjector().add("scheduler.solve", delay=0.3, times=1).add(
            "scheduler.solve", error="solver exploded", times=1
        ):
            with SolverService(max_concurrency=1) as service:
                digest = service.store.add(graph)
                primary = service.submit(digest, 1)
                follower = service.submit(digest, 1)
                for fut in (primary, follower):
                    with pytest.raises(InjectedFaultError):
                        fut.result(timeout=10)

    def test_in_process_client_maps_crash_to_service_error(self, graph):
        with FaultInjector().add("scheduler.solve", error="solver exploded", times=1):
            with SolverService() as service:
                client = Client(service=service)
                digest = client.add_graph(graph)
                with pytest.raises(ServiceError, match="InjectedFaultError"):
                    client.solve(digest, 1)
                # the dispatcher answered typed; the service keeps serving
                assert client.ping()
                assert client.solve(digest, 1)["optimal"]


class TestClientRetry:
    def test_retry_honors_retry_after_and_backoff(self, graph):
        """An overload shed is retried with the service's hint as the floor."""
        sleeps = []
        with FaultInjector().add("scheduler.solve", delay=0.6, times=1):
            with SolverService(max_concurrency=1, max_pending=1) as service:
                digest = service.store.add(graph)
                blocker = service.submit(digest, 1)
                wait_for_queue_drain(service)
                filler = service.submit(digest, 2)

                def fake_sleep(seconds):
                    sleeps.append(seconds)
                    # "waiting" drains the backlog, so the retry is admitted
                    futures_wait([blocker, filler], timeout=30)

                client = Client(service=service, max_retries=3, sleep=fake_sleep)
                reply = client.solve(digest, 3)
                assert reply["optimal"]
                assert len(sleeps) == 1
                assert sleeps[0] >= 0.05  # at least the service's retry_after floor
                assert service.stats()["shed"] == 1

    def test_retries_exhausted_raises_typed_overload(self, graph):
        with FaultInjector().add("scheduler.solve", delay=0.6, times=1):
            with SolverService(max_concurrency=1, max_pending=1) as service:
                digest = service.store.add(graph)
                blocker = service.submit(digest, 1)
                wait_for_queue_drain(service)
                filler = service.submit(digest, 2)
                client = Client(service=service, max_retries=2, sleep=lambda _s: None)
                with pytest.raises(ServiceOverloadedError) as info:
                    client.solve(digest, 3)
                assert info.value.retry_after > 0
                futures_wait([blocker, filler], timeout=30)

    def test_no_retries_by_default(self, graph):
        with FaultInjector().add("scheduler.solve", delay=0.6, times=1):
            with SolverService(max_concurrency=1, max_pending=1) as service:
                digest = service.store.add(graph)
                blocker = service.submit(digest, 1)
                wait_for_queue_drain(service)
                filler = service.submit(digest, 2)
                slept = []
                client = Client(service=service, sleep=slept.append)
                with pytest.raises(ServiceOverloadedError):
                    client.solve(digest, 3)
                assert not slept
                futures_wait([blocker, filler], timeout=30)


@pytest.fixture
def live_server():
    """A real socket server on an ephemeral port, torn down after the test."""
    server = ServiceServer(port=0)
    thread = threading.Thread(target=server.serve_forever, kwargs={"poll_interval": 0.05})
    thread.start()
    try:
        yield server
    finally:
        server.shutdown()
        server.server_close()
        thread.join(timeout=10)


class TestSocketFaults:
    def test_client_disconnect_mid_reply_keeps_server_alive(self, live_server):
        host, port = live_server.address
        with FaultInjector().add("server.reply", disconnect=True, times=1):
            with Client.connect(host, port, timeout=5.0) as victim:
                # the injected ConnectionResetError drops this reply; the
                # handler must close this one connection quietly
                with pytest.raises(ServiceError, match="closed the connection"):
                    victim.ping()
        # the server (and its service) survived: a fresh connection works
        with Client.connect(host, port, timeout=5.0) as fresh:
            assert fresh.ping()
            digest = fresh.add_graph(gnp_random_graph(25, 0.3, seed=3))
            assert fresh.solve(digest, 1)["optimal"]

    def test_slow_reply_times_out_typed_and_poisons_client(self, live_server):
        host, port = live_server.address
        with FaultInjector().add("server.reply", delay=1.0, times=1):
            with Client.connect(host, port, timeout=5.0, request_timeout=0.2) as client:
                with pytest.raises(ClientTimeoutError):
                    client.ping()
                # the line protocol is now unsynchronised: the client refuses reuse
                with pytest.raises(ServiceError, match="broken"):
                    client.ping()
        with Client.connect(host, port, timeout=5.0) as fresh:
            assert fresh.ping()

    def test_deadline_travels_the_wire(self, live_server):
        host, port = live_server.address
        with FaultInjector().add("store.prepare", delay=0.8, times=1):
            with Client.connect(host, port, timeout=5.0) as client:
                digest = client.add_graph(gnp_random_graph(25, 0.3, seed=3))
                with pytest.raises(DeadlineExceededError):
                    client.solve(digest, 1, deadline=0.2)
                assert client.solve(digest, 1)["optimal"]

    def test_raw_socket_vanishing_mid_request_is_harmless(self, live_server):
        """A connection dropped without a newline must not wedge a handler."""
        host, port = live_server.address
        sock = socket.create_connection((host, port), timeout=5.0)
        sock.sendall(b'{"op": "ping"')  # no newline, no complete request
        sock.close()
        with Client.connect(host, port, timeout=5.0) as fresh:
            assert fresh.ping()


class TestParallelWorkerFaults:
    """Lost-worker recovery of the process pool, scripted deterministically."""

    K = 2

    @pytest.fixture
    def parallel_graph(self):
        return gnp_random_graph(90, 0.3, seed=7)

    @pytest.fixture
    def parallel_config(self):
        return SolverConfig(backend="bitset", decompose_threshold=1, workers=2)

    def test_killed_worker_recovers_and_stays_exact(self, parallel_graph, parallel_config):
        """SIGKILLing the worker holding batch 0 must not cost exactness.

        The rule is pinned to batch index 0 and re-fires in every fresh pool
        round (each forked worker starts with its own fire budget), so the
        pool rounds exhaust and the sequential fallback finishes the lost
        anchors in the parent — which never runs ``_solve_batch`` and is
        therefore immune to the kill rule.
        """
        expected = sequential_answer(parallel_graph, self.K)
        with FaultInjector().add("parallel.batch", kill=True, times=1, match={"index": 0}):
            result = KDCSolver(parallel_config).solve(parallel_graph, self.K)
        assert result.optimal
        assert result.size == expected.size
        assert is_k_defective_clique(parallel_graph, result.clique, self.K)
        # the degradation is recorded: recovery ran sequentially
        assert result.stats.workers == 1

    def test_phantom_bound_is_audited_away(self, parallel_graph, parallel_config):
        """A worker publishing an unbacked bound and dying must not shrink the answer.

        The phantom action inflates the shared best-size cell by 5 and kills
        the worker: siblings prune against a bound with no witness solution.
        The round audit must re-queue everything that merged under the
        poisoned bound, and the final answer must still be exact.
        """
        expected = sequential_answer(parallel_graph, self.K)
        with FaultInjector().add(
            "parallel.batch", phantom=5, times=1, match={"index": 0}
        ) as inj:
            result = KDCSolver(parallel_config).solve(parallel_graph, self.K)
        assert result.optimal
        assert result.size == expected.size
        assert is_k_defective_clique(parallel_graph, result.clique, self.K)


class TestCrashRecovery:
    """Durability under crashes: torn publishes, damaged journals, SIGKILL + resume."""

    K = 2
    CONFIG = SolverConfig(backend="bitset", decompose_threshold=1, workers=1)

    @pytest.fixture
    def state_dir(self, tmp_path):
        return str(tmp_path / "state")

    def _persistence(self, state_dir):
        from repro.service import ServicePersistence

        return ServicePersistence(state_dir)

    def _service(self, state_dir, **kwargs):
        return SolverService(
            config=self.CONFIG, persistence=self._persistence(state_dir), **kwargs
        )

    def test_snapshot_write_failure_degrades_to_in_memory(self, graph, state_dir):
        """A crash in the publish window (or any write failure) never fails requests."""
        with FaultInjector().add("persist.write", error="disk died", times=1):
            with self._service(state_dir) as service:
                digest = service.store.add(graph)  # snapshot write fails here
                answer = service.solve(digest, self.K)
                assert answer.optimal  # the request itself is unharmed

        with self._service(state_dir) as warm:
            # The torn graph snapshot was never published, but the result
            # journal (a separate path) survived: re-adding the graph makes
            # the restored cache answer immediately.
            assert warm.store.stats()["restored_graphs"] == 0
            assert warm.stats()["restored_results"] == 1
            hit = warm.solve(graph, self.K)
            assert hit.stats.cache_hit and hit.size == answer.size

    def test_truncated_results_tail_restores_valid_prefix(self, graph, state_dir):
        other = gnp_random_graph(30, 0.3, seed=4)
        with self._service(state_dir) as service:
            first = service.solve(graph, self.K)
            service.solve(other, self.K)
        results_path = self._persistence(state_dir).results_path
        with open(results_path, "rb+") as fh:
            fh.truncate(fh.seek(0, 2) - 9)  # crash mid-append of the last record

        with self._service(state_dir) as warm:
            assert warm.stats()["restored_results"] == 1
            assert warm.solve(graph, self.K).stats.cache_hit
            # the lost entry is simply re-solved — and matches exactly
            redo = warm.solve(other, self.K)
            assert not redo.stats.cache_hit
            assert redo.size == sequential_answer(other, self.K).size
        assert first.size == sequential_answer(graph, self.K).size

    def test_corrupt_checksum_record_discards_damaged_suffix(self, state_dir):
        """Bit rot inside the journal drops everything from the bad record on."""
        from repro.core.checkpoint import read_records

        graphs = [gnp_random_graph(16, 0.4, seed=s) for s in range(3)]
        with self._service(state_dir) as service:
            for g in graphs:
                service.solve(g, self.K)
        results_path = self._persistence(state_dir).results_path
        scan = read_records(results_path)
        assert len(scan.records) == 3
        offset = 8 + len(scan.records[0]) + 8 + 4  # a few bytes into record 2's payload
        with open(results_path, "rb+") as fh:
            fh.seek(offset)
            original = fh.read(2)
            fh.seek(offset)
            fh.write(bytes(b ^ 0xFF for b in original))

        with self._service(state_dir) as warm:
            assert warm.stats()["restored_results"] == 1
            assert warm.solve(graphs[0], self.K).stats.cache_hit
            assert not warm.solve(graphs[1], self.K).stats.cache_hit
        # replay truncated the file back to its valid prefix + the re-solves
        assert not read_records(results_path).damaged

    def test_sigkill_mid_decomposed_solve_resumes_exactly(self, state_dir):
        """The acceptance bar: kill -9 a checkpointing solve, restart, resume.

        A forked child runs the solve with a kill rule pinned to the 31st
        checkpoint append, so it dies with exactly 30 completed anchors
        durable in the journal.  The restarted service must execute only the
        unfinished anchors and still produce the sequential answer
        bit-identically.
        """
        import multiprocessing

        hard = gnp_random_graph(90, 0.3, seed=7)
        digest = hard.content_digest()
        expected = KDCSolver(self.CONFIG).solve(hard, self.K)
        state = state_dir

        def crashing_child():
            FaultInjector().add(
                "checkpoint.append", kill=True, times=1, match={"count": 30}
            ).install()
            service = self._service(state)
            service.solve(hard, self.K)  # never returns: SIGKILL mid-loop

        child = multiprocessing.get_context("fork").Process(target=crashing_child)
        child.start()
        child.join(timeout=120)
        assert child.exitcode == -9, f"child should die by SIGKILL, got {child.exitcode}"

        persistence = self._persistence(state_dir)
        assert os.listdir(persistence.checkpoints_dir), (
            "the killed solve must leave its checkpoint journal behind"
        )

        with self._service(state_dir) as warm:
            # the graph snapshot survived the kill: the digest is known
            assert warm.store.stats()["restored_graphs"] == 1
            resumed = warm.submit(digest, self.K).result(timeout=300)
            assert resumed.optimal
            assert resumed.clique == expected.clique  # bit-identical, not just same size
            assert resumed.stats.subproblems_restored == 30
            # only the unfinished anchors ran; the anchor count is conserved
            assert resumed.stats.subproblems < expected.stats.subproblems
            assert resumed.stats.nodes < expected.stats.nodes
            assert (
                resumed.stats.subproblems_restored
                + resumed.stats.subproblems
                + resumed.stats.subproblems_pruned
                == expected.stats.subproblems + expected.stats.subproblems_pruned
            )
        # the completed solve retired its journal
        assert os.listdir(persistence.checkpoints_dir) == []

    def test_resumed_service_solve_after_clean_interrupt(self, state_dir):
        """A budget-interrupted service solve leaves a journal the retry consumes."""
        hard = gnp_random_graph(90, 0.3, seed=7)
        expected = KDCSolver(self.CONFIG).solve(hard, self.K)
        with self._service(state_dir) as service:
            digest = service.store.add(hard)
            partial = service.solve(digest, self.K, node_limit=expected.stats.nodes // 3)
            assert not partial.optimal
            # the interrupted (non-optimal) solve kept its checkpoint...
            full = service.solve(digest, self.K)
            assert full.optimal
            assert full.clique == expected.clique
            assert full.stats.subproblems_restored > 0


class TestPostChaosDifferential:
    """The acceptance bar: after a storm of faults, answers are still exact."""

    def test_service_answers_match_fresh_sequential_solve_after_chaos(self, graph):
        expected = sequential_answer(graph, 2)
        inj = (
            FaultInjector()
            .add("store.prepare", delay=0.4, times=1)
            .add("scheduler.solve", error="solver exploded", times=1)
            .add("server.reply", disconnect=True, times=1)
        )
        with inj:
            with SolverService(max_concurrency=2, default_deadline=15.0) as service:
                client = Client(service=service)
                digest = client.add_graph(graph)
                outcomes = []
                for _ in range(6):
                    try:
                        outcomes.append(client.solve(digest, 2))
                    except ServiceError as exc:
                        outcomes.append(exc)
                # every request was answered or typed-failed, never dropped
                assert len(outcomes) == 6
                # and at least one clean answer came through the storm
                replies = [o for o in outcomes if isinstance(o, dict)]
                assert replies
                for reply in replies:
                    assert reply["size"] == expected.size
                    assert is_k_defective_clique(graph, reply["clique"], 2)
        # post-chaos, with no injector installed: the cached answer is sane
        with SolverService() as fresh_service:
            digest = fresh_service.store.add(graph)
            post = fresh_service.solve(digest, 2)
            assert post.optimal
            assert post.size == expected.size
