"""Tests for the Degen and Degen-opt initial-solution heuristics."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import degen, degen_opt, initial_solution, is_k_defective_clique
from repro.baselines import brute_force_maximum_defective_clique
from repro.graphs import Graph, complete_graph, cycle_graph, gnp_random_graph, star_graph


class TestDegen:
    def test_empty_graph(self):
        assert degen(Graph(), 1) == []

    def test_complete_graph_returns_everything(self):
        g = complete_graph(6)
        assert len(degen(g, 0)) == 6

    def test_clique_plus_pendant(self):
        g = complete_graph(5)
        g.add_edge(0, 5)
        solution = degen(g, 0)
        assert len(solution) == 5
        assert g.is_clique(solution)

    def test_result_is_valid_defective_clique(self):
        for seed in range(5):
            g = gnp_random_graph(30, 0.3, seed=seed)
            for k in (0, 1, 3):
                solution = degen(g, k)
                assert is_k_defective_clique(g, solution, k)
                assert len(solution) >= 1

    def test_larger_k_never_shrinks_solution(self):
        g = gnp_random_graph(25, 0.3, seed=3)
        sizes = [len(degen(g, k)) for k in range(0, 6)]
        assert all(a <= b for a, b in zip(sizes, sizes[1:]))

    def test_star_graph(self):
        g = star_graph(5)
        assert len(degen(g, 0)) == 2  # centre + one leaf
        assert len(degen(g, 1)) == 3


class TestDegenOpt:
    def test_empty_graph(self):
        assert degen_opt(Graph(), 2) == []

    def test_result_is_valid_defective_clique(self):
        for seed in range(5):
            g = gnp_random_graph(30, 0.3, seed=seed)
            for k in (0, 1, 3):
                solution = degen_opt(g, k)
                assert is_k_defective_clique(g, solution, k)

    def test_never_worse_than_degen(self):
        for seed in range(8):
            g = gnp_random_graph(30, 0.25, seed=seed)
            for k in (0, 1, 2):
                assert len(degen_opt(g, k)) >= len(degen(g, k))

    def test_figure6_degen_opt_quality(self, fig6):
        solution = degen_opt(fig6, 1)
        assert is_k_defective_clique(fig6, solution, 1)
        # The maximum 1-defective clique of the example has size 4; Degen-opt
        # must get within one vertex of it on this instance (and no heuristic
        # can exceed it).
        assert 3 <= len(solution) <= 4

    @given(st.integers(min_value=1, max_value=12), st.floats(min_value=0.1, max_value=0.9),
           st.integers(min_value=0, max_value=300), st.integers(min_value=0, max_value=3))
    @settings(max_examples=40, deadline=None)
    def test_heuristics_are_lower_bounds(self, n, p, seed, k):
        """Both heuristics return feasible solutions, hence lower bounds on the optimum."""
        g = gnp_random_graph(n, p, seed=seed)
        optimum = len(brute_force_maximum_defective_clique(g, k))
        d = degen(g, k)
        do = degen_opt(g, k)
        assert is_k_defective_clique(g, d, k)
        assert is_k_defective_clique(g, do, k)
        assert len(d) <= optimum
        assert len(do) <= optimum


class TestDispatch:
    def test_initial_solution_methods(self):
        g = complete_graph(4)
        assert initial_solution(g, 1, "none") == []
        assert len(initial_solution(g, 1, "degen")) == 4
        assert len(initial_solution(g, 1, "degen-opt")) == 4

    def test_unknown_method(self):
        with pytest.raises(ValueError):
            initial_solution(complete_graph(3), 1, "magic")


class TestBudgetAwareness:
    def test_degen_opt_returns_partial_result_when_budget_fires(self):
        from repro.exceptions import BudgetExceededError

        g = gnp_random_graph(40, 0.3, seed=11)

        calls = []

        def firing_budget():
            calls.append(None)
            if len(calls) > 3:
                raise BudgetExceededError("deadline")

        partial = degen_opt(g, 2, budget_check=firing_budget)
        full = degen_opt(g, 2)
        assert is_k_defective_clique(g, partial, 2)
        assert 1 <= len(partial) <= len(full)

    def test_degen_opt_immediate_budget_still_returns_degen_floor(self):
        from repro.exceptions import BudgetExceededError

        def firing_budget():
            raise BudgetExceededError("deadline")

        g = gnp_random_graph(40, 0.3, seed=12)
        partial = degen_opt(g, 2, budget_check=firing_budget)
        assert len(partial) >= len(degen(g, 2)) > 0
        assert is_k_defective_clique(g, partial, 2)

    def test_initial_solution_forwards_budget_check(self):
        from repro.exceptions import BudgetExceededError

        def firing_budget():
            raise BudgetExceededError("deadline")

        g = gnp_random_graph(30, 0.4, seed=13)
        result = initial_solution(g, 1, "degen-opt", budget_check=firing_budget)
        assert is_k_defective_clique(g, result, 1)
