"""Smoke tests for the experiment drivers (one per table/figure of the paper).

The drivers are exercised at the ``tiny`` scale with few k values and short
time limits so the whole file stays fast; the full-scale runs live in the
``benchmarks/`` directory.
"""

from __future__ import annotations

import pytest

from repro.bench import (
    EXPERIMENTS,
    figure7,
    figure8,
    run_experiment,
    table2,
    table3,
    table4,
    table5,
    table6,
    table7,
)


class TestTable2:
    def test_structure_and_ordering(self):
        result = table2(scale="tiny", k_values=(1,), time_limit=3.0, algorithms=("kDC", "MADEC"))
        assert result.name == "table2"
        assert "real_world_like" in result.data
        assert "Table 2" in result.text
        for collection, solved in result.data.items():
            assert set(solved) == {"kDC", "MADEC"}
            # kDC must solve at least as many instances as the MADEC baseline
            assert solved["kDC"][1] >= solved["MADEC"][1]


class TestTable3:
    def test_rows_cover_instances(self):
        result = table3(scale="tiny", k_values=(1,), time_limit=3.0, algorithms=("kDC", "KDBB"))
        assert "Table 3" in result.text
        assert result.records
        assert {r.algorithm for r in result.records} == {"kDC", "KDBB"}


class TestTable4:
    def test_ratios_reported(self):
        result = table4(scale="tiny", k_values=(1,))
        assert "Table 4" in result.text
        assert result.data
        for values in result.data.values():
            # Degen-opt computes an initial solution at least as large as Degen's,
            # and the kDC preprocessing never keeps more of the graph than
            # kDC-Degen's (RR6 only removes extra edges).
            assert values["initial_solution_ratio"] >= 1.0
            assert values["reduced_vertices_ratio"] <= 1.0 + 1e-9
            assert values["reduced_edges_ratio"] <= 1.0 + 1e-9


class TestTables5to7:
    def test_table5_ratios_at_least_one(self):
        result = table5(scale="tiny", k_values=(1,), time_limit=3.0)
        assert "Table 5" in result.text
        for agg in result.data.values():
            if agg["count"]:
                assert agg["avg_ratio"] >= 1.0
                assert agg["max_ratio"] >= agg["avg_ratio"] - 1e-9

    def test_table6_counts_bounded(self):
        result = table6(scale="tiny", k_values=(1,), time_limit=3.0)
        assert "Table 6" in result.text
        for agg in result.data.values():
            assert 0 <= agg["num_extending_max_clique"] <= agg["count"]

    def test_table7_percentages_bounded(self):
        result = table7(scale="tiny", k_values=(1,), time_limit=3.0)
        assert "Table 7" in result.text
        for agg in result.data.values():
            assert 0.0 <= agg["avg_pct_not_fully_connected"] <= 100.0


class TestFigures:
    def test_figure7_monotone_in_time_limit(self):
        result = figure7(scale="tiny", k_values=(1,), time_limits=(0.05, 3.0), algorithms=("kDC", "KDBB"))
        assert result.name == "figure7"
        small = result.data["k=1/limit=0.05"]
        large = result.data["k=1/limit=3.0"]
        for algorithm in ("kDC", "KDBB"):
            assert small[algorithm] <= large[algorithm]

    def test_figure8_runs(self):
        result = figure8(scale="tiny", k_values=(1,), time_limits=(3.0,), algorithms=("kDC",))
        assert result.name == "figure8"
        assert result.records


class TestRegistry:
    def test_all_experiments_registered(self):
        assert set(EXPERIMENTS) == {
            "table2", "table3", "table4", "table5", "table6", "table7", "figure7", "figure8",
        }

    def test_run_experiment_dispatch(self):
        result = run_experiment("table4", scale="tiny", k_values=(1,))
        assert result.name == "table4"

    def test_unknown_experiment(self):
        with pytest.raises(KeyError):
            run_experiment("table99")
