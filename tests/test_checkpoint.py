"""Journal primitives and subproblem-level solve checkpointing.

Covers the WAL record format (truncated/corrupt tails discarded with a
warning, never an error), the atomic snapshot write, and
:class:`~repro.core.checkpoint.SolveCheckpoint` semantics: meta-mismatch
discard, phantom-incumbent rejection, resume-only-unfinished-subproblems,
and the bit-identical interrupted-then-resumed sequential solve.
"""

from __future__ import annotations

import logging
import os
import pickle

import pytest

from repro.core.checkpoint import (
    SolveCheckpoint,
    append_record,
    atomic_write_bytes,
    checkpoint_meta,
    checkpoint_token,
    read_records,
)
from repro.core.config import SolverConfig
from repro.core.defective import is_k_defective_clique
from repro.core.solver import KDCSolver
from repro.core.prepared import prepare_instance
from repro.graphs import gnp_random_graph

CONFIG = SolverConfig(backend="bitset", decompose_threshold=1)
K = 2


@pytest.fixture
def graph():
    return gnp_random_graph(90, 0.3, seed=7)


@pytest.fixture
def meta():
    return checkpoint_meta("digest" * 10, K, "kDC", CONFIG)


class TestJournalPrimitives:
    def test_round_trip(self, tmp_path):
        path = str(tmp_path / "j.wal")
        with open(path, "ab") as fh:
            for payload in (b"one", b"two", b"", b"three"):
                append_record(fh, payload)
        scan = read_records(path)
        assert scan.records == [b"one", b"two", b"", b"three"]
        assert not scan.damaged
        assert scan.valid_bytes == os.path.getsize(path)

    def test_missing_file_scans_empty(self, tmp_path):
        scan = read_records(str(tmp_path / "absent.wal"))
        assert scan.records == [] and scan.valid_bytes == 0 and not scan.damaged

    def test_truncated_tail_discarded_with_warning(self, tmp_path, caplog):
        path = str(tmp_path / "j.wal")
        with open(path, "ab") as fh:
            append_record(fh, b"keep-me")
            append_record(fh, b"lost-in-the-crash")
        with open(path, "rb+") as fh:
            fh.truncate(os.path.getsize(path) - 5)
        with caplog.at_level(logging.WARNING, logger="repro.core.checkpoint"):
            scan = read_records(path)
        assert scan.records == [b"keep-me"]
        assert scan.damaged
        assert any("truncated or corrupt tail" in r.message for r in caplog.records)

    def test_truncated_header_discarded(self, tmp_path):
        path = str(tmp_path / "j.wal")
        with open(path, "ab") as fh:
            append_record(fh, b"keep-me")
            fh.write(b"\x03")  # a lone partial header byte
        scan = read_records(path)
        assert scan.records == [b"keep-me"] and scan.damaged

    def test_corrupt_checksum_discards_tail(self, tmp_path, caplog):
        path = str(tmp_path / "j.wal")
        with open(path, "ab") as fh:
            append_record(fh, b"keep-me")
            mark = fh.tell()
            append_record(fh, b"corrupt-me")
            append_record(fh, b"after-the-corruption")
        with open(path, "rb+") as fh:
            fh.seek(mark + 8 + 2)  # two bytes into the second payload
            fh.write(b"XX")
        with caplog.at_level(logging.WARNING, logger="repro.core.checkpoint"):
            scan = read_records(path)
        # Everything from the corrupt record on is discarded, even the
        # well-formed record behind it — appends only ever land on a tail
        # that scanned clean.
        assert scan.records == [b"keep-me"]
        assert scan.damaged and scan.valid_bytes == mark

    def test_atomic_write_replaces_and_leaves_no_temp(self, tmp_path):
        path = str(tmp_path / "snap.bin")
        atomic_write_bytes(path, b"v1")
        atomic_write_bytes(path, b"v2")
        with open(path, "rb") as fh:
            assert fh.read() == b"v2"
        assert os.listdir(tmp_path) == ["snap.bin"]


class TestSolveCheckpoint:
    def test_fresh_open_records_and_replays(self, tmp_path, meta):
        path = str(tmp_path / "c.wal")
        ckpt = SolveCheckpoint(path, meta)
        assert ckpt.completed == set()
        ckpt.record(5, [1, 2, 3])
        ckpt.record(9, [1, 2, 3, 4])
        ckpt.record(5, [1, 2, 3])  # duplicate: ignored
        ckpt.close()

        again = SolveCheckpoint(path, meta)
        assert again.completed == {5, 9}
        adj = {1: (2, 3, 4), 2: (1, 3, 4), 3: (1, 2, 4), 4: (1, 2, 3)}
        assert again.verified_incumbent(adj.__getitem__, 0) == [1, 2, 3, 4]
        again.close()

    def test_meta_mismatch_starts_fresh(self, tmp_path, meta, caplog):
        path = str(tmp_path / "c.wal")
        ckpt = SolveCheckpoint(path, meta)
        ckpt.record(1, [1, 2, 3])
        ckpt.close()
        other = checkpoint_meta("other-digest", K, "kDC", CONFIG)
        assert checkpoint_token(other) != checkpoint_token(meta)
        with caplog.at_level(logging.WARNING, logger="repro.core.checkpoint"):
            fresh = SolveCheckpoint(path, other)
        assert fresh.completed == set()
        assert any("different solve identity" in r.message for r in caplog.records)
        fresh.close()

    def test_damaged_tail_keeps_valid_prefix(self, tmp_path, meta):
        path = str(tmp_path / "c.wal")
        ckpt = SolveCheckpoint(path, meta)
        ckpt.record(1, [1, 2, 3])
        ckpt.record(2, [1, 2, 3])
        ckpt.close()
        with open(path, "ab") as fh:
            fh.write(b"\x99\x00\x00\x00garbage")  # crash mid-append
        again = SolveCheckpoint(path, meta)
        assert again.completed == {1, 2}
        # compaction on open rewrote a clean journal
        assert not read_records(path).damaged
        again.close()

    def test_phantom_incumbent_rejected(self, tmp_path, meta, caplog):
        """A journaled incumbent that is not a valid k-defective clique is discarded."""
        path = str(tmp_path / "c.wal")
        ckpt = SolveCheckpoint(path, meta)
        ckpt.record(1, [1, 2, 3, 4])  # journals the incumbent too
        ckpt.close()
        again = SolveCheckpoint(path, meta)
        # under THIS adjacency, {1,2,3,4} has 3 missing edges > k=2
        sparse = {1: (2,), 2: (1, 3), 3: (2, 4), 4: (3,)}
        with caplog.at_level(logging.WARNING, logger="repro.core.checkpoint"):
            assert again.verified_incumbent(sparse.__getitem__, K) == []
        assert any("not a valid" in r.message for r in caplog.records)
        again.close()

    def test_unknown_vertices_in_incumbent_rejected(self, tmp_path, meta):
        path = str(tmp_path / "c.wal")
        ckpt = SolveCheckpoint(path, meta)
        ckpt.record(1, [1, 2, 99])
        ckpt.close()
        again = SolveCheckpoint(path, meta)
        adj = {1: (2,), 2: (1,)}  # 99 is not a vertex
        assert again.verified_incumbent(adj.__getitem__, K) == []
        again.close()

    def test_complete_unlinks_close_keeps(self, tmp_path, meta):
        path = str(tmp_path / "c.wal")
        released = []
        ckpt = SolveCheckpoint(path, meta, on_release=lambda: released.append(1))
        ckpt.record(1, [1, 2, 3])
        ckpt.close()
        assert os.path.exists(path) and released == [1]
        ckpt.close()  # idempotent; on_release fires once
        assert released == [1]

        done = SolveCheckpoint(path, meta, on_release=lambda: released.append(2))
        done.complete()
        assert not os.path.exists(path) and released == [1, 2]


class TestCheckpointedResume:
    def _prepared(self, graph):
        return prepare_instance(graph, K, CONFIG)

    def test_sequential_resume_bit_identical(self, tmp_path, graph, meta):
        """Interrupt mid-decomposition, resume, and match the uninterrupted run exactly."""
        solver = KDCSolver(CONFIG)
        prepared = self._prepared(graph)
        reference = solver.solve_prepared(prepared, K)
        assert reference.optimal and reference.stats.subproblems > 0

        path = str(tmp_path / "c.wal")
        ckpt = SolveCheckpoint(path, meta)
        interrupted = solver.solve_prepared(
            prepared, K, node_limit=max(5, reference.stats.nodes // 3), checkpoint=ckpt
        )
        ckpt.close()
        assert not interrupted.optimal
        probe = SolveCheckpoint(path, meta)
        assert probe.completed  # progress was journaled
        probe.close()

        resumed_ckpt = SolveCheckpoint(path, meta)
        resumed = solver.solve_prepared(prepared, K, checkpoint=resumed_ckpt)
        resumed_ckpt.complete()
        assert resumed.optimal
        assert resumed.clique == reference.clique  # bit-identical, not just same size
        assert resumed.stats.subproblems_restored > 0
        assert resumed.stats.nodes < reference.stats.nodes

    def test_restored_incumbent_drives_pruning(self, tmp_path, graph, meta):
        """Resume after completing everything: zero anchors searched, same answer."""
        solver = KDCSolver(CONFIG)
        prepared = self._prepared(graph)
        path = str(tmp_path / "c.wal")
        first = SolveCheckpoint(path, meta)
        reference = solver.solve_prepared(prepared, K, checkpoint=first)
        first.close()  # keep the journal despite being optimal

        resumed_ckpt = SolveCheckpoint(path, meta)
        resumed = solver.solve_prepared(prepared, K, checkpoint=resumed_ckpt)
        resumed_ckpt.complete()
        assert resumed.optimal and resumed.size == reference.size
        assert resumed.stats.subproblems == 0
        assert resumed.stats.subproblems_restored > 0
        assert is_k_defective_clique(graph, resumed.clique, K)

    def test_parallel_resume_exact(self, tmp_path, graph):
        """A parallel solve consumes a sequential run's checkpoint and stays exact."""
        parallel_config = SolverConfig(backend="bitset", decompose_threshold=1, workers=2)
        meta = checkpoint_meta("g", K, "kDC", parallel_config)
        solver = KDCSolver(parallel_config)
        prepared = prepare_instance(graph, K, parallel_config)
        reference = KDCSolver(CONFIG).solve_prepared(prepare_instance(graph, K, CONFIG), K)

        path = str(tmp_path / "c.wal")
        ckpt = SolveCheckpoint(path, meta)
        interrupted = KDCSolver(parallel_config).solve_prepared(
            prepared, K, node_limit=max(5, reference.stats.nodes // 3), checkpoint=ckpt
        )
        ckpt.close()

        resumed_ckpt = SolveCheckpoint(path, meta)
        resumed = solver.solve_prepared(prepared, K, checkpoint=resumed_ckpt)
        resumed_ckpt.complete()
        assert resumed.optimal and resumed.size == reference.size
        assert is_k_defective_clique(graph, resumed.clique, K)

    def test_whole_graph_solve_ignores_checkpoint(self, tmp_path, meta):
        """Non-decomposed solves run fine with a checkpoint attached (no-op)."""
        small = gnp_random_graph(20, 0.4, seed=1)
        config = SolverConfig(backend="bitset", decompose_threshold=10_000)
        prepared = prepare_instance(small, K, config)
        ckpt = SolveCheckpoint(str(tmp_path / "c.wal"), checkpoint_meta("g", K, "kDC", config))
        result = KDCSolver(config).solve_prepared(prepared, K, checkpoint=ckpt)
        ckpt.complete()
        assert result.optimal and result.stats.subproblems_restored == 0


class TestCheckpointRobustness:
    def test_write_failure_disables_journaling_not_the_solve(self, tmp_path, meta, caplog):
        path = str(tmp_path / "c.wal")
        ckpt = SolveCheckpoint(path, meta)

        class _FailingHandle:
            def write(self, _data):
                raise OSError(28, "No space left on device")

            def flush(self):
                pass

            def fileno(self):
                raise OSError(9, "Bad file descriptor")

            def close(self):
                pass

        ckpt._fh.close()
        ckpt._fh = _FailingHandle()
        with caplog.at_level(logging.WARNING, logger="repro.core.checkpoint"):
            ckpt.record(1, [1, 2, 3])  # must not raise
            ckpt.record(2, [1, 2, 3])
        assert ckpt._broken
        assert ckpt.completed == set()
        assert any("journaling disabled" in r.message for r in caplog.records)
        ckpt.close()

    def test_token_is_stable_and_identity_sensitive(self):
        a = checkpoint_meta("d", 2, "kDC", CONFIG)
        assert checkpoint_token(a) == checkpoint_token(dict(a))
        for field, value in [
            ("digest", "e"), ("k", 3), ("algorithm", "kDC-t"),
            ("engine", "copy"), ("backend", "set"),
        ]:
            changed = dict(a)
            changed[field] = value
            assert checkpoint_token(changed) != checkpoint_token(a)

    def test_journal_survives_pickle_protocol_noise(self, tmp_path, meta):
        """A record that unpickles to garbage is ignored, not fatal."""
        path = str(tmp_path / "c.wal")
        ckpt = SolveCheckpoint(path, meta)
        ckpt.record(1, [1, 2, 3])
        ckpt.close()
        with open(path, "ab") as fh:
            append_record(fh, pickle.dumps(("unknown-kind", None)))
        again = SolveCheckpoint(path, meta)
        assert again.completed == {1}
        again.close()
