"""Tests for backend selection, the decomposition driver, and backend wiring."""

from __future__ import annotations

import pytest

from repro.bench.harness import make_solver, run_instance
from repro.core import (
    BACKEND_NAMES,
    KDCSolver,
    SolverConfig,
    is_k_defective_clique,
    solve_decomposed,
    variant_config,
)
from repro.core.result import SearchStats
from repro.exceptions import BudgetExceededError, InvalidParameterError
from repro.graphs import Graph, complete_graph, gnp_random_graph, planted_defective_clique_graph


class TestConfig:
    def test_backend_names(self):
        assert set(BACKEND_NAMES) == {"auto", "set", "bitset"}

    def test_default_backend_is_auto(self):
        assert SolverConfig().backend == "auto"

    def test_invalid_backend_rejected(self):
        with pytest.raises(InvalidParameterError):
            SolverConfig(backend="gpu")

    def test_invalid_decompose_threshold_rejected(self):
        with pytest.raises(InvalidParameterError):
            SolverConfig(decompose_threshold=0)

    def test_variants_accept_backend_override(self):
        from dataclasses import replace

        for name in ("kDC", "kDC-t"):
            config = replace(variant_config(name), backend="bitset")
            assert config.backend == "bitset"


class TestDispatch:
    def test_explicit_backends_agree(self):
        g = gnp_random_graph(60, 0.3, seed=1)
        for k in (0, 2, 4):
            set_result = KDCSolver(SolverConfig(backend="set")).solve(g, k)
            bit_result = KDCSolver(SolverConfig(backend="bitset")).solve(g, k)
            assert set_result.size == bit_result.size
            assert set_result.stats.backend == "set"
            assert bit_result.stats.backend == "bitset"

    def test_auto_uses_bitset_on_large_instances(self):
        g = gnp_random_graph(120, 0.2, seed=2)
        result = KDCSolver(SolverConfig(backend="auto")).solve(g, 2)
        assert result.stats.backend == "bitset"

    def test_auto_uses_set_on_tiny_instances(self):
        result = KDCSolver(SolverConfig(backend="auto")).solve(complete_graph(6), 1)
        assert result.stats.backend == "set"

    def test_planted_clique_recovered_by_bitset(self):
        g = planted_defective_clique_graph(90, 12, 3, background_p=0.05, seed=3)
        result = KDCSolver(SolverConfig(backend="bitset")).solve(g, 3)
        assert result.size >= 12
        assert is_k_defective_clique(g, result.clique, 3)

    def test_string_labels_roundtrip_through_bitset(self):
        g = Graph(edges=[("a", "b"), ("b", "c"), ("a", "c"), ("c", "d")])
        result = KDCSolver(SolverConfig(backend="bitset")).solve(g, 0)
        assert set(result.clique) == {"a", "b", "c"}


class TestDecomposition:
    def test_forced_decomposition_matches_set_backend(self):
        for seed in range(5):
            g = gnp_random_graph(50, 0.25, seed=seed)
            k = seed % 3
            expected = KDCSolver(SolverConfig(backend="set")).solve(g, k).size
            result = KDCSolver(
                SolverConfig(backend="bitset", decompose_threshold=1)
            ).solve(g, k)
            assert result.size == expected
            assert is_k_defective_clique(g, result.clique, k)

    def test_solve_decomposed_requires_usable_incumbent(self):
        g = gnp_random_graph(30, 0.3, seed=9)
        relabeled, _, _ = g.relabel()
        with pytest.raises(ValueError):
            solve_decomposed(
                relabeled, k=3, config=SolverConfig(), stats=SearchStats(),
                check_budget=lambda: None, incumbent=[0],
            )

    def test_small_incumbent_falls_back_to_whole_graph(self):
        # With the heuristic disabled the incumbent starts empty, so the
        # solver must not decompose even above the threshold.
        g = gnp_random_graph(40, 0.2, seed=4)
        config = SolverConfig(
            backend="bitset", decompose_threshold=1, initial_heuristic="none"
        )
        expected = KDCSolver(SolverConfig(backend="set")).solve(g, 5).size
        assert KDCSolver(config).solve(g, 5).size == expected

    def test_huge_undecomposable_instance_routed_to_set_backend(self, monkeypatch):
        # When the decomposition cannot engage (empty incumbent) the
        # whole-graph bitset search would allocate O(n^2/8) bytes; above the
        # cap the solver must route to the set backend instead.
        from repro.core import solver as solver_module

        monkeypatch.setattr(solver_module, "_BITSET_WHOLE_GRAPH_MAX_VERTICES", 10)
        g = gnp_random_graph(40, 0.2, seed=4)
        config = SolverConfig(backend="bitset", initial_heuristic="none")
        result = KDCSolver(config).solve(g, 3)
        assert result.stats.backend == "set"
        expected = KDCSolver(SolverConfig(backend="set")).solve(g, 3).size
        assert result.size == expected


class TestBudgetsOnBitset:
    def test_node_limit_interrupts(self):
        g = gnp_random_graph(70, 0.4, seed=5)
        config = SolverConfig(backend="bitset", node_limit=3)
        result = KDCSolver(config).solve(g, 3)
        assert not result.optimal
        assert is_k_defective_clique(g, result.clique, 3)

    def test_result_never_worse_than_heuristic(self):
        g = gnp_random_graph(80, 0.3, seed=6)
        config = SolverConfig(backend="bitset", node_limit=2)
        result = KDCSolver(config).solve(g, 2)
        assert result.size >= result.stats.initial_solution_size


class TestHarnessWiring:
    def test_make_solver_backend_override(self):
        solver = make_solver("kDC", backend="bitset")
        assert solver.config.backend == "bitset"

    def test_make_solver_rejects_backend_for_baselines(self):
        for name in ("KDBB", "MADEC"):
            with pytest.raises(InvalidParameterError):
                make_solver(name, backend="bitset")

    def test_run_instance_records_backend(self):
        g = gnp_random_graph(40, 0.3, seed=7)
        record = run_instance("kDC", g, 2, time_limit=10.0, backend="bitset")
        assert record.backend == "bitset"
        assert record.as_dict()["backend"] == "bitset"

    def test_make_solver_engine_override(self):
        assert make_solver("kDC", engine="copy").config.engine == "copy"
        assert make_solver("kDC").config.engine == "trail"

    def test_make_solver_rejects_engine_for_baselines(self):
        with pytest.raises(InvalidParameterError):
            make_solver("KDBB", engine="trail")

    def test_run_instance_records_engine_and_trail_counters(self):
        g = gnp_random_graph(60, 0.3, seed=7)
        record = run_instance("kDC", g, 2, time_limit=10.0, backend="bitset", engine="trail")
        assert record.engine == "trail"
        assert record.trail_pushes == record.trail_pops > 0
        data = record.as_dict()
        for key in ("engine", "trail_pushes", "trail_pops", "dirty_drained",
                    "recolor_full", "recolor_repair"):
            assert key in data
        copy_record = run_instance("kDC", g, 2, time_limit=10.0, backend="bitset", engine="copy")
        assert copy_record.engine == "copy"
        assert copy_record.trail_pushes == 0
        assert record.size == copy_record.size

    def test_run_instance_baseline_backend_empty(self):
        record = run_instance("KDBB", complete_graph(5), 1, time_limit=10.0)
        assert record.backend == ""


class TestCLI:
    def test_solve_with_backend_flag(self, tmp_path, capsys):
        from repro.cli import main
        from repro.graphs import write_edge_list

        g = gnp_random_graph(40, 0.3, seed=8)
        path = tmp_path / "g.edges"
        write_edge_list(g, path)
        sizes = {}
        for backend in ("set", "bitset"):
            assert main(["solve", str(path), "-k", "2", "--backend", backend]) == 0
            out = capsys.readouterr().out
            assert "|C|=" in out
            sizes[backend] = out
        assert sizes["set"].split("|C|=")[1][:2] == sizes["bitset"].split("|C|=")[1][:2]

    def test_solve_with_engine_and_stats_flags(self, tmp_path, capsys):
        from repro.cli import main
        from repro.graphs import write_edge_list

        g = gnp_random_graph(60, 0.3, seed=9)
        path = tmp_path / "g.edges"
        write_edge_list(g, path)
        outputs = {}
        for engine in ("copy", "trail"):
            assert main([
                "solve", str(path), "-k", "2",
                "--backend", "bitset", "--engine", engine, "--stats",
            ]) == 0
            out = capsys.readouterr().out
            assert f"engine: {engine}" in out
            for counter in ("nodes:", "trail_pushes:", "dirty_drained:",
                            "recolor_full:", "recolor_repair:"):
                assert counter in out
            outputs[engine] = out
        assert outputs["copy"].split("|C|=")[1][:2] == outputs["trail"].split("|C|=")[1][:2]
