"""Tests for the benchmark harness (solver registry, timed runs, aggregation)."""

from __future__ import annotations

import pytest

from repro.bench import (
    ALGORITHMS,
    InstanceRecord,
    count_solved,
    make_solver,
    run_collection,
    run_instance,
    solved_within,
)
from repro.baselines import KDBBSolver, MADECSolver
from repro.core import KDCSolver
from repro.datasets import get_collection
from repro.exceptions import InvalidParameterError
from repro.graphs import complete_graph, gnp_random_graph


class TestMakeSolver:
    def test_kdc_variants(self):
        for name in ("kDC", "kDC-t", "kDC/UB1", "kDC/RR3&4", "kDC-Degen"):
            solver = make_solver(name, time_limit=1.0)
            assert isinstance(solver, KDCSolver)
            assert solver.name == name

    def test_baselines(self):
        assert isinstance(make_solver("KDBB"), KDBBSolver)
        assert isinstance(make_solver("MADEC"), MADECSolver)
        assert isinstance(make_solver("MADEC+"), MADECSolver)

    def test_unknown_algorithm(self):
        with pytest.raises(InvalidParameterError):
            make_solver("simulated-annealing")

    def test_registry_names_constructible(self):
        for name in ALGORITHMS:
            make_solver(name)


class TestRunInstance:
    def test_record_fields(self):
        g = complete_graph(6)
        record = run_instance("kDC", g, 1, time_limit=5.0, collection="c", instance="k6")
        assert record.solved
        assert record.size == 6
        assert record.algorithm == "kDC"
        assert record.collection == "c"
        assert record.instance == "k6"
        assert record.elapsed_seconds >= 0.0
        data = record.as_dict()
        assert data["k"] == 1 and data["solved"] is True

    def test_unsolved_when_budget_tiny(self):
        g = gnp_random_graph(150, 0.3, seed=1)
        record = run_instance("MADEC", g, 4, time_limit=0.01)
        assert record.elapsed_seconds <= 2.0
        # whether it solved depends on the machine, but the record must be consistent
        assert record.size >= 1


class TestRunCollection:
    def test_runs_every_combination(self):
        instances = get_collection("dimacs_snap_like", scale="tiny")[:2]
        algorithms = ("kDC", "KDBB")
        k_values = (1,)
        records = run_collection(algorithms, instances, k_values, time_limit=5.0)
        assert len(records) == len(instances) * len(algorithms) * len(k_values)
        assert {r.algorithm for r in records} == set(algorithms)

    def test_progress_callback(self):
        instances = get_collection("dimacs_snap_like", scale="tiny")[:1]
        seen = []
        run_collection(("kDC",), instances, (1,), time_limit=5.0, progress=seen.append)
        assert len(seen) == 1
        assert isinstance(seen[0], InstanceRecord)


class TestAggregation:
    def _record(self, algorithm, k, solved, elapsed=0.1):
        return InstanceRecord(
            algorithm=algorithm,
            collection="c",
            instance="i",
            k=k,
            solved=solved,
            size=3,
            elapsed_seconds=elapsed,
            nodes=10,
        )

    def test_count_solved(self):
        records = [
            self._record("kDC", 1, True),
            self._record("kDC", 1, True),
            self._record("kDC", 1, False),
            self._record("KDBB", 1, True),
        ]
        table = count_solved(records)
        assert table["kDC"][1] == 2
        assert table["KDBB"][1] == 1

    def test_solved_within(self):
        records = [
            self._record("kDC", 1, True, elapsed=0.05),
            self._record("kDC", 1, True, elapsed=2.0),
        ]
        assert solved_within(records, 0.1)["kDC"][1] == 1
        assert solved_within(records, 10.0)["kDC"][1] == 2
