"""Tests for degeneracy ordering and core numbers."""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graphs import (
    Graph,
    complete_graph,
    core_numbers,
    cycle_graph,
    degeneracy,
    degeneracy_ordering,
    gnp_random_graph,
    path_graph,
    star_graph,
)


def _is_valid_degeneracy_ordering(graph: Graph, ordering) -> bool:
    """Check Definition 2.3 directly: each vertex has minimum degree in the remaining suffix."""
    remaining = set(ordering)
    position = {v: i for i, v in enumerate(ordering)}
    for v in ordering:
        deg_v = sum(1 for u in graph.neighbors(v) if u in remaining)
        for u in remaining:
            deg_u = sum(1 for w in graph.neighbors(u) if w in remaining)
            if deg_u < deg_v:
                return False
        remaining.discard(v)
    return len(position) == graph.num_vertices


class TestKnownGraphs:
    def test_empty_graph(self):
        result = degeneracy_ordering(Graph())
        assert result.ordering == []
        assert result.degeneracy == 0

    def test_single_vertex(self):
        result = degeneracy_ordering(Graph(vertices=[7]))
        assert result.ordering == [7]
        assert result.degeneracy == 0

    def test_complete_graph(self):
        assert degeneracy(complete_graph(6)) == 5

    def test_cycle(self):
        assert degeneracy(cycle_graph(8)) == 2

    def test_path(self):
        assert degeneracy(path_graph(6)) == 1

    def test_star(self):
        assert degeneracy(star_graph(9)) == 1

    def test_figure2_degeneracy(self, fig2):
        # The paper states the example graph has degeneracy 4.
        assert degeneracy(fig2) == 4

    def test_figure2_ordering_valid(self, fig2):
        result = degeneracy_ordering(fig2)
        assert _is_valid_degeneracy_ordering(fig2, result.ordering)
        # v7 has the unique minimum degree (3) and must be peeled first.
        assert result.ordering[0] == 7

    def test_core_numbers_complete(self):
        cores = core_numbers(complete_graph(4))
        assert all(c == 3 for c in cores.values())

    def test_core_numbers_star(self):
        cores = core_numbers(star_graph(5))
        assert all(c == 1 for c in cores.values())

    def test_position_mapping(self):
        result = degeneracy_ordering(path_graph(5))
        for i, v in enumerate(result.ordering):
            assert result.position[v] == i
            assert result.rank(v) == i

    def test_higher_ranked_neighbors(self):
        g = complete_graph(4)
        result = degeneracy_ordering(g)
        first = result.ordering[0]
        higher = result.higher_ranked_neighbors(g, first)
        assert set(higher) == set(g.vertices()) - {first}


class TestValidityProperties:
    @given(st.integers(min_value=1, max_value=18), st.floats(min_value=0.0, max_value=1.0),
           st.integers(min_value=0, max_value=1000))
    @settings(max_examples=40, deadline=None)
    def test_ordering_is_valid(self, n, p, seed):
        g = gnp_random_graph(n, p, seed=seed)
        result = degeneracy_ordering(g)
        assert sorted(result.ordering) == sorted(g.vertices())
        assert _is_valid_degeneracy_ordering(g, result.ordering)

    @given(st.integers(min_value=1, max_value=18), st.floats(min_value=0.0, max_value=1.0),
           st.integers(min_value=0, max_value=1000))
    @settings(max_examples=40, deadline=None)
    def test_degeneracy_bounds(self, n, p, seed):
        g = gnp_random_graph(n, p, seed=seed)
        d = degeneracy(g)
        if g.num_edges == 0:
            assert d == 0
        else:
            # Every graph with m edges satisfies delta(G) <= sqrt(2m) (and the
            # paper quotes delta(G) <= sqrt(m) for simple graphs).
            assert d <= max(1, int((2 * g.num_edges) ** 0.5) + 1)
            max_degree = max(g.degrees().values())
            assert d <= max_degree

    @given(st.integers(min_value=1, max_value=15), st.floats(min_value=0.0, max_value=1.0),
           st.integers(min_value=0, max_value=1000))
    @settings(max_examples=30, deadline=None)
    def test_core_number_consistency(self, n, p, seed):
        g = gnp_random_graph(n, p, seed=seed)
        result = degeneracy_ordering(g)
        assert result.degeneracy == max(result.core_number.values())
        # Core numbers never exceed the vertex degree.
        for v, core in result.core_number.items():
            assert core <= g.degree(v)
