"""Tests for the SQLite experiment store, the resumable matrix runner, the
regression comparator, and the ``repro experiments run/compare/export`` CLI."""

from __future__ import annotations

import json
import os

import pytest

from repro.bench.runner import MatrixSpec, run_matrix
from repro.bench.store import (
    KEYFIELDS,
    ComparisonReport,
    ExperimentStore,
    compare_runs,
    split_record,
)
from repro.cli import main
from repro.exceptions import InvalidParameterError


def _keyfields(instance="g0", k=1, algorithm="kDC", backend="bitset", engine="trail", workers=1):
    return {
        "collection": "synthetic",
        "instance": instance,
        "k": k,
        "algorithm": algorithm,
        "backend": backend,
        "engine": engine,
        "workers": workers,
    }


def _seed_run(store, label, cells):
    """Record one synthetic run; each cell is (instance, backend, engine, nps).

    Every row takes 1 synthetic second, so node throughput == nodes == nps.
    """
    run_id = store.begin_run(label=label)
    for instance, backend, engine, nps in cells:
        store.record(
            run_id,
            _keyfields(instance=instance, backend=backend, engine=engine),
            {
                "size": 5,
                "optimal": True,
                "nodes": int(nps),
                "elapsed_seconds": 1.0,
            },
        )
    store.finish_run(run_id)
    return run_id


class TestExperimentStore:
    def test_schema_roundtrip(self, tmp_path):
        path = str(tmp_path / "exp.sqlite")
        with ExperimentStore(path) as store:
            run_id = store.begin_run(label="unit", meta={"note": "hi"})
            eid = store.record(
                run_id,
                _keyfields(),
                {"size": 4, "optimal": True, "nodes": 500, "elapsed_seconds": 0.25},
                extra={"custom": 7},
            )
            store.log(run_id, "cell_done", {"x": 1}, experiment_id=eid)
            store.finish_run(run_id)
        # reopen from disk: everything persisted
        with ExperimentStore(path) as store:
            run = store.run(run_id)
            assert run["status"] == "complete"
            assert run["meta"] == {"note": "hi"}
            assert run["python"]  # provenance captured
            rows = store.rows(run_id)
            assert len(rows) == 1
            row = rows[0]
            assert row["instance"] == "g0"
            assert row["optimal"] == 1
            assert row["node_throughput"] == pytest.approx(2000.0)  # 500 / 0.25
            assert row["extra"] == {"custom": 7}
            logs = store.logs(run_id)
            assert [log["event"] for log in logs] == ["cell_done"]
            assert logs[0]["payload"] == {"x": 1}
            payload = store.export_run(run_id)
            assert payload["run"]["run_id"] == run_id
            assert len(payload["experiments"]) == 1

    def test_cell_uniqueness_and_replace(self):
        with ExperimentStore() as store:
            run_id = store.begin_run()
            store.record(run_id, _keyfields(), {"nodes": 10, "elapsed_seconds": 1.0})
            assert store.has_cell(run_id, _keyfields())
            assert not store.has_cell(run_id, _keyfields(instance="other"))
            # replace keeps one row per cell, latest measurement wins
            store.record(run_id, _keyfields(), {"nodes": 20, "elapsed_seconds": 1.0})
            rows = store.rows(run_id)
            assert len(rows) == 1
            assert rows[0]["nodes"] == 20
            with pytest.raises(Exception):
                store.record(
                    run_id, _keyfields(), {"nodes": 30}, on_conflict="fail"
                )

    def test_zero_elapsed_has_no_throughput(self):
        with ExperimentStore() as store:
            run_id = store.begin_run()
            store.record(run_id, _keyfields(), {"nodes": 10, "elapsed_seconds": 0.0})
            assert store.rows(run_id)[0]["node_throughput"] is None

    def test_latest_and_resumable_queries(self):
        with ExperimentStore() as store:
            empty = store.begin_run(label="empty")
            full = store.begin_run(label="full", spec_digest="abc")
            store.record(full, _keyfields(), {"nodes": 1, "elapsed_seconds": 1.0})
            assert store.latest_run() == full
            assert store.latest_run(with_cells=True) == full
            assert store.latest_run(with_cells=True, exclude=(full,)) is None
            assert store.find_resumable("abc") == full
            store.finish_run(full, status="complete")
            assert store.find_resumable("abc") is None
            assert store.latest_run(label="empty") == empty

    def test_invalid_arguments(self):
        with ExperimentStore() as store:
            run_id = store.begin_run()
            with pytest.raises(InvalidParameterError):
                store.finish_run(run_id, status="bogus")
            with pytest.raises(InvalidParameterError):
                store.record(run_id, _keyfields(), {}, on_conflict="bogus")
            with pytest.raises(InvalidParameterError):
                store.run(999)

    def test_split_record_maps_instance_record_shape(self):
        record = {
            "algorithm": "kDC",
            "collection": "c",
            "instance": "i",
            "k": 2,
            "solved": True,
            "size": 9,
            "elapsed_seconds": 0.5,
            "nodes": 100,
            "backend": "bitset",
            "workers": 1,
            "engine": "trail",
            "trail_pushes": 17,
            "prepare_ms": 1.5,
        }
        keyfields, resultfields, extra = split_record(record)
        assert set(keyfields) == set(KEYFIELDS)
        assert resultfields["optimal"] is True  # "solved" is mapped
        assert resultfields["prepare_ms"] == 1.5
        assert extra == {"trail_pushes": 17}


@pytest.fixture
def smoke_spec():
    """A 4-cell grid small enough for tier-1: 2 instances x (set + bitset)."""
    return MatrixSpec(
        collections=("facebook_like",),
        scale="tiny",
        k_values=(1,),
        algorithms=("kDC",),
        backends=("set", "bitset"),
        engines=("trail",),
        workers=(1,),
        time_limit=5.0,
        instance_limit=2,
    )


class TestMatrixRunner:
    def test_grid_normalisation(self, smoke_spec):
        cells = smoke_spec.cell_keyfields(smoke_spec.instances())
        assert len(cells) == 4  # 2 instances x {set(engine collapsed), bitset:trail}
        set_cells = [c for c in cells if c["backend"] == "set"]
        assert all(c["engine"] == "" for c in set_cells)
        baseline_spec = MatrixSpec(
            collections=("facebook_like",),
            algorithms=("kDC", "KDBB"),
            backends=("bitset",),
            engines=("trail",),
            instance_limit=1,
        )
        cells = baseline_spec.cell_keyfields(baseline_spec.instances())
        kdbb = [c for c in cells if c["algorithm"] == "KDBB"]
        assert len(kdbb) == 1
        assert kdbb[0]["backend"] == "" and kdbb[0]["workers"] == 0

    def test_spec_digest_is_stable_and_discriminating(self, smoke_spec):
        assert smoke_spec.digest() == smoke_spec.digest()
        other = MatrixSpec(
            collections=("facebook_like",),
            scale="tiny",
            k_values=(2,),  # only k differs
            algorithms=("kDC",),
            backends=("set", "bitset"),
            engines=("trail",),
            workers=(1,),
            time_limit=5.0,
            instance_limit=2,
        )
        assert other.digest() != smoke_spec.digest()

    def test_spec_validation(self):
        with pytest.raises(InvalidParameterError):
            MatrixSpec(collections=("nope",))
        with pytest.raises(InvalidParameterError):
            MatrixSpec(backends=("vhdl",))
        with pytest.raises(InvalidParameterError):
            MatrixSpec(k_values=())
        with pytest.raises(InvalidParameterError):
            MatrixSpec(workers=(0,))

    def test_interrupted_campaign_resumes_from_checkpoint(self, smoke_spec):
        """The acceptance criterion: a re-run executes only the missing cells."""
        executed_cells = []

        def progress(keyfields, record):
            executed_cells.append(tuple(keyfields[f] for f in KEYFIELDS))

        with ExperimentStore() as store:
            partial = run_matrix(
                store, smoke_spec, max_cells=1, progress=progress
            )
            assert partial.status == "partial"
            assert partial.executed == 1 and partial.remaining == 3
            assert store.run(partial.run_id)["status"] == "partial"

            resumed = run_matrix(store, smoke_spec, progress=progress)
            # same run row continued, not a fresh campaign
            assert resumed.run_id == partial.run_id
            assert resumed.resumed
            # only the 3 missing cells executed; the checkpointed one skipped
            assert resumed.executed == 3
            assert resumed.skipped == 1
            assert resumed.status == "complete"
            # no cell ever ran twice
            assert len(executed_cells) == len(set(executed_cells)) == 4
            assert len(store.rows(partial.run_id)) == 4
            events = [log["event"] for log in store.logs(partial.run_id)]
            assert events[0] == "begin"
            assert "resume" in events

            # a third invocation finds nothing resumable and nothing to do
            fresh = run_matrix(store, smoke_spec)
            assert fresh.run_id != partial.run_id
            assert fresh.executed == 4  # complete runs are not resumed

    def test_keyboard_interrupt_marks_run_and_resumes(self, smoke_spec):
        def exploding_progress(keyfields, record):
            raise KeyboardInterrupt

        with ExperimentStore() as store:
            with pytest.raises(KeyboardInterrupt):
                run_matrix(store, smoke_spec, progress=exploding_progress)
            run_id = store.latest_run()
            assert store.run(run_id)["status"] == "interrupted"
            assert store.logs(run_id)[-1]["event"] == "interrupted"
            # the cell completed before the interrupt was checkpointed
            assert len(store.rows(run_id)) == 1

            report = run_matrix(store, smoke_spec)
            assert report.run_id == run_id
            assert report.skipped == 1 and report.executed == 3
            assert report.status == "complete"

    def test_records_carry_real_measurements(self, smoke_spec):
        with ExperimentStore() as store:
            report = run_matrix(store, smoke_spec)
            rows = store.rows(report.run_id)
            assert len(rows) == 4
            for row in rows:
                assert row["optimal"] == 1
                assert row["size"] > 0
                assert row["elapsed_seconds"] > 0
                # requested axes are the cell identity
                assert row["backend"] in ("set", "bitset")
            # set and bitset agree on every instance (mini differential)
            by_instance = {}
            for row in rows:
                by_instance.setdefault(row["instance"], set()).add(row["size"])
            assert all(len(sizes) == 1 for sizes in by_instance.values())


class TestCompareRuns:
    CELLS = [
        ("g0", "set", "", 100),
        ("g1", "set", "", 120),
        ("g0", "bitset", "trail", 800),
        ("g1", "bitset", "trail", 1000),
    ]

    def test_identical_rerun_passes(self):
        with ExperimentStore() as store:
            base = _seed_run(store, "base", self.CELLS)
            cand = _seed_run(store, "cand", self.CELLS)
            report = compare_runs(store.rows(base), store.rows(cand))
            assert isinstance(report, ComparisonReport)
            assert report.ok
            assert len(report.cells) == 2  # (set, "") and (bitset, trail)
            assert "PASS" in report.format_table()

    def test_regression_over_threshold_fails(self):
        degraded = [
            ("g0", "set", "", 100),
            ("g1", "set", "", 120),
            ("g0", "bitset", "trail", 600),  # median 800 -> 650: -18.75%...
            ("g1", "bitset", "trail", 700),  # both down: median 900 -> 650, -27.8%
        ]
        with ExperimentStore() as store:
            base = _seed_run(store, "base", self.CELLS)
            cand = _seed_run(store, "cand", degraded)
            report = compare_runs(store.rows(base), store.rows(cand), threshold=0.20)
            assert not report.ok
            regressed = report.regressions
            assert [(c.backend, c.engine) for c in regressed] == [("bitset", "trail")]
            assert regressed[0].ratio == pytest.approx(650 / 900)
            assert "FAIL" in report.format_table()
            # the set cell did not move and stays green
            set_cell = next(c for c in report.cells if c.backend == "set")
            assert not set_cell.regressed

    def test_small_drop_within_threshold_passes(self):
        slightly_slower = [(i, b, e, nps * 0.9) for i, b, e, nps in self.CELLS]
        with ExperimentStore() as store:
            base = _seed_run(store, "base", self.CELLS)
            cand = _seed_run(store, "cand", slightly_slower)
            assert compare_runs(store.rows(base), store.rows(cand)).ok

    def test_cache_hits_and_nodeless_rows_are_ignored(self):
        with ExperimentStore() as store:
            base = _seed_run(store, "base", self.CELLS)
            cand = store.begin_run(label="cand")
            for instance, backend, engine, nps in self.CELLS:
                store.record(
                    cand,
                    _keyfields(instance=instance, backend=backend, engine=engine),
                    {"nodes": int(nps), "elapsed_seconds": 1.0},
                )
            # poison rows that would tank the medians if they counted
            store.record(
                cand,
                _keyfields(instance="cached", backend="bitset", engine="trail"),
                {"nodes": 1_000_000, "elapsed_seconds": 0.001, "cache_hit": True},
            )
            store.record(
                cand,
                _keyfields(instance="preprocessed-away", backend="bitset", engine="trail"),
                {"nodes": 0, "elapsed_seconds": 0.5},
            )
            report = compare_runs(store.rows(base), store.rows(cand))
            assert report.ok
            bitset = next(c for c in report.cells if c.backend == "bitset")
            assert bitset.candidate_rows == 2  # the poison rows were excluded

    def test_one_sided_cells_never_flag(self):
        with ExperimentStore() as store:
            base = _seed_run(store, "base", [("g0", "set", "", 100)])
            cand = _seed_run(store, "cand", [("g0", "bitset", "trail", 100)])
            report = compare_runs(store.rows(base), store.rows(cand))
            assert report.ok
            assert len(report.cells) == 2

    def test_threshold_validation(self):
        with pytest.raises(InvalidParameterError):
            compare_runs([], [], threshold=0.0)
        with pytest.raises(InvalidParameterError):
            compare_runs([], [], threshold=1.5)


class TestExperimentsCli:
    def _run_args(self, db, extra=()):
        return [
            "experiments", "run", "--db", db,
            "--collections", "facebook_like", "--scale", "tiny",
            "--instance-limit", "1", "--k", "1",
            "--algorithms", "kDC", "--backends", "set", "bitset",
            "--engines", "trail", "--workers", "1", "--time-limit", "5",
            *extra,
        ]

    def test_run_compare_export_round_trip(self, tmp_path, capsys):
        db = str(tmp_path / "exp.sqlite")
        assert main(self._run_args(db)) == 0
        out = capsys.readouterr().out
        assert "complete" in out

        # identical re-run (a second run row): compare passes, exit 0
        assert main(self._run_args(db, ["--no-resume"])) == 0
        capsys.readouterr()
        assert main(["experiments", "compare", "--db", db]) == 0
        assert "PASS" in capsys.readouterr().out

        out_path = str(tmp_path / "run.json")
        assert main(["experiments", "export", "--db", db, "--out", out_path]) == 0
        payload = json.loads(open(out_path).read())
        assert payload["run"]["status"] == "complete"
        assert len(payload["experiments"]) == 2

    def test_run_resumes_after_max_cells(self, tmp_path, capsys):
        db = str(tmp_path / "exp.sqlite")
        assert main(self._run_args(db, ["--max-cells", "1"])) == 0
        assert "partial" in capsys.readouterr().out
        assert main(self._run_args(db)) == 0
        out = capsys.readouterr().out
        assert "1 checkpointed" in out and "complete" in out

    def test_compare_detects_synthetic_regression(self, tmp_path, capsys):
        db = str(tmp_path / "exp.sqlite")
        cells = TestCompareRuns.CELLS
        with ExperimentStore(db) as store:
            _seed_run(store, "base", cells)
            _seed_run(store, "cand", [(i, b, e, nps * 0.5) for i, b, e, nps in cells])
        assert main(["experiments", "compare", "--db", db]) == 1
        out = capsys.readouterr().out
        assert "FAIL" in out and "REGRESSED" in out

    def test_compare_across_two_stores(self, tmp_path, capsys):
        baseline_db = str(tmp_path / "baseline.sqlite")
        candidate_db = str(tmp_path / "candidate.sqlite")
        cells = TestCompareRuns.CELLS
        with ExperimentStore(baseline_db) as store:
            _seed_run(store, "base", cells)
        with ExperimentStore(candidate_db) as store:
            _seed_run(store, "cand", cells)
        assert (
            main(["experiments", "compare", "--db", candidate_db, "--baseline-db", baseline_db])
            == 0
        )
        capsys.readouterr()
        # regressed candidate against the same baseline store
        with ExperimentStore(candidate_db) as store:
            _seed_run(store, "cand2", [(i, b, e, nps * 0.5) for i, b, e, nps in cells])
        assert (
            main(["experiments", "compare", "--db", candidate_db, "--baseline-db", baseline_db])
            == 1
        )
        capsys.readouterr()

    def test_compare_empty_store_is_an_error(self, tmp_path, capsys):
        db = str(tmp_path / "empty.sqlite")
        ExperimentStore(db).close()
        assert main(["experiments", "compare", "--db", db]) == 2
        assert "error:" in capsys.readouterr().err

    def test_paper_experiments_still_work(self, capsys):
        assert main(["experiments", "table4", "--scale", "tiny"]) == 0
        assert "Table 4" in capsys.readouterr().out
