"""Unit tests for the Graph data structure."""

from __future__ import annotations

import pytest

from repro.exceptions import EdgeNotFoundError, GraphError, SelfLoopError, VertexNotFoundError
from repro.graphs import Graph, complete_graph


class TestConstruction:
    def test_empty_graph(self):
        g = Graph()
        assert g.num_vertices == 0
        assert g.num_edges == 0
        assert g.vertices() == []
        assert g.edges() == []

    def test_from_edges(self):
        g = Graph.from_edges([(0, 1), (1, 2)])
        assert g.num_vertices == 3
        assert g.num_edges == 2
        assert g.has_edge(0, 1) and g.has_edge(1, 0)

    def test_from_adjacency(self):
        g = Graph.from_adjacency({0: [1, 2], 1: [2], 3: []})
        assert g.num_vertices == 4
        assert g.num_edges == 3
        assert g.degree(3) == 0

    def test_vertices_only(self):
        g = Graph(vertices=range(5))
        assert g.num_vertices == 5
        assert g.num_edges == 0

    def test_complete(self):
        g = Graph.complete(5)
        assert g.num_vertices == 5
        assert g.num_edges == 10
        assert g.is_clique()

    def test_empty_classmethod(self):
        g = Graph.empty(4)
        assert g.num_vertices == 4
        assert g.num_edges == 0

    def test_duplicate_edges_collapse(self):
        g = Graph(edges=[(0, 1), (0, 1), (1, 0)])
        assert g.num_edges == 1

    def test_self_loop_rejected(self):
        g = Graph()
        with pytest.raises(SelfLoopError):
            g.add_edge(3, 3)

    def test_copy_is_independent(self):
        g = Graph(edges=[(0, 1)])
        h = g.copy()
        h.add_edge(1, 2)
        assert g.num_vertices == 2
        assert h.num_vertices == 3
        assert g.num_edges == 1

    def test_repr(self):
        g = Graph(edges=[(0, 1)])
        assert "n=2" in repr(g) and "m=1" in repr(g)

    def test_equality(self):
        a = Graph(edges=[(0, 1), (1, 2)])
        b = Graph(edges=[(1, 2), (0, 1)])
        c = Graph(edges=[(0, 1)])
        assert a == b
        assert a != c
        assert (a == 42) is False or (a.__eq__(42) is NotImplemented)

    def test_unhashable(self):
        with pytest.raises(TypeError):
            hash(Graph())

    def test_copy_deep_copies_isolated_vertex_adjacency(self):
        # regression: the copy must not share adjacency sets even for
        # vertices that have no neighbours at copy time
        g = Graph(vertices=[0, 1])
        h = g.copy()
        h.add_edge(0, 1)
        assert h.has_edge(0, 1)
        assert not g.has_edge(0, 1)
        assert g.degree(0) == 0 and g.degree(1) == 0


class TestContentDigest:
    def test_stable_under_insertion_order(self):
        a = Graph()
        for u, v in [(0, 1), (1, 2), (0, 2), (2, 3)]:
            a.add_edge(u, v)
        b = Graph()
        for u, v in [(2, 3), (0, 2), (2, 1), (1, 0)]:
            b.add_edge(u, v)
        assert a.content_digest() == b.content_digest()

    def test_is_a_hex_sha256(self):
        digest = Graph(edges=[(0, 1)]).content_digest()
        assert len(digest) == 64
        int(digest, 16)  # hex-decodable

    def test_changes_on_edge_add_and_remove(self):
        g = Graph(edges=[(0, 1), (1, 2)])
        before = g.content_digest()
        g.add_edge(0, 2)
        added = g.content_digest()
        assert added != before
        g.remove_edge(0, 2)
        assert g.content_digest() == before

    def test_isolated_vertices_matter(self):
        a = Graph(edges=[(0, 1)])
        b = Graph(edges=[(0, 1)])
        b.add_vertex(2)
        assert a.content_digest() != b.content_digest()

    def test_label_types_are_distinguished(self):
        # "1" (str) and 1 (int) are different graphs, and must not collide
        a = Graph(edges=[(0, 1)])
        b = Graph(edges=[(0, "1")])
        assert a.content_digest() != b.content_digest()

    def test_matches_equal_graphs_only(self):
        a = Graph(edges=[(0, 1), (1, 2)])
        b = Graph(edges=[(1, 2), (0, 1)])
        c = Graph(edges=[(0, 1), (0, 2)])
        assert a == b and a.content_digest() == b.content_digest()
        assert a != c and a.content_digest() != c.content_digest()

    def test_copy_preserves_digest(self):
        g = Graph(edges=[(0, 1), (1, 2), ("x", "y")])
        assert g.copy().content_digest() == g.content_digest()


class TestVertexOperations:
    def test_add_vertex_idempotent(self):
        g = Graph()
        g.add_vertex("a")
        g.add_vertex("a")
        assert g.num_vertices == 1

    def test_add_vertices(self):
        g = Graph()
        g.add_vertices("abc")
        assert set(g.vertices()) == {"a", "b", "c"}

    def test_remove_vertex(self):
        g = Graph(edges=[(0, 1), (1, 2), (0, 2)])
        g.remove_vertex(1)
        assert g.num_vertices == 2
        assert g.num_edges == 1
        assert not g.has_vertex(1)

    def test_remove_missing_vertex_raises(self):
        g = Graph()
        with pytest.raises(VertexNotFoundError):
            g.remove_vertex(7)

    def test_remove_vertices(self):
        g = complete_graph(4)
        g.remove_vertices([0, 1])
        assert g.num_vertices == 2
        assert g.num_edges == 1

    def test_contains_and_iteration(self):
        g = Graph(vertices=[1, 2, 3])
        assert 2 in g
        assert 9 not in g
        assert sorted(g) == [1, 2, 3]
        assert len(g) == 3


class TestEdgeOperations:
    def test_add_edge_creates_vertices(self):
        g = Graph()
        g.add_edge("x", "y")
        assert g.has_vertex("x") and g.has_vertex("y")
        assert g.num_edges == 1

    def test_remove_edge(self):
        g = Graph(edges=[(0, 1), (1, 2)])
        g.remove_edge(0, 1)
        assert not g.has_edge(0, 1)
        assert g.num_edges == 1
        assert g.has_vertex(0)

    def test_remove_missing_edge_raises(self):
        g = Graph(edges=[(0, 1)])
        with pytest.raises(EdgeNotFoundError):
            g.remove_edge(0, 2)

    def test_edges_listed_once(self):
        g = complete_graph(4)
        edges = g.edges()
        assert len(edges) == 6
        normalized = {frozenset(e) for e in edges}
        assert len(normalized) == 6

    def test_iter_edges_matches_edges(self):
        g = Graph(edges=[(0, 1), (1, 2), (2, 3)])
        assert sorted(map(sorted, g.iter_edges())) == sorted(map(sorted, g.edges()))

    def test_add_edges_and_remove_edges(self):
        g = Graph()
        g.add_edges([(0, 1), (1, 2)])
        g.remove_edges([(0, 1)])
        assert g.num_edges == 1


class TestNeighborhoods:
    def test_neighbors(self):
        g = Graph(edges=[(0, 1), (0, 2)])
        assert g.neighbors(0) == {1, 2}
        assert g.degree(0) == 2
        assert g.degree(1) == 1

    def test_neighbors_missing_vertex(self):
        g = Graph()
        with pytest.raises(VertexNotFoundError):
            g.neighbors(0)

    def test_non_neighbors_excludes_self(self):
        g = Graph(edges=[(0, 1)], vertices=[0, 1, 2])
        assert g.non_neighbors(0) == {2}
        assert g.non_neighbors(2) == {0, 1}

    def test_common_neighbors(self):
        g = Graph(edges=[(0, 2), (1, 2), (0, 3), (1, 3), (0, 1)])
        assert g.common_neighbors(0, 1) == {2, 3}

    def test_degrees_mapping(self):
        g = Graph(edges=[(0, 1), (1, 2)])
        assert g.degrees() == {0: 1, 1: 2, 2: 1}

    def test_adjacency_snapshot_immutable(self):
        g = Graph(edges=[(0, 1)])
        snap = g.adjacency()
        assert snap[0] == frozenset({1})


class TestSubgraphsAndMeasures:
    def test_subgraph(self):
        g = complete_graph(5)
        sub = g.subgraph([0, 1, 2])
        assert sub.num_vertices == 3
        assert sub.num_edges == 3

    def test_subgraph_unknown_vertex(self):
        g = complete_graph(3)
        with pytest.raises(VertexNotFoundError):
            g.subgraph([0, 9])

    def test_relabel_roundtrip(self):
        g = Graph(edges=[("a", "b"), ("b", "c")])
        relabeled, to_int, to_label = g.relabel()
        assert relabeled.num_vertices == 3
        assert relabeled.num_edges == 2
        for label, idx in to_int.items():
            assert to_label[idx] == label
        for u, v in g.iter_edges():
            assert relabeled.has_edge(to_int[u], to_int[v])

    def test_complement(self):
        g = Graph(edges=[(0, 1)], vertices=[0, 1, 2])
        comp = g.complement()
        assert not comp.has_edge(0, 1)
        assert comp.has_edge(0, 2) and comp.has_edge(1, 2)

    def test_density(self):
        assert complete_graph(4).density() == pytest.approx(1.0)
        assert Graph(vertices=[0]).density() == 0.0
        assert Graph.empty(4).density() == 0.0

    def test_missing_edges(self):
        g = Graph(edges=[(0, 1)], vertices=[0, 1, 2])
        assert g.missing_edge_count() == 2
        assert {frozenset(e) for e in g.missing_edges()} == {frozenset({0, 2}), frozenset({1, 2})}

    def test_is_clique_subset(self):
        g = complete_graph(5)
        g.remove_edge(0, 1)
        assert not g.is_clique()
        assert g.is_clique([1, 2, 3, 4])
        assert g.is_clique([0])

    def test_count_missing_edges(self):
        g = complete_graph(4)
        g.remove_edge(0, 1)
        assert g.count_missing_edges([0, 1, 2, 3]) == 1
        assert g.count_missing_edges([1, 2, 3]) == 0

    def test_count_missing_edges_unknown_vertex(self):
        g = complete_graph(3)
        with pytest.raises(VertexNotFoundError):
            g.count_missing_edges([0, 17])

    def test_triangle_count_per_edge(self):
        g = complete_graph(4)
        support = g.triangle_count_per_edge()
        assert all(count == 2 for count in support.values())

    def test_validate_passes(self):
        g = complete_graph(4)
        g.validate()

    def test_validate_detects_corruption(self):
        g = Graph(edges=[(0, 1)])
        g._adj[0].add(2)  # corrupt: dangling neighbour
        with pytest.raises(GraphError):
            g.validate()
