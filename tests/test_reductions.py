"""Tests for the reduction rules RR1–RR6 and the preprocessing step."""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines import brute_force_maximum_defective_clique
from repro.core import SearchState, SolverConfig
from repro.core.reductions import (
    apply_reductions,
    apply_rr1,
    apply_rr2,
    apply_rr3,
    apply_rr4,
    apply_rr5,
    preprocess_graph,
)
from repro.core.result import SearchStats
from repro.graphs import Graph, complete_graph, cycle_graph, gnp_random_graph, star_graph


def _adjacency(graph):
    return [set(graph.neighbors(v)) for v in range(graph.num_vertices)]


def _state(graph, k):
    return SearchState.initial(_adjacency(graph), k)


class TestRR1:
    def test_removes_over_budget_candidates(self):
        # S = {0, 1} non-adjacent; with k = 1 a candidate with another missing
        # edge towards S must be dropped.
        g = Graph(edges=[(0, 2), (1, 2), (0, 3)], vertices=[0, 1, 2, 3])
        state = _state(g, k=1)
        state.add_to_solution(0)
        state.add_to_solution(1)  # S misses (0,1): budget used up
        removed = apply_rr1(state)
        # vertex 3 misses the edge to 1 -> would exceed k; vertex 2 is adjacent to both.
        assert removed == 1
        assert 3 not in state.candidates
        assert 2 in state.candidates

    def test_no_removal_when_budget_remains(self):
        g = complete_graph(4)
        state = _state(g, k=1)
        state.add_to_solution(0)
        assert apply_rr1(state) == 0

    def test_stats_counted(self):
        g = Graph(edges=[(0, 2), (1, 2)], vertices=[0, 1, 2, 3])
        stats = SearchStats()
        state = _state(g, k=0)
        state.add_to_solution(0)
        apply_rr1(state, stats)
        assert stats.reductions.get("RR1", 0) >= 1


class TestRR2:
    def test_adds_universal_vertex(self):
        g = complete_graph(4)
        state = _state(g, k=0)
        moved = apply_rr2(state)
        assert moved == 4
        assert not state.candidates
        assert state.missing_in_solution == 0

    def test_adds_vertex_with_one_non_neighbour(self):
        g = complete_graph(4)
        g.remove_edge(0, 1)
        state = _state(g, k=1)
        moved = apply_rr2(state)
        # Every vertex has degree >= n - 2, so all are moved and S misses one edge.
        assert moved == 4
        assert state.missing_in_solution == 1

    def test_does_not_add_invalid_vertex(self):
        # With k = 0, a vertex whose addition would create a missing edge must stay.
        g = complete_graph(4)
        g.remove_edge(0, 1)
        state = _state(g, k=0)
        state.add_to_solution(0)
        apply_rr2(state)
        assert 1 in state.candidates  # adding 1 would violate k = 0

    def test_respects_lemma_3_3(self):
        """After RR1+RR2 exhaust, every remaining candidate has >= 2 non-neighbours in g."""
        for seed in range(6):
            g = gnp_random_graph(14, 0.5, seed=seed)
            state = _state(g, k=2)
            config = SolverConfig(use_rr3=False, use_rr4=False, use_rr5=False, use_ub1=False,
                                  use_ub2=False, use_ub3=False, use_rr6=False,
                                  initial_heuristic="none")
            pruned = apply_reductions(state, config, lower_bound=0)
            assert not pruned
            if state.is_defective_clique():
                continue
            size = state.graph_size
            for v in state.candidates:
                # Lemma 3.3: d_g(v) < |V(g)| - 2, i.e. at least two non-neighbours in g.
                assert state.degree_in_graph[v] < size - 2


class TestRR3:
    def test_removes_hopeless_candidate(self):
        # Star graph: leaves pairwise non-adjacent.  With S = {centre, leaf}
        # and lb large, far-away leaves cannot help.
        g = star_graph(5)
        state = _state(g, k=1)
        state.add_to_solution(0)
        state.add_to_solution(1)
        removed = apply_rr3(state, lower_bound=3)
        # keeping one additional leaf is possible (k = 1), but any candidate
        # beyond the reserved cheapest one whose cost exceeds the leftover
        # budget is dropped.
        assert removed >= 1

    def test_noop_when_lb_small(self):
        g = complete_graph(5)
        state = _state(g, k=1)
        assert apply_rr3(state, lower_bound=0) == 0

    def test_never_removes_optimal_solution_vertices(self):
        for seed in range(8):
            g = gnp_random_graph(11, 0.5, seed=seed)
            k = 2
            optimum = brute_force_maximum_defective_clique(g, k)
            state = _state(g, k=k)
            lb = len(optimum) - 1  # a legitimate incumbent
            apply_rr3(state, lower_bound=lb)
            remaining = state.candidates | set(state.solution)
            # After removals, a maximum solution must still exist within the instance.
            best_remaining = brute_force_maximum_defective_clique(g.subgraph(remaining), k)
            assert len(best_remaining) == len(optimum)


class TestRR4:
    def test_requires_last_added(self):
        g = complete_graph(4)
        state = _state(g, k=0)
        assert apply_rr4(state, lower_bound=10) == 0

    def test_removes_candidate_with_poor_second_order_bound(self):
        # Path 0-1-2-3: with S = {0} (last added 0) and lb = 3, vertex 3
        # shares nothing with 0, so the pairwise bound cannot reach 4.
        g = Graph(edges=[(0, 1), (1, 2), (2, 3)])
        state = _state(g, k=1)
        state.add_to_solution(0)
        removed = apply_rr4(state, lower_bound=3)
        assert removed >= 1
        assert 3 not in state.candidates

    def test_preserves_optimum(self):
        for seed in range(8):
            g = gnp_random_graph(11, 0.5, seed=seed)
            k = 2
            optimum = brute_force_maximum_defective_clique(g, k)
            state = _state(g, k=k)
            # put one vertex of the optimum into S so last_added is set
            state.add_to_solution(sorted(optimum)[0]) if optimum else None
            apply_rr4(state, lower_bound=len(optimum) - 1)
            remaining = state.candidates | set(state.solution)
            best_remaining = brute_force_maximum_defective_clique(g.subgraph(remaining), k)
            # The maximum solution containing the chosen vertex may differ from
            # the global optimum, but RR4 with lb = |opt|-1 must leave room for
            # *some* solution of the optimal size that contains S.
            assert len(best_remaining) >= len(optimum) - 1


class TestRR5:
    def test_removes_low_degree_candidates(self):
        g = star_graph(5)
        state = _state(g, k=1)
        removed, prune = apply_rr5(state, lower_bound=4)
        assert not prune
        # leaves have degree 1 < lb - k = 3 and must go; the centre then follows.
        assert removed >= 5

    def test_prunes_when_solution_vertex_fails(self):
        g = star_graph(4)
        state = _state(g, k=0)
        state.add_to_solution(1)  # a leaf with degree 1
        removed, prune = apply_rr5(state, lower_bound=5)
        assert prune

    def test_noop_for_small_lb(self):
        g = star_graph(4)
        state = _state(g, k=3)
        removed, prune = apply_rr5(state, lower_bound=2)
        assert removed == 0 and not prune


class TestApplyReductions:
    def test_full_pipeline_keeps_optimum(self):
        for seed in range(10):
            g = gnp_random_graph(12, 0.5, seed=seed)
            k = 2
            optimum = brute_force_maximum_defective_clique(g, k)
            state = _state(g, k=k)
            config = SolverConfig()
            pruned = apply_reductions(state, config, lower_bound=len(optimum) - 1)
            if pruned:
                continue
            remaining = state.candidates | set(state.solution)
            best_remaining = brute_force_maximum_defective_clique(g.subgraph(remaining), k)
            assert len(best_remaining) == len(optimum)

    def test_kdc_t_configuration_only_uses_rr1_rr2(self):
        g = star_graph(6)
        state = _state(g, k=0)
        config = SolverConfig(
            use_ub1=False, use_ub2=False, use_ub3=False,
            use_rr3=False, use_rr4=False, use_rr5=False, use_rr6=False,
            initial_heuristic="none",
        )
        stats = SearchStats()
        pruned = apply_reductions(state, config, lower_bound=100, stats=stats)
        assert not pruned
        assert "RR3" not in stats.reductions
        assert "RR5" not in stats.reductions


class TestPreprocessing:
    def test_core_and_truss_reduction(self):
        g = complete_graph(6)
        for leaf in range(6, 12):
            g.add_edge(0, leaf)  # pendant vertices
        stats = SearchStats()
        preprocess_graph(g, k=1, lower_bound=5, use_rr5=True, use_rr6=True, stats=stats)
        assert g.num_vertices == 6
        assert stats.preprocess_removed_vertices == 6

    def test_preserves_solutions_larger_than_lb(self):
        for seed in range(6):
            g = gnp_random_graph(14, 0.4, seed=seed)
            k = 1
            optimum = brute_force_maximum_defective_clique(g, k)
            working = g.copy()
            preprocess_graph(working, k, lower_bound=len(optimum) - 1)
            if working.num_vertices == 0:
                # Everything was pruned: only valid if nothing can beat lb,
                # i.e. the optimum is exactly lb + ... — not allowed here.
                raise AssertionError("preprocessing removed an optimal solution")
            best_remaining = brute_force_maximum_defective_clique(working, k)
            assert len(best_remaining) == len(optimum)

    def test_disabled_rules_do_nothing(self):
        g = star_graph(5)
        before = g.num_vertices
        preprocess_graph(g, k=1, lower_bound=4, use_rr5=False, use_rr6=False)
        assert g.num_vertices == before


class TestPreprocessingBudget:
    def test_budget_check_raised_before_work(self):
        from repro.exceptions import BudgetExceededError

        def firing_budget():
            raise BudgetExceededError("deadline")

        g = gnp_random_graph(30, 0.4, seed=3)
        import pytest

        with pytest.raises(BudgetExceededError):
            preprocess_graph(g, k=1, lower_bound=6, budget_check=firing_budget)

    def test_budget_check_polled_between_phases(self):
        from repro.exceptions import BudgetExceededError

        calls = []

        def counting_budget():
            calls.append(None)

        g = gnp_random_graph(30, 0.4, seed=4)
        preprocess_graph(g, k=1, lower_bound=6, budget_check=counting_budget)
        assert len(calls) >= 2  # before the core phase and before the truss phase

    def test_no_budget_check_still_works(self):
        g = complete_graph(8)
        preprocess_graph(g, k=1, lower_bound=5)
        assert g.num_vertices == 8
