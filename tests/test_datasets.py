"""Tests for the synthetic benchmark collections."""

from __future__ import annotations

import pytest

from repro.datasets import (
    COLLECTION_NAMES,
    SCALES,
    all_collections,
    dimacs_snap_like_collection,
    facebook_like_collection,
    get_collection,
    real_world_like_collection,
)
from repro.exceptions import InvalidParameterError


class TestCollections:
    @pytest.mark.parametrize("name", COLLECTION_NAMES)
    def test_collections_non_empty(self, name):
        instances = get_collection(name, scale="tiny")
        assert len(instances) >= 3
        for inst in instances:
            assert inst.collection == name
            g = inst.graph
            assert g.num_vertices > 0
            assert g.num_edges > 0

    def test_unknown_collection(self):
        with pytest.raises(InvalidParameterError):
            get_collection("imaginary")

    def test_unknown_scale(self):
        with pytest.raises(InvalidParameterError):
            get_collection("facebook_like", scale="galactic")

    def test_scales_grow(self):
        tiny = facebook_like_collection(scale="tiny")
        small = facebook_like_collection(scale="small")
        assert len(small) >= len(tiny)
        assert small[0].graph.num_vertices >= tiny[0].graph.num_vertices

    def test_deterministic_generation(self):
        a = real_world_like_collection(scale="tiny")[0].graph
        b = real_world_like_collection(scale="tiny")[0].graph
        assert a == b

    def test_seed_override_changes_graphs(self):
        a = get_collection("real_world_like", scale="tiny", seed=1)[0].graph
        b = get_collection("real_world_like", scale="tiny", seed=2)[0].graph
        assert a != b

    def test_graph_cached_on_instance(self):
        inst = dimacs_snap_like_collection(scale="tiny")[0]
        assert inst.graph is inst.graph  # built once, cached

    def test_describe(self):
        inst = facebook_like_collection(scale="tiny")[0]
        text = inst.describe()
        assert inst.name in text and "n=" in text

    def test_all_collections(self):
        everything = all_collections(scale="tiny")
        assert set(everything) == set(COLLECTION_NAMES)

    def test_unique_instance_names_within_collection(self):
        for name in COLLECTION_NAMES:
            instances = get_collection(name, scale="tiny")
            names = [inst.name for inst in instances]
            assert len(names) == len(set(names))

    def test_collections_are_structurally_distinct(self):
        fb = facebook_like_collection(scale="tiny")
        rw = real_world_like_collection(scale="tiny")
        ds = dimacs_snap_like_collection(scale="tiny")
        # The three collections must not accidentally share graphs.
        assert fb[0].graph != rw[0].graph
        assert fb[0].graph != ds[0].graph
        # Every collection mixes sizes rather than repeating a single shape.
        for collection in (fb, rw, ds):
            sizes = {inst.graph.num_vertices for inst in collection}
            assert len(sizes) >= 2
