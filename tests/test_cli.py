"""Tests for the command line interface."""

from __future__ import annotations

import os

import pytest

from repro.cli import build_parser, main
from repro.graphs import complete_graph, write_edge_list


@pytest.fixture
def clique_file(tmp_path):
    path = tmp_path / "k5.edges"
    write_edge_list(complete_graph(5), path)
    return str(path)


class TestParser:
    def test_requires_command(self):
        parser = build_parser()
        with pytest.raises(SystemExit):
            parser.parse_args([])

    def test_solve_arguments(self):
        args = build_parser().parse_args(["solve", "g.edges", "-k", "2", "--algorithm", "KDBB"])
        assert args.command == "solve"
        assert args.k == 2
        assert args.algorithm == "KDBB"

    def test_rejects_unknown_algorithm(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["solve", "g.edges", "-k", "1", "--algorithm", "bogus"])

    def test_experiments_arguments(self):
        args = build_parser().parse_args(["experiments", "table4", "--scale", "tiny"])
        assert args.name == "table4"
        assert args.scale == "tiny"

    def test_experiments_run_arguments(self):
        args = build_parser().parse_args(
            [
                "experiments", "run", "--db", "x.sqlite", "--k", "1", "3",
                "--backends", "bitset", "--engines", "trail", "copy",
                "--workers", "1", "2", "--max-cells", "5", "--no-resume",
            ]
        )
        assert args.name == "run"
        assert args.db == "x.sqlite"
        assert args.k == [1, 3]
        assert args.backends == ["bitset"]
        assert args.engines == ["trail", "copy"]
        assert args.workers == [1, 2]
        assert args.max_cells == 5
        assert args.no_resume

    def test_experiments_compare_and_export_arguments(self):
        args = build_parser().parse_args(
            ["experiments", "compare", "--db", "a.sqlite", "--baseline-db", "b.sqlite",
             "--threshold", "0.3"]
        )
        assert args.name == "compare"
        assert args.baseline_db == "b.sqlite"
        assert args.threshold == 0.3
        args = build_parser().parse_args(["experiments", "export", "--run", "2"])
        assert args.name == "export"
        assert args.run == 2

    def test_experiments_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["experiments"])

    def test_serve_arguments(self):
        args = build_parser().parse_args(
            ["serve", "--port", "0", "--max-concurrency", "2", "--backend", "bitset"]
        )
        assert args.command == "serve"
        assert args.port == 0
        assert args.max_concurrency == 2
        assert args.backend == "bitset"
        assert args.host == "127.0.0.1"
        assert args.preload == []


class TestCommands:
    def test_solve(self, clique_file, capsys):
        code = main(["solve", clique_file, "-k", "1", "--show-vertices"])
        assert code == 0
        out = capsys.readouterr().out
        assert "|C|=5" in out
        assert "vertices:" in out

    def test_solve_with_baseline(self, clique_file, capsys):
        assert main(["solve", clique_file, "-k", "0", "--algorithm", "MADEC"]) == 0
        assert "MADEC" in capsys.readouterr().out

    def test_stats(self, clique_file, capsys):
        assert main(["stats", clique_file]) == 0
        out = capsys.readouterr().out
        assert "num_vertices: 5" in out
        assert "degeneracy: 4" in out

    def test_gamma(self, capsys):
        assert main(["gamma", "--max-k", "3"]) == 0
        out = capsys.readouterr().out
        assert "gamma_k" in out
        assert out.count("\n") >= 5

    def test_generate(self, tmp_path, capsys):
        out_dir = tmp_path / "out"
        assert main(["generate", "dimacs_snap_like", str(out_dir), "--scale", "tiny"]) == 0
        files = os.listdir(out_dir)
        assert files
        assert all(name.endswith(".edges") for name in files)

    def test_experiments_table4(self, capsys):
        assert main(["experiments", "table4", "--scale", "tiny"]) == 0
        assert "Table 4" in capsys.readouterr().out

    def test_compare(self, clique_file, capsys):
        assert main(["compare", clique_file, "-k", "1", "--algorithms", "kDC", "MADEC"]) == 0
        out = capsys.readouterr().out
        assert "kDC" in out and "MADEC" in out
        assert "algorithm" in out

    def test_top_r(self, clique_file, capsys):
        assert main(["top-r", clique_file, "-k", "0", "-r", "2"]) == 0
        out = capsys.readouterr().out
        assert "#1 (size 5)" in out

    def test_top_r_diversified(self, clique_file, capsys):
        assert main(["top-r", clique_file, "-k", "1", "-r", "2", "--diversified"]) == 0
        assert "#1" in capsys.readouterr().out

    def test_properties(self, clique_file, capsys):
        assert main(["properties", clique_file, "-k", "1"]) == 0
        out = capsys.readouterr().out
        assert "maximum clique size:              5" in out
        assert "size ratio" in out


class TestErrorHandling:
    """Library failures exit with a one-line error, never a traceback."""

    def test_malformed_file_exits_2(self, tmp_path, capsys):
        path = tmp_path / "bad.edges"
        path.write_text("only-one-token-on-this-line\n")
        code = main(["solve", str(path), "-k", "1"])
        assert code == 2
        captured = capsys.readouterr()
        assert captured.err.startswith("error:")
        assert "expected two vertex ids" in captured.err
        assert "Traceback" not in captured.err

    def test_missing_file_exits_2(self, tmp_path, capsys):
        code = main(["solve", str(tmp_path / "nope.edges"), "-k", "1"])
        assert code == 2
        assert capsys.readouterr().err.startswith("error:")

    def test_unknown_format_extension_exits_2(self, tmp_path, capsys):
        path = tmp_path / "graph.mystery"
        path.write_text("0 1\n")
        assert main(["solve", str(path), "-k", "1"]) == 2
        assert "error:" in capsys.readouterr().err

    def test_keyboard_interrupt_exits_130(self, clique_file, capsys, monkeypatch):
        from repro import cli

        def interrupted(args):
            raise KeyboardInterrupt

        monkeypatch.setitem(cli._COMMANDS, "solve", interrupted)
        code = main(["solve", clique_file, "-k", "1"])
        assert code == 130
        assert "interrupted" in capsys.readouterr().err
