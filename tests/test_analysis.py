"""Tests for the maximum k-defective clique property analyses (Tables 5-7 machinery)."""

from __future__ import annotations

import pytest

from repro.analysis import (
    DefectiveCliqueProperties,
    aggregate_properties,
    analyze_graph,
    extends_maximum_clique,
    fraction_not_fully_connected,
    size_ratio,
)
from repro.graphs import Graph, complete_graph, cycle_graph, gnp_random_graph


class TestPrimitives:
    def test_size_ratio(self):
        assert size_ratio(6, 4) == pytest.approx(1.5)
        assert size_ratio(0, 0) == 0.0

    def test_extends_maximum_clique_true(self):
        g = complete_graph(4)
        g.add_edge(0, 4)
        # the 1-defective clique {0,1,2,3,4} contains the maximum clique {0,1,2,3}
        assert extends_maximum_clique(g, [0, 1, 2, 3, 4], 4)

    def test_extends_maximum_clique_false(self):
        # Two disjoint triangles plus an extra vertex attached to one of them:
        # a k-defective clique inside the *other* triangle does not contain a
        # maximum clique of size 3... (both triangles are max cliques) so use
        # a set that is simply too small.
        g = complete_graph(3)
        assert not extends_maximum_clique(g, [0, 1], 3)

    def test_extends_maximum_clique_trivial_cases(self):
        g = Graph(vertices=[0])
        assert extends_maximum_clique(g, [], 0)

    def test_fraction_not_fully_connected(self):
        g = cycle_graph(4)
        # every vertex of the 4-cycle misses its diagonal partner
        assert fraction_not_fully_connected(g, [0, 1, 2, 3]) == 1.0
        assert fraction_not_fully_connected(g, [0, 1]) == 0.0
        assert fraction_not_fully_connected(g, []) == 0.0

    def test_fraction_mixed(self):
        g = complete_graph(4)
        g.add_edge(0, 4)  # vertex 4 adjacent only to 0
        clique = [0, 1, 2, 3, 4]
        # vertices 1, 2, 3 and 4 all have a missing neighbour (towards 4 / from 4)
        assert fraction_not_fully_connected(g, clique) == pytest.approx(4 / 5)


class TestAnalyzeGraph:
    def test_complete_graph(self):
        record = analyze_graph(complete_graph(5), 2, graph_name="k5")
        assert record.max_clique_size == 5
        assert record.max_defective_clique_size == 5
        assert record.size_ratio == 1.0
        assert record.extends_max_clique
        assert record.fraction_not_fully_connected == 0.0
        assert record.solved

    def test_cycle_graph(self):
        record = analyze_graph(cycle_graph(6), 1, graph_name="c6")
        assert record.max_clique_size == 2
        assert record.max_defective_clique_size == 3
        assert record.size_ratio == pytest.approx(1.5)

    def test_random_graph_ratios_at_least_one(self):
        g = gnp_random_graph(20, 0.3, seed=1)
        record = analyze_graph(g, 2)
        assert record.size_ratio >= 1.0
        assert 0.0 <= record.fraction_not_fully_connected <= 1.0


class TestAggregation:
    def _record(self, ratio, extends, fraction, solved=True):
        return DefectiveCliqueProperties(
            graph_name="g",
            k=1,
            max_clique_size=4,
            max_defective_clique_size=int(4 * ratio),
            size_ratio=ratio,
            extends_max_clique=extends,
            fraction_not_fully_connected=fraction,
            solved=solved,
        )

    def test_aggregate_basic(self):
        records = [self._record(1.0, True, 0.0), self._record(1.5, False, 0.5)]
        agg = aggregate_properties(records)
        assert agg["count"] == 2
        assert agg["avg_ratio"] == pytest.approx(1.25)
        assert agg["max_ratio"] == pytest.approx(1.5)
        assert agg["num_extending_max_clique"] == 1
        assert agg["avg_pct_not_fully_connected"] == pytest.approx(25.0)

    def test_unsolved_records_excluded(self):
        records = [self._record(1.0, True, 0.0), self._record(3.0, True, 1.0, solved=False)]
        agg = aggregate_properties(records)
        assert agg["count"] == 1
        assert agg["max_ratio"] == pytest.approx(1.0)

    def test_empty_aggregation(self):
        agg = aggregate_properties([])
        assert agg["count"] == 0
        assert agg["avg_ratio"] == 0.0
