"""Tests for the non-fully-adjacent-first branching rule (BR)."""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import SearchState, select_branching_vertex
from repro.graphs import Graph, complete_graph, cycle_graph, gnp_random_graph


def _adjacency(graph):
    return [set(graph.neighbors(v)) for v in range(graph.num_vertices)]


class TestBranchingRule:
    def test_empty_candidates_returns_none(self):
        g = complete_graph(3)
        state = SearchState.initial(_adjacency(g), k=0)
        for v in list(state.candidates):
            state.add_to_solution(v)
        assert select_branching_vertex(state) is None

    def test_prefers_non_fully_adjacent_vertex(self):
        # S = {0}; vertex 1 adjacent to 0, vertex 2 not adjacent to 0.
        g = Graph(edges=[(0, 1), (1, 2)])
        state = SearchState.initial(_adjacency(g), k=1)
        state.add_to_solution(0)
        chosen = select_branching_vertex(state)
        assert chosen == 2
        assert state.non_nbrs_in_solution[chosen] >= 1

    def test_arbitrary_choice_when_all_fully_adjacent(self):
        g = complete_graph(4)
        state = SearchState.initial(_adjacency(g), k=0)
        state.add_to_solution(0)
        chosen = select_branching_vertex(state)
        assert chosen in state.candidates
        assert state.non_nbrs_in_solution[chosen] == 0

    def test_figure2_branching_example(self, fig2):
        """Example 3.2-style check on the Figure 2 graph.

        With S = {v1, ..., v6}, the candidates v8..v12 are not adjacent to the
        whole of S while v7 is adjacent only to a few vertices; the selected
        branching vertex must have at least one non-neighbour in S.
        """
        relabeled, to_int, _ = fig2.relabel()
        adj = _adjacency(relabeled)
        state = SearchState.initial(adj, k=5)
        for label in (1, 2, 3, 4, 5, 6):
            state.add_to_solution(to_int[label])
        chosen = select_branching_vertex(state)
        assert state.non_nbrs_in_solution[chosen] >= 1

    @given(st.integers(min_value=2, max_value=14), st.floats(min_value=0.1, max_value=0.9),
           st.integers(min_value=0, max_value=500))
    @settings(max_examples=50, deadline=None)
    def test_rule_invariant(self, n, p, seed):
        """BR: if any candidate has a non-neighbour in S, the chosen one must too."""
        g = gnp_random_graph(n, p, seed=seed)
        state = SearchState.initial(_adjacency(g), k=3)
        # Build some partial solution.
        for v in sorted(state.candidates):
            if state.missing_if_added(v) <= 3:
                state.add_to_solution(v)
            if len(state.solution) >= min(3, n):
                break
        if not state.candidates:
            return
        chosen = select_branching_vertex(state)
        assert chosen in state.candidates
        exists_non_fully_adjacent = any(
            state.non_nbrs_in_solution[v] > 0 for v in state.candidates
        )
        if exists_non_fully_adjacent:
            assert state.non_nbrs_in_solution[chosen] > 0
        else:
            assert state.non_nbrs_in_solution[chosen] == 0

    def test_cycle_graph_selection(self):
        g = cycle_graph(5)
        state = SearchState.initial(_adjacency(g), k=2)
        state.add_to_solution(0)
        chosen = select_branching_vertex(state)
        # 2 and 3 are the non-neighbours of 0; one of them must be chosen.
        assert chosen in {2, 3}
