"""Tests for the branch-and-bound SearchState bookkeeping."""

from __future__ import annotations

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import SearchState
from repro.graphs import complete_graph, cycle_graph, gnp_random_graph


def _adjacency(graph):
    return [set(graph.neighbors(v)) for v in range(graph.num_vertices)]


class TestInitialState:
    def test_initial_state_of_complete_graph(self):
        g = complete_graph(4)
        state = SearchState.initial(_adjacency(g), k=1)
        assert state.graph_size == 4
        assert state.instance_size == 4
        assert state.solution == []
        assert state.missing_in_solution == 0
        assert state.total_edges() == 6
        assert state.total_missing() == 0
        assert state.is_defective_clique()
        state.check_invariants()

    def test_initial_state_with_subset(self):
        g = complete_graph(5)
        state = SearchState.initial(_adjacency(g), k=0, vertices={0, 1, 2})
        assert state.graph_size == 3
        assert state.total_edges() == 3
        state.check_invariants()

    def test_missing_counts_on_cycle(self):
        g = cycle_graph(5)
        state = SearchState.initial(_adjacency(g), k=2)
        assert state.total_missing() == 5  # C(5,2) - 5 edges
        assert not state.is_defective_clique()


class TestTransitions:
    def test_add_to_solution_updates_counters(self):
        g = cycle_graph(4)
        state = SearchState.initial(_adjacency(g), k=2)
        state.add_to_solution(0)
        assert state.solution == [0]
        assert state.missing_in_solution == 0
        assert state.non_nbrs_in_solution[2] == 1  # 2 is the non-neighbour of 0
        assert state.non_nbrs_in_solution[1] == 0
        state.add_to_solution(2)
        assert state.missing_in_solution == 1
        assert state.missing_if_added(1) == 1
        state.check_invariants()
        assert state.last_added == 2

    def test_remove_candidate_updates_degrees(self):
        g = complete_graph(4)
        state = SearchState.initial(_adjacency(g), k=0)
        state.remove_candidate(3)
        assert state.graph_size == 3
        assert all(state.degree_in_graph[v] == 2 for v in (0, 1, 2))
        assert 3 not in state.degree_in_graph
        state.check_invariants()

    def test_slack(self):
        g = cycle_graph(4)
        state = SearchState.initial(_adjacency(g), k=3)
        state.add_to_solution(0)
        state.add_to_solution(2)
        assert state.slack() == 2

    def test_copy_is_independent(self):
        g = complete_graph(4)
        state = SearchState.initial(_adjacency(g), k=1)
        clone = state.copy()
        clone.add_to_solution(0)
        clone.remove_candidate(1)
        assert state.solution == []
        assert 1 in state.candidates
        state.check_invariants()
        clone.check_invariants()

    def test_graph_vertices_lists_solution_and_candidates(self):
        g = complete_graph(3)
        state = SearchState.initial(_adjacency(g), k=0)
        state.add_to_solution(1)
        assert set(state.graph_vertices()) == {0, 1, 2}


class TestInvariantProperties:
    @given(st.integers(min_value=1, max_value=12), st.floats(min_value=0.0, max_value=1.0),
           st.integers(min_value=0, max_value=500), st.integers(min_value=0, max_value=4),
           st.integers(min_value=0, max_value=2**30))
    @settings(max_examples=50, deadline=None)
    def test_random_transition_sequences_preserve_invariants(self, n, p, seed, k, op_seed):
        """Apply a random mix of add/remove operations and re-derive all cached state."""
        g = gnp_random_graph(n, p, seed=seed)
        state = SearchState.initial(_adjacency(g), k=k)
        rng = random.Random(op_seed)
        for _ in range(min(10, n)):
            if not state.candidates:
                break
            v = rng.choice(sorted(state.candidates))
            if rng.random() < 0.5:
                state.add_to_solution(v)
            else:
                state.remove_candidate(v)
            state.check_invariants()
        # total_missing must agree with a from-scratch count over the instance graph
        vertices = state.graph_vertices()
        missing = 0
        for i, u in enumerate(vertices):
            for w in vertices[i + 1:]:
                if w not in g.neighbors(u):
                    missing += 1
        assert missing == state.total_missing()
