"""Tests for the graph generators (including structural properties of the synthetic workloads)."""

from __future__ import annotations

import pytest

from repro.core import is_k_defective_clique
from repro.exceptions import InvalidParameterError
from repro.graphs import (
    barabasi_albert_graph,
    complete_graph,
    complete_multipartite_graph,
    cycle_graph,
    gnm_random_graph,
    gnp_random_graph,
    mesh_graph,
    path_graph,
    planted_defective_clique_graph,
    powerlaw_cluster_graph,
    relaxed_caveman_graph,
    social_network_graph,
    split_graph,
    star_graph,
    turan_graph,
)


class TestClassicModels:
    def test_gnp_extremes(self):
        assert gnp_random_graph(10, 0.0, seed=1).num_edges == 0
        assert gnp_random_graph(10, 1.0, seed=1).num_edges == 45

    def test_gnp_determinism(self):
        a = gnp_random_graph(30, 0.3, seed=7)
        b = gnp_random_graph(30, 0.3, seed=7)
        assert a == b

    def test_gnp_different_seeds_differ(self):
        a = gnp_random_graph(30, 0.3, seed=7)
        b = gnp_random_graph(30, 0.3, seed=8)
        assert a != b

    def test_gnp_invalid_parameters(self):
        with pytest.raises(InvalidParameterError):
            gnp_random_graph(-1, 0.5)
        with pytest.raises(InvalidParameterError):
            gnp_random_graph(5, 1.5)

    def test_gnm_edge_count(self):
        g = gnm_random_graph(12, 20, seed=3)
        assert g.num_vertices == 12
        assert g.num_edges == 20

    def test_gnm_complete(self):
        g = gnm_random_graph(6, 15, seed=1)
        assert g.is_clique()

    def test_gnm_invalid(self):
        with pytest.raises(InvalidParameterError):
            gnm_random_graph(4, 100)

    def test_barabasi_albert(self):
        g = barabasi_albert_graph(50, 3, seed=1)
        assert g.num_vertices == 50
        # every vertex beyond the initial star attaches m edges
        assert g.num_edges >= 3 * (50 - 4)
        assert min(g.degrees().values()) >= 1

    def test_barabasi_albert_invalid(self):
        with pytest.raises(InvalidParameterError):
            barabasi_albert_graph(3, 5)
        with pytest.raises(InvalidParameterError):
            barabasi_albert_graph(10, 0)

    def test_powerlaw_cluster(self):
        g = powerlaw_cluster_graph(60, 3, 0.6, seed=2)
        assert g.num_vertices == 60
        assert g.num_edges >= 3 * (60 - 4)

    def test_relaxed_caveman(self):
        g = relaxed_caveman_graph(4, 6, 0.1, seed=5)
        assert g.num_vertices == 24
        assert g.num_edges <= 4 * 15

    def test_relaxed_caveman_no_rewire_is_cliques(self):
        g = relaxed_caveman_graph(3, 5, 0.0, seed=1)
        for c in range(3):
            members = list(range(c * 5, (c + 1) * 5))
            assert g.is_clique(members)


class TestWorkloadModels:
    def test_planted_defective_clique_contains_planted_solution(self):
        clique_size, k = 10, 3
        g = planted_defective_clique_graph(60, clique_size, k, background_p=0.05, seed=11)
        planted = list(range(clique_size))
        assert is_k_defective_clique(g, planted, k)
        assert not is_k_defective_clique(g, planted, k - 1)

    def test_planted_defective_clique_invalid(self):
        with pytest.raises(InvalidParameterError):
            planted_defective_clique_graph(5, 10, 1)
        with pytest.raises(InvalidParameterError):
            planted_defective_clique_graph(20, 5, 100)

    def test_social_network_graph(self):
        g = social_network_graph(80, num_communities=5, seed=4)
        assert g.num_vertices == 80
        assert g.num_edges > 80  # communities make it denser than a tree

    def test_social_network_invalid(self):
        with pytest.raises(InvalidParameterError):
            social_network_graph(0)
        with pytest.raises(InvalidParameterError):
            social_network_graph(10, intra_p=2.0)

    def test_mesh_graph(self):
        g = mesh_graph(3, 4)
        assert g.num_vertices == 12
        assert g.num_edges == 3 * 3 + 2 * 4  # rows*(cols-1) + (rows-1)*cols

    def test_split_graph(self):
        g = split_graph(5, 10, attach_p=0.5, seed=2)
        assert g.is_clique(range(5))
        independent = list(range(5, 15))
        for i, u in enumerate(independent):
            for v in independent[i + 1:]:
                assert not g.has_edge(u, v)


class TestDeterministicFamilies:
    def test_cycle_path_star_sizes(self):
        assert cycle_graph(6).num_edges == 6
        assert cycle_graph(2).num_edges == 1
        assert path_graph(6).num_edges == 5
        assert star_graph(5).num_edges == 5
        assert complete_graph(6).num_edges == 15

    def test_complete_multipartite(self):
        g = complete_multipartite_graph([3, 3, 3])
        assert g.num_vertices == 9
        assert g.num_edges == 27
        for part in ([0, 1, 2], [3, 4, 5], [6, 7, 8]):
            for i, u in enumerate(part):
                for v in part[i + 1:]:
                    assert not g.has_edge(u, v)

    def test_turan_graph(self):
        g = turan_graph(7, 3)
        assert g.num_vertices == 7
        # parts of sizes 3, 2, 2 -> edges = 3*2 + 3*2 + 2*2 = 16
        assert g.num_edges == 16

    def test_negative_sizes_rejected(self):
        with pytest.raises(InvalidParameterError):
            cycle_graph(-1)
        with pytest.raises(InvalidParameterError):
            turan_graph(5, 0)
        with pytest.raises(InvalidParameterError):
            complete_multipartite_graph([2, -1])
