"""Integration tests: all exact solvers agree across the synthetic benchmark collections.

These tests exercise the full pipeline (dataset generation → preprocessing →
search → result mapping) on every instance of the tiny collections, which is
exactly what the benchmark harness does, and cross-check the solvers against
each other since brute force is out of reach at these sizes.
"""

from __future__ import annotations

import pytest

from repro.baselines import KDBBSolver, MADECSolver, MaxCliqueSolver
from repro.core import find_maximum_defective_clique, is_k_defective_clique, is_maximal_k_defective_clique
from repro.datasets import COLLECTION_NAMES, get_collection

K_VALUES = (1, 3)


def _instances():
    for name in COLLECTION_NAMES:
        for inst in get_collection(name, scale="tiny"):
            yield inst


@pytest.mark.parametrize("k", K_VALUES)
def test_kdc_and_kdbb_agree_on_every_tiny_instance(k):
    for inst in _instances():
        graph = inst.graph
        kdc = find_maximum_defective_clique(graph, k, time_limit=30.0)
        kdbb = KDBBSolver(time_limit=30.0).solve(graph, k)
        assert kdc.optimal and kdbb.optimal, inst.name
        assert kdc.size == kdbb.size, inst.name
        assert is_k_defective_clique(graph, kdc.clique, k), inst.name
        assert is_maximal_k_defective_clique(graph, kdc.clique, k), inst.name


def test_kdc_and_madec_agree_on_small_instances():
    # MADEC is slow; restrict to the smallest instance of each collection with k = 1.
    for name in COLLECTION_NAMES:
        inst = min(get_collection(name, scale="tiny"), key=lambda i: i.graph.num_vertices)
        graph = inst.graph
        kdc = find_maximum_defective_clique(graph, 1, time_limit=30.0)
        madec = MADECSolver(time_limit=30.0).solve(graph, 1)
        assert madec.optimal, inst.name
        assert kdc.size == madec.size, inst.name


@pytest.mark.parametrize("k", K_VALUES)
def test_defective_clique_at_least_as_large_as_clique(k):
    for inst in _instances():
        graph = inst.graph
        omega = MaxCliqueSolver(time_limit=30.0).solve(graph).size
        size = find_maximum_defective_clique(graph, k, time_limit=30.0).size
        assert size >= omega, inst.name
        # Removing one endpoint of each of the <= k missing edges from a
        # k-defective clique leaves a clique, so the size can exceed the
        # maximum clique size by at most k.
        assert size <= omega + k, inst.name


@pytest.mark.parametrize("variant", ["kDC/UB1", "kDC/RR3&4", "kDC-Degen"])
def test_ablation_variants_agree_with_full_kdc_on_tiny_facebook(variant):
    for inst in get_collection("facebook_like", scale="tiny"):
        graph = inst.graph
        full = find_maximum_defective_clique(graph, 2, time_limit=30.0)
        ablated = find_maximum_defective_clique(graph, 2, variant=variant, time_limit=30.0)
        assert full.optimal and ablated.optimal, inst.name
        assert full.size == ablated.size, (inst.name, variant)
