"""Tests for the k-defective clique predicates."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    defect,
    is_k_defective_clique,
    is_maximal_k_defective_clique,
    missing_edge_count,
    missing_edges,
    validate_k,
)
from repro.exceptions import InvalidParameterError
from repro.graphs import Graph, complete_graph, cycle_graph, gnp_random_graph, star_graph


class TestValidateK:
    def test_accepts_non_negative_integers(self):
        assert validate_k(0) == 0
        assert validate_k(17) == 17

    def test_rejects_negative(self):
        with pytest.raises(InvalidParameterError):
            validate_k(-1)

    def test_rejects_non_integers(self):
        with pytest.raises(InvalidParameterError):
            validate_k(1.5)
        with pytest.raises(InvalidParameterError):
            validate_k(True)


class TestMissingEdges:
    def test_complete_graph_has_none(self):
        g = complete_graph(5)
        assert missing_edge_count(g, g.vertices()) == 0
        assert missing_edges(g, g.vertices()) == []

    def test_cycle(self):
        g = cycle_graph(4)
        assert missing_edge_count(g, [0, 1, 2, 3]) == 2
        pairs = {frozenset(e) for e in missing_edges(g, [0, 1, 2, 3])}
        assert pairs == {frozenset({0, 2}), frozenset({1, 3})}

    def test_defect_alias(self):
        g = star_graph(3)
        assert defect(g, g.vertices()) == missing_edge_count(g, g.vertices()) == 3

    def test_subset_only(self):
        g = cycle_graph(5)
        assert missing_edge_count(g, [0, 1, 2]) == 1
        assert missing_edge_count(g, [0, 1]) == 0
        assert missing_edge_count(g, [0]) == 0
        assert missing_edge_count(g, []) == 0


class TestIsDefectiveClique:
    def test_clique_is_zero_defective(self):
        g = complete_graph(4)
        assert is_k_defective_clique(g, g.vertices(), 0)

    def test_threshold_behaviour(self):
        g = cycle_graph(4)
        assert not is_k_defective_clique(g, g.vertices(), 1)
        assert is_k_defective_clique(g, g.vertices(), 2)

    def test_empty_and_singleton_sets(self):
        g = complete_graph(3)
        assert is_k_defective_clique(g, [], 0)
        assert is_k_defective_clique(g, [0], 0)

    def test_invalid_k(self):
        g = complete_graph(3)
        with pytest.raises(InvalidParameterError):
            is_k_defective_clique(g, [0], -2)

    @given(st.integers(min_value=1, max_value=12), st.floats(min_value=0.0, max_value=1.0),
           st.integers(min_value=0, max_value=300), st.integers(min_value=0, max_value=5))
    @settings(max_examples=40, deadline=None)
    def test_hereditary_property(self, n, p, seed, k):
        """Any subset of a k-defective clique is a k-defective clique (paper Section 2)."""
        g = gnp_random_graph(n, p, seed=seed)
        vertices = g.vertices()
        if is_k_defective_clique(g, vertices, k):
            subset = vertices[: max(0, len(vertices) - 2)]
            assert is_k_defective_clique(g, subset, k)

    @given(st.integers(min_value=0, max_value=12), st.floats(min_value=0.0, max_value=1.0),
           st.integers(min_value=0, max_value=300))
    @settings(max_examples=40, deadline=None)
    def test_monotone_in_k(self, n, p, seed):
        g = gnp_random_graph(n, p, seed=seed)
        vertices = g.vertices()
        missing = missing_edge_count(g, vertices)
        assert is_k_defective_clique(g, vertices, missing)
        if missing > 0:
            assert not is_k_defective_clique(g, vertices, missing - 1)


class TestMaximality:
    def test_maximal_in_clique_plus_pendant(self):
        g = complete_graph(4)
        g.add_edge(0, 4)
        assert is_maximal_k_defective_clique(g, [0, 1, 2, 3, 4], 3)
        assert not is_maximal_k_defective_clique(g, [0, 1, 2, 3], 3)  # can absorb the pendant
        assert is_maximal_k_defective_clique(g, [0, 1, 2, 3], 0)

    def test_not_a_defective_clique_is_not_maximal(self):
        g = cycle_graph(5)
        assert not is_maximal_k_defective_clique(g, g.vertices(), 1)

    def test_star_centre(self):
        g = star_graph(4)
        # {centre, leaf} is a clique; adding another leaf introduces one missing edge.
        assert not is_maximal_k_defective_clique(g, [0, 1], 1)
        assert is_maximal_k_defective_clique(g, [0, 1], 0)
