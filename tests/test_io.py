"""Tests for graph readers and writers."""

from __future__ import annotations

import pytest

from repro.exceptions import GraphFormatError
from repro.graphs import (
    Graph,
    complete_graph,
    gnp_random_graph,
    load_graph,
    read_dimacs,
    read_edge_list,
    read_metis,
    save_graph,
    write_dimacs,
    write_edge_list,
    write_metis,
)


def _same_structure(a: Graph, b: Graph) -> bool:
    if a.num_vertices != b.num_vertices or a.num_edges != b.num_edges:
        return False
    a_rel, _, _ = a.relabel()
    b_rel, _, _ = b.relabel()
    return sorted(sorted(d for d in g.degrees().values()) for g in (a_rel,)) == sorted(
        sorted(d for d in g.degrees().values()) for g in (b_rel,)
    )


class TestEdgeList:
    def test_roundtrip(self, tmp_path):
        g = gnp_random_graph(20, 0.3, seed=1)
        path = tmp_path / "graph.edges"
        write_edge_list(g, path)
        loaded = read_edge_list(path)
        assert loaded.num_edges == g.num_edges
        for u, v in g.iter_edges():
            assert loaded.has_edge(u, v)

    def test_comments_and_blank_lines(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text("# comment\n% other comment\n\n0 1\n1 2\n")
        g = read_edge_list(path)
        assert g.num_edges == 2

    def test_self_loops_dropped(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text("0 0\n0 1\n")
        g = read_edge_list(path)
        assert g.num_edges == 1

    def test_string_labels_kept(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text("alice bob\nbob carol\n")
        g = read_edge_list(path)
        assert g.has_edge("alice", "bob")

    def test_malformed_line_raises(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text("0\n")
        with pytest.raises(GraphFormatError):
            read_edge_list(path)

    def test_header_written(self, tmp_path):
        g = Graph(edges=[(0, 1)], vertices=[2])
        path = tmp_path / "g.edges"
        write_edge_list(g, path)
        content = path.read_text()
        assert content.startswith("#")
        assert "isolated" in content

    def test_roundtrip_preserves_isolated_vertices(self, tmp_path):
        g = Graph(edges=[(0, 1), (1, 2)], vertices=[7, 9])
        path = tmp_path / "g.edges"
        write_edge_list(g, path)
        loaded = read_edge_list(path)
        assert loaded.num_vertices == g.num_vertices
        assert loaded.num_edges == g.num_edges
        assert loaded.has_vertex(7) and loaded.has_vertex(9)
        assert loaded.degree(7) == 0 and loaded.degree(9) == 0

    def test_roundtrip_preserves_string_labelled_isolated_vertices(self, tmp_path):
        g = Graph(edges=[("a", "b")], vertices=["lonely"])
        path = tmp_path / "g.edges"
        write_edge_list(g, path)
        loaded = read_edge_list(path)
        assert loaded.has_vertex("lonely")
        assert loaded.num_vertices == 3


class TestDimacs:
    def test_roundtrip(self, tmp_path):
        g = complete_graph(5)
        path = tmp_path / "g.clq"
        write_dimacs(g, path)
        loaded = read_dimacs(path)
        assert loaded.num_vertices == 5
        assert loaded.num_edges == 10

    def test_read_with_comments(self, tmp_path):
        path = tmp_path / "g.clq"
        path.write_text("c sample\np edge 3 2\ne 1 2\ne 2 3\n")
        g = read_dimacs(path)
        assert g.num_vertices == 3
        assert g.has_edge(0, 1) and g.has_edge(1, 2)

    def test_missing_problem_line(self, tmp_path):
        path = tmp_path / "g.clq"
        path.write_text("e 1 2\n")
        with pytest.raises(GraphFormatError):
            read_dimacs(path)

    def test_unknown_record(self, tmp_path):
        path = tmp_path / "g.clq"
        path.write_text("p edge 2 1\nx 1 2\n")
        with pytest.raises(GraphFormatError):
            read_dimacs(path)

    def test_malformed_edge(self, tmp_path):
        path = tmp_path / "g.clq"
        path.write_text("p edge 2 1\ne 1\n")
        with pytest.raises(GraphFormatError):
            read_dimacs(path)

    def test_endpoint_beyond_declared_n_rejected(self, tmp_path):
        path = tmp_path / "g.clq"
        path.write_text("p edge 3 2\ne 1 2\ne 2 9\n")
        with pytest.raises(GraphFormatError, match="out of range"):
            read_dimacs(path)

    def test_zero_or_negative_endpoint_rejected(self, tmp_path):
        path = tmp_path / "g.clq"
        path.write_text("p edge 3 1\ne 0 2\n")
        with pytest.raises(GraphFormatError, match="out of range"):
            read_dimacs(path)

    def test_edge_before_problem_line_rejected(self, tmp_path):
        path = tmp_path / "g.clq"
        path.write_text("e 1 2\np edge 3 1\n")
        with pytest.raises(GraphFormatError, match="before"):
            read_dimacs(path)

    def test_roundtrip_preserves_isolated_vertices(self, tmp_path):
        g = Graph(edges=[(0, 1)], vertices=[2, 3])
        path = tmp_path / "g.clq"
        write_dimacs(g, path)
        loaded = read_dimacs(path)
        assert loaded.num_vertices == 4
        assert loaded.num_edges == 1


class TestMetis:
    def test_roundtrip(self, tmp_path):
        g = gnp_random_graph(15, 0.3, seed=2)
        path = tmp_path / "g.graph"
        write_metis(g, path)
        loaded = read_metis(path)
        assert loaded.num_vertices == g.num_vertices
        assert loaded.num_edges == g.num_edges

    def test_empty_file_raises(self, tmp_path):
        path = tmp_path / "g.graph"
        path.write_text("")
        with pytest.raises(GraphFormatError):
            read_metis(path)

    def test_missing_lines_raise(self, tmp_path):
        path = tmp_path / "g.graph"
        path.write_text("3 1\n2\n")
        with pytest.raises(GraphFormatError):
            read_metis(path)

    def test_out_of_range_index(self, tmp_path):
        path = tmp_path / "g.graph"
        path.write_text("2 1\n2\n5\n")
        with pytest.raises(GraphFormatError):
            read_metis(path)

    def test_roundtrip_preserves_isolated_vertices(self, tmp_path):
        g = Graph(edges=[(0, 1)], vertices=[2, 3])
        path = tmp_path / "g.graph"
        write_metis(g, path)
        loaded = read_metis(path)
        assert loaded.num_vertices == 4
        assert loaded.num_edges == 1


class TestDispatch:
    @pytest.mark.parametrize("suffix", [".edges", ".clq", ".graph"])
    def test_auto_dispatch_roundtrip(self, tmp_path, suffix):
        g = complete_graph(4)
        path = tmp_path / f"graph{suffix}"
        save_graph(g, path)
        loaded = load_graph(path)
        assert loaded.num_edges == 6

    def test_unknown_extension_raises(self, tmp_path):
        g = Graph(edges=[(0, 1)])
        path = tmp_path / "graph.mtx"
        with pytest.raises(GraphFormatError, match="supported extensions"):
            save_graph(g, path)
        path.write_text("0 1\n")
        with pytest.raises(GraphFormatError, match="supported extensions"):
            load_graph(path)

    def test_unknown_extension_explicit_format_still_works(self, tmp_path):
        g = Graph(edges=[(0, 1)])
        path = tmp_path / "graph.mtx"
        save_graph(g, path, fmt="edgelist")
        assert load_graph(path, fmt="edgelist").num_edges == 1

    def test_explicit_format_overrides(self, tmp_path):
        g = complete_graph(3)
        path = tmp_path / "file.dat"
        save_graph(g, path, fmt="dimacs")
        loaded = load_graph(path, fmt="dimacs")
        assert loaded.num_edges == 3

    def test_bad_format_name(self, tmp_path):
        g = Graph(edges=[(0, 1)])
        with pytest.raises(GraphFormatError):
            save_graph(g, tmp_path / "x.edges", fmt="parquet")
        (tmp_path / "x.edges").write_text("0 1\n")
        with pytest.raises(GraphFormatError):
            load_graph(tmp_path / "x.edges", fmt="parquet")
