"""Tests for the compile/execute split: PreparedInstance + solve_prepared."""

from __future__ import annotations

import dataclasses
import pickle

import pytest

from repro.core import (
    KDCSolver,
    PreparedInstance,
    SolverConfig,
    is_k_defective_clique,
    prepare_instance,
    variant_config,
)
from repro.exceptions import InvalidParameterError
from repro.graphs import gnp_random_graph
from repro.graphs.graph import Graph


@pytest.fixture
def graph():
    return gnp_random_graph(40, 0.3, seed=4)


class TestPrepareInstance:
    def test_fields(self, graph):
        prepared = prepare_instance(graph, 2)
        assert prepared.k == 2
        assert prepared.digest == graph.content_digest()
        assert prepared.n_original == graph.num_vertices
        assert 0 < prepared.working_n <= graph.num_vertices
        assert prepared.lower_bound == len(prepared.heuristic) > 0
        assert prepared.prepare_seconds > 0
        # the decomposition covers exactly the working vertices
        ordering, position = prepared.decomposition()
        assert sorted(ordering) == sorted(prepared.working_adj)
        assert all(position[v] == i for i, v in enumerate(ordering))
        # adjacency is symmetric and sorted
        for v, nbrs in prepared.working_adj.items():
            assert list(nbrs) == sorted(nbrs)
            for u in nbrs:
                assert v in prepared.working_adj[u]

    def test_digest_skippable(self, graph):
        prepared = prepare_instance(graph, 1, compute_digest=False)
        assert prepared.digest == ""

    def test_immutable(self, graph):
        prepared = prepare_instance(graph, 1)
        with pytest.raises(dataclasses.FrozenInstanceError):
            prepared.k = 3

    def test_pickle_round_trip(self, graph):
        prepared = prepare_instance(graph, 2)
        prepared.packed_adjacency()  # populate the lazy cache before pickling
        clone = pickle.loads(pickle.dumps(prepared))
        assert clone.working_adj == prepared.working_adj
        assert clone.heuristic == prepared.heuristic
        assert clone.ordering == prepared.ordering
        assert clone.digest == prepared.digest
        result = KDCSolver().solve_prepared(clone)
        assert result.size == KDCSolver().solve(graph, 2).size

    def test_packed_adjacency_is_cached_and_consistent(self, graph):
        prepared = prepare_instance(graph, 1)
        first = prepared.packed_adjacency()
        assert prepared.packed_adjacency() is first
        to_global, rows = first
        index = {v: i for i, v in enumerate(to_global)}
        for v, nbrs in prepared.working_adj.items():
            expected = 0
            for u in nbrs:
                expected |= 1 << index[u]
            assert rows[index[v]] == expected

    def test_working_graph_round_trip(self, graph):
        prepared = prepare_instance(graph, 1)
        rebuilt = prepared.working_graph()
        assert rebuilt.num_vertices == prepared.working_n
        assert rebuilt.num_edges == prepared.working_num_edges
        for v in rebuilt:
            assert tuple(sorted(rebuilt.neighbors(v))) == prepared.working_adj[v]


class TestSolvePrepared:
    @pytest.mark.parametrize("k", [0, 1, 2, 3])
    def test_matches_fresh_solve(self, graph, k):
        solver = KDCSolver()
        fresh = solver.solve(graph, k)
        prepared = prepare_instance(graph, k, solver.config)
        result = solver.solve_prepared(prepared)
        assert result.optimal and fresh.optimal
        assert result.size == fresh.size
        assert is_k_defective_clique(graph, result.clique, k)

    def test_artifact_is_reusable(self, graph):
        solver = KDCSolver()
        prepared = prepare_instance(graph, 2, solver.config)
        sizes = {solver.solve_prepared(prepared).size for _ in range(3)}
        assert len(sizes) == 1

    def test_string_labels(self):
        g = Graph()
        for u, v in [("a", "b"), ("b", "c"), ("a", "c"), ("c", "d"), ("d", "e")]:
            g.add_edge(u, v)
        solver = KDCSolver()
        prepared = prepare_instance(g, 1, solver.config)
        result = solver.solve_prepared(prepared)
        assert result.size == solver.solve(g, 1).size
        assert set(result.clique) <= g.vertex_set()

    def test_k_defaults_to_prepared_k_and_mismatch_raises(self, graph):
        solver = KDCSolver()
        prepared = prepare_instance(graph, 2, solver.config)
        assert solver.solve_prepared(prepared).k == 2
        with pytest.raises(InvalidParameterError):
            solver.solve_prepared(prepared, 3)

    def test_config_mismatch_raises(self, graph):
        prepared = prepare_instance(graph, 1)  # default kDC prepare config
        theoretical = KDCSolver(variant_config("kDC-t"))
        with pytest.raises(InvalidParameterError):
            theoretical.solve_prepared(prepared)

    def test_execute_side_knobs_share_one_artifact(self, graph):
        # backend/engine/workers are execute-side: one artifact serves them all
        prepared = prepare_instance(graph, 2)
        expected = KDCSolver().solve(graph, 2).size
        for config in (
            SolverConfig(backend="set"),
            SolverConfig(backend="bitset", engine="copy", decompose_threshold=1),
            SolverConfig(backend="bitset", engine="trail", decompose_threshold=10**9),
        ):
            result = KDCSolver(config).solve_prepared(prepared)
            assert result.optimal and result.size == expected, config

    def test_budget_override_interrupts_without_harming_artifact(self, graph):
        solver = KDCSolver()
        prepared = prepare_instance(graph, 3, solver.config)
        full = solver.solve_prepared(prepared)
        assert full.optimal and full.stats.nodes > 1
        limited = solver.solve_prepared(prepared, node_limit=1)
        assert not limited.optimal
        assert limited.size >= prepared.lower_bound  # partial incumbent kept
        again = solver.solve_prepared(prepared)
        assert again.optimal and again.size == full.size

    def test_seeded_stats_match_fresh(self, graph):
        solver = KDCSolver()
        fresh = solver.solve(graph, 2)
        prepared = prepare_instance(graph, 2, solver.config)
        result = solver.solve_prepared(prepared)
        assert result.stats.initial_solution_size == fresh.stats.initial_solution_size
        assert (
            result.stats.preprocess_removed_vertices
            == fresh.stats.preprocess_removed_vertices
        )
        assert result.stats.backend == fresh.stats.backend

    def test_phase_timings(self, graph):
        solver = KDCSolver()
        fresh = solver.solve(graph, 2)
        assert fresh.stats.prepare_ms > 0
        assert fresh.stats.solve_ms >= 0
        assert fresh.stats.queue_ms == 0.0
        assert not fresh.stats.cache_hit
        prepared = prepare_instance(graph, 2, solver.config)
        result = solver.solve_prepared(prepared)
        # a bare solve_prepared paid no prepare cost of its own
        assert result.stats.prepare_ms == 0.0

    def test_empty_graph_artifact(self):
        prepared = prepare_instance(Graph(), 1)
        result = KDCSolver().solve_prepared(prepared)
        assert result.optimal and result.size == 0
