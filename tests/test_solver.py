"""Tests for the kDC solver (correctness, variants, budgets, edge cases)."""

from __future__ import annotations

import pytest

from repro.baselines import brute_force_maximum_defective_clique
from repro.core import (
    KDCSolver,
    SolverConfig,
    find_maximum_defective_clique,
    is_k_defective_clique,
    is_maximal_k_defective_clique,
    maximum_defective_clique_size,
    variant_config,
)
from repro.exceptions import InvalidParameterError
from repro.graphs import (
    Graph,
    complete_graph,
    cycle_graph,
    gnp_random_graph,
    planted_defective_clique_graph,
    star_graph,
)


class TestBasicCases:
    def test_empty_graph(self):
        result = find_maximum_defective_clique(Graph(), 2)
        assert result.size == 0
        assert result.optimal

    def test_single_vertex(self):
        result = find_maximum_defective_clique(Graph(vertices=["a"]), 0)
        assert result.clique == ["a"]

    def test_complete_graph(self):
        for k in (0, 1, 5):
            result = find_maximum_defective_clique(complete_graph(6), k)
            assert result.size == 6

    def test_edgeless_graph(self):
        g = Graph(vertices=range(5))
        assert find_maximum_defective_clique(g, 0).size == 1
        assert find_maximum_defective_clique(g, 1).size == 2
        assert find_maximum_defective_clique(g, 3).size == 3

    def test_k0_equals_maximum_clique(self):
        g = gnp_random_graph(20, 0.4, seed=1)
        from repro.baselines import MaxCliqueSolver

        assert find_maximum_defective_clique(g, 0).size == MaxCliqueSolver().solve(g).size

    def test_star_graph(self):
        g = star_graph(6)
        assert find_maximum_defective_clique(g, 0).size == 2
        assert find_maximum_defective_clique(g, 1).size == 3
        assert find_maximum_defective_clique(g, 3).size == 4

    def test_cycle(self):
        g = cycle_graph(6)
        assert find_maximum_defective_clique(g, 1).size == 3
        # Any four vertices of C6 span at most three edges, so k = 2 cannot
        # reach size 4 but k = 3 can.
        assert find_maximum_defective_clique(g, 2).size == 3
        assert find_maximum_defective_clique(g, 3).size == 4

    def test_result_is_valid_and_maximal(self):
        g = gnp_random_graph(25, 0.3, seed=7)
        for k in (1, 2, 4):
            result = find_maximum_defective_clique(g, k)
            assert is_k_defective_clique(g, result.clique, k)
            assert is_maximal_k_defective_clique(g, result.clique, k)

    def test_string_labels_preserved(self):
        g = Graph(edges=[("a", "b"), ("b", "c"), ("a", "c"), ("c", "d")])
        result = find_maximum_defective_clique(g, 0)
        assert set(result.clique) == {"a", "b", "c"}

    def test_negative_k_rejected(self):
        with pytest.raises(InvalidParameterError):
            find_maximum_defective_clique(complete_graph(3), -1)

    def test_planted_solution_recovered(self):
        g = planted_defective_clique_graph(80, 12, 3, background_p=0.04, seed=5)
        result = find_maximum_defective_clique(g, 3)
        assert result.size >= 12
        assert is_k_defective_clique(g, result.clique, 3)


class TestCorrectnessAgainstBruteForce:
    @pytest.mark.parametrize("k", [0, 1, 2, 3, 5])
    def test_random_graphs(self, k):
        for seed in range(12):
            g = gnp_random_graph(11, 0.35 + 0.05 * (seed % 4), seed=seed)
            expected = len(brute_force_maximum_defective_clique(g, k))
            result = find_maximum_defective_clique(g, k)
            assert result.optimal
            assert result.size == expected
            assert is_k_defective_clique(g, result.clique, k)

    @pytest.mark.parametrize("variant", ["kDC", "kDC-t", "kDC/UB1", "kDC/RR3&4", "kDC/UB1&RR3&4", "kDC-Degen"])
    def test_all_variants_agree(self, variant):
        for seed in range(8):
            g = gnp_random_graph(12, 0.4, seed=100 + seed)
            k = seed % 4
            expected = len(brute_force_maximum_defective_clique(g, k))
            result = find_maximum_defective_clique(g, k, variant=variant)
            assert result.size == expected, f"{variant} failed on seed {seed}"

    def test_monotone_in_k(self):
        g = gnp_random_graph(18, 0.3, seed=11)
        sizes = [find_maximum_defective_clique(g, k).size for k in range(0, 5)]
        assert all(a <= b for a, b in zip(sizes, sizes[1:]))
        # each extra unit of k can add at most one vertex beyond... (no strict
        # bound in general, but sizes must stay <= n)
        assert sizes[-1] <= g.num_vertices


class TestConfigurationAndVariants:
    def test_variant_config_names(self):
        for name in ("kDC", "kDC-t", "kDC/UB1", "kDC/RR3&4", "kDC-Degen"):
            config = variant_config(name)
            assert isinstance(config, SolverConfig)
        with pytest.raises(InvalidParameterError):
            variant_config("kDC-bogus")

    def test_kdc_t_has_no_practical_techniques(self):
        config = variant_config("kDC-t")
        assert not config.uses_practical_techniques

    def test_config_validation(self):
        with pytest.raises(InvalidParameterError):
            SolverConfig(initial_heuristic="bogus")
        with pytest.raises(InvalidParameterError):
            SolverConfig(time_limit=-1.0)
        with pytest.raises(InvalidParameterError):
            SolverConfig(node_limit=0)

    def test_config_with_budget(self):
        config = SolverConfig().with_budget(time_limit=2.0, node_limit=50)
        assert config.time_limit == 2.0
        assert config.node_limit == 50

    def test_cannot_pass_config_and_variant(self):
        with pytest.raises(InvalidParameterError):
            find_maximum_defective_clique(complete_graph(3), 1, config=SolverConfig(), variant="kDC")

    def test_solver_name_defaults(self):
        assert KDCSolver().name == "kDC"
        assert KDCSolver(variant_config("kDC-t")).name == "kDC-t"
        assert KDCSolver(name="custom").name == "custom"

    def test_solver_reusable(self):
        solver = KDCSolver()
        a = solver.solve(complete_graph(4), 1)
        b = solver.solve(cycle_graph(5), 1)
        assert a.size == 4
        assert b.size == 3


class TestBudgets:
    def test_node_limit_interrupts(self):
        g = gnp_random_graph(60, 0.4, seed=3)
        config = SolverConfig(node_limit=3)
        result = KDCSolver(config).solve(g, 3)
        assert not result.optimal
        # the heuristic initial solution is still returned
        assert is_k_defective_clique(g, result.clique, 3)

    def test_time_limit_interrupts(self):
        g = gnp_random_graph(120, 0.3, seed=4)
        config = SolverConfig(time_limit=0.01)
        result = KDCSolver(config).solve(g, 5)
        assert is_k_defective_clique(g, result.clique, 5)
        # with such a small budget the search is almost certainly interrupted,
        # but either way the result must be well-formed
        assert result.size >= 1

    def test_budget_result_never_worse_than_heuristic(self):
        g = gnp_random_graph(80, 0.3, seed=5)
        config = SolverConfig(node_limit=2)
        result = KDCSolver(config).solve(g, 2)
        assert result.size >= result.stats.initial_solution_size

    def test_time_limit_enforced_during_pre_search_phases(self):
        """A deadline that fires before the search starts must yield optimal=False.

        The limit is small enough that it expires inside the initial
        heuristic / preprocessing on this dense instance, which the seed
        implementation ignored entirely (the deadline was only checked
        inside the branch-and-bound recursion).
        """
        import time

        g = gnp_random_graph(150, 0.5, seed=9)
        config = SolverConfig(time_limit=1e-6)
        start = time.perf_counter()
        result = KDCSolver(config).solve(g, 3)
        elapsed = time.perf_counter() - start
        assert not result.optimal
        assert is_k_defective_clique(g, result.clique, 3)
        # Far below what a full solve of this instance would need.
        assert elapsed < 10.0

    def test_time_limit_pre_search_keeps_partial_heuristic(self):
        g = gnp_random_graph(120, 0.4, seed=10)
        result = KDCSolver(SolverConfig(time_limit=1e-6)).solve(g, 2)
        # degen runs to completion before the first budget poll, so an
        # interrupted solve still returns a non-trivial valid solution.
        assert result.size >= 1
        assert not result.optimal


class TestStatistics:
    def test_stats_populated(self):
        g = gnp_random_graph(30, 0.4, seed=8)
        result = find_maximum_defective_clique(g, 2)
        stats = result.stats
        assert stats.nodes >= 1 or stats.initial_solution_size == result.size
        assert stats.elapsed_seconds >= 0.0
        assert stats.initial_solution_size >= 1
        as_dict = stats.as_dict()
        assert "nodes" in as_dict and "elapsed_seconds" in as_dict

    def test_summary_string(self):
        result = find_maximum_defective_clique(complete_graph(4), 1)
        text = result.summary()
        assert "kDC" in text and "|C|=4" in text

    def test_maximum_defective_clique_size_helper(self):
        assert maximum_defective_clique_size(complete_graph(5), 2) == 5
