"""Tests for the upper bounds UB1, UB2, UB3 and the Eq. (2) baseline bound."""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines import brute_force_maximum_defective_clique
from repro.core import SearchState
from repro.core.bounds import (
    best_upper_bound,
    color_candidates,
    eq2_original_coloring,
    ub1_improved_coloring,
    ub2_min_degree,
    ub3_degree_sequence,
)
from repro.graphs import Graph, complete_graph, complete_multipartite_graph, gnp_random_graph


def _adjacency(graph):
    return [set(graph.neighbors(v)) for v in range(graph.num_vertices)]


def _figure5_state(k: int = 3) -> SearchState:
    """Rebuild the paper's Figure 5 instance: S = two isolated vertices, rest a 3-partite clique."""
    g = complete_multipartite_graph([3, 3, 3])
    g.add_vertex(9)
    g.add_vertex(10)
    state = SearchState.initial(_adjacency(g), k=k)
    state.add_to_solution(9)
    state.add_to_solution(10)
    return state


class TestFigure5Example:
    def test_eq2_bound_matches_example_3_6(self):
        state = _figure5_state(k=3)
        # Example 3.6: |S| + 3 * 3 = 11.
        assert eq2_original_coloring(state) == 11

    def test_ub1_matches_example_3_7(self):
        state = _figure5_state(k=3)
        # Example 3.7: the improved bound evaluates to 3.
        assert ub1_improved_coloring(state) == 3

    def test_ub1_is_much_tighter_than_eq2(self):
        state = _figure5_state(k=3)
        assert ub1_improved_coloring(state) < eq2_original_coloring(state)


class TestColorCandidates:
    def test_classes_are_independent_sets(self):
        g = gnp_random_graph(20, 0.4, seed=3)
        state = SearchState.initial(_adjacency(g), k=2)
        classes = color_candidates(state)
        seen = set()
        for cls in classes:
            for i, u in enumerate(cls):
                seen.add(u)
                for v in cls[i + 1:]:
                    assert not g.has_edge(u, v)
        assert seen == state.candidates

    def test_complete_graph_uses_singleton_classes(self):
        g = complete_graph(5)
        state = SearchState.initial(_adjacency(g), k=0)
        classes = color_candidates(state)
        assert len(classes) == 5
        assert all(len(cls) == 1 for cls in classes)


class TestSimpleBounds:
    def test_ub2_on_empty_solution_is_vacuous(self):
        g = complete_graph(4)
        state = SearchState.initial(_adjacency(g), k=1)
        assert ub2_min_degree(state) == 4

    def test_ub2_uses_min_degree_of_solution(self):
        g = Graph(edges=[(0, 1), (0, 2), (0, 3), (1, 2)])
        state = SearchState.initial(_adjacency(g), k=1)
        state.add_to_solution(1)  # degree 2 in g
        assert ub2_min_degree(state) == 2 + 1 + 1

    def test_ub3_on_clique(self):
        g = complete_graph(5)
        state = SearchState.initial(_adjacency(g), k=1)
        assert ub3_degree_sequence(state) == 5

    def test_ub3_respects_budget(self):
        # Star: centre adjacent to all leaves; leaves mutually non-adjacent.
        g = Graph(edges=[(0, 1), (0, 2), (0, 3)])
        state = SearchState.initial(_adjacency(g), k=1)
        state.add_to_solution(1)
        state.add_to_solution(0)
        # candidates 2, 3 each have one non-neighbour (vertex 1) in S
        assert ub3_degree_sequence(state) == 2 + 1

    def test_best_upper_bound_disabled_returns_graph_size(self):
        g = complete_graph(6)
        state = SearchState.initial(_adjacency(g), k=0)
        assert best_upper_bound(state, use_ub1=False, use_ub2=False, use_ub3=False) == 6

    def test_best_upper_bound_accepts_shared_classes(self):
        # A caller evaluating eq2 alongside best_upper_bound colours once and
        # shares the classes; the value must match the recolour-internally path.
        g = gnp_random_graph(14, 0.4, seed=3)
        state = SearchState.initial(_adjacency(g), k=2)
        classes = color_candidates(state)
        assert best_upper_bound(state, classes=classes) == best_upper_bound(state)
        assert eq2_original_coloring(state, classes) == eq2_original_coloring(state)


class TestSoundnessProperties:
    @given(st.integers(min_value=1, max_value=11), st.floats(min_value=0.1, max_value=0.9),
           st.integers(min_value=0, max_value=300), st.integers(min_value=0, max_value=4))
    @settings(max_examples=40, deadline=None)
    def test_bounds_dominate_optimum(self, n, p, seed, k):
        """Every upper bound must be >= the true maximum size (soundness)."""
        g = gnp_random_graph(n, p, seed=seed)
        optimum = len(brute_force_maximum_defective_clique(g, k))
        state = SearchState.initial(_adjacency(g), k=k)
        assert ub1_improved_coloring(state) >= optimum
        assert ub2_min_degree(state) >= optimum
        assert ub3_degree_sequence(state) >= optimum
        assert eq2_original_coloring(state) >= optimum
        assert best_upper_bound(state) >= optimum

    @given(st.integers(min_value=1, max_value=12), st.floats(min_value=0.1, max_value=0.9),
           st.integers(min_value=0, max_value=300), st.integers(min_value=0, max_value=5))
    @settings(max_examples=40, deadline=None)
    def test_ub1_no_looser_than_eq2_and_ub3(self, n, p, seed, k):
        """UB1 is tighter than both the Eq. (2) coloring bound and UB3 (paper Section 3.2.1)."""
        g = gnp_random_graph(n, p, seed=seed)
        state = SearchState.initial(_adjacency(g), k=k)
        classes = color_candidates(state)
        ub1 = ub1_improved_coloring(state, classes)
        assert ub1 <= eq2_original_coloring(state, classes)
        assert ub1 <= ub3_degree_sequence(state)

    @given(st.integers(min_value=2, max_value=10), st.floats(min_value=0.2, max_value=0.9),
           st.integers(min_value=0, max_value=200), st.integers(min_value=0, max_value=3))
    @settings(max_examples=30, deadline=None)
    def test_bounds_sound_with_partial_solution(self, n, p, seed, k):
        """Bounds remain sound for instances with a non-empty partial solution S."""
        g = gnp_random_graph(n, p, seed=seed)
        state = SearchState.initial(_adjacency(g), k=k)
        # Greedily build a small valid S.
        for v in sorted(state.candidates):
            if state.missing_if_added(v) <= k:
                state.add_to_solution(v)
            if len(state.solution) >= 2:
                break
        solution = set(state.solution)
        # Optimum among k-defective cliques containing S.
        best = len(solution)
        from itertools import combinations

        others = [v for v in g.vertices() if v not in solution]
        for size in range(len(others), 0, -1):
            for extra in combinations(others, size):
                cand = list(solution) + list(extra)
                if g.count_missing_edges(cand) <= k:
                    best = max(best, len(cand))
                    break
            if best > len(solution):
                break
        assert ub1_improved_coloring(state) >= best
        assert ub3_degree_sequence(state) >= best
        assert ub2_min_degree(state) >= best
