"""Property-based tests (hypothesis) for the Graph data structure."""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graphs import Graph, gnp_random_graph


def edge_lists(max_vertices: int = 12):
    """Strategy producing lists of edges over a small vertex range."""
    vertex = st.integers(min_value=0, max_value=max_vertices - 1)
    edge = st.tuples(vertex, vertex).filter(lambda e: e[0] != e[1])
    return st.lists(edge, max_size=40)


@given(edge_lists())
@settings(max_examples=60, deadline=None)
def test_edge_count_matches_edge_list(edges):
    g = Graph(edges=edges)
    assert g.num_edges == len(g.edges())
    g.validate()


@given(edge_lists())
@settings(max_examples=60, deadline=None)
def test_adjacency_is_symmetric(edges):
    g = Graph(edges=edges)
    for u in g:
        for v in g.neighbors(u):
            assert u in g.neighbors(v)


@given(edge_lists())
@settings(max_examples=60, deadline=None)
def test_degree_sum_is_twice_edges(edges):
    g = Graph(edges=edges)
    assert sum(g.degrees().values()) == 2 * g.num_edges


@given(edge_lists())
@settings(max_examples=40, deadline=None)
def test_complement_of_complement_is_identity(edges):
    g = Graph(edges=edges)
    double = g.complement().complement()
    assert double == g


@given(edge_lists())
@settings(max_examples=40, deadline=None)
def test_missing_plus_present_edges_is_total(edges):
    g = Graph(edges=edges)
    n = g.num_vertices
    assert g.num_edges + g.missing_edge_count() == n * (n - 1) // 2


@given(edge_lists(), st.integers(min_value=0, max_value=11))
@settings(max_examples=40, deadline=None)
def test_subgraph_respects_host_edges(edges, pivot):
    g = Graph(edges=edges)
    keep = [v for v in g if isinstance(v, int) and v <= pivot]
    sub = g.subgraph(keep)
    for u, v in sub.iter_edges():
        assert g.has_edge(u, v)
    assert set(sub.vertices()) == set(keep)


@given(edge_lists())
@settings(max_examples=40, deadline=None)
def test_relabel_preserves_structure(edges):
    g = Graph(edges=edges)
    relabeled, to_int, to_label = g.relabel()
    assert relabeled.num_vertices == g.num_vertices
    assert relabeled.num_edges == g.num_edges
    for u, v in g.iter_edges():
        assert relabeled.has_edge(to_int[u], to_int[v])
    assert [to_int[label] for label in to_label] == list(range(g.num_vertices))


@given(st.integers(min_value=0, max_value=25), st.floats(min_value=0.0, max_value=1.0),
       st.integers(min_value=0, max_value=2**16))
@settings(max_examples=30, deadline=None)
def test_gnp_density_within_bounds(n, p, seed):
    g = gnp_random_graph(n, p, seed=seed)
    assert g.num_vertices == n
    assert 0 <= g.num_edges <= n * (n - 1) // 2
    g.validate()


@given(edge_lists())
@settings(max_examples=40, deadline=None)
def test_remove_vertex_removes_incident_edges(edges):
    g = Graph(edges=edges)
    if g.num_vertices == 0:
        return
    victim = next(iter(g))
    degree = g.degree(victim)
    before = g.num_edges
    g.remove_vertex(victim)
    assert g.num_edges == before - degree
    g.validate()
