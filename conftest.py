"""Repository-level pytest configuration.

Ensures the ``src`` layout is importable even when the package has not been
installed (e.g. running ``pytest`` straight from a fresh checkout in an
offline environment), and registers the repository's custom markers (also
declared in ``pyproject.toml`` for installed runs).
"""

import os
import sys

_SRC = os.path.join(os.path.dirname(__file__), "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)


def pytest_configure(config):
    config.addinivalue_line(
        "markers",
        "slow: deep/fuzz tier excluded from tier-1 runs (deselect with -m 'not slow')",
    )
