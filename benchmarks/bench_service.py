"""Amortisation of the prepare phase through the solver service.

The service's whole value proposition is that one graph interrogated many
times pays the prepare cost (relabel + heuristic + RR5/RR6 preprocessing +
degeneracy order) once instead of per query, and that repeated queries are
answered from the result cache without any search at all.  This benchmark
measures both effects on one G(n, p) instance:

* ``fresh``   — every query is a full ``KDCSolver.solve`` (the pre-service
  baseline);
* ``service`` — the same query stream through one :class:`SolverService`
  (first query per ``k`` prepares + solves, repeats are cache hits).

Recorded into ``BENCH_service.json``: per-mode wall-clock, the service's
prepare/cache counters, and the request-level phase timings of a first-touch
and a cache-hit answer.  The queries are tiny, so this rides along in the
tier-1 run in well under a second.

Environment knobs: ``REPRO_BENCH_SERVICE_N`` (default 120) resizes the
instance.
"""

from __future__ import annotations

import os
import time

from repro.bench.harness import InstanceRecord
from repro.core import KDCSolver
from repro.graphs import gnp_random_graph
from repro.service import SolverService

from _bench_utils import bench_recorder

_RECORDER = bench_recorder("service")

#: (k, repeats) of the query stream — every k is asked several times, which
#: is exactly the traffic shape the result cache exists for.
QUERY_STREAM = ((1, 3), (2, 3))


def _instance():
    n = int(os.environ.get("REPRO_BENCH_SERVICE_N", "120"))
    return gnp_random_graph(n, 0.08, seed=11)


def test_service_amortisation_report(capsys):
    """Same query stream, fresh-per-query vs through the service; sizes must agree."""
    graph = _instance()
    name = f"gnp_{graph.num_vertices}"
    queries = [k for k, repeats in QUERY_STREAM for _ in range(repeats)]

    solver = KDCSolver()
    start = time.perf_counter()
    fresh_sizes = [solver.solve(graph, k).size for k in queries]
    fresh_elapsed = time.perf_counter() - start

    with SolverService() as service:
        digest = service.store.add(graph, name=name)
        start = time.perf_counter()
        results = [service.solve(digest, k) for k in queries]
        service_elapsed = time.perf_counter() - start
        counters = service.stats()

    service_sizes = [r.size for r in results]
    assert service_sizes == fresh_sizes, (fresh_sizes, service_sizes)
    assert all(r.optimal for r in results)

    first, repeat = results[0], results[1]
    assert not first.stats.cache_hit
    assert repeat.stats.cache_hit
    assert counters["solves"] == len(QUERY_STREAM)  # one engine run per distinct k
    assert counters["cache_hits"] == len(queries) - len(QUERY_STREAM)

    first_record = InstanceRecord.from_result(first, algorithm="kDC", instance=name)
    repeat_record = InstanceRecord.from_result(repeat, algorithm="kDC", instance=name)
    _RECORDER.record(
        name,
        elapsed_seconds=round(service_elapsed, 6),
        fresh_elapsed_seconds=round(fresh_elapsed, 6),
        queries=len(queries),
        solves=counters["solves"],
        cache_hits=counters["cache_hits"],
        prepares=counters["prepares"],
        first_prepare_ms=round(first_record.prepare_ms, 3),
        first_solve_ms=round(first_record.solve_ms, 3),
        repeat_cache_hit=repeat_record.cache_hit,
    )

    with capsys.disabled():
        print(
            f"\n[service] n={graph.num_vertices} queries={len(queries)}: "
            f"fresh {fresh_elapsed:.3f}s vs service {service_elapsed:.3f}s "
            f"(solves={counters['solves']}, cache_hits={counters['cache_hits']}, "
            f"prepares={counters['prepares']})"
        )


if __name__ == "__main__":  # pragma: no cover — ad-hoc runs
    graph = _instance()
    queries = [k for k, repeats in QUERY_STREAM for _ in range(repeats)]
    start = time.perf_counter()
    fresh = [KDCSolver().solve(graph, k).size for k in queries]
    fresh_elapsed = time.perf_counter() - start
    with SolverService() as service:
        digest = service.store.add(graph)
        start = time.perf_counter()
        sizes = [service.solve(digest, k).size for k in queries]
        service_elapsed = time.perf_counter() - start
        print(f"fresh={fresh_elapsed:.3f}s service={service_elapsed:.3f}s sizes={sizes}")
        assert sizes == fresh
        print(service.stats())
