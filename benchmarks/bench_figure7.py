"""Benchmark regenerating Figure 7: solved instances vs time limit (real-world collection).

The paper plots, for each k, the number of real-world instances each
algorithm (kDC, kDC/RR3&4, kDC/UB1, kDC-Degen, KDBB) solves as the time
limit grows from 1 second to 3 hours.  The reproduction sweeps a seconds
scale range over the real_world_like collection.
"""

from __future__ import annotations

import time

from repro.bench import figure7

from _bench_utils import bench_recorder, bench_scale, bench_time_limit

_RECORDER = bench_recorder("figure7")

ALGORITHMS = ("kDC", "kDC/RR3&4", "kDC/UB1", "kDC-Degen", "KDBB")
K_VALUES = (1, 3)


def _run():
    max_limit = bench_time_limit()
    limits = (max_limit / 20, max_limit / 5, max_limit / 2, max_limit)
    return figure7(
        scale=bench_scale(),
        k_values=K_VALUES,
        time_limits=limits,
        algorithms=ALGORITHMS,
    )


def test_figure7_reproduction(benchmark):
    """Regenerate Figure 7 and check solved counts are monotone in the time limit."""
    start = time.perf_counter()
    result = benchmark.pedantic(_run, rounds=1, iterations=1)
    _RECORDER.record_experiment(result, time.perf_counter() - start)
    print("\n" + result.text)
    max_limit = bench_time_limit()
    for k in K_VALUES:
        low = result.data[f"k={k}/limit={max_limit / 20}"]
        high = result.data[f"k={k}/limit={max_limit}"]
        for algorithm in ALGORITHMS:
            assert low[algorithm] <= high[algorithm]
        # The headline claim: at the full limit kDC solves at least as many
        # instances as the KDBB baseline.
        assert high["kDC"] >= high["KDBB"] - 1
