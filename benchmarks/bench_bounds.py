"""Ablation benchmark: tightness and cost of the upper bounds (Section 3.2.1).

Not a table of the paper, but a study DESIGN.md calls out: how much tighter
UB1 is than the Eq. (2) coloring bound and UB3 across root instances of the
benchmark collections, and what each bound costs to evaluate.
"""

from __future__ import annotations

import pytest

from repro.core import SearchState
from repro.core.bounds import (
    color_candidates,
    eq2_original_coloring,
    ub1_improved_coloring,
    ub3_degree_sequence,
)
from repro.datasets import all_collections

from _bench_utils import bench_recorder, bench_scale

_RECORDER = bench_recorder("bounds")

K = 3


def _root_states():
    states = []
    for instances in all_collections(scale=bench_scale()).values():
        for inst in instances:
            relabeled, _, _ = inst.graph.relabel()
            adj = [set(relabeled.neighbors(v)) for v in range(relabeled.num_vertices)]
            states.append(SearchState.initial(adj, K))
    return states


@pytest.fixture(scope="module")
def root_states():
    return _root_states()


def test_ub1_tightness_study(benchmark, root_states):
    """Measure how much tighter UB1 is than Eq. (2) and UB3 at the root of every instance."""

    def run():
        gaps_eq2, gaps_ub3 = [], []
        for state in root_states:
            classes = color_candidates(state)
            ub1 = ub1_improved_coloring(state, classes)
            eq2 = eq2_original_coloring(state, classes)
            ub3 = ub3_degree_sequence(state)
            gaps_eq2.append(eq2 - ub1)
            gaps_ub3.append(ub3 - ub1)
        return gaps_eq2, gaps_ub3

    gaps_eq2, gaps_ub3 = benchmark.pedantic(run, rounds=1, iterations=1)
    _RECORDER.record_benchmark(
        "ub1_tightness", benchmark,
        instances=len(gaps_eq2),
        mean_gap_eq2=round(sum(gaps_eq2) / len(gaps_eq2), 3),
        mean_gap_ub3=round(sum(gaps_ub3) / len(gaps_ub3), 3),
    )
    # UB1 dominates both competing bounds on every instance ...
    assert all(gap >= 0 for gap in gaps_eq2)
    assert all(gap >= 0 for gap in gaps_ub3)
    # ... and is strictly tighter than the Eq. (2) bound somewhere.
    assert any(gap > 0 for gap in gaps_eq2)
    print(
        f"\nUB1 vs Eq.(2): mean gap {sum(gaps_eq2) / len(gaps_eq2):.2f} vertices; "
        f"UB1 vs UB3: mean gap {sum(gaps_ub3) / len(gaps_ub3):.2f} vertices over {len(gaps_eq2)} instances"
    )


def test_ub1_evaluation_cost(benchmark, root_states):
    """Micro-benchmark the per-node cost of evaluating UB1 at the root instances."""
    state = max(root_states, key=lambda s: s.graph_size)

    def run():
        return ub1_improved_coloring(state)

    value = benchmark(run)
    assert value >= 1
    _RECORDER.record_benchmark("ub1_evaluation_cost", benchmark, graph_size=state.graph_size)
