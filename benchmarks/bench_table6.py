"""Benchmark regenerating Table 6: does the maximum k-defective clique extend a maximum clique?

The paper reports, per collection and k, on how many graphs the found
maximum k-defective clique contains a maximum clique of the graph.
"""

from __future__ import annotations

import time

from repro.bench import table6

from _bench_utils import bench_recorder, bench_scale, bench_time_limit

_RECORDER = bench_recorder("table6")

K_VALUES = (1, 2, 3, 5)


def _run():
    return table6(scale=bench_scale(), k_values=K_VALUES, time_limit=bench_time_limit())


def test_table6_reproduction(benchmark):
    """Regenerate Table 6 and check the counts are well-formed and substantial for k=1."""
    start = time.perf_counter()
    result = benchmark.pedantic(_run, rounds=1, iterations=1)
    _RECORDER.record_experiment(result, time.perf_counter() - start)
    print("\n" + result.text)
    for key, agg in result.data.items():
        assert 0 <= agg["num_extending_max_clique"] <= agg["count"], key
    # For k = 1 the paper observes that most maximum 1-defective cliques
    # extend a maximum clique; require a majority in the reproduction.
    for collection in ("real_world_like", "facebook_like", "dimacs_snap_like"):
        agg = result.data.get(f"{collection}/k=1")
        if agg and agg["count"]:
            assert agg["num_extending_max_clique"] >= agg["count"] / 2
