"""Set-vs-bitset backend and copy-vs-trail engine comparisons.

Companion to ``bench_solver_micro.py``: the same solver is timed once with
the dict/set :class:`SearchState` backend and once with the bitset fast path
(packed adjacency bitmaps plus the degeneracy decomposition), so the
``BENCH_backend_compare.json`` perf trajectory captures the backend speedup
from the PR that introduced the bitset core onward.  A second report times
the bitset backend's two engines — ``copy`` (copy-per-child baseline) and
``trail`` (undo-stack engine with worklist reductions and repairable
coloring bounds) — and records the node-throughput column.

Observed numbers on this class (1-CPU dev box):

* set vs bitset: ~5-7x on G(n, p) with n >= 200, ~2-3x on the denser
  facebook-like instances where reductions shrink states quickly;
* copy vs trail: ~1.0-1.2x node throughput on the decomposed instances
  (ego subproblems are small and dense, so per-child copies are C-cheap),
  rising to ~1.3-1.7x on whole-graph searches where per-node sweeps scale
  with n — the regime the trail engine exists for.  The ISSUE-3 target of
  >= 2x was not reached: the dominant per-node costs (the RR3/RR4 global
  sweeps and the UB evaluations) are algorithmic and shared by both
  engines, and the shared-rule optimizations that landed with the trail
  engine sped the copy baseline up as well.
"""

from __future__ import annotations

import time

from repro.core import KDCSolver, SolverConfig
from repro.datasets import get_collection
from repro.graphs import gnp_random_graph

from _bench_utils import bench_recorder

_RECORDER = bench_recorder("backend_compare")
#: Separate recorder (and JSON file) for the engine column: CI runs the two
#: reports as separate pytest sessions, and a shared file would be
#: overwritten by whichever session flushes last.
_ENGINE_RECORDER = bench_recorder("engine_compare")


def _socfb_graph():
    """An n >= 200 facebook-like instance (the denser comparison class)."""
    instances = get_collection("facebook_like", scale="small")
    return [inst.graph for inst in instances if inst.graph.num_vertices >= 200][-1]


#: (name, graph factory, k) — the n >= 200 comparison instances.
_CASES = (
    ("gnp_200_015", lambda: gnp_random_graph(200, 0.15, seed=1), 3),
    ("gnp_250_015", lambda: gnp_random_graph(250, 0.15, seed=3), 3),
    ("socfb_like", _socfb_graph, 3),
)

#: Engine-isolation case: a whole-graph search (decomposition disabled) on a
#: sparse n >= 200 G(n, p) instance, where the copy engine's per-node cost
#: scales with n while the trail engine pays only for what changed.
_WHOLE_GRAPH_CASE = ("gnp_800_005_whole", lambda: gnp_random_graph(800, 0.05, seed=7), 3)

#: Minimum trail-vs-copy node-throughput ratio asserted on the whole-graph
#: engine-isolation case (the measured ~1.3-1.5x minus timing-noise headroom).
MIN_TRAIL_SPEEDUP_WHOLE_GRAPH = 1.1


def _solve(graph, k, backend, engine=None, time_limit=120.0, whole_graph=False):
    kwargs = {"backend": backend, "time_limit": time_limit}
    if engine is not None:
        kwargs["engine"] = engine
    if whole_graph:
        kwargs["decompose_threshold"] = 10**9
    config = SolverConfig(**kwargs)
    return KDCSolver(config).solve(graph, k)


def test_bench_set_backend_gnp200(benchmark):
    graph = _CASES[0][1]()
    result = benchmark.pedantic(lambda: _solve(graph, 3, "set"), rounds=1, iterations=1)
    assert result.optimal


def test_bench_bitset_backend_gnp200(benchmark):
    graph = _CASES[0][1]()
    result = benchmark.pedantic(lambda: _solve(graph, 3, "bitset"), rounds=1, iterations=1)
    assert result.optimal


def test_bench_bitset_backend_reference(benchmark, reference_graph):
    result = benchmark(lambda: _solve(reference_graph, 3, "bitset"))
    assert result.optimal


def test_bench_set_backend_reference(benchmark, reference_graph):
    result = benchmark(lambda: _solve(reference_graph, 3, "set"))
    assert result.optimal


def test_backend_speedup_report(capsys):
    """Time both backends on every case, assert agreement, report speedups."""
    speedups = []
    for name, factory, k in _CASES:
        graph = factory()
        start = time.perf_counter()
        set_result = _solve(graph, k, "set")
        set_elapsed = time.perf_counter() - start
        start = time.perf_counter()
        bitset_result = _solve(graph, k, "bitset")
        bitset_elapsed = time.perf_counter() - start

        assert set_result.optimal and bitset_result.optimal
        assert set_result.size == bitset_result.size, name
        assert bitset_result.stats.backend == "bitset"
        speedup = set_elapsed / bitset_elapsed if bitset_elapsed > 0 else float("inf")
        speedups.append(speedup)
        _RECORDER.record_solve(name, set_result, set_elapsed, k=k, column="set")
        _RECORDER.record_solve(name, bitset_result, bitset_elapsed, k=k,
                               column="bitset", speedup_vs_set=round(speedup, 3))
        with capsys.disabled():
            print(
                f"\n[backend-compare] {name} k={k}: set {set_elapsed:.2f}s, "
                f"bitset {bitset_elapsed:.2f}s, speedup {speedup:.1f}x"
            )

    # The bitset fast path must be decisively faster on this class; the
    # threshold is deliberately below the ~5-6x typically observed so the
    # benchmark stays robust on slow or noisy machines.
    assert max(speedups) >= 3.0


def test_engine_compare_report(capsys):
    """Copy-vs-trail node-throughput column over the n >= 200 instances.

    Both engines are exact and must agree on every optimum; the trail engine
    must not fall behind the copy engine's node throughput on the decomposed
    instances, and must beat it on the whole-graph engine-isolation case.
    """
    rows = []
    for (name, factory, k), whole in (
        [(case, False) for case in _CASES] + [(_WHOLE_GRAPH_CASE, True)]
    ):
        graph = factory()
        results = {}
        throughput = {}
        for engine in ("copy", "trail"):
            start = time.perf_counter()
            result = _solve(graph, k, "bitset", engine=engine, whole_graph=whole)
            elapsed = time.perf_counter() - start
            assert result.optimal
            assert result.stats.engine == engine
            results[engine] = result
            throughput[engine] = result.stats.nodes / elapsed if elapsed > 0 else float("inf")
            _ENGINE_RECORDER.record_solve(name, result, elapsed, k=k,
                                          column=f"engine-{engine}",
                                          nodes_per_second=round(throughput[engine], 1))
        assert results["copy"].size == results["trail"].size, name
        ratio = throughput["trail"] / throughput["copy"]
        rows.append((name, whole, ratio))
        with capsys.disabled():
            print(
                f"\n[engine-compare] {name} k={k}: copy {throughput['copy']:.0f} n/s "
                f"({results['copy'].stats.nodes} nodes), trail {throughput['trail']:.0f} n/s "
                f"({results['trail'].stats.nodes} nodes), throughput ratio {ratio:.2f}x"
            )

    for name, whole, ratio in rows:
        if whole:
            assert ratio >= MIN_TRAIL_SPEEDUP_WHOLE_GRAPH, (
                f"trail engine fell below {MIN_TRAIL_SPEEDUP_WHOLE_GRAPH}x copy node "
                f"throughput on the whole-graph case {name}: {ratio:.2f}x"
            )
        else:
            # Decomposed ego subproblems are the copy engine's best regime;
            # the trail engine must at least stay within noise of it.
            assert ratio >= 0.75, (
                f"trail engine regressed node throughput on {name}: {ratio:.2f}x"
            )
