"""Set-vs-bitset backend comparison on solver-micro class instances.

Companion to ``bench_solver_micro.py``: the same solver is timed once with
the dict/set :class:`SearchState` backend and once with the bitset fast path
(packed adjacency bitmaps plus the degeneracy decomposition), so the
``BENCH_*.json`` perf trajectory captures the backend speedup from the PR
that introduced the bitset core onward.

Observed speedups depend on how large the search states stay: on G(n, p)
instances with n >= 200 the bitset + decomposition path runs ~5-6x faster
than the set backend; on the denser facebook-like instances, where the
reductions shrink states quickly, it runs ~2-3x faster.
"""

from __future__ import annotations

import time

from repro.core import KDCSolver, SolverConfig
from repro.datasets import get_collection
from repro.graphs import gnp_random_graph

def _socfb_graph():
    """An n >= 200 facebook-like instance (the denser comparison class)."""
    instances = get_collection("facebook_like", scale="small")
    return [inst.graph for inst in instances if inst.graph.num_vertices >= 200][-1]


#: (name, graph factory, k) — the n >= 200 comparison instances.
_CASES = (
    ("gnp_200_015", lambda: gnp_random_graph(200, 0.15, seed=1), 3),
    ("gnp_250_015", lambda: gnp_random_graph(250, 0.15, seed=3), 3),
    ("socfb_like", _socfb_graph, 3),
)


def _solve(graph, k, backend, time_limit=120.0):
    config = SolverConfig(backend=backend, time_limit=time_limit)
    return KDCSolver(config).solve(graph, k)


def test_bench_set_backend_gnp200(benchmark):
    graph = _CASES[0][1]()
    result = benchmark.pedantic(lambda: _solve(graph, 3, "set"), rounds=1, iterations=1)
    assert result.optimal


def test_bench_bitset_backend_gnp200(benchmark):
    graph = _CASES[0][1]()
    result = benchmark.pedantic(lambda: _solve(graph, 3, "bitset"), rounds=1, iterations=1)
    assert result.optimal


def test_bench_bitset_backend_reference(benchmark, reference_graph):
    result = benchmark(lambda: _solve(reference_graph, 3, "bitset"))
    assert result.optimal


def test_bench_set_backend_reference(benchmark, reference_graph):
    result = benchmark(lambda: _solve(reference_graph, 3, "set"))
    assert result.optimal


def test_backend_speedup_report(capsys):
    """Time both backends on every case, assert agreement, report speedups."""
    speedups = []
    for name, factory, k in _CASES:
        graph = factory()
        start = time.perf_counter()
        set_result = _solve(graph, k, "set")
        set_elapsed = time.perf_counter() - start
        start = time.perf_counter()
        bitset_result = _solve(graph, k, "bitset")
        bitset_elapsed = time.perf_counter() - start

        assert set_result.optimal and bitset_result.optimal
        assert set_result.size == bitset_result.size, name
        assert bitset_result.stats.backend == "bitset"
        speedup = set_elapsed / bitset_elapsed if bitset_elapsed > 0 else float("inf")
        speedups.append(speedup)
        with capsys.disabled():
            print(
                f"\n[backend-compare] {name} k={k}: set {set_elapsed:.2f}s, "
                f"bitset {bitset_elapsed:.2f}s, speedup {speedup:.1f}x"
            )

    # The bitset fast path must be decisively faster on this class; the
    # threshold is deliberately below the ~5-6x typically observed so the
    # benchmark stays robust on slow or noisy machines.
    assert max(speedups) >= 3.0
