"""Benchmark regenerating Table 3: per-instance runtimes on the largest facebook-like graphs.

The paper reports the processing time of kDC, its ablations (kDC/RR3&4,
kDC/UB1, kDC-Degen) and KDBB on the 41 Facebook graphs with more than 15,000
vertices.  Here the largest half of the synthetic facebook-like collection
plays that role.
"""

from __future__ import annotations

import time

from repro.bench import table3

from _bench_utils import bench_recorder, bench_scale, bench_time_limit

_RECORDER = bench_recorder("table3")

ALGORITHMS = ("kDC", "kDC/RR3&4", "kDC/UB1", "kDC-Degen", "KDBB")
K_VALUES = (1, 3)


def _run():
    return table3(
        scale=bench_scale(),
        k_values=K_VALUES,
        time_limit=bench_time_limit(),
        algorithms=ALGORITHMS,
        top_fraction=0.5,
    )


def test_table3_reproduction(benchmark):
    """Regenerate Table 3 and check that full kDC solves everything its ablations solve."""
    start = time.perf_counter()
    result = benchmark.pedantic(_run, rounds=1, iterations=1)
    _RECORDER.record_experiment(result, time.perf_counter() - start)
    print("\n" + result.text)
    solved_by = {algorithm: set() for algorithm in ALGORITHMS}
    for record in result.records:
        if record.solved:
            solved_by[record.algorithm].add((record.instance, record.k))
    # kDC may not always be the single fastest on tiny graphs, but it must not
    # solve fewer instances than the variant that drops its initial solution.
    assert len(solved_by["kDC"]) >= len(solved_by["kDC-Degen"])
