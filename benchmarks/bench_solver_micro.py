"""Micro-benchmarks of the solver and its substrates on a fixed reference graph.

These are conventional pytest-benchmark timings (multiple rounds) for the
pieces whose per-call cost determines the practical performance discussed in
Section 3.2.3: the full solve, the initial-solution heuristics, the
preprocessing reductions and the decomposition substrates.
"""

from __future__ import annotations

from repro.core import KDCSolver, SolverConfig, degen, degen_opt
from repro.core.reductions import preprocess_graph
from repro.graphs import degeneracy_ordering, greedy_coloring, k_core, k_truss

from _bench_utils import bench_recorder

_RECORDER = bench_recorder("solver_micro")


def test_bench_kdc_solve_k1(benchmark, reference_graph):
    solver = KDCSolver(SolverConfig(time_limit=30.0))
    result = benchmark(lambda: solver.solve(reference_graph, 1))
    assert result.optimal
    _RECORDER.record_solve("reference_k1", result, k=1)


def test_bench_kdc_solve_k3(benchmark, reference_graph):
    solver = KDCSolver(SolverConfig(time_limit=60.0))
    result = benchmark.pedantic(lambda: solver.solve(reference_graph, 3), rounds=1, iterations=1)
    assert result.optimal
    _RECORDER.record_solve("reference_k3", result, k=3)


def test_bench_degen(benchmark, reference_graph):
    solution = benchmark(lambda: degen(reference_graph, 3))
    assert solution
    _RECORDER.record_benchmark("degen", benchmark, size=len(solution))


def test_bench_degen_opt(benchmark, reference_graph):
    solution = benchmark(lambda: degen_opt(reference_graph, 3))
    assert len(solution) >= len(degen(reference_graph, 3))


def test_bench_preprocessing(benchmark, reference_graph):
    lb = len(degen_opt(reference_graph, 3))

    def run():
        working = reference_graph.copy()
        preprocess_graph(working, 3, lb, use_rr5=True, use_rr6=True)
        return working

    reduced = benchmark(run)
    assert reduced.num_vertices <= reference_graph.num_vertices


def test_bench_degeneracy_ordering(benchmark, reference_graph):
    result = benchmark(lambda: degeneracy_ordering(reference_graph))
    assert len(result.ordering) == reference_graph.num_vertices
    _RECORDER.record_benchmark("degeneracy_ordering", benchmark)


def test_bench_greedy_coloring(benchmark, reference_graph):
    colors = benchmark(lambda: greedy_coloring(reference_graph))
    assert len(colors) == reference_graph.num_vertices


def test_bench_k_core(benchmark, reference_graph):
    core = benchmark(lambda: k_core(reference_graph, 5))
    assert core.num_vertices <= reference_graph.num_vertices


def test_bench_k_truss(benchmark, reference_graph):
    truss = benchmark(lambda: k_truss(reference_graph, 4))
    assert truss.num_edges <= reference_graph.num_edges
