"""Shared fixtures for the benchmark suite.

Every benchmark regenerates one table or figure of the paper (see
``DESIGN.md`` for the experiment index).  Scale knobs live in
``_bench_utils.py``.
"""

from __future__ import annotations

import os
import sys

import pytest

_HERE = os.path.dirname(__file__)
_SRC = os.path.join(os.path.dirname(_HERE), "src")
for path in (_SRC, _HERE):
    if path not in sys.path:
        sys.path.insert(0, path)

from _bench_utils import bench_scale, bench_time_limit, write_all_bench_json  # noqa: E402


@pytest.fixture(autouse=True, scope="session")
def _flush_bench_json():
    """Write every ``BENCH_<name>.json`` the session's benchmarks recorded."""
    yield
    for path in write_all_bench_json():
        print(f"[bench-json] wrote {path}")


@pytest.fixture(scope="session")
def scale() -> str:
    return bench_scale()


@pytest.fixture(scope="session")
def time_limit() -> float:
    return bench_time_limit()


@pytest.fixture(scope="session")
def reference_graph():
    """A fixed mid-size facebook-like graph used by the micro-benchmarks."""
    from repro.datasets import get_collection

    instances = get_collection("facebook_like", scale=bench_scale())
    return instances[len(instances) // 2].graph
