"""Helpers shared by the benchmark files.

The benchmark suite runs on the ``tiny`` synthetic collections by default so
that ``pytest benchmarks/ --benchmark-only`` finishes in minutes.  Two
environment variables widen the run:

* ``REPRO_BENCH_SCALE`` — ``tiny`` (default), ``small`` or ``medium``;
* ``REPRO_BENCH_TIME_LIMIT`` — per-instance budget in seconds (default 2.0).

Machine-readable results
------------------------
Every benchmark entry point registers its measurements with a
:class:`BenchRecorder` (via :func:`bench_recorder`); at the end of the
session — the conftest fixture for pytest runs, an ``atexit`` hook for
``python benchmarks/bench_*.py`` runs — each recorder is flushed to
``BENCH_<name>.json`` so the perf trajectory (instances, wall-clock, nodes,
backend/engine/workers) is tracked across PRs.  ``REPRO_BENCH_JSON_DIR``
selects the output directory (default: the current working directory); CI
uploads the files as artifacts.

Each flush also **dual-writes** the rows into the SQLite experiment store
(:class:`repro.bench.store.ExperimentStore`, one run per recorder labelled
``bench:<name>``), so the flat JSON snapshots and the queryable trajectory
stay in lockstep.  ``REPRO_BENCH_DB`` overrides the store path; setting it
to an empty string disables the store write (the JSON files are always
written).
"""

from __future__ import annotations

import atexit
import json
import os
import platform
import time
from typing import Dict, List, Optional


def bench_scale() -> str:
    """Return the collection scale used by the benchmark suite."""
    return os.environ.get("REPRO_BENCH_SCALE", "tiny")


def bench_time_limit() -> float:
    """Return the per-instance time limit (seconds) used by the benchmark suite."""
    return float(os.environ.get("REPRO_BENCH_TIME_LIMIT", "2.0"))


class BenchRecorder:
    """Accumulates one benchmark module's measurements for ``BENCH_<name>.json``."""

    def __init__(self, name: str) -> None:
        self.name = name
        self.records: List[Dict[str, object]] = []
        #: record count at the last store dual-write; the conftest flush and
        #: the atexit backstop both call :meth:`write`, and only one of them
        #: should append a run to the trajectory store
        self._store_written = 0

    # ------------------------------------------------------------------ #
    def record(self, instance: str, **fields: object) -> None:
        """Append one measurement row (arbitrary flat fields)."""
        entry: Dict[str, object] = {"instance": instance}
        entry.update(fields)
        self.records.append(entry)

    def record_solve(self, instance: str, result, elapsed_seconds: Optional[float] = None,
                     **fields: object) -> None:
        """Append one row for a :class:`~repro.core.result.SolveResult`."""
        stats = result.stats
        if elapsed_seconds is None:
            elapsed_seconds = stats.elapsed_seconds
        self.record(
            instance,
            elapsed_seconds=round(float(elapsed_seconds), 6),
            size=result.size,
            optimal=result.optimal,
            nodes=stats.nodes,
            backend=stats.backend,
            engine=stats.engine,
            workers=stats.workers,
            **fields,
        )

    def record_benchmark(self, instance: str, benchmark, **fields: object) -> None:
        """Append one row for a pytest-benchmark measurement (mean wall-clock)."""
        mean = None
        stats = getattr(benchmark, "stats", None)
        if stats is not None:
            try:
                mean = round(float(stats.stats.mean), 6)
            except AttributeError:
                mean = None
        self.record(instance, elapsed_seconds=mean, **fields)

    def record_experiment(self, result, elapsed_seconds: float) -> None:
        """Append the per-instance records of an ExperimentResult (or its data summary)."""
        self.record("__sweep__", elapsed_seconds=round(float(elapsed_seconds), 6))
        if result.records:
            for record in result.records:
                self.records.append(dict(record.as_dict()))
        else:
            for key, value in result.data.items():
                self.record(str(key), **(value if isinstance(value, dict) else {"value": value}))

    # ------------------------------------------------------------------ #
    def write(self, directory: Optional[str] = None) -> str:
        """Write ``BENCH_<name>.json`` (and the experiment store); return the JSON path."""
        directory = directory or os.environ.get("REPRO_BENCH_JSON_DIR", ".")
        os.makedirs(directory, exist_ok=True)
        path = os.path.join(directory, f"BENCH_{self.name}.json")
        payload = {
            "bench": self.name,
            "created_unix": round(time.time(), 3),
            "scale": bench_scale(),
            "time_limit": bench_time_limit(),
            "python": platform.python_version(),
            "cpus": os.cpu_count(),
            "records": self.records,
        }
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2, sort_keys=False)
            handle.write("\n")
        self.write_store(directory)
        return path

    def write_store(self, directory: str) -> Optional[str]:
        """Dual-write the rows into the SQLite experiment store; return its path.

        The store path is ``<directory>/BENCH_trajectory.sqlite`` unless
        ``REPRO_BENCH_DB`` overrides it (empty string = disabled).  Rows with
        identical keyfields replace each other (latest measurement wins), so
        re-flushing is idempotent.  Missing ``repro`` on ``sys.path`` —
        possible for bare ``python benchmarks/bench_*.py`` runs — downgrades
        the store write to a no-op rather than losing the JSON flush.
        """
        db_path = os.environ.get("REPRO_BENCH_DB")
        if db_path == "":
            return None
        if db_path is None:
            db_path = os.path.join(directory, "BENCH_trajectory.sqlite")
        if len(self.records) == self._store_written:
            return db_path  # nothing new since the last flush
        try:
            from repro.bench.store import ExperimentStore, split_record
        except ImportError:
            return None
        with ExperimentStore(db_path) as store:
            run_id = store.begin_run(
                label=f"bench:{self.name}",
                meta={
                    "bench": self.name,
                    "scale": bench_scale(),
                    "time_limit": bench_time_limit(),
                },
            )
            for record in self.records:
                keyfields, resultfields, extra = split_record(record)
                store.record(run_id, keyfields, resultfields, extra=extra)
            store.finish_run(run_id, status="complete")
        self._store_written = len(self.records)
        return db_path


#: Registry of recorders, keyed by bench name; flushed at session end.
_RECORDERS: Dict[str, BenchRecorder] = {}


def bench_recorder(name: str) -> BenchRecorder:
    """Return (creating on first use) the session-wide recorder for ``name``."""
    recorder = _RECORDERS.get(name)
    if recorder is None:
        recorder = _RECORDERS[name] = BenchRecorder(name)
    return recorder


def write_all_bench_json(directory: Optional[str] = None) -> List[str]:
    """Flush every recorder that collected at least one row; return the paths."""
    return [r.write(directory) for r in _RECORDERS.values() if r.records]


# ``python benchmarks/bench_*.py`` runs have no conftest fixture to flush the
# recorders, so an atexit hook is the backstop (idempotent: rewriting the
# same payload is harmless).
atexit.register(write_all_bench_json)
