"""Helpers shared by the benchmark files.

The benchmark suite runs on the ``tiny`` synthetic collections by default so
that ``pytest benchmarks/ --benchmark-only`` finishes in minutes.  Two
environment variables widen the run:

* ``REPRO_BENCH_SCALE`` — ``tiny`` (default), ``small`` or ``medium``;
* ``REPRO_BENCH_TIME_LIMIT`` — per-instance budget in seconds (default 2.0).
"""

from __future__ import annotations

import os


def bench_scale() -> str:
    """Return the collection scale used by the benchmark suite."""
    return os.environ.get("REPRO_BENCH_SCALE", "tiny")


def bench_time_limit() -> float:
    """Return the per-instance time limit (seconds) used by the benchmark suite."""
    return float(os.environ.get("REPRO_BENCH_TIME_LIMIT", "2.0"))
