"""Incremental vs from-scratch solving on streams of edge deltas.

The dynamic-graph subsystem claims that after a small edge delta, only the
ego subproblems whose 2-neighbourhood saw an *added* edge need re-solving
(removals are handled by witness re-verification alone).  This benchmark
measures that claim on seeded G(n, p) delta streams and records the
trajectory in ``BENCH_dynamic.json``:

* the ISSUE acceptance scenario — a 1000-vertex sparse graph under 50
  single-edge deltas: every incremental optimum must match a from-scratch
  solve exactly, and the mean fraction of anchors re-solved must stay
  under 30%;
* a delta-size sweep (1, 4 and 16 edges per delta) showing how the
  affected-anchor fraction and the incremental speedup degrade as deltas
  grow.

Observed numbers on this class (1-CPU dev box): single-edge deltas re-solve
well under 1% of anchors and track the stream several times faster than
re-solving from scratch; by 16-edge deltas the affected fraction grows
roughly linearly with delta size while remaining a small minority of
anchors.
"""

from __future__ import annotations

import random
import time

from repro.core import KDCSolver, SolverConfig
from repro.dynamic import EdgeDelta, IncrementalSolver
from repro.graphs import gnp_random_graph

from _bench_utils import bench_recorder

_RECORDER = bench_recorder("dynamic")

#: Mean fraction of anchors re-solved allowed on the single-edge acceptance
#: stream (the ISSUE-10 criterion; measured ~0.5%, asserted with headroom).
MAX_MEAN_RESOLVED_FRACTION = 0.30


def _delta_stream(graph, rng, steps, delta_size, add_fraction=0.7):
    """Seeded valid deltas (70/30 add/remove mix) against an evolving graph."""
    working = graph.copy()
    deltas = []
    vertices = sorted(working.vertex_set())
    for _ in range(steps):
        adds, removes = set(), set()
        while len(adds) + len(removes) < delta_size:
            if rng.random() < add_fraction or working.num_edges <= delta_size:
                u, v = rng.sample(vertices, 2)
                edge = (min(u, v), max(u, v))
                if not working.has_edge(u, v) and edge not in adds:
                    adds.add(edge)
            else:
                edge = tuple(sorted(rng.choice(list(working.iter_edges()))))
                if edge not in removes and edge not in adds:
                    removes.add(edge)
        delta = EdgeDelta(adds=sorted(adds), removes=sorted(removes))
        for u, v in delta.removes:
            working.remove_edge(u, v)
        for u, v in delta.adds:
            working.add_edge(u, v)
        deltas.append(delta)
    return deltas


def _run_stream(graph, k, deltas, config):
    """Drive one stream; returns the per-stream measurement row (asserting exactness)."""
    tracker = IncrementalSolver(config)
    scratch = KDCSolver(config)

    start = time.perf_counter()
    tracker.solve(graph, k)
    incremental_seconds = time.perf_counter() - start
    scratch_seconds = incremental_seconds  # both sides pay the initial solve

    incremental_steps = 0
    resolved_fractions = []
    for delta in deltas:
        start = time.perf_counter()
        report = tracker.apply(delta)
        incremental_seconds += time.perf_counter() - start

        start = time.perf_counter()
        reference = scratch.solve(tracker.graph(), k)
        scratch_seconds += time.perf_counter() - start

        assert report.result.optimal and reference.optimal
        assert report.result.size == reference.size, (
            f"incremental {report.result.size} != scratch {reference.size}"
        )
        if report.incremental:
            incremental_steps += 1
            resolved_fractions.append(
                report.anchors_resolved / max(1, report.anchors_total)
            )

    mean_resolved = (
        sum(resolved_fractions) / len(resolved_fractions)
        if resolved_fractions
        else 1.0
    )
    return {
        "steps": len(deltas),
        "incremental_steps": incremental_steps,
        "mean_resolved_fraction": round(mean_resolved, 6),
        "incremental_seconds": round(incremental_seconds, 6),
        "scratch_seconds": round(scratch_seconds, 6),
        "speedup": round(scratch_seconds / incremental_seconds, 3)
        if incremental_seconds > 0
        else float("inf"),
    }


def test_dynamic_acceptance_stream(capsys):
    """The ISSUE acceptance scenario: 1k vertices, 50 single-edge deltas, exact."""
    rng = random.Random(42)
    graph = gnp_random_graph(1000, 0.008, seed=42)
    deltas = _delta_stream(graph, rng, steps=50, delta_size=1)
    row = _run_stream(graph, 1, deltas, SolverConfig())
    _RECORDER.record("gnp_1000_0008_stream50", k=1, delta_size=1, **row)
    with capsys.disabled():
        print(
            f"\n[dynamic] acceptance stream: {row['incremental_steps']}/{row['steps']}"
            f" incremental, mean resolved {100 * row['mean_resolved_fraction']:.2f}%,"
            f" speedup {row['speedup']:.1f}x"
        )
    assert row["incremental_steps"] > 0
    assert row["mean_resolved_fraction"] < MAX_MEAN_RESOLVED_FRACTION


def test_dynamic_delta_size_sweep(capsys):
    """Affected-anchor fraction and speedup across delta sizes 1, 4, 16."""
    for delta_size in (1, 4, 16):
        rng = random.Random(100 + delta_size)
        graph = gnp_random_graph(600, 0.012, seed=100 + delta_size)
        deltas = _delta_stream(graph, rng, steps=12, delta_size=delta_size)
        row = _run_stream(graph, 1, deltas, SolverConfig())
        _RECORDER.record(f"gnp_600_0012_d{delta_size}", k=1, delta_size=delta_size, **row)
        with capsys.disabled():
            print(
                f"\n[dynamic] delta_size={delta_size:>2}:"
                f" {row['incremental_steps']}/{row['steps']} incremental,"
                f" mean resolved {100 * row['mean_resolved_fraction']:.2f}%,"
                f" incremental {row['incremental_seconds']:.2f}s"
                f" vs scratch {row['scratch_seconds']:.2f}s ({row['speedup']:.1f}x)"
            )


if __name__ == "__main__":
    import sys

    import pytest

    sys.exit(pytest.main([__file__, "-v", "-s"]))
