"""Benchmark regenerating Figure 8: solved instances vs time limit (Facebook collection).

Same sweep as Figure 7 but over the facebook_like collection, whose dense
community structure is where the coloring-based bound UB1 matters most.
"""

from __future__ import annotations

import time

from repro.bench import figure8

from _bench_utils import bench_recorder, bench_scale, bench_time_limit

_RECORDER = bench_recorder("figure8")

ALGORITHMS = ("kDC", "kDC/RR3&4", "kDC/UB1", "kDC-Degen", "KDBB")
K_VALUES = (1, 3)


def _run():
    max_limit = bench_time_limit()
    limits = (max_limit / 20, max_limit / 5, max_limit / 2, max_limit)
    return figure8(
        scale=bench_scale(),
        k_values=K_VALUES,
        time_limits=limits,
        algorithms=ALGORITHMS,
    )


def test_figure8_reproduction(benchmark):
    """Regenerate Figure 8 and check solved counts are monotone in the time limit."""
    start = time.perf_counter()
    result = benchmark.pedantic(_run, rounds=1, iterations=1)
    _RECORDER.record_experiment(result, time.perf_counter() - start)
    print("\n" + result.text)
    max_limit = bench_time_limit()
    for k in K_VALUES:
        low = result.data[f"k={k}/limit={max_limit / 20}"]
        high = result.data[f"k={k}/limit={max_limit}"]
        for algorithm in ALGORITHMS:
            assert low[algorithm] <= high[algorithm]
        assert high["kDC"] >= high["KDBB"] - 1
