"""Benchmark regenerating Table 5: maximum k-defective clique size vs maximum clique size.

The paper reports average and maximum ratios per collection and k, showing
that the k-defective relaxation finds noticeably larger near-cliques as k
grows.
"""

from __future__ import annotations

import time

from repro.bench import table5

from _bench_utils import bench_recorder, bench_scale, bench_time_limit

_RECORDER = bench_recorder("table5")

K_VALUES = (1, 2, 3, 5)


def _run():
    return table5(scale=bench_scale(), k_values=K_VALUES, time_limit=bench_time_limit())


def test_table5_reproduction(benchmark):
    """Regenerate Table 5 and check the ratios behave as the paper describes."""
    start = time.perf_counter()
    result = benchmark.pedantic(_run, rounds=1, iterations=1)
    _RECORDER.record_experiment(result, time.perf_counter() - start)
    print("\n" + result.text)
    for key, agg in result.data.items():
        if agg["count"] == 0:
            continue
        assert agg["avg_ratio"] >= 1.0, key
        assert agg["max_ratio"] >= agg["avg_ratio"] - 1e-9, key
    # Ratios grow (weakly) with k within each collection: compare k=1 vs k=5.
    for collection in ("real_world_like", "facebook_like", "dimacs_snap_like"):
        low = result.data.get(f"{collection}/k=1")
        high = result.data.get(f"{collection}/k=5")
        if low and high and low["count"] and high["count"]:
            assert high["avg_ratio"] >= low["avg_ratio"] - 1e-9
