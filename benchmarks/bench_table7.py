"""Benchmark regenerating Table 7: fraction of not-fully-connected vertices in the solution.

The paper reports the average percentage of vertices of the maximum
k-defective clique that have at least one missing neighbour inside it, per
collection and k; the percentage grows with k.
"""

from __future__ import annotations

import time

from repro.bench import table7

from _bench_utils import bench_recorder, bench_scale, bench_time_limit

_RECORDER = bench_recorder("table7")

K_VALUES = (1, 2, 3, 5)


def _run():
    return table7(scale=bench_scale(), k_values=K_VALUES, time_limit=bench_time_limit())


def test_table7_reproduction(benchmark):
    """Regenerate Table 7 and check the percentage grows with k."""
    start = time.perf_counter()
    result = benchmark.pedantic(_run, rounds=1, iterations=1)
    _RECORDER.record_experiment(result, time.perf_counter() - start)
    print("\n" + result.text)
    for key, agg in result.data.items():
        assert 0.0 <= agg["avg_pct_not_fully_connected"] <= 100.0, key
    for collection in ("real_world_like", "facebook_like", "dimacs_snap_like"):
        low = result.data.get(f"{collection}/k=1")
        high = result.data.get(f"{collection}/k=5")
        if low and high and low["count"] and high["count"]:
            assert high["avg_pct_not_fully_connected"] >= low["avg_pct_not_fully_connected"] - 1e-9
