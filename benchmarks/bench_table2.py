"""Benchmark regenerating Table 2: solved instances of kDC vs KDBB vs MADEC+.

The paper reports, for each of the three graph collections and each
k ∈ {1, 3, 5, 10, 15, 20}, how many instances each algorithm solves within a
3-hour limit.  This benchmark reproduces the table on the synthetic
collections with a seconds-scale limit and prints the reproduced rows; the
benchmarked quantity is the wall-clock of the full sweep.
"""

from __future__ import annotations

import time

from repro.bench import table2

from _bench_utils import bench_recorder, bench_scale, bench_time_limit

_RECORDER = bench_recorder("table2")

K_VALUES = (1, 2, 3, 5)
ALGORITHMS = ("kDC", "KDBB", "MADEC")


def _run():
    return table2(
        scale=bench_scale(),
        k_values=K_VALUES,
        time_limit=bench_time_limit(),
        algorithms=ALGORITHMS,
    )


def test_table2_reproduction(benchmark):
    """Regenerate Table 2 and check the headline ordering kDC >= KDBB >= MADEC."""
    start = time.perf_counter()
    result = benchmark.pedantic(_run, rounds=1, iterations=1)
    _RECORDER.record_experiment(result, time.perf_counter() - start)
    print("\n" + result.text)
    for collection, solved in result.data.items():
        for k in K_VALUES:
            assert solved["kDC"][k] >= solved["MADEC"][k], (
                f"kDC solved fewer instances than MADEC on {collection} (k={k})"
            )
            assert solved["kDC"][k] >= solved["KDBB"][k] - 1, (
                f"kDC fell more than one instance behind KDBB on {collection} (k={k})"
            )
