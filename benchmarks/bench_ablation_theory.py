"""Ablation benchmark: the bare-complexity framework kDC-t vs the practical kDC.

The paper separates the machinery needed for the O*(γ_k^n) running time
(Algorithm 1 / kDC-t) from the practical techniques layered on top
(Algorithm 2 / kDC).  This benchmark quantifies what that separation costs
in practice: kDC-t explores vastly more nodes than kDC on the same
instances, even though both are exact.
"""

from __future__ import annotations

from repro.core import find_maximum_defective_clique
from repro.datasets import get_collection

from _bench_utils import bench_recorder, bench_scale

_RECORDER = bench_recorder("ablation_theory")

K = 2
NODE_CAP = 200_000


def _instances():
    collection = get_collection("real_world_like", scale=bench_scale())
    return [inst for inst in collection][:3]


def test_kdc_t_vs_kdc_node_counts(benchmark):
    """kDC must never explore more nodes than kDC-t and must agree on the optimum."""

    def run():
        rows = []
        for inst in _instances():
            full = find_maximum_defective_clique(inst.graph, K, variant="kDC")
            bare = find_maximum_defective_clique(
                inst.graph, K, variant="kDC-t", node_limit=NODE_CAP
            )
            rows.append((inst.name, full, bare))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    for name, full, bare in rows:
        _RECORDER.record_solve(name, full, k=K, column="kDC")
        _RECORDER.record_solve(name, bare, k=K, column="kDC-t")
    print()
    for name, full, bare in rows:
        bare_state = "optimal" if bare.optimal else f">{NODE_CAP} nodes (capped)"
        print(
            f"{name}: kDC {full.size} in {full.stats.nodes} nodes; "
            f"kDC-t {bare.size} in {bare.stats.nodes} nodes ({bare_state})"
        )
        assert full.optimal
        if bare.optimal:
            assert bare.size == full.size
            assert full.stats.nodes <= bare.stats.nodes
        else:
            assert bare.size <= full.size
