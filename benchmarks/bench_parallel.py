"""Worker-count scaling of the parallel degeneracy decomposition.

Companion to ``bench_backend_compare.py``: the same decomposed G(n, p)
instance is solved with 1, 2 and 4 worker processes, so the ``BENCH_*.json``
perf trajectory captures the parallel-scaling curve from the PR that
introduced :mod:`repro.core.parallel` onward.

The optimal size must be identical at every worker count (the workers only
share a best-size bound; each subproblem remains an exact search).  The
wall-clock assertion — >= 1.5x speedup at 4 workers — is only meaningful on
a machine that actually has >= 4 CPUs, so it is gated on ``os.cpu_count()``;
on smaller machines the benchmark still verifies agreement and *records*
the (flat) scaling numbers into ``BENCH_parallel.json``, so the perf
trajectory shows what actually happened on the box instead of a silently
skipped assertion.

Environment knobs: ``REPRO_BENCH_PARALLEL_N`` (default 400) resizes the
instance.
"""

from __future__ import annotations

import os
import time

from repro.core import KDCSolver, SolverConfig
from repro.graphs import gnp_random_graph

from _bench_utils import bench_recorder

_RECORDER = bench_recorder("parallel")

#: Worker counts reported in the scaling curve.
WORKER_COUNTS = (1, 2, 4)

#: Minimum speedup expected from 4 workers on a >= 4-CPU machine.  The
#: decomposition is embarrassingly parallel, but the densest ego subproblems
#: dominate and the pool pays startup + pickling overhead, so the bar sits
#: well below the ideal 4x.
MIN_SPEEDUP_4_WORKERS = 1.5


def _instance():
    """A decomposed G(n, p) instance with n >= 400 (acceptance-criteria class)."""
    n = int(os.environ.get("REPRO_BENCH_PARALLEL_N", "400"))
    if n < 400:
        n = 400
    return gnp_random_graph(n, 0.1, seed=2), 3


def _solve(graph, k, workers):
    config = SolverConfig(backend="bitset", workers=workers, time_limit=600.0)
    return KDCSolver(config).solve(graph, k)


def test_bench_parallel_1_worker(benchmark):
    graph, k = _instance()
    result = benchmark.pedantic(lambda: _solve(graph, k, 1), rounds=1, iterations=1)
    assert result.optimal


def test_bench_parallel_4_workers(benchmark):
    graph, k = _instance()
    result = benchmark.pedantic(lambda: _solve(graph, k, 4), rounds=1, iterations=1)
    assert result.optimal


def test_parallel_scaling_report(capsys):
    """Time every worker count, assert agreement, record + report the scaling curve."""
    graph, k = _instance()
    timings = {}
    sizes = {}
    cpus = os.cpu_count() or 1
    for workers in WORKER_COUNTS:
        start = time.perf_counter()
        result = _solve(graph, k, workers)
        timings[workers] = time.perf_counter() - start
        sizes[workers] = result.size
        assert result.optimal
        assert result.stats.workers == workers, (
            "the decomposition (and with workers >= 2 the pool) must engage"
        )
        assert result.stats.subproblems > 0
        speedup = timings[1] / timings[workers] if timings[workers] > 0 else float("inf")
        _RECORDER.record_solve(
            f"gnp_{graph.num_vertices}", result, timings[workers], k=k,
            requested_workers=workers, speedup_vs_1=round(speedup, 3), cpus=cpus,
        )

    assert len(set(sizes.values())) == 1, f"worker counts disagree on size: {sizes}"

    with capsys.disabled():
        print(f"\n[parallel-scaling] n={graph.num_vertices} k={k} cpus={cpus}")
        for workers in WORKER_COUNTS:
            speedup = timings[1] / timings[workers] if timings[workers] > 0 else float("inf")
            print(
                f"[parallel-scaling] workers={workers}: {timings[workers]:.2f}s "
                f"(speedup {speedup:.2f}x)"
            )

    if cpus >= 4:
        speedup4 = timings[1] / timings[4] if timings[4] > 0 else float("inf")
        assert speedup4 >= MIN_SPEEDUP_4_WORKERS, (
            f"expected >= {MIN_SPEEDUP_4_WORKERS}x at 4 workers on a {cpus}-CPU "
            f"machine, measured {speedup4:.2f}x"
        )


if __name__ == "__main__":  # pragma: no cover — ad-hoc scaling runs
    graph, k = _instance()
    print(f"n={graph.num_vertices} m={graph.num_edges} k={k} cpus={os.cpu_count()}")
    base = None
    for workers in WORKER_COUNTS:
        start = time.perf_counter()
        result = _solve(graph, k, workers)
        elapsed = time.perf_counter() - start
        base = base or elapsed
        _RECORDER.record_solve(
            f"gnp_{graph.num_vertices}", result, elapsed, k=k,
            requested_workers=workers, speedup_vs_1=round(base / elapsed, 3),
            cpus=os.cpu_count(),
        )
        print(
            f"workers={workers}: size={result.size} optimal={result.optimal} "
            f"subproblems={result.stats.subproblems} time={elapsed:.2f}s "
            f"speedup={base / elapsed:.2f}x"
        )
