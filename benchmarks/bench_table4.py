"""Benchmark regenerating Table 4: preprocessing comparison between kDC and kDC-Degen.

The paper reports, per collection and per k, the ratio of the initial
solution size and of the reduced-graph size (vertices and edges) between the
full preprocessing (Degen-opt + RR5 + RR6) and the cheap one (Degen + RR5).
"""

from __future__ import annotations

import time

from repro.bench import table4

from _bench_utils import bench_recorder, bench_scale

_RECORDER = bench_recorder("table4")

K_VALUES = (1, 2, 3, 5)


def _run():
    return table4(scale=bench_scale(), k_values=K_VALUES)


def test_table4_reproduction(benchmark):
    """Regenerate Table 4 and check the paper's qualitative claims."""
    start = time.perf_counter()
    result = benchmark.pedantic(_run, rounds=1, iterations=1)
    _RECORDER.record_experiment(result, time.perf_counter() - start)
    print("\n" + result.text)
    assert result.data
    for key, values in result.data.items():
        # Degen-opt never produces a smaller initial solution than Degen, and
        # the richer preprocessing never keeps a larger reduced graph.
        assert values["initial_solution_ratio"] >= 1.0, key
        assert values["reduced_vertices_ratio"] <= 1.0 + 1e-9, key
        assert values["reduced_edges_ratio"] <= 1.0 + 1e-9, key
