"""Predicting missing interactions by completing defective cliques.

The k-defective clique model was originally introduced by Yu et al. (2006) to
predict missing protein-protein interactions: if a set of proteins is one or
two edges short of a complete interaction pattern, the missing pairs are good
candidates for undiscovered interactions.

This example simulates that workflow on a synthetic "interactome": a graph
with planted complexes from which a few true edges have been removed.  The
kDC solver finds the largest k-defective cliques, and the non-edges inside
them are reported as predicted interactions; the script then measures how
many of the deliberately removed edges were recovered.

Run with::

    python examples/protein_interaction_prediction.py
"""

from __future__ import annotations

import random
from typing import List, Set, Tuple

from repro import Graph, find_maximum_defective_clique
from repro.core import missing_edges
from repro.extensions import top_r_diversified_defective_cliques


def build_interactome(
    num_complexes: int = 5,
    complex_size: int = 9,
    removed_per_complex: int = 2,
    noise_edges: int = 120,
    seed: int = 13,
) -> Tuple[Graph, Set[frozenset]]:
    """Build a synthetic interactome and return it with the set of removed true edges."""
    rng = random.Random(seed)
    graph = Graph()
    removed: Set[frozenset] = set()
    n = num_complexes * complex_size + 60  # extra background proteins
    graph.add_vertices(range(n))

    for c in range(num_complexes):
        members = list(range(c * complex_size, (c + 1) * complex_size))
        for i, u in enumerate(members):
            for v in members[i + 1:]:
                graph.add_edge(u, v)
        # hide a few true interactions
        pairs = [(u, v) for i, u in enumerate(members) for v in members[i + 1:]]
        for u, v in rng.sample(pairs, removed_per_complex):
            graph.remove_edge(u, v)
            removed.add(frozenset((u, v)))

    # background noise
    for _ in range(noise_edges):
        u, v = rng.randrange(n), rng.randrange(n)
        if u != v:
            graph.add_edge(u, v)
    return graph, removed


def predict_interactions(graph: Graph, k: int, rounds: int) -> List[frozenset]:
    """Predict missing interactions as the non-edges inside large k-defective cliques."""
    predictions: List[frozenset] = []
    for clique in top_r_diversified_defective_cliques(graph, k=k, r=rounds):
        for u, v in missing_edges(graph, clique):
            predictions.append(frozenset((u, v)))
    return predictions


def main() -> None:
    k = 2
    graph, hidden = build_interactome()
    print(f"interactome: {graph.num_vertices} proteins, {graph.num_edges} interactions")
    print(f"hidden true interactions: {len(hidden)}")

    single = find_maximum_defective_clique(graph, k, time_limit=60.0)
    print(f"\nlargest {k}-defective complex has {single.size} proteins "
          f"({len(missing_edges(graph, single.clique))} predicted interactions inside it)")

    predictions = predict_interactions(graph, k=k, rounds=5)
    recovered = [p for p in predictions if p in hidden]
    precision = len(recovered) / len(predictions) if predictions else 0.0
    recall = len(recovered) / len(hidden) if hidden else 0.0
    print(f"\npredicted {len(predictions)} candidate interactions over 5 complexes")
    print(f"recovered {len(recovered)} of the {len(hidden)} hidden interactions "
          f"(precision {precision:.2f}, recall {recall:.2f})")


if __name__ == "__main__":
    main()
