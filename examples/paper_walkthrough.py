"""Walk through the paper's running examples on its own figure graphs.

This script replays, in code, the examples the paper uses to explain its
techniques:

* Figure 1 — why k-defective cliques are larger than cliques;
* Figure 2 / Example in Section 2 — maximum (1-, 2-) defective cliques;
* Figure 4 / Example 3.2 — how RR2 and RR1 drive Algorithm 1;
* Figure 5 / Examples 3.6–3.7 — the old coloring bound (Eq. 2) vs UB1;
* Figure 6 / Example 3.8 — Degen vs Degen-opt initial solutions.

Run with::

    python examples/paper_walkthrough.py
"""

from __future__ import annotations

from repro import find_maximum_defective_clique, maximum_clique_size
from repro.core import SearchState, degen, degen_opt
from repro.core.bounds import eq2_original_coloring, ub1_improved_coloring
from repro.graphs import (
    figure1_graph,
    figure2_graph,
    figure4_graph,
    figure5_graph,
    figure6_graph,
)


def figure1() -> None:
    print("=== Figure 1: clique vs k-defective clique ===")
    g = figure1_graph()
    print(f"maximum clique size: {maximum_clique_size(g)}")
    for k in range(0, 5):
        print(f"  maximum {k}-defective clique size: {find_maximum_defective_clique(g, k).size}")


def figure2() -> None:
    print("\n=== Figure 2: the 12-vertex running example ===")
    g = figure2_graph()
    for k in (0, 1, 2):
        result = find_maximum_defective_clique(g, k)
        print(f"  k={k}: size {result.size}, vertices {sorted(result.clique)}")


def figure4() -> None:
    print("\n=== Figure 4 / Example 3.2: reduction rules in action ===")
    g = figure4_graph()
    for k in (2, 3, 4):
        result = find_maximum_defective_clique(g, k)
        print(f"  k={k}: size {result.size} "
              f"(RR2 additions {result.stats.rr2_additions}, nodes {result.stats.nodes})")


def figure5() -> None:
    print("\n=== Figure 5 / Examples 3.6-3.7: Eq.(2) bound vs UB1 ===")
    g = figure5_graph()
    relabeled, to_int, _ = g.relabel()
    adj = [set(relabeled.neighbors(v)) for v in range(relabeled.num_vertices)]
    state = SearchState.initial(adj, k=3)
    state.add_to_solution(to_int["s1"])
    state.add_to_solution(to_int["s2"])
    print(f"  original coloring bound (Eq. 2): {eq2_original_coloring(state)}")
    print(f"  improved coloring bound (UB1):   {ub1_improved_coloring(state)}")
    print("  (the true optimum containing S is 3, as discussed in Example 3.6)")


def figure6() -> None:
    print("\n=== Figure 6 / Example 3.8: Degen vs Degen-opt ===")
    g = figure6_graph()
    d = degen(g, 1)
    do = degen_opt(g, 1)
    exact = find_maximum_defective_clique(g, 1).size
    print(f"  Degen finds size {len(d)}, Degen-opt finds size {len(do)}, optimum is {exact}")


if __name__ == "__main__":
    figure1()
    figure2()
    figure4()
    figure5()
    figure6()
