"""Social-network analysis: dense community detection with k-defective cliques.

The paper motivates k-defective cliques with community detection in social
networks: real communities are rarely perfect cliques because data is noisy
and incomplete.  This example builds a Facebook-style synthetic network,
compares the maximum clique against maximum k-defective cliques for growing
``k``, and then uses the diversified top-r extension (paper Section 6) to
extract several non-overlapping communities.

Run with::

    python examples/social_network_analysis.py
"""

from __future__ import annotations

from repro import find_maximum_defective_clique, maximum_clique_size
from repro.analysis import fraction_not_fully_connected
from repro.extensions import coverage, top_r_diversified_defective_cliques
from repro.graphs import graph_stats, social_network_graph


def main() -> None:
    graph = social_network_graph(
        n=220, num_communities=6, intra_p=0.5, inter_p=0.01, hub_fraction=0.02, seed=42
    )
    stats = graph_stats(graph)
    print("synthetic social network:")
    for key, value in stats.as_dict().items():
        print(f"  {key}: {value:.3f}" if isinstance(value, float) else f"  {key}: {value}")

    omega = maximum_clique_size(graph)
    print(f"\nmaximum clique size: {omega}")
    print("k  |C_k|  ratio   %vertices with missing neighbours")
    for k in (1, 2, 3, 5):
        result = find_maximum_defective_clique(graph, k, time_limit=60.0)
        frac = fraction_not_fully_connected(graph, result.clique)
        print(f"{k:<2d} {result.size:<6d} {result.size / omega:<7.2f} {100 * frac:.1f}%")

    print("\ndiversified top-4 communities (k = 2):")
    communities = top_r_diversified_defective_cliques(graph, k=2, r=4)
    for i, community in enumerate(communities, start=1):
        print(f"  community {i}: {len(community)} members")
    covered = coverage(communities)
    print(f"  distinct members covered: {len(covered)} of {graph.num_vertices}")


if __name__ == "__main__":
    main()
