"""Crash-recovery smoke for the durable solver service.

Run with::

    PYTHONPATH=src python examples/crash_recovery_smoke.py

The script is the assertion (CI runs it and any failure exits non-zero).
It drives one full crash/recover cycle against a real ``repro serve
--state-dir`` daemon:

1. **warm cache survives SIGKILL** — start the daemon, register a graph,
   answer two queries, then ``kill -9`` the process (no drain, no
   shutdown).  A restarted daemon on the same state directory must report
   the restored graph/artifact/result counts and answer the same queries
   as cache hits with identical sizes;
2. **a killed solve resumes** — the restarted daemon is started with a
   scripted fault (via the ``REPRO_FAULTS`` environment variable the chaos
   harness reads) that SIGKILLs the process mid-decomposed-solve, with
   exactly 30 completed subproblems durable in the checkpoint journal.  A
   third daemon resumes the solve: the answer must be *bit-identical* to an
   uninterrupted daemon's solve of the same graph (a fourth daemon on an
   empty state directory), match the size of an in-process sequential
   reference, and its stats must show the journaled subproblems were
   restored rather than re-searched.

The bit-identity baseline is a daemon, not the in-process reference: a
graph rebuilt from the wire can order its adjacency differently, which is
allowed to steer tie-breaks toward a different (equally optimal) clique.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
import tempfile

from repro.core import KDCSolver, SolverConfig, is_k_defective_clique
from repro.graphs import gnp_random_graph
from repro.service import Client


def start_daemon(state_dir, extra_env=None):
    """Start ``repro serve --state-dir`` and return (process, restore line, host, port)."""
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        p for p in ("src", env.get("PYTHONPATH", "")) if p
    )
    if extra_env:
        env.update(extra_env)
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", "--port", "0", "--state-dir", state_dir],
        stdout=subprocess.PIPE,
        text=True,
        env=env,
    )
    restore = proc.stdout.readline().strip()
    assert restore.startswith("state restored from"), restore
    listening = proc.stdout.readline().strip()
    assert "listening on" in listening, listening
    host, port = listening.rsplit(" ", 1)[1].rsplit(":", 1)
    print(f"  daemon pid={proc.pid}: {restore}")
    return proc, restore, host, int(port)


def main() -> None:
    small = gnp_random_graph(60, 0.15, seed=8)
    # Dense enough that RR5/RR6 preprocessing keeps all 150 vertices, so the
    # default config decomposes it into per-vertex ego subproblems — the
    # shape that checkpoints.
    hard = gnp_random_graph(150, 0.2, seed=7)
    reference = KDCSolver(SolverConfig()).solve(hard, 2)
    assert reference.optimal and reference.stats.subproblems > 30, (
        "the resume scenario needs a decomposed reference solve with >30 anchors"
    )

    with tempfile.TemporaryDirectory() as state_dir:
        print("=== phase 1: warm cache survives kill -9 ===")
        proc, restore, host, port = start_daemon(state_dir)
        try:
            assert restore.endswith("0 graph(s), 0 prepared artifact(s), 0 cached result(s)"), (
                f"first start must be cold: {restore}"
            )
            with Client.connect(host, port) as client:
                digest = client.add_graph(small, name="gnp60")
                cold1 = client.solve(digest, 1)
                cold2 = client.solve(digest, 2)
                assert cold1["optimal"] and cold2["optimal"]
                assert not cold1["stats"]["cache_hit"]
            print(f"  answered k=1 (size {cold1['size']}) and k=2 (size {cold2['size']})")
        finally:
            proc.kill()  # SIGKILL: no drain, no graceful anything
            proc.wait(timeout=30)
        print(f"  daemon killed (exit {proc.returncode})")

        print("=== phase 2: restart restores the cache, then dies mid-solve ===")
        # The chaos harness reads REPRO_FAULTS from the environment: SIGKILL
        # the daemon at the 31st checkpoint append of the decomposed solve,
        # i.e. with exactly 30 completed subproblems durable in the journal.
        fault = json.dumps([{
            "point": "checkpoint.append", "action": "kill", "value": True,
            "match": {"count": 30}, "times": 1,
        }])
        proc, restore, host, port = start_daemon(state_dir, {"REPRO_FAULTS": fault})
        try:
            assert "1 graph(s)" in restore and "2 cached result(s)" in restore, (
                f"warm restart must restore the killed daemon's state: {restore}"
            )
            died_mid_solve = False
            try:
                with Client.connect(host, port) as client:
                    hit = client.solve(digest, 1)
                    assert hit["stats"]["cache_hit"], "restored result must answer from cache"
                    assert hit["size"] == cold1["size"]
                    print(f"  k=1 answered from the restored cache (size {hit['size']})")

                    hard_digest = client.add_graph(hard, name="gnp150")
                    try:
                        client.solve(hard_digest, 2)
                    except AssertionError:
                        raise
                    except Exception as exc:
                        died_mid_solve = True
                        print(f"  daemon died mid-solve as scripted ({type(exc).__name__})")
            except AssertionError:
                raise
            except Exception:
                # tearing down the connection to a SIGKILLed daemon may
                # itself raise; only the solve call's failure is asserted
                pass
            assert died_mid_solve, "the scripted SIGKILL never fired"
            code = proc.wait(timeout=60)
            assert code == -9, f"daemon should die by SIGKILL, got {code}"
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.wait(timeout=30)

        print("=== phase 3: restart resumes the killed solve ===")
        proc, restore, host, port = start_daemon(state_dir)
        try:
            with Client.connect(host, port) as client:
                resumed = client.solve(hard_digest, 2)
                stats = resumed["stats"]
                assert resumed["optimal"]
                assert resumed["size"] == reference.size, (
                    f"resumed size {resumed['size']} != reference {reference.size}"
                )
                assert is_k_defective_clique(hard, resumed["clique"], 2)
                assert stats["subproblems_restored"] == 30, (
                    f"expected 30 journaled subproblems, got {stats['subproblems_restored']}"
                )
                print(
                    f"  resumed: size {resumed['size']} "
                    f"({stats['subproblems_restored']} subproblem(s) restored, "
                    f"{stats['subproblems']} searched)"
                )
                assert client.shutdown()
            code = proc.wait(timeout=30)
            assert code == 0, f"daemon exited with {code}"
        finally:
            if proc.poll() is None:
                proc.kill()

        print("=== phase 4: the resume was bit-identical to an uninterrupted daemon ===")
        with tempfile.TemporaryDirectory() as fresh_dir:
            proc, _restore, host, port = start_daemon(fresh_dir)
            try:
                with Client.connect(host, port) as client:
                    digest2 = client.add_graph(hard, name="gnp150")
                    assert digest2 == hard_digest
                    clean = client.solve(digest2, 2)
                    assert clean["optimal"]
                    assert clean["clique"] == resumed["clique"], (
                        f"resumed solve must be bit-identical to the uninterrupted one "
                        f"(resumed {resumed['clique']}, uninterrupted {clean['clique']})"
                    )
                    assert clean["stats"]["subproblems_restored"] == 0
                    assert client.shutdown()
                assert proc.wait(timeout=30) == 0
                print(f"  uninterrupted daemon agrees: {clean['clique']}")
            finally:
                if proc.poll() is None:
                    proc.kill()
    print("crash-recovery smoke: OK")


if __name__ == "__main__":
    main()
