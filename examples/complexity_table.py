"""Reproduce the theoretical comparison between kDC and MADEC+ (Section 3.1.2).

Prints γ_k (kDC's branching factor), σ_k (MADEC+'s branching factor, equal to
γ_{2k}), and the resulting asymptotic speedup for a 100-vertex instance.

Run with::

    python examples/complexity_table.py
"""

from __future__ import annotations

from repro.core import PAPER_GAMMA_VALUES, complexity_comparison


def main() -> None:
    ks = list(range(0, 11))
    rows = complexity_comparison(ks)
    print(f"{'k':>3}  {'gamma_k (kDC)':>14}  {'sigma_k (MADEC+)':>17}  {'(sigma/gamma)^100':>18}")
    for row in rows:
        print(f"{row.k:>3}  {row.gamma_k:>14.6f}  {row.sigma_k:>17.6f}  {row.speedup_n100:>18.3g}")
    print("\npaper-quoted gamma values (Lemma 3.4):")
    for k, value in PAPER_GAMMA_VALUES.items():
        computed = next(r.gamma_k for r in rows if r.k == k)
        print(f"  k={k}: paper {value:.3f}, computed {computed:.3f}")


if __name__ == "__main__":
    main()
