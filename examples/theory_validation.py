"""Empirically validate the paper's complexity analysis on random graphs.

Two checks, both tied to Section 3.1.2:

1. **Fact 3 of Lemma 3.4** — along a chain of consecutive left branches of
   Algorithm 1, at most ``k + 1`` branchings happen before the reduction
   rules shrink the instance by at least two vertices.
2. **Theorem 3.5** — the number of search-tree nodes is at most ``2·γ_k^n``.

Run with::

    python examples/theory_validation.py
"""

from __future__ import annotations

from repro.analysis import check_node_count_bound, trace_left_spine
from repro.core import gamma
from repro.graphs import gnp_random_graph


def main() -> None:
    print("Fact 3 (left-spine length <= k + 1):")
    worst = {}
    for k in (0, 1, 2, 3):
        longest = 0
        for seed in range(30):
            g = gnp_random_graph(25, 0.4, seed=seed)
            trace = trace_left_spine(g, k)
            if not trace.ended_at_leaf:
                longest = max(longest, trace.branchings_before_shrink)
        worst[k] = longest
        print(f"  k={k}: longest observed spine {longest} branchings (bound {k + 1})")
    assert all(worst[k] <= k + 1 for k in worst)

    print("\nTheorem 3.5 (nodes <= 2 * gamma_k^n), kDC-t on G(14, 0.5):")
    for k in (0, 1, 2):
        checks = [check_node_count_bound(gnp_random_graph(14, 0.5, seed=s), k) for s in range(5)]
        measured = max(c.measured_nodes for c in checks)
        bound = checks[0].node_bound
        print(f"  k={k}: gamma_k={gamma(k):.4f}, worst measured nodes {measured}, bound {bound:,.0f}")
        assert all(c.within_bound for c in checks)

    print("\nAll theoretical claims validated empirically.")


if __name__ == "__main__":
    main()
