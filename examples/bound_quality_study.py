"""Quantify how much tighter UB1 is than the older bounds (Section 3.2.1).

For every graph of the facebook-like collection, the script replays the first
few levels of the search's left spine and measures, on each instance, the
improved coloring bound UB1, the original MADEC+ coloring bound (Eq. (2) of
the paper) and KDBB's degree-sequence bound UB3.

Run with::

    python examples/bound_quality_study.py
"""

from __future__ import annotations

from repro.analysis import sample_bound_quality
from repro.datasets import get_collection


def main() -> None:
    k = 3
    print(f"bound quality along the search spine (k = {k}, facebook_like, scale=tiny)\n")
    print(f"{'instance':<12} {'samples':>7} {'mean Eq.(2) - UB1':>18} {'mean UB3 - UB1':>15}")
    total_eq2, total_ub3, count = 0.0, 0.0, 0
    for inst in get_collection("facebook_like", scale="tiny"):
        report = sample_bound_quality(inst.graph, k, max_depth=8)
        if not report.samples:
            continue
        assert report.dominance_holds()
        print(f"{inst.name:<12} {len(report.samples):>7} "
              f"{report.mean_ub1_vs_eq2_gap:>18.2f} {report.mean_ub1_vs_ub3_gap:>15.2f}")
        total_eq2 += report.mean_ub1_vs_eq2_gap
        total_ub3 += report.mean_ub1_vs_ub3_gap
        count += 1
    if count:
        print(f"\naverages over {count} graphs: "
              f"UB1 is {total_eq2 / count:.2f} vertices tighter than Eq.(2) and "
              f"{total_ub3 / count:.2f} tighter than UB3 per instance")


if __name__ == "__main__":
    main()
