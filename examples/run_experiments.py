"""Run the full evaluation reproduction and print every table and figure.

This is the programmatic equivalent of ``python -m repro experiments <name>``
for all experiments at once.  At the default ``tiny`` scale the whole run
takes a few minutes; pass ``--scale small`` for a longer, more faithful run.

Run with::

    python examples/run_experiments.py [--scale tiny|small|medium] [--time-limit SECONDS]
"""

from __future__ import annotations

import argparse

from repro.bench import EXPERIMENTS, run_experiment


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", default="tiny", choices=("tiny", "small", "medium"))
    parser.add_argument("--time-limit", type=float, default=2.0)
    parser.add_argument(
        "--only",
        nargs="*",
        default=sorted(EXPERIMENTS),
        help="subset of experiments to run (default: all)",
    )
    args = parser.parse_args()

    for name in args.only:
        kwargs = {"scale": args.scale}
        if name != "table4":  # table4 has no time limit parameter
            kwargs["time_limit"] = args.time_limit
        result = run_experiment(name, **kwargs)
        print("\n" + "#" * 78)
        print(f"# {name}: {result.description}")
        print("#" * 78)
        print(result.text)


if __name__ == "__main__":
    main()
