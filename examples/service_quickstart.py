"""Quickstart for the solver service: prepare once, answer many queries.

Run with::

    PYTHONPATH=src python examples/service_quickstart.py

Two flavours are shown:

1. **in-process** — a :class:`~repro.service.SolverService` embedded in your
   own program: add graphs to its store, fire concurrent queries, read the
   request-level stats (``cache_hit``, ``prepare_ms``, ``solve_ms``);
2. **daemon** — a real ``repro serve`` subprocess speaking the JSON-lines
   TCP protocol, driven through :class:`~repro.service.Client`.  This is
   also what the CI service-smoke job runs, so the script asserts the
   behaviour it demonstrates and exits non-zero on any regression.
"""

from __future__ import annotations

import os
import subprocess
import sys

from repro.graphs import gnp_random_graph
from repro.service import Client, SolverService


def in_process() -> None:
    print("=== in-process service ===")
    graph = gnp_random_graph(80, 0.12, seed=5)
    with SolverService(max_concurrency=4) as service:
        digest = service.store.add(graph, name="gnp80")
        print(f"graph registered: digest {digest[:16]}…")

        # fire a batch of queries; identical ones are answered from cache
        futures = [service.submit(digest, k) for k in (1, 2, 1, 2, 1)]
        for future in futures:
            result = future.result()
            s = result.stats
            print(
                f"  k={result.k}: size={result.size} optimal={result.optimal} "
                f"cache_hit={s.cache_hit} prepare={s.prepare_ms:.1f}ms "
                f"solve={s.solve_ms:.1f}ms"
            )
        print(f"  counters: {service.stats()}")


def against_daemon() -> None:
    print("\n=== repro serve daemon over TCP ===")
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        p for p in ("src", env.get("PYTHONPATH", "")) if p
    )
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", "--port", "0"],
        stdout=subprocess.PIPE,
        text=True,
        env=env,
    )
    try:
        # the daemon prints "repro-serve listening on HOST:PORT" on startup;
        # with --port 0 this line is how callers learn the ephemeral port
        line = proc.stdout.readline().strip()
        print(f"  daemon: {line}")
        assert "listening on" in line, line
        host, port = line.rsplit(" ", 1)[1].rsplit(":", 1)

        with Client.connect(host, int(port)) as client:
            assert client.ping()
            graph = gnp_random_graph(60, 0.15, seed=8)
            digest = client.add_graph(graph, name="gnp60")
            print(f"  graph registered: digest {digest[:16]}…")

            # three queries; the repeat must be a cache hit
            first = client.solve(digest, 1)
            second = client.solve(digest, 2)
            repeat = client.solve(digest, 1)
            for reply in (first, second, repeat):
                s = reply["stats"]
                print(
                    f"  k={reply['k']}: size={reply['size']} "
                    f"optimal={reply['optimal']} cache_hit={s['cache_hit']}"
                )
            assert first["optimal"] and second["optimal"]
            assert not first["stats"]["cache_hit"]
            assert repeat["stats"]["cache_hit"]
            assert repeat["size"] == first["size"]

            counters = client.stats()
            print(f"  counters: {counters}")
            assert counters["solves"] == 2 and counters["cache_hits"] == 1

            assert client.shutdown()
        code = proc.wait(timeout=30)
        assert code == 0, f"daemon exited with {code}"
        print("  daemon shut down cleanly")
    finally:
        if proc.poll() is None:
            proc.kill()


if __name__ == "__main__":
    in_process()
    against_daemon()
