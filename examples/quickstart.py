"""Quickstart: find a maximum k-defective clique with the kDC solver.

Run with::

    python examples/quickstart.py

The script builds a small social-style graph, solves it for several values of
``k``, and shows how the k-defective relaxation finds larger near-cliques
than the maximum clique (the paper's Figure 1 message).
"""

from __future__ import annotations

from repro import (
    Graph,
    KDCSolver,
    SolverConfig,
    find_maximum_defective_clique,
    is_k_defective_clique,
    maximum_clique_size,
)
from repro.graphs import planted_defective_clique_graph


def basic_usage() -> None:
    print("=== basic usage ===")
    g = Graph(
        edges=[
            ("ana", "bob"), ("ana", "cat"), ("ana", "dan"),
            ("bob", "cat"), ("bob", "dan"), ("cat", "dan"),
            ("dan", "eve"), ("cat", "eve"),
            ("eve", "fay"), ("fay", "ana"),
        ]
    )
    print(f"graph: {g.num_vertices} vertices, {g.num_edges} edges")
    print(f"maximum clique size: {maximum_clique_size(g)}")
    for k in (0, 1, 2):
        result = find_maximum_defective_clique(g, k)
        print(f"k={k}: maximum {k}-defective clique {sorted(result.clique)} (size {result.size})")
        assert is_k_defective_clique(g, result.clique, k)


def solver_object_usage() -> None:
    print("\n=== KDCSolver with an explicit configuration ===")
    graph = planted_defective_clique_graph(n=150, clique_size=14, k=3, background_p=0.04, seed=7)
    solver = KDCSolver(SolverConfig(time_limit=30.0))
    result = solver.solve(graph, k=3)
    print(result.summary())
    print(f"planted solution recovered: {result.size >= 14}")
    print(f"search nodes: {result.stats.nodes}, "
          f"initial heuristic size: {result.stats.initial_solution_size}, "
          f"pruned by bounds: {result.stats.prunes_by_bound}")


def variant_usage() -> None:
    print("\n=== paper variants (ablations) ===")
    graph = planted_defective_clique_graph(n=120, clique_size=12, k=2, background_p=0.05, seed=3)
    for variant in ("kDC", "kDC/UB1", "kDC/RR3&4", "kDC-Degen", "kDC-t"):
        result = find_maximum_defective_clique(graph, 2, variant=variant, time_limit=20.0)
        print(f"{variant:12s} size={result.size} nodes={result.stats.nodes:6d} "
              f"time={result.stats.elapsed_seconds:.3f}s optimal={result.optimal}")


if __name__ == "__main__":
    basic_usage()
    solver_object_usage()
    variant_usage()
