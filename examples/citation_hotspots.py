"""Temporal hot-spot tracking on an evolving citation graph (dynamic demo).

Run with::

    PYTHONPATH=src python examples/citation_hotspots.py [--n N] [--steps T] [--k K]

The script is the assertion (CI runs it and any failure exits non-zero).
It models a journal-citation co-authorship network that *evolves*: each
month some collaborations form and some lapse.  The "hot spot" at any
timestamp is the maximum k-defective clique — the largest near-complete
community of authors, tolerating up to k missing collaborations.

What it demonstrates, end to end:

1. **Temporal replay** — the edge churn is captured as an
   :class:`~repro.dynamic.temporal.TemporalGraph` (one
   :class:`~repro.dynamic.delta.EdgeDelta` per timestamp) and replayed
   snapshot by snapshot;
2. **Incremental exactness** — an
   :class:`~repro.dynamic.incremental.IncrementalSolver` follows the
   stream, re-solving only the ego subproblems each delta can have
   invalidated.  At *every* step its answer is checked against a
   from-scratch :class:`~repro.core.solver.KDCSolver` solve: the optimum
   must match exactly, and the witness clique must verify;
3. **Service routing** — the same stream driven through an in-process
   :class:`~repro.service.scheduler.SolverService` via the ``mutate`` op,
   asserting the scheduler actually answered follow-up solves through its
   incremental path (``incremental_hits`` in ``stats()``).

The closing summary reports the mean fraction of anchors re-solved and the
wall-clock speedup of incremental tracking over from-scratch re-solving.
"""

from __future__ import annotations

import argparse
import random
import sys
import time

from repro.core import KDCSolver, SolverConfig, is_k_defective_clique
from repro.dynamic import EdgeDelta, IncrementalSolver, TemporalGraph, apply_delta
from repro.graphs import gnp_random_graph
from repro.service import Client, SolverService


def churn_delta(graph, rng, n_adds, n_removes):
    """One month of churn: new collaborations + lapsed ones, as an EdgeDelta."""
    vertices = sorted(graph.vertex_set())
    adds = set()
    while len(adds) < n_adds:
        u, v = rng.sample(vertices, 2)
        if not graph.has_edge(u, v) and (min(u, v), max(u, v)) not in adds:
            adds.add((min(u, v), max(u, v)))
    edges = list(graph.iter_edges())
    removes = [tuple(sorted(e)) for e in rng.sample(edges, min(n_removes, len(edges)))]
    return EdgeDelta(adds=sorted(adds), removes=sorted(set(removes) - adds))


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--n", type=int, default=400, help="number of authors (default 400)")
    parser.add_argument("--steps", type=int, default=12, help="months of churn (default 12)")
    parser.add_argument("--k", type=int, default=2, help="defectiveness budget (default 2)")
    parser.add_argument("--seed", type=int, default=23, help="random seed (default 23)")
    args = parser.parse_args()

    rng = random.Random(args.seed)
    # Sparse, like real citation networks: the 2-ball around an author is a
    # small neighbourhood, which is exactly what makes incremental tracking
    # cheap (only anchors near a new collaboration can change).
    base = gnp_random_graph(args.n, min(0.9, 8.0 / args.n), seed=args.seed)
    print(f"citation network: n={base.num_vertices} m={base.num_edges} k={args.k}")

    # Build the temporal stream: one small delta per month.
    churn = 2
    snapshots = [base.copy()]
    events = []
    for month in range(1, args.steps + 1):
        delta = churn_delta(snapshots[-1], rng, n_adds=churn, n_removes=churn // 2)
        events.append((month, delta))
        successor, _ = apply_delta(snapshots[-1], delta)
        snapshots.append(successor)
    temporal = TemporalGraph(base, events)
    assert len(temporal) == args.steps

    config = SolverConfig()
    scratch = KDCSolver(config)
    tracker = IncrementalSolver(config)

    started = time.monotonic()
    first = tracker.solve(base, args.k)
    incremental_seconds = time.monotonic() - started
    scratch_seconds = incremental_seconds  # both pay the initial full solve
    assert first.optimal, "initial solve must be optimal"
    print(f"month  0: hot spot size {first.size} (full solve)")

    header = f"{'month':>5}  {'m':>5}  {'opt':>3}  {'affected':>8}  {'resolved':>8}  {'mode':<16}"
    print(header)
    print("-" * len(header))
    resolved_fractions = []
    failures = 0
    for step in temporal.steps():
        started = time.monotonic()
        report = tracker.apply(step.delta)
        incremental_seconds += time.monotonic() - started

        started = time.monotonic()
        reference = scratch.solve(step.graph, args.k)
        scratch_seconds += time.monotonic() - started

        ok = (
            report.result.optimal
            and reference.optimal
            and report.result.size == reference.size
            and is_k_defective_clique(step.graph, report.result.clique, args.k)
            and report.digest == step.digest
        )
        if not ok:
            failures += 1
        if report.incremental:
            mode = "incremental"
            resolved_fractions.append(report.anchors_resolved / max(1, report.anchors_total))
        else:
            mode = f"full ({report.fallback_reason})"
        print(
            f"{step.timestamp:>5}  {step.graph.num_edges:>5}  {report.result.size:>3}"
            f"  {report.anchors_affected:>8}  {report.anchors_resolved:>8}  {mode:<16}"
            + ("" if ok else "  MISMATCH")
        )

    print()
    incremental_steps = len(resolved_fractions)
    mean_resolved = (
        sum(resolved_fractions) / incremental_steps if incremental_steps else float("nan")
    )
    speedup = scratch_seconds / incremental_seconds if incremental_seconds > 0 else float("inf")
    print(f"incremental steps : {incremental_steps}/{args.steps}")
    print(f"mean anchors re-solved : {100 * mean_resolved:.1f}%")
    print(f"wall clock : incremental {incremental_seconds:.2f}s vs from-scratch {scratch_seconds:.2f}s ({speedup:.1f}x)")
    assert failures == 0, f"{failures} step(s) disagreed with the from-scratch solve"
    assert incremental_steps > 0, "no step took the incremental path"

    # ------------------------------------------------------------------ #
    # The same stream through the service's mutate op.
    # ------------------------------------------------------------------ #
    print()
    print("=== service mutate demo ===")
    service = SolverService(config=config)
    try:
        client = Client(service=service)
        digest = client.add_graph(base, name="citations")
        reply = client.solve(digest, args.k)
        assert reply["optimal"] and reply["size"] == first.size
        demo_steps = min(3, args.steps)
        for month, delta in events[:demo_steps]:
            mutated = client.mutate(
                "citations", adds=delta.adds, removes=delta.removes, name="citations"
            )
            answer = client.solve(mutated["digest"], args.k)
            expected = temporal.snapshot_at(month)
            reference = scratch.solve(expected, args.k)
            assert answer["optimal"] and answer["size"] == reference.size, (
                f"service disagreed at month {month}: {answer['size']} != {reference.size}"
            )
            print(f"month {month:>2}: mutate -> {mutated['digest'][:12]}… size {answer['size']}")
        stats = service.stats()
        print(f"incremental hits: {stats['incremental_hits']}, mutations: {stats['mutations']}")
        assert stats["incremental_hits"] > 0, (
            "the service never answered through the incremental path"
        )
    finally:
        service.close()

    print()
    print("OK: incremental tracking matched from-scratch optima at every step")
    return 0


if __name__ == "__main__":
    sys.exit(main())
