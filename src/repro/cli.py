"""Command line interface: ``python -m repro`` / ``repro-kdc``.

Sub-commands
------------
* ``solve``       — find a maximum k-defective clique of a graph file
  (``--backend set|bitset|auto`` selects the search-state backend; the
  bitset backend adds a degeneracy decomposition on large instances,
  ``--engine trail|copy`` picks the branch-and-bound engine, ``--workers N``
  runs the decomposition's ego subproblems across N processes with no
  change to the optimal size returned, and ``--stats`` dumps the full
  search counters);
* ``compare``     — run several algorithms on one graph and tabulate them;
* ``top-r``       — top-r maximal or diversified k-defective cliques;
* ``properties``  — Tables 5–7 style analysis of one graph;
* ``experiments`` — run one of the paper's table/figure reproductions;
* ``stats``       — print structural statistics of a graph file;
* ``generate``    — write a synthetic collection to disk as edge-list files;
* ``gamma``       — print the theoretical branching factors γ_k and σ_k;
* ``serve``       — run a long-lived solver service speaking a JSON-lines
  TCP protocol (graphs are prepared once and cached by content digest;
  repeated queries are answered from a result cache — see
  :mod:`repro.service`).

Failures surface as a one-line ``error: ...`` message on stderr and a
non-zero exit code instead of a traceback.
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import List, Optional

from .analysis.properties import analyze_graph
from .bench.experiments import EXPERIMENTS, run_experiment
from .bench.harness import ALGORITHMS, make_solver, run_instance
from .core.config import BACKEND_NAMES, ENGINE_NAMES
from .bench.reporting import format_table
from .core.gamma import complexity_comparison
from .datasets.collections import COLLECTION_NAMES, SCALES, get_collection
from .exceptions import ReproError
from .extensions import top_r_diversified_defective_cliques, top_r_maximal_defective_cliques
from .graphs.io import load_graph, write_edge_list
from .graphs.stats import graph_stats

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    """Build the top-level argument parser (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro-kdc",
        description="Maximum k-defective clique computation (reproduction of SIGMOD 2023 kDC).",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    solve = subparsers.add_parser("solve", help="solve one graph file")
    solve.add_argument("path", help="graph file (edge list, DIMACS or METIS)")
    solve.add_argument("-k", type=int, required=True, help="number of tolerated missing edges")
    solve.add_argument(
        "--algorithm",
        default="kDC",
        choices=list(ALGORITHMS),
        help="algorithm / variant to run (default: kDC)",
    )
    solve.add_argument("--time-limit", type=float, default=None, help="wall-clock budget in seconds")
    solve.add_argument("--format", default="auto", choices=["auto", "edgelist", "dimacs", "metis"])
    solve.add_argument("--show-vertices", action="store_true", help="print the clique's vertices")
    solve.add_argument(
        "--backend",
        default=None,
        choices=list(BACKEND_NAMES),
        help="search-state backend for the kDC variants: 'set' (dict/set states), "
        "'bitset' (packed adjacency bitmaps + degeneracy decomposition on large "
        "instances), or 'auto' (pick by reduced instance size; the default)",
    )
    solve.add_argument(
        "--workers",
        type=int,
        default=None,
        help="worker processes for the degeneracy decomposition (kDC variants "
        "only; default 1 = sequential).  With N >= 2 the per-vertex ego "
        "subproblems run across a multiprocessing pool sharing one best-size "
        "incumbent; the optimal size returned is identical for every worker "
        "count — only wall-clock time changes.  Takes effect when the bitset "
        "backend decomposes (instance >= decompose-threshold vertices and a "
        "usable heuristic bound); otherwise the solve is sequential",
    )
    solve.add_argument(
        "--engine",
        default=None,
        choices=list(ENGINE_NAMES),
        help="bitset branch-and-bound engine: 'trail' (undo-stack engine with "
        "worklist reductions and repairable coloring bounds; the default) or "
        "'copy' (copy-per-child baseline kept for differential testing).  "
        "Both are exact; the set backend ignores this",
    )
    solve.add_argument(
        "--stats",
        action="store_true",
        help="print the full search statistics (nodes, prunes, per-rule "
        "reductions, trail pushes/pops, dirty-queue drains, recolor "
        "full/repair counts, ...) after the solve summary",
    )

    compare = subparsers.add_parser("compare", help="run several algorithms on one graph and tabulate them")
    compare.add_argument("path")
    compare.add_argument("-k", type=int, required=True)
    compare.add_argument(
        "--algorithms",
        nargs="+",
        default=["kDC", "KDBB", "MADEC"],
        choices=list(ALGORITHMS) + ["MADEC+"],
    )
    compare.add_argument("--time-limit", type=float, default=None)
    compare.add_argument("--format", default="auto", choices=["auto", "edgelist", "dimacs", "metis"])

    top_r = subparsers.add_parser("top-r", help="find the top-r (maximal or diversified) k-defective cliques")
    top_r.add_argument("path")
    top_r.add_argument("-k", type=int, required=True)
    top_r.add_argument("-r", type=int, default=3)
    top_r.add_argument("--diversified", action="store_true",
                       help="maximise distinct-vertex coverage instead of individual sizes")
    top_r.add_argument("--format", default="auto", choices=["auto", "edgelist", "dimacs", "metis"])

    properties = subparsers.add_parser("properties", help="Tables 5-7 style analysis of one graph")
    properties.add_argument("path")
    properties.add_argument("-k", type=int, required=True)
    properties.add_argument("--time-limit", type=float, default=None)
    properties.add_argument("--format", default="auto", choices=["auto", "edgelist", "dimacs", "metis"])

    experiments = subparsers.add_parser("experiments", help="reproduce a table or figure of the paper")
    experiments.add_argument("name", choices=sorted(EXPERIMENTS), help="experiment to run")
    experiments.add_argument("--scale", default="tiny", choices=list(SCALES))
    experiments.add_argument("--time-limit", type=float, default=None, help="per-instance budget in seconds")

    stats = subparsers.add_parser("stats", help="print structural statistics of a graph file")
    stats.add_argument("path")
    stats.add_argument("--format", default="auto", choices=["auto", "edgelist", "dimacs", "metis"])

    generate = subparsers.add_parser("generate", help="write a synthetic collection to disk")
    generate.add_argument("collection", choices=list(COLLECTION_NAMES))
    generate.add_argument("output_dir")
    generate.add_argument("--scale", default="small", choices=list(SCALES))

    gamma_cmd = subparsers.add_parser("gamma", help="print the theoretical branching factors")
    gamma_cmd.add_argument("--max-k", type=int, default=10)

    serve = subparsers.add_parser(
        "serve",
        help="run a long-lived solver service (JSON-lines TCP protocol)",
    )
    serve.add_argument("--host", default="127.0.0.1", help="bind address (default 127.0.0.1)")
    serve.add_argument(
        "--port",
        type=int,
        default=7317,
        help="TCP port; 0 picks an ephemeral port, printed on startup (default 7317)",
    )
    serve.add_argument(
        "--max-concurrency",
        type=int,
        default=4,
        help="maximum number of simultaneously executing solves (default 4)",
    )
    serve.add_argument(
        "--backend",
        default="auto",
        choices=list(BACKEND_NAMES),
        help="search-state backend answering queries (default auto)",
    )
    serve.add_argument(
        "--engine",
        default="trail",
        choices=list(ENGINE_NAMES),
        help="bitset branch-and-bound engine (default trail)",
    )
    serve.add_argument(
        "--workers",
        type=int,
        default=1,
        help="worker processes per solve for the degeneracy decomposition (default 1)",
    )
    serve.add_argument(
        "--preload",
        nargs="*",
        default=[],
        metavar="PATH",
        help="graph files to load into the store at startup (digests printed)",
    )
    serve.add_argument(
        "--format", default="auto", choices=["auto", "edgelist", "dimacs", "metis"],
        help="format of the --preload files",
    )

    return parser


def _cmd_solve(args: argparse.Namespace) -> int:
    graph = load_graph(args.path, fmt=args.format)
    solver = make_solver(
        args.algorithm, time_limit=args.time_limit, backend=args.backend,
        workers=args.workers, engine=args.engine,
    )
    result = solver.solve(graph, args.k)
    print(result.summary())
    if args.show_vertices:
        print("vertices:", " ".join(str(v) for v in result.clique))
    if args.stats:
        for key, value in result.stats.as_dict().items():
            print(f"{key}: {value}")
    return 0


def _cmd_compare(args: argparse.Namespace) -> int:
    graph = load_graph(args.path, fmt=args.format)
    rows = []
    for algorithm in args.algorithms:
        record = run_instance(algorithm, graph, args.k, args.time_limit, instance=os.path.basename(args.path))
        rows.append(
            [
                algorithm,
                record.size,
                "yes" if record.solved else "no (budget)",
                f"{record.elapsed_seconds:.3f}",
                record.nodes,
            ]
        )
    print(format_table(["algorithm", "size", "optimal", "time (s)", "nodes"], rows,
                       title=f"maximum {args.k}-defective clique on {args.path}"))
    return 0


def _cmd_top_r(args: argparse.Namespace) -> int:
    graph = load_graph(args.path, fmt=args.format)
    if args.diversified:
        cliques = top_r_diversified_defective_cliques(graph, args.k, args.r)
        kind = "diversified"
    else:
        cliques = top_r_maximal_defective_cliques(graph, args.k, args.r)
        kind = "maximal"
    print(f"top-{args.r} {kind} {args.k}-defective cliques of {args.path}:")
    for i, clique in enumerate(cliques, start=1):
        print(f"  #{i} (size {len(clique)}): {' '.join(str(v) for v in clique)}")
    return 0


def _cmd_properties(args: argparse.Namespace) -> int:
    graph = load_graph(args.path, fmt=args.format)
    record = analyze_graph(graph, args.k, graph_name=os.path.basename(args.path),
                           time_limit=args.time_limit)
    print(f"maximum clique size:              {record.max_clique_size}")
    print(f"maximum {args.k}-defective clique size: {record.max_defective_clique_size}")
    print(f"size ratio:                       {record.size_ratio:.3f}")
    print(f"extends a maximum clique:         {'yes' if record.extends_max_clique else 'no'}")
    print(f"vertices with missing neighbours: {100 * record.fraction_not_fully_connected:.1f}%")
    print(f"both computations optimal:        {'yes' if record.solved else 'no'}")
    return 0


def _cmd_experiments(args: argparse.Namespace) -> int:
    kwargs = {"scale": args.scale}
    if args.time_limit is not None:
        kwargs["time_limit"] = args.time_limit
    result = run_experiment(args.name, **kwargs)
    print(result.text)
    return 0


def _cmd_stats(args: argparse.Namespace) -> int:
    graph = load_graph(args.path, fmt=args.format)
    summary = graph_stats(graph)
    for key, value in summary.as_dict().items():
        print(f"{key}: {value}")
    return 0


def _cmd_generate(args: argparse.Namespace) -> int:
    os.makedirs(args.output_dir, exist_ok=True)
    instances = get_collection(args.collection, scale=args.scale)
    for inst in instances:
        path = os.path.join(args.output_dir, f"{inst.name}.edges")
        write_edge_list(inst.graph, path)
        print(f"wrote {inst.describe()} -> {path}")
    return 0


def _cmd_gamma(args: argparse.Namespace) -> int:
    print(f"{'k':>3}  {'gamma_k (kDC)':>14}  {'sigma_k (MADEC+)':>17}")
    for row in complexity_comparison(list(range(args.max_k + 1))):
        print(f"{row.k:>3}  {row.gamma_k:>14.6f}  {row.sigma_k:>17.6f}")
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    # Imported lazily: every other sub-command works without the service
    # machinery, and keeping the import here keeps their startup unchanged.
    from .core.config import SolverConfig
    from .service import ServiceServer, run_server

    config = SolverConfig(backend=args.backend, engine=args.engine, workers=args.workers)
    server = ServiceServer(
        host=args.host,
        port=args.port,
        config=config,
        max_concurrency=args.max_concurrency,
    )
    for path in args.preload:
        graph = load_graph(path, fmt=args.format)
        digest = server.service.store.add(graph, name=os.path.basename(path))
        print(f"preloaded {path}: digest {digest}", flush=True)
    try:
        run_server(server)
    except KeyboardInterrupt:
        server.server_close()
    return 0


_COMMANDS = {
    "solve": _cmd_solve,
    "compare": _cmd_compare,
    "top-r": _cmd_top_r,
    "properties": _cmd_properties,
    "experiments": _cmd_experiments,
    "stats": _cmd_stats,
    "generate": _cmd_generate,
    "gamma": _cmd_gamma,
    "serve": _cmd_serve,
}


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns a process exit code.

    Library failures (unreadable or malformed graph files, invalid
    parameters, service errors — anything deriving from
    :class:`~repro.exceptions.ReproError` or :class:`OSError`) are reported
    as a one-line ``error: ...`` on stderr with exit code 2; Ctrl-C exits
    130 (the conventional ``128 + SIGINT``) instead of dumping a traceback.
    """
    parser = build_parser()
    args = parser.parse_args(argv)
    handler = _COMMANDS[args.command]
    try:
        return handler(args)
    except KeyboardInterrupt:
        print("interrupted", file=sys.stderr)
        return 130
    except (ReproError, OSError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
