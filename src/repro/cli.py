"""Command line interface: ``python -m repro`` / ``repro-kdc``.

Sub-commands
------------
* ``solve``       — find a maximum k-defective clique of a graph file
  (``--backend set|bitset|auto`` selects the search-state backend; the
  bitset backend adds a degeneracy decomposition on large instances,
  ``--engine trail|copy`` picks the branch-and-bound engine, ``--workers N``
  runs the decomposition's ego subproblems across N processes with no
  change to the optimal size returned, and ``--stats`` dumps the full
  search counters);
* ``compare``     — run several algorithms on one graph and tabulate them;
* ``top-r``       — top-r maximal or diversified k-defective cliques;
* ``properties``  — Tables 5–7 style analysis of one graph;
* ``experiments`` — run one of the paper's table/figure reproductions, or
  drive the SQLite experiment store: ``experiments run`` executes the
  instance × k × algorithm × backend × engine × workers matrix with
  per-cell checkpoints (interrupted campaigns resume), ``experiments
  compare`` diffs a fresh run against the stored trajectory and exits
  non-zero on a >20% median node-throughput regression in any
  (backend, engine) cell, ``experiments export`` dumps a run as JSON, and
  ``experiments query`` runs read-only SQL (or a canned trend report such
  as ``--report throughput-trend``) with table or CSV output;
* ``stats``       — print structural statistics of a graph file;
* ``generate``    — write a synthetic collection to disk as edge-list files;
* ``gamma``       — print the theoretical branching factors γ_k and σ_k;
* ``serve``       — run a long-lived solver service speaking a JSON-lines
  TCP protocol (graphs are prepared once and cached by content digest;
  repeated queries are answered from a result cache — see
  :mod:`repro.service`);
* ``mutate``      — apply an edge delta (``--add U V`` / ``--remove U V``)
  to a graph stored in a running service; the successor becomes a
  first-class stored graph whose solves are answered incrementally from
  the predecessor's solve when possible (see :mod:`repro.dynamic`).

Failures surface as a one-line ``error: ...`` message on stderr and a
non-zero exit code instead of a traceback.
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import List, Optional

from .analysis.properties import analyze_graph
from .bench.experiments import EXPERIMENTS, run_experiment
from .bench.harness import ALGORITHMS, make_solver, run_instance
from .core.config import BACKEND_NAMES, ENGINE_NAMES
from .bench.reporting import format_table
from .core.gamma import complexity_comparison
from .datasets.collections import COLLECTION_NAMES, SCALES, get_collection
from .exceptions import ReproError
from .extensions import top_r_diversified_defective_cliques, top_r_maximal_defective_cliques
from .graphs.io import load_graph, write_edge_list
from .graphs.stats import graph_stats

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    """Build the top-level argument parser (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro-kdc",
        description="Maximum k-defective clique computation (reproduction of SIGMOD 2023 kDC).",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    solve = subparsers.add_parser("solve", help="solve one graph file")
    solve.add_argument("path", help="graph file (edge list, DIMACS or METIS)")
    solve.add_argument("-k", type=int, required=True, help="number of tolerated missing edges")
    solve.add_argument(
        "--algorithm",
        default="kDC",
        choices=list(ALGORITHMS),
        help="algorithm / variant to run (default: kDC)",
    )
    solve.add_argument("--time-limit", type=float, default=None, help="wall-clock budget in seconds")
    solve.add_argument("--format", default="auto", choices=["auto", "edgelist", "dimacs", "metis"])
    solve.add_argument("--show-vertices", action="store_true", help="print the clique's vertices")
    solve.add_argument(
        "--backend",
        default=None,
        choices=list(BACKEND_NAMES),
        help="search-state backend for the kDC variants: 'set' (dict/set states), "
        "'bitset' (packed adjacency bitmaps + degeneracy decomposition on large "
        "instances), or 'auto' (pick by reduced instance size; the default)",
    )
    solve.add_argument(
        "--workers",
        type=int,
        default=None,
        help="worker processes for the degeneracy decomposition (kDC variants "
        "only; default 1 = sequential).  With N >= 2 the per-vertex ego "
        "subproblems run across a multiprocessing pool sharing one best-size "
        "incumbent; the optimal size returned is identical for every worker "
        "count — only wall-clock time changes.  Takes effect when the bitset "
        "backend decomposes (instance >= decompose-threshold vertices and a "
        "usable heuristic bound); otherwise the solve is sequential",
    )
    solve.add_argument(
        "--engine",
        default=None,
        choices=list(ENGINE_NAMES),
        help="bitset branch-and-bound engine: 'trail' (undo-stack engine with "
        "worklist reductions and repairable coloring bounds; the default) or "
        "'copy' (copy-per-child baseline kept for differential testing).  "
        "Both are exact; the set backend ignores this",
    )
    solve.add_argument(
        "--stats",
        action="store_true",
        help="print the full search statistics (nodes, prunes, per-rule "
        "reductions, trail pushes/pops, dirty-queue drains, recolor "
        "full/repair counts, ...) after the solve summary",
    )

    compare = subparsers.add_parser("compare", help="run several algorithms on one graph and tabulate them")
    compare.add_argument("path")
    compare.add_argument("-k", type=int, required=True)
    compare.add_argument(
        "--algorithms",
        nargs="+",
        default=["kDC", "KDBB", "MADEC"],
        choices=list(ALGORITHMS) + ["MADEC+"],
    )
    compare.add_argument("--time-limit", type=float, default=None)
    compare.add_argument("--format", default="auto", choices=["auto", "edgelist", "dimacs", "metis"])

    top_r = subparsers.add_parser("top-r", help="find the top-r (maximal or diversified) k-defective cliques")
    top_r.add_argument("path")
    top_r.add_argument("-k", type=int, required=True)
    top_r.add_argument("-r", type=int, default=3)
    top_r.add_argument("--diversified", action="store_true",
                       help="maximise distinct-vertex coverage instead of individual sizes")
    top_r.add_argument("--format", default="auto", choices=["auto", "edgelist", "dimacs", "metis"])

    properties = subparsers.add_parser("properties", help="Tables 5-7 style analysis of one graph")
    properties.add_argument("path")
    properties.add_argument("-k", type=int, required=True)
    properties.add_argument("--time-limit", type=float, default=None)
    properties.add_argument("--format", default="auto", choices=["auto", "edgelist", "dimacs", "metis"])

    experiments = subparsers.add_parser(
        "experiments",
        help="paper reproductions plus the SQLite experiment store (run/compare/export)",
    )
    exp_sub = experiments.add_subparsers(dest="name", required=True, metavar="NAME")
    for exp_name in sorted(EXPERIMENTS):
        paper_exp = exp_sub.add_parser(exp_name, help=f"reproduce {exp_name} of the paper")
        paper_exp.add_argument("--scale", default="tiny", choices=list(SCALES))
        paper_exp.add_argument(
            "--time-limit", type=float, default=None, help="per-instance budget in seconds"
        )

    exp_run = exp_sub.add_parser(
        "run",
        help="execute the instance x k x algorithm x backend x engine x workers "
        "matrix into a SQLite experiment store, checkpointing each cell "
        "(an interrupted campaign resumes instead of restarting)",
    )
    exp_run.add_argument("--db", default="experiments.sqlite", help="experiment store file")
    exp_run.add_argument("--label", default="matrix", help="run label recorded in the store")
    exp_run.add_argument(
        "--collections",
        nargs="+",
        default=["facebook_like"],
        choices=list(COLLECTION_NAMES),
        help="dataset collections forming the instance axis",
    )
    exp_run.add_argument("--scale", default="tiny", choices=list(SCALES))
    exp_run.add_argument(
        "--instance-limit",
        type=int,
        default=None,
        help="take only the first N instances of each collection",
    )
    exp_run.add_argument("--k", nargs="+", type=int, default=[1], help="k values to test")
    exp_run.add_argument(
        "--algorithms", nargs="+", default=["kDC"], choices=list(ALGORITHMS) + ["MADEC+"]
    )
    exp_run.add_argument("--backends", nargs="+", default=["set", "bitset"], choices=list(BACKEND_NAMES))
    exp_run.add_argument("--engines", nargs="+", default=["trail", "copy"], choices=list(ENGINE_NAMES))
    exp_run.add_argument("--workers", nargs="+", type=int, default=[1], help="worker-process counts")
    exp_run.add_argument("--time-limit", type=float, default=2.0, help="per-cell budget in seconds")
    exp_run.add_argument(
        "--max-cells", type=int, default=None, help="execute at most N missing cells, then stop"
    )
    exp_run.add_argument(
        "--no-resume",
        action="store_true",
        help="always start a fresh run row instead of resuming an unfinished campaign",
    )

    exp_compare = exp_sub.add_parser(
        "compare",
        help="diff a fresh run against the stored trajectory; exits 1 when any "
        "(backend, engine) cell's median node throughput regressed by more "
        "than the threshold",
    )
    exp_compare.add_argument("--db", default="experiments.sqlite", help="candidate experiment store")
    exp_compare.add_argument(
        "--baseline-db",
        default=None,
        help="baseline experiment store (default: the candidate store itself)",
    )
    exp_compare.add_argument(
        "--baseline", type=int, default=None, help="baseline run id (default: latest before the candidate)"
    )
    exp_compare.add_argument(
        "--candidate", type=int, default=None, help="candidate run id (default: latest run with cells)"
    )
    exp_compare.add_argument(
        "--threshold",
        type=float,
        default=0.20,
        help="regression threshold as a fraction of baseline median throughput (default 0.20)",
    )

    exp_export = exp_sub.add_parser(
        "export", help="export one run (run row, cells, logs) as JSON"
    )
    exp_export.add_argument("--db", default="experiments.sqlite", help="experiment store file")
    exp_export.add_argument(
        "--run", type=int, default=None, help="run id to export (default: latest run with cells)"
    )
    exp_export.add_argument("--out", default=None, help="output file (default: stdout)")

    exp_query = exp_sub.add_parser(
        "query",
        help="run read-only SQL (or a canned trend report) against the "
        "experiment store and print a table or CSV",
    )
    exp_query.add_argument("--db", default="experiments.sqlite", help="experiment store file")
    exp_query.add_argument(
        "sql",
        nargs="?",
        default=None,
        help="a read-only SQL statement (SELECT/WITH/EXPLAIN); "
        "omit when using --report",
    )
    exp_query.add_argument(
        "--report",
        default=None,
        metavar="NAME",
        help="run a canned report instead of raw SQL; use --report list to "
        "see the available reports",
    )
    exp_query.add_argument(
        "--csv", action="store_true", help="emit CSV instead of an aligned table"
    )

    stats = subparsers.add_parser("stats", help="print structural statistics of a graph file")
    stats.add_argument("path")
    stats.add_argument("--format", default="auto", choices=["auto", "edgelist", "dimacs", "metis"])

    generate = subparsers.add_parser("generate", help="write a synthetic collection to disk")
    generate.add_argument("collection", choices=list(COLLECTION_NAMES))
    generate.add_argument("output_dir")
    generate.add_argument("--scale", default="small", choices=list(SCALES))

    gamma_cmd = subparsers.add_parser("gamma", help="print the theoretical branching factors")
    gamma_cmd.add_argument("--max-k", type=int, default=10)

    serve = subparsers.add_parser(
        "serve",
        help="run a long-lived solver service (JSON-lines TCP protocol)",
    )
    serve.add_argument("--host", default="127.0.0.1", help="bind address (default 127.0.0.1)")
    serve.add_argument(
        "--port",
        type=int,
        default=7317,
        help="TCP port; 0 picks an ephemeral port, printed on startup (default 7317)",
    )
    serve.add_argument(
        "--max-concurrency",
        type=int,
        default=4,
        help="maximum number of simultaneously executing solves (default 4)",
    )
    serve.add_argument(
        "--backend",
        default="auto",
        choices=list(BACKEND_NAMES),
        help="search-state backend answering queries (default auto)",
    )
    serve.add_argument(
        "--engine",
        default="trail",
        choices=list(ENGINE_NAMES),
        help="bitset branch-and-bound engine (default trail)",
    )
    serve.add_argument(
        "--workers",
        type=int,
        default=1,
        help="worker processes per solve for the degeneracy decomposition (default 1)",
    )
    serve.add_argument(
        "--default-deadline",
        type=float,
        default=None,
        metavar="SECONDS",
        help="end-to-end deadline applied to requests that carry none "
             "(queue wait + prepare + solve; default: no deadline)",
    )
    serve.add_argument(
        "--max-pending",
        type=int,
        default=None,
        metavar="N",
        help="admission-control bound on queued requests; beyond it requests "
             "are shed with a retry-after hint (default: unbounded)",
    )
    serve.add_argument(
        "--drain-timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="on shutdown (SIGTERM/SIGINT/shutdown op), how long to drain "
             "in-flight solves before cancelling them (default: wait forever)",
    )
    serve.add_argument(
        "--state-dir",
        default=None,
        metavar="PATH",
        help="directory for durable service state (graphs, prepared artifacts, "
             "result journal, solve checkpoints); restored on startup, so a "
             "crashed or killed service restarts warm (default: in-memory only)",
    )
    serve.add_argument(
        "--preload",
        nargs="*",
        default=[],
        metavar="PATH",
        help="graph files to load into the store at startup (digests printed)",
    )
    serve.add_argument(
        "--format", default="auto", choices=["auto", "edgelist", "dimacs", "metis"],
        help="format of the --preload files",
    )

    mutate = subparsers.add_parser(
        "mutate",
        help="apply an edge delta to a graph stored in a running service",
    )
    mutate.add_argument(
        "graph",
        help="predecessor graph: a content digest or a stored name",
    )
    mutate.add_argument("--host", default="127.0.0.1", help="service address (default 127.0.0.1)")
    mutate.add_argument("--port", type=int, default=7317, help="service port (default 7317)")
    mutate.add_argument(
        "--add",
        action="append",
        nargs=2,
        default=[],
        metavar=("U", "V"),
        help="edge to add (repeatable)",
    )
    mutate.add_argument(
        "--remove",
        action="append",
        nargs=2,
        default=[],
        metavar=("U", "V"),
        help="edge to remove (repeatable)",
    )
    mutate.add_argument(
        "--name",
        default=None,
        help="optional name for the successor graph (a stream of mutations "
        "can keep one stable name)",
    )
    mutate.add_argument(
        "--timeout",
        type=float,
        default=30.0,
        help="socket timeout in seconds (default 30)",
    )

    return parser


def _cmd_solve(args: argparse.Namespace) -> int:
    graph = load_graph(args.path, fmt=args.format)
    solver = make_solver(
        args.algorithm, time_limit=args.time_limit, backend=args.backend,
        workers=args.workers, engine=args.engine,
    )
    result = solver.solve(graph, args.k)
    print(result.summary())
    if args.show_vertices:
        print("vertices:", " ".join(str(v) for v in result.clique))
    if args.stats:
        for key, value in result.stats.as_dict().items():
            print(f"{key}: {value}")
    return 0


def _cmd_compare(args: argparse.Namespace) -> int:
    graph = load_graph(args.path, fmt=args.format)
    rows = []
    for algorithm in args.algorithms:
        record = run_instance(algorithm, graph, args.k, args.time_limit, instance=os.path.basename(args.path))
        rows.append(
            [
                algorithm,
                record.size,
                "yes" if record.solved else "no (budget)",
                f"{record.elapsed_seconds:.3f}",
                record.nodes,
            ]
        )
    print(format_table(["algorithm", "size", "optimal", "time (s)", "nodes"], rows,
                       title=f"maximum {args.k}-defective clique on {args.path}"))
    return 0


def _cmd_top_r(args: argparse.Namespace) -> int:
    graph = load_graph(args.path, fmt=args.format)
    if args.diversified:
        cliques = top_r_diversified_defective_cliques(graph, args.k, args.r)
        kind = "diversified"
    else:
        cliques = top_r_maximal_defective_cliques(graph, args.k, args.r)
        kind = "maximal"
    print(f"top-{args.r} {kind} {args.k}-defective cliques of {args.path}:")
    for i, clique in enumerate(cliques, start=1):
        print(f"  #{i} (size {len(clique)}): {' '.join(str(v) for v in clique)}")
    return 0


def _cmd_properties(args: argparse.Namespace) -> int:
    graph = load_graph(args.path, fmt=args.format)
    record = analyze_graph(graph, args.k, graph_name=os.path.basename(args.path),
                           time_limit=args.time_limit)
    print(f"maximum clique size:              {record.max_clique_size}")
    print(f"maximum {args.k}-defective clique size: {record.max_defective_clique_size}")
    print(f"size ratio:                       {record.size_ratio:.3f}")
    print(f"extends a maximum clique:         {'yes' if record.extends_max_clique else 'no'}")
    print(f"vertices with missing neighbours: {100 * record.fraction_not_fully_connected:.1f}%")
    print(f"both computations optimal:        {'yes' if record.solved else 'no'}")
    return 0


def _cmd_experiments(args: argparse.Namespace) -> int:
    if args.name == "run":
        return _cmd_experiments_run(args)
    if args.name == "compare":
        return _cmd_experiments_compare(args)
    if args.name == "export":
        return _cmd_experiments_export(args)
    if args.name == "query":
        return _cmd_experiments_query(args)
    kwargs = {"scale": args.scale}
    if args.time_limit is not None:
        kwargs["time_limit"] = args.time_limit
    result = run_experiment(args.name, **kwargs)
    print(result.text)
    return 0


def _cmd_experiments_run(args: argparse.Namespace) -> int:
    # Imported lazily like `serve`: the store machinery (sqlite) is only
    # needed by the experiments surface.
    from .bench.runner import MatrixSpec, run_matrix
    from .bench.store import ExperimentStore

    spec = MatrixSpec(
        collections=tuple(args.collections),
        scale=args.scale,
        k_values=tuple(args.k),
        algorithms=tuple(args.algorithms),
        backends=tuple(args.backends),
        engines=tuple(args.engines),
        workers=tuple(args.workers),
        time_limit=args.time_limit,
        instance_limit=args.instance_limit,
    )

    def progress(keyfields, record):
        cell = "/".join(
            str(keyfields[f]) for f in ("collection", "instance", "k", "algorithm")
        )
        axes = f"{keyfields['backend'] or '-'}:{keyfields['engine'] or '-'}:w{keyfields['workers']}"
        print(
            f"  {cell} [{axes}] size={record.size}"
            f" nodes={record.nodes} {record.elapsed_seconds:.3f}s",
            flush=True,
        )

    with ExperimentStore(args.db) as store:
        report = run_matrix(
            store,
            spec,
            label=args.label,
            resume=not args.no_resume,
            max_cells=args.max_cells,
            progress=progress,
        )
    print(report.summary())
    return 0


def _cmd_experiments_compare(args: argparse.Namespace) -> int:
    from .bench.store import ExperimentStore, compare_runs

    baseline_db = args.baseline_db if args.baseline_db is not None else args.db
    same_db = os.path.abspath(baseline_db) == os.path.abspath(args.db)
    with ExperimentStore(args.db) as candidate_store:
        candidate_run = args.candidate
        if candidate_run is None:
            candidate_run = candidate_store.latest_run(with_cells=True)
        if candidate_run is None:
            raise ReproError(f"no runs with recorded cells in {args.db}")
        candidate_rows = candidate_store.rows(candidate_run)

        baseline_store = candidate_store if same_db else ExperimentStore(baseline_db)
        try:
            baseline_run = args.baseline
            if baseline_run is None:
                # In a single store, compare the candidate against the run
                # before it; across two stores, against the baseline's latest.
                exclude = (candidate_run,) if same_db else ()
                baseline_run = baseline_store.latest_run(with_cells=True, exclude=exclude)
                if baseline_run is None and same_db:
                    baseline_run = candidate_run  # only one run: self-compare
            if baseline_run is None:
                raise ReproError(f"no baseline runs with recorded cells in {baseline_db}")
            baseline_rows = baseline_store.rows(baseline_run)
        finally:
            if not same_db:
                baseline_store.close()

    print(f"baseline: run {baseline_run} of {baseline_db}")
    print(f"candidate: run {candidate_run} of {args.db}")
    report = compare_runs(baseline_rows, candidate_rows, threshold=args.threshold)
    print(report.format_table())
    return 0 if report.ok else 1


def _cmd_experiments_export(args: argparse.Namespace) -> int:
    import json

    from .bench.store import ExperimentStore

    with ExperimentStore(args.db) as store:
        run_id = args.run
        if run_id is None:
            run_id = store.latest_run(with_cells=True)
        if run_id is None:
            raise ReproError(f"no runs with recorded cells in {args.db}")
        payload = store.export_run(run_id)
    text = json.dumps(payload, indent=2, sort_keys=False)
    if args.out is None:
        print(text)
    else:
        with open(args.out, "w", encoding="utf-8") as handle:
            handle.write(text + "\n")
        print(f"exported run {run_id} -> {args.out}")
    return 0


def _cmd_experiments_query(args: argparse.Namespace) -> int:
    import sqlite3

    from .bench.store import CANNED_REPORTS, query_store

    if args.report == "list" or (args.report is None and args.sql is None):
        print(format_table(
            ["report", "description"],
            [(name, desc) for name, (desc, _) in sorted(CANNED_REPORTS.items())],
            title="canned reports (repro experiments query --report NAME)",
        ))
        return 0
    if args.report is not None and args.sql is not None:
        raise ReproError("pass either raw SQL or --report, not both")
    if args.report is not None:
        if args.report not in CANNED_REPORTS:
            known = ", ".join(sorted(CANNED_REPORTS))
            raise ReproError(f"unknown report {args.report!r}; known reports: {known}")
        sql = CANNED_REPORTS[args.report][1]
    else:
        sql = args.sql
    try:
        headers, rows = query_store(args.db, sql)
    except sqlite3.Error as exc:
        raise ReproError(f"SQL error: {exc}") from exc
    if args.csv:
        import csv

        writer = csv.writer(sys.stdout)
        writer.writerow(headers)
        writer.writerows(rows)
    else:
        print(format_table(headers, rows))
        print(f"({len(rows)} row{'s' if len(rows) != 1 else ''})")
    return 0


def _cmd_mutate(args: argparse.Namespace) -> int:
    from .service.client import Client

    def vertex(token: str):
        try:
            return int(token)
        except ValueError:
            return token

    adds = [(vertex(u), vertex(v)) for u, v in args.add]
    removes = [(vertex(u), vertex(v)) for u, v in args.remove]
    with Client.connect(args.host, args.port, timeout=args.timeout) as client:
        reply = client.mutate(args.graph, adds=adds, removes=removes, name=args.name)
    print(
        f"mutated {args.graph}: +{reply['adds']} -{reply['removes']} edges"
        f" -> n={reply['n']} m={reply['m']}"
    )
    print(f"digest: {reply['digest']}")
    print(f"parent: {reply['parent']}")
    return 0


def _cmd_stats(args: argparse.Namespace) -> int:
    graph = load_graph(args.path, fmt=args.format)
    summary = graph_stats(graph)
    for key, value in summary.as_dict().items():
        print(f"{key}: {value}")
    return 0


def _cmd_generate(args: argparse.Namespace) -> int:
    os.makedirs(args.output_dir, exist_ok=True)
    instances = get_collection(args.collection, scale=args.scale)
    for inst in instances:
        path = os.path.join(args.output_dir, f"{inst.name}.edges")
        write_edge_list(inst.graph, path)
        print(f"wrote {inst.describe()} -> {path}")
    return 0


def _cmd_gamma(args: argparse.Namespace) -> int:
    print(f"{'k':>3}  {'gamma_k (kDC)':>14}  {'sigma_k (MADEC+)':>17}")
    for row in complexity_comparison(list(range(args.max_k + 1))):
        print(f"{row.k:>3}  {row.gamma_k:>14.6f}  {row.sigma_k:>17.6f}")
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    # Imported lazily: every other sub-command works without the service
    # machinery, and keeping the import here keeps their startup unchanged.
    import signal
    import threading

    from .core.config import SolverConfig
    from .service import ServiceServer, run_server

    config = SolverConfig(backend=args.backend, engine=args.engine, workers=args.workers)
    server = ServiceServer(
        host=args.host,
        port=args.port,
        config=config,
        max_concurrency=args.max_concurrency,
        default_deadline=args.default_deadline,
        max_pending=args.max_pending,
        drain_timeout=args.drain_timeout,
        state_dir=args.state_dir,
    )
    if args.state_dir is not None:
        counters = server.service.stats()
        print(
            f"state restored from {args.state_dir}: "
            f"{counters['restored_graphs']} graph(s), "
            f"{counters['restored_prepared']} prepared artifact(s), "
            f"{counters['restored_results']} cached result(s)",
            flush=True,
        )
    for path in args.preload:
        graph = load_graph(path, fmt=args.format)
        digest = server.service.store.add(graph, name=os.path.basename(path))
        print(f"preloaded {path}: digest {digest}", flush=True)

    def _graceful_stop(signum, _frame) -> None:
        # shutdown() joins the serve loop; calling it from the signal frame
        # (which interrupts that very loop) would deadlock — stop from a
        # helper thread, then run_server's cleanup drains the service.
        print(f"received signal {signum}; draining and shutting down", flush=True)
        threading.Thread(target=server.shutdown, daemon=True).start()

    for sig in (signal.SIGTERM, signal.SIGINT):
        try:
            signal.signal(sig, _graceful_stop)
        except ValueError:  # pragma: no cover - non-main thread (embedded use)
            pass
    try:
        run_server(server)
    except KeyboardInterrupt:  # pragma: no cover - direct ^C fallback
        server.server_close()
    return 0


_COMMANDS = {
    "solve": _cmd_solve,
    "compare": _cmd_compare,
    "top-r": _cmd_top_r,
    "properties": _cmd_properties,
    "experiments": _cmd_experiments,
    "stats": _cmd_stats,
    "generate": _cmd_generate,
    "gamma": _cmd_gamma,
    "serve": _cmd_serve,
    "mutate": _cmd_mutate,
}


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns a process exit code.

    Library failures (unreadable or malformed graph files, invalid
    parameters, service errors — anything deriving from
    :class:`~repro.exceptions.ReproError` or :class:`OSError`) are reported
    as a one-line ``error: ...`` on stderr with exit code 2; Ctrl-C exits
    130 (the conventional ``128 + SIGINT``) instead of dumping a traceback.
    """
    parser = build_parser()
    args = parser.parse_args(argv)
    handler = _COMMANDS[args.command]
    try:
        return handler(args)
    except KeyboardInterrupt:
        print("interrupted", file=sys.stderr)
        return 130
    except (ReproError, OSError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
