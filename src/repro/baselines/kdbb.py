"""KDBB-style baseline solver [Gao et al., AAAI 2022].

KDBB is the practically fastest prior algorithm the paper compares against.
This reimplementation includes the ingredients its authors describe:

* preprocessing of the input graph by the degree rule (``(lb - k)``-core,
  RR5) and the common-neighbour rule (``(lb - k + 1)``-truss, RR6);
* the degree-sequence upper bound UB3 together with the min-degree bound UB2;
* per-node degree-based pruning (RR5) and validity pruning (RR1);
* a degeneracy-suffix initial solution.

What it deliberately lacks — and what separates it from kDC — is the
non-fully-adjacent-first branching rule BR, the greedy RR2 additions, the
improved coloring bound UB1, and the RR3/RR4 reductions.  Its time complexity
is therefore the trivial O*(2^n) even though it performs well in practice.
"""

from __future__ import annotations

from typing import List, Optional

from ..core.bounds import ub2_min_degree, ub3_degree_sequence
from ..core.heuristics import degen
from ..core.instance import SearchState
from ..core.reductions import apply_rr1, apply_rr5, preprocess_graph
from ..graphs.graph import Graph
from .common import BaselineBranchAndBound

__all__ = ["KDBBSolver"]


class KDBBSolver(BaselineBranchAndBound):
    """Exact maximum k-defective clique solver in the style of KDBB."""

    name = "KDBB"

    def _initial_solution(self, graph: Graph, k: int) -> List[int]:
        return list(degen(graph, k))

    def _preprocess(self, graph: Graph, k: int, lower_bound: int) -> None:
        preprocess_graph(graph, k, lower_bound, use_rr5=True, use_rr6=True)

    def _reduce(self, state: SearchState, lower_bound: int) -> bool:
        apply_rr1(state, self._stats)
        _, prune = apply_rr5(state, lower_bound, self._stats)
        return prune

    def _upper_bound(self, state: SearchState) -> int:
        return min(ub3_degree_sequence(state), ub2_min_degree(state))

    def _select_branching_vertex(self, state: SearchState) -> Optional[int]:
        if not state.candidates:
            return None
        # Branch on the candidate with the fewest non-neighbours in S (the
        # "most promising" vertex), breaking ties towards higher degree —
        # a common strategy in maximisation branch-and-bound, but without the
        # complexity guarantee that BR provides.
        non_nbrs = state.non_nbrs_in_solution
        degree = state.degree_in_graph
        return min(state.candidates, key=lambda v: (non_nbrs[v], -degree[v], v))
