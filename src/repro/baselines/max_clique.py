"""Exact maximum clique solver (stand-in for MC-BRB in Tables 5 and 6).

The paper uses MC-BRB [Chang, KDD 2019] only to obtain the maximum clique
size of each benchmark graph, so that the maximum k-defective clique size can
be compared against it.  Any exact solver serves that purpose; this module
implements the classic Tomita-style branch-and-bound with a greedy-coloring
bound, seeded by a degeneracy-ordering clique heuristic.
"""

from __future__ import annotations

import sys
import time
from typing import Dict, List, Optional, Set

from ..core.result import SearchStats, SolveResult
from ..exceptions import BudgetExceededError
from ..graphs.degeneracy import degeneracy_ordering
from ..graphs.graph import Graph, Vertex

__all__ = ["MaxCliqueSolver", "maximum_clique", "maximum_clique_size"]

_RECURSION_MARGIN = 256


class MaxCliqueSolver:
    """Exact maximum clique solver (branch and bound with coloring bound)."""

    name = "MaxClique"

    def __init__(self, time_limit: Optional[float] = None) -> None:
        self.time_limit = time_limit
        self._deadline: Optional[float] = None
        self._stats = SearchStats()
        self._best: List[int] = []
        self._adj: List[Set[int]] = []

    def solve(self, graph: Graph) -> SolveResult:
        """Return a maximum clique of ``graph`` as a :class:`SolveResult` (k = 0)."""
        stats = SearchStats()
        self._stats = stats
        start = time.perf_counter()
        self._deadline = start + self.time_limit if self.time_limit is not None else None

        if graph.num_vertices == 0:
            stats.elapsed_seconds = time.perf_counter() - start
            return SolveResult(clique=[], size=0, k=0, optimal=True, algorithm=self.name, stats=stats)

        relabeled, _, to_label = graph.relabel()
        self._adj = [set(relabeled.neighbors(v)) for v in range(relabeled.num_vertices)]

        # Heuristic seed: greedily extend a clique along the degeneracy ordering.
        decomposition = degeneracy_ordering(relabeled)
        self._best = self._greedy_clique(decomposition.ordering)
        stats.initial_solution_size = len(self._best)

        optimal = True
        old_limit = sys.getrecursionlimit()
        depth_needed = relabeled.num_vertices + _RECURSION_MARGIN
        if old_limit < depth_needed:
            sys.setrecursionlimit(depth_needed)
        try:
            candidates = list(range(relabeled.num_vertices))
            self._expand([], candidates, depth=1)
        except BudgetExceededError:
            optimal = False
        finally:
            if sys.getrecursionlimit() != old_limit:
                sys.setrecursionlimit(old_limit)

        stats.elapsed_seconds = time.perf_counter() - start
        labels = [to_label[v] for v in self._best]
        try:
            clique = sorted(labels)
        except TypeError:
            clique = labels
        return SolveResult(clique=clique, size=len(clique), k=0, optimal=optimal,
                           algorithm=self.name, stats=stats)

    # ------------------------------------------------------------------ #
    def _greedy_clique(self, ordering: List[int]) -> List[int]:
        best: List[int] = []
        for start in reversed(ordering):
            clique = [start]
            clique_set = {start}
            for v in reversed(ordering):
                if v in clique_set:
                    continue
                if all(v in self._adj[u] for u in clique):
                    clique.append(v)
                    clique_set.add(v)
            if len(clique) > len(best):
                best = clique
            break  # one pass from the last-ordered vertex is enough as a seed
        return best

    def _check_budget(self) -> None:
        if self._deadline is not None and time.perf_counter() > self._deadline:
            raise BudgetExceededError("time limit exceeded")

    def _color_sort(self, candidates: List[int]) -> List[int]:
        """Greedy coloring of the candidate subgraph; returns per-candidate bounds.

        Candidates are reordered in place so that colours are non-decreasing;
        the returned list gives, aligned with the reordered candidates, the
        colour index + 1 of each vertex (an upper bound on the clique size
        obtainable from that vertex and its predecessors).
        """
        color_classes: List[List[int]] = []
        for v in sorted(candidates, key=lambda u: -len(self._adj[u])):
            placed = False
            for cls in color_classes:
                if all(v not in self._adj[u] for u in cls):
                    cls.append(v)
                    placed = True
                    break
            if not placed:
                color_classes.append([v])
        reordered: List[int] = []
        bounds: List[int] = []
        for color, cls in enumerate(color_classes, start=1):
            for v in cls:
                reordered.append(v)
                bounds.append(color)
        candidates[:] = reordered
        return bounds

    def _expand(self, clique: List[int], candidates: List[int], depth: int) -> None:
        self._check_budget()
        self._stats.nodes += 1
        if depth > self._stats.max_depth:
            self._stats.max_depth = depth

        if not candidates:
            if len(clique) > len(self._best):
                self._best = list(clique)
                self._stats.improvements += 1
            return

        bounds = self._color_sort(candidates)
        # Process candidates in reverse (highest colour first).
        for i in range(len(candidates) - 1, -1, -1):
            if len(clique) + bounds[i] <= len(self._best):
                self._stats.prunes_by_bound += 1
                return
            v = candidates[i]
            clique.append(v)
            adj_v = self._adj[v]
            next_candidates = [u for u in candidates[:i] if u in adj_v]
            self._expand(clique, next_candidates, depth + 1)
            clique.pop()


def maximum_clique(graph: Graph, time_limit: Optional[float] = None) -> List[Vertex]:
    """Return a maximum clique of ``graph`` as a list of vertex labels."""
    return MaxCliqueSolver(time_limit=time_limit).solve(graph).clique


def maximum_clique_size(graph: Graph, time_limit: Optional[float] = None) -> int:
    """Return the maximum clique size ω(G)."""
    return len(maximum_clique(graph, time_limit=time_limit))
