"""Shared branch-and-bound scaffolding for the baseline solvers.

The baselines (MADEC+-style and KDBB-style) are *separate algorithms* from
kDC — different bounds, different branching, no RR2/BR — but they share the
mechanics of a maximisation branch-and-bound over :class:`SearchState`
instances.  This module provides that scaffolding; each baseline subclass
plugs in its own reduction, bounding and branching policies.
"""

from __future__ import annotations

import sys
import time
from abc import ABC, abstractmethod
from typing import List, Optional

from ..core.defective import validate_k
from ..core.instance import SearchState
from ..core.result import SearchStats, SolveResult
from ..exceptions import BudgetExceededError
from ..graphs.graph import Graph

__all__ = ["BaselineBranchAndBound"]

_RECURSION_MARGIN = 256


class BaselineBranchAndBound(ABC):
    """Template for an exact maximum k-defective clique branch-and-bound solver.

    Subclasses implement the policy hooks:

    * :meth:`_initial_solution` — heuristic lower bound (may return ``[]``);
    * :meth:`_preprocess` — shrink the working graph given the lower bound;
    * :meth:`_reduce` — per-node reductions (must at least enforce validity
      of additions, i.e. RR1); returns ``True`` to discard the node;
    * :meth:`_upper_bound` — per-node upper bound;
    * :meth:`_select_branching_vertex` — choose the next branching vertex.
    """

    #: human-readable algorithm name recorded in results
    name: str = "baseline"

    def __init__(
        self,
        time_limit: Optional[float] = None,
        node_limit: Optional[int] = None,
    ) -> None:
        self.time_limit = time_limit
        self.node_limit = node_limit
        self._stats = SearchStats()
        self._best: List[int] = []
        self._deadline: Optional[float] = None

    # ------------------------------------------------------------------ #
    # Policy hooks
    # ------------------------------------------------------------------ #
    @abstractmethod
    def _initial_solution(self, graph: Graph, k: int) -> List[int]:
        """Return a heuristic k-defective clique of ``graph`` (integer labels)."""

    def _preprocess(self, graph: Graph, k: int, lower_bound: int) -> None:
        """Shrink ``graph`` in place using the initial lower bound (default: no-op)."""

    @abstractmethod
    def _reduce(self, state: SearchState, lower_bound: int) -> bool:
        """Apply per-node reductions; return ``True`` to prune the node."""

    @abstractmethod
    def _upper_bound(self, state: SearchState) -> int:
        """Return an upper bound on the largest solution inside ``state``."""

    @abstractmethod
    def _select_branching_vertex(self, state: SearchState) -> Optional[int]:
        """Return the branching vertex (``None`` if no candidate remains)."""

    # ------------------------------------------------------------------ #
    # Driver
    # ------------------------------------------------------------------ #
    def solve(self, graph: Graph, k: int) -> SolveResult:
        """Compute a maximum k-defective clique of ``graph`` with this baseline."""
        validate_k(k)
        stats = SearchStats()
        self._stats = stats
        start = time.perf_counter()
        self._deadline = start + self.time_limit if self.time_limit is not None else None

        if graph.num_vertices == 0:
            stats.elapsed_seconds = time.perf_counter() - start
            return SolveResult(clique=[], size=0, k=k, optimal=True, algorithm=self.name, stats=stats)

        relabeled, _, to_label = graph.relabel()
        self._best = list(self._initial_solution(relabeled, k))
        stats.initial_solution_size = len(self._best)

        working = relabeled.copy()
        before_v, before_e = working.num_vertices, working.num_edges
        self._preprocess(working, k, len(self._best))
        stats.preprocess_removed_vertices = before_v - working.num_vertices
        stats.preprocess_removed_edges = before_e - working.num_edges

        optimal = True
        if working.num_vertices > 0:
            adj: List[set] = [set() for _ in range(relabeled.num_vertices)]
            for v in working:
                adj[v] = set(working.neighbors(v))
            state = SearchState.initial(adj, k, vertices=working.vertex_set())
            depth_needed = len(state.candidates) + _RECURSION_MARGIN
            old_limit = sys.getrecursionlimit()
            if old_limit < depth_needed:
                sys.setrecursionlimit(depth_needed)
            try:
                self._branch(state, depth=1)
            except BudgetExceededError:
                optimal = False
            finally:
                if sys.getrecursionlimit() != old_limit:
                    sys.setrecursionlimit(old_limit)

        stats.elapsed_seconds = time.perf_counter() - start
        labels = [to_label[v] for v in self._best]
        try:
            clique = sorted(labels)
        except TypeError:
            clique = labels
        return SolveResult(
            clique=clique,
            size=len(clique),
            k=k,
            optimal=optimal,
            algorithm=self.name,
            stats=stats,
        )

    # ------------------------------------------------------------------ #
    # Search
    # ------------------------------------------------------------------ #
    def _check_budget(self) -> None:
        if self._deadline is not None and time.perf_counter() > self._deadline:
            raise BudgetExceededError("time limit exceeded")
        if self.node_limit is not None and self._stats.nodes >= self.node_limit:
            raise BudgetExceededError("node limit exceeded")

    def _record(self, vertices: List[int]) -> None:
        if len(vertices) > len(self._best):
            self._best = list(vertices)
            self._stats.improvements += 1

    def _branch(self, state: SearchState, depth: int) -> None:
        self._check_budget()
        stats = self._stats
        stats.nodes += 1
        if depth > stats.max_depth:
            stats.max_depth = depth

        if self._reduce(state, len(self._best)):
            return

        if state.is_defective_clique():
            stats.leaves += 1
            self._record(state.graph_vertices())
            return

        ub = self._upper_bound(state)
        if ub <= len(self._best):
            stats.prunes_by_bound += 1
            return

        self._record(state.solution)

        vertex = self._select_branching_vertex(state)
        if vertex is None:
            return

        left = state.copy()
        left.add_to_solution(vertex)
        self._branch(left, depth + 1)

        state.remove_candidate(vertex)
        self._branch(state, depth + 1)
