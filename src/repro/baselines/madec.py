"""MADEC+-style baseline solver [Chen et al., Computers & OR 2021].

This reimplementation follows the description in the paper being reproduced:

* the upper bound is the **original** coloring bound, Equation (2) of the
  paper (each colour class may contribute up to ``⌊(1 + sqrt(8k+1)) / 2⌋``
  vertices), combined with the min-degree bound UB2 that the same authors
  proposed;
* branching picks an arbitrary candidate (highest degree in the instance
  graph) — there is no non-fully-adjacent-first rule, so left-branch chains
  can be up to ``2k + 1`` long, which is exactly why MADEC+'s branching
  factor is ``σ_k = γ_{2k}``;
* the only reductions are RR1 (needed for validity) and the degree-based RR5
  from the original MADEC+ paper; there is no RR2, RR3, RR4 or RR6.

The point of this baseline is to reproduce the *relative* behaviour reported
in Table 2: MADEC+ falls behind KDBB, which in turn falls behind kDC, and the
gap widens quickly with ``k``.
"""

from __future__ import annotations

from typing import List, Optional

from ..core.bounds import eq2_original_coloring, ub2_min_degree
from ..core.heuristics import degen
from ..core.instance import SearchState
from ..core.reductions import apply_rr1, apply_rr5
from ..graphs.graph import Graph
from .common import BaselineBranchAndBound

__all__ = ["MADECSolver"]


class MADECSolver(BaselineBranchAndBound):
    """Exact maximum k-defective clique solver in the style of MADEC+."""

    name = "MADEC"

    def _initial_solution(self, graph: Graph, k: int) -> List[int]:
        return list(degen(graph, k))

    def _reduce(self, state: SearchState, lower_bound: int) -> bool:
        apply_rr1(state, self._stats)
        _, prune = apply_rr5(state, lower_bound, self._stats)
        return prune

    def _upper_bound(self, state: SearchState) -> int:
        return min(eq2_original_coloring(state), ub2_min_degree(state))

    def _select_branching_vertex(self, state: SearchState) -> Optional[int]:
        if not state.candidates:
            return None
        degree = state.degree_in_graph
        return max(state.candidates, key=lambda v: (degree[v], -v))
