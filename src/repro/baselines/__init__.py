"""Baseline algorithms the paper compares against.

* :class:`MADECSolver` — MADEC+-style branch and bound (original coloring bound).
* :class:`KDBBSolver` — KDBB-style branch and bound (degree-sequence bound + preprocessing).
* :class:`MaxCliqueSolver` — exact maximum clique (for the Table 5–6 analyses).
* :func:`brute_force_maximum_defective_clique` — exhaustive ground truth for tests.
"""

from .brute_force import (
    brute_force_maximum_defective_clique,
    brute_force_maximum_size,
    enumerate_defective_cliques,
)
from .common import BaselineBranchAndBound
from .kdbb import KDBBSolver
from .madec import MADECSolver
from .max_clique import MaxCliqueSolver, maximum_clique, maximum_clique_size

__all__ = [
    "BaselineBranchAndBound",
    "MADECSolver",
    "KDBBSolver",
    "MaxCliqueSolver",
    "maximum_clique",
    "maximum_clique_size",
    "brute_force_maximum_defective_clique",
    "brute_force_maximum_size",
    "enumerate_defective_cliques",
]
