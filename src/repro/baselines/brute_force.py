"""Brute-force maximum k-defective clique solver (ground truth for tests).

The solver enumerates vertex subsets in decreasing size order and returns the
first subset that induces a k-defective clique.  Its running time is
exponential with large constants, so it is only intended for graphs with
roughly 20 vertices or fewer — exactly the sizes used by the correctness and
property-based tests that cross-check the branch-and-bound solvers.
"""

from __future__ import annotations

from itertools import combinations
from typing import Iterable, List, Optional

from ..core.defective import validate_k
from ..exceptions import InvalidParameterError
from ..graphs.graph import Graph, Vertex

__all__ = ["brute_force_maximum_defective_clique", "brute_force_maximum_size", "enumerate_defective_cliques"]

#: Refuse to brute-force graphs larger than this many vertices.
_MAX_BRUTE_FORCE_VERTICES = 24


def brute_force_maximum_defective_clique(graph: Graph, k: int) -> List[Vertex]:
    """Return a maximum k-defective clique by exhaustive search.

    Raises
    ------
    InvalidParameterError
        If the graph has more than 24 vertices (the search would be far too slow).
    """
    validate_k(k)
    n = graph.num_vertices
    if n > _MAX_BRUTE_FORCE_VERTICES:
        raise InvalidParameterError(
            f"brute force is limited to {_MAX_BRUTE_FORCE_VERTICES} vertices, got {n}"
        )
    if n == 0:
        return []
    vertices = graph.vertices()
    adjacency = {v: graph.neighbors(v) for v in vertices}
    for size in range(n, 0, -1):
        max_possible_missing = size * (size - 1) // 2
        if max_possible_missing <= k:
            # Any subset of this size works; return the first one.
            return list(vertices[:size])
        for subset in combinations(vertices, size):
            if _missing_within(subset, adjacency) <= k:
                return list(subset)
    return [vertices[0]]


def brute_force_maximum_size(graph: Graph, k: int) -> int:
    """Return only the size of a maximum k-defective clique (exhaustive search)."""
    return len(brute_force_maximum_defective_clique(graph, k))


def enumerate_defective_cliques(graph: Graph, k: int, min_size: int = 1) -> Iterable[List[Vertex]]:
    """Yield every k-defective clique of size at least ``min_size`` (exhaustive).

    Used by tests that need the complete solution landscape of a tiny graph.
    """
    validate_k(k)
    n = graph.num_vertices
    if n > _MAX_BRUTE_FORCE_VERTICES:
        raise InvalidParameterError(
            f"enumeration is limited to {_MAX_BRUTE_FORCE_VERTICES} vertices, got {n}"
        )
    vertices = graph.vertices()
    adjacency = {v: graph.neighbors(v) for v in vertices}
    for size in range(max(1, min_size), n + 1):
        for subset in combinations(vertices, size):
            if _missing_within(subset, adjacency) <= k:
                yield list(subset)


def _missing_within(subset, adjacency) -> int:
    missing = 0
    for i, u in enumerate(subset):
        nbrs = adjacency[u]
        for v in subset[i + 1:]:
            if v not in nbrs:
                missing += 1
    return missing
