"""Long-running solver service: prepare once, answer many queries.

The service layer turns the library's one-shot ``solve(graph, k)`` calls into
a query-serving pipeline built on the compile/execute split of
:mod:`repro.core.prepared`:

* :class:`~repro.service.store.GraphStore` — holds each graph once, keyed by
  its canonical :meth:`~repro.graphs.graph.Graph.content_digest`, and caches
  one :class:`~repro.core.prepared.PreparedInstance` per ``(graph, k,
  prepare-config)`` slot with single-flight deduplication;
* :class:`~repro.service.scheduler.SolverService` — an asynchronous request
  scheduler that batches ``(digest, k, budget)`` queries onto a bounded
  worker pool, coalesces identical in-flight requests, and answers repeated
  queries from a result cache keyed by ``(digest, k, algorithm, backend,
  engine)``;
* :mod:`~repro.service.server` / :mod:`~repro.service.client` — a stdlib
  JSON-lines TCP protocol (``repro serve``) and a :class:`Client` that
  speaks it either in-process (no socket, used by tests) or over a socket.

Every answer carries request-level statistics (``cache_hit``,
``prepare_ms``, ``queue_ms``, ``solve_ms``) in its
:class:`~repro.core.result.SearchStats`.

The layer is hardened for long-lived deployment: end-to-end request
deadlines (typed :class:`~repro.exceptions.DeadlineExceededError`),
admission control with fast-fail shedding
(:class:`~repro.exceptions.ServiceOverloadedError` carrying a
``retry_after`` hint), LRU-bounded caches, graceful drain on shutdown
(``close(drain_timeout=...)``), and client-side retry with exponential
backoff.  The deterministic fault-injection harness behind its chaos suite
lives in :mod:`repro.testing.chaos`.

State is optionally durable: attach a
:class:`~repro.service.persistence.ServicePersistence` (or pass
``state_dir`` to :class:`ServiceServer` / ``repro serve --state-dir``) and
graphs, prepared artifacts and the optimal-result cache survive crashes via
atomic snapshots plus a checksummed write-ahead journal, while decomposed
solves checkpoint per-subproblem progress
(:mod:`repro.core.checkpoint`) so a killed solve resumes instead of
restarting.

Graphs are also *dynamic*: the ``mutate`` op (``Client.mutate``) applies a
validated :class:`~repro.dynamic.delta.EdgeDelta` to a stored graph,
storing the successor under its own digest with a parent link (the chain is
WAL-journaled, so ``--state-dir`` restarts keep it), and the scheduler
answers solves on mutated graphs through an
:class:`~repro.dynamic.incremental.IncrementalSolver` — re-running only the
ego subproblems the deltas can have invalidated, exactly
(``stats()``: ``incremental_hits`` / ``anchors_reused`` /
``anchors_resolved``).
"""

from .client import Client
from .persistence import ServicePersistence
from .scheduler import SolverService
from .server import ServiceServer, handle_request, run_server
from .store import GraphStore

__all__ = [
    "Client",
    "GraphStore",
    "ServicePersistence",
    "ServiceServer",
    "SolverService",
    "handle_request",
    "run_server",
]
