"""Client for the solver service, in-process or over the JSON-lines socket.

One :class:`Client` class speaks both transports:

* ``Client(service=svc)`` dispatches straight into
  :func:`~repro.service.server.handle_request` with no socket — what tests
  and embedded callers use;
* ``Client.connect(host, port)`` opens a TCP connection to a ``repro
  serve`` process and sends the same payloads as JSON lines.

Either way the reply dictionaries are identical, because the socket server
routes through the very same ``handle_request``.

Failure handling is typed: an ``{"ok": false, "kind": ...}`` reply is
re-raised as the matching exception class
(:class:`~repro.exceptions.DeadlineExceededError`,
:class:`~repro.exceptions.ServiceOverloadedError` with its ``retry_after``,
:class:`~repro.exceptions.ServiceClosedError`; anything else as plain
:class:`~repro.exceptions.ServiceError`).  A socket read that exceeds the
per-request timeout raises :class:`~repro.exceptions.ClientTimeoutError`
and marks the client broken — on a line-oriented protocol a late reply
would be mis-paired with the next request, so reconnect instead of reusing
the connection.

Overload sheds are retryable: construct the client with ``max_retries > 0``
and idempotent operations (everything except ``shutdown``) retry
:class:`ServiceOverloadedError` replies with exponential backoff, full
jitter, and the service's ``retry_after`` estimate as the floor.
"""

from __future__ import annotations

import json
import logging
import random
import socket
import time
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..exceptions import (
    ClientTimeoutError,
    DeadlineExceededError,
    ServiceClosedError,
    ServiceError,
    ServiceOverloadedError,
)
from ..graphs.graph import Graph
from .scheduler import SolverService
from .server import handle_request

__all__ = ["Client"]

logger = logging.getLogger("repro.service.client")

#: Extra socket-read allowance on top of a solve's own deadline/time budget,
#: mirroring the server's reply grace so the client does not give up first.
_READ_GRACE_SECONDS = 10.0


class Client:
    """Talk to a :class:`SolverService`, in-process or across a socket.

    Replies are the protocol dictionaries documented in
    :mod:`repro.service.server`; every method raises the matching
    :class:`ServiceError` subclass when the service answers
    ``{"ok": false, ...}``.

    Parameters
    ----------
    service / sock:
        Exactly one of the two transports.
    request_timeout:
        Default socket-read timeout per request, seconds (``None`` = wait
        forever).  Solve calls automatically extend it to cover their own
        ``deadline``/``time_limit`` budget.
    max_retries:
        How many times idempotent requests retry after an overload shed
        (default 0 = fail fast).
    backoff_base / backoff_cap:
        Exponential-backoff schedule for those retries, seconds; each delay
        is jittered and floored at the service's ``retry_after`` estimate.
    """

    def __init__(
        self,
        service: Optional[SolverService] = None,
        sock: Optional[socket.socket] = None,
        *,
        request_timeout: Optional[float] = 30.0,
        max_retries: int = 0,
        backoff_base: float = 0.1,
        backoff_cap: float = 2.0,
        rng: Optional[random.Random] = None,
        sleep: Callable[[float], None] = time.sleep,
    ) -> None:
        if (service is None) == (sock is None):
            raise ServiceError("pass exactly one of 'service' (in-process) or 'sock'")
        self._service = service
        self._sock = sock
        self._rfile = sock.makefile("rb") if sock is not None else None
        self._broken = False
        self.request_timeout = request_timeout
        self.max_retries = max_retries
        self.backoff_base = backoff_base
        self.backoff_cap = backoff_cap
        self._rng = rng if rng is not None else random.Random()
        self._sleep = sleep

    @classmethod
    def connect(
        cls,
        host: str,
        port: int,
        timeout: Optional[float] = 30.0,
        **kwargs,
    ) -> "Client":
        """Open a socket client to a running ``repro serve`` process.

        ``timeout`` bounds the connection attempt and doubles as the default
        ``request_timeout`` unless one is passed explicitly.
        """
        sock = socket.create_connection((host, port), timeout=timeout)
        kwargs.setdefault("request_timeout", timeout)
        return cls(sock=sock, **kwargs)

    # ------------------------------------------------------------------ #
    def request(self, payload: Dict, *, timeout: Optional[float] = None) -> Dict:
        """Send one raw protocol request and return the raw reply.

        ``timeout`` overrides the client's ``request_timeout`` for this
        request only.  A socket read that times out raises
        :class:`ClientTimeoutError` and poisons the connection.
        """
        if self._service is not None:
            return handle_request(self._service, payload)
        if self._broken:
            raise ServiceError(
                "connection is broken after a previous timeout; open a new client"
            )
        effective = timeout if timeout is not None else self.request_timeout
        try:
            self._sock.settimeout(effective)
            self._sock.sendall(json.dumps(payload).encode("utf-8") + b"\n")
            line = self._rfile.readline()
        except socket.timeout as exc:
            # A late reply would pair with the *next* request on this line
            # protocol; refuse to reuse the connection.
            self._broken = True
            logger.warning("request timed out after %.2fs; marking client broken", effective)
            raise ClientTimeoutError(
                f"no reply within {effective:.2f}s (op={payload.get('op')!r}); "
                "the connection can no longer be trusted — reconnect"
            ) from exc
        if not line:
            raise ServiceError("server closed the connection")
        return json.loads(line)

    @staticmethod
    def _error_from(reply: Dict) -> ServiceError:
        """Rebuild the typed exception a ``{"ok": false}`` reply describes."""
        kind = reply.get("kind", "error")
        message = reply.get("error", "request failed")
        if kind == "DeadlineExceededError":
            return DeadlineExceededError(message)
        if kind == "ServiceOverloadedError":
            return ServiceOverloadedError(
                message, retry_after=float(reply.get("retry_after", 1.0))
            )
        if kind == "ServiceClosedError":
            return ServiceClosedError(message)
        return ServiceError(f"{kind}: {message}")

    def _checked(
        self, payload: Dict, *, timeout: Optional[float] = None, retryable: bool = True
    ) -> Dict:
        """Send a request; raise typed errors, retrying overload sheds.

        Only overload sheds are retried — and only for idempotent requests
        (``retryable=True``, everything except ``shutdown``): a shed request
        was never admitted, so retrying cannot duplicate work.
        """
        attempt = 0
        while True:
            reply = self.request(payload, timeout=timeout)
            if reply.get("ok"):
                return reply
            exc = self._error_from(reply)
            if (
                retryable
                and isinstance(exc, ServiceOverloadedError)
                and attempt < self.max_retries
            ):
                delay = min(self.backoff_cap, self.backoff_base * (2 ** attempt))
                delay *= 0.5 + self._rng.random()  # jitter: 0.5x .. 1.5x
                delay = max(delay, exc.retry_after)
                logger.info(
                    "overloaded (attempt %d/%d); retrying in %.2fs",
                    attempt + 1, self.max_retries, delay,
                )
                self._sleep(delay)
                attempt += 1
                continue
            raise exc

    # ------------------------------------------------------------------ #
    def ping(self) -> bool:
        """Liveness probe."""
        return bool(self._checked({"op": "ping"}).get("pong"))

    def add_graph(
        self,
        graph_or_edges,
        vertices: Optional[Sequence] = None,
        name: Optional[str] = None,
    ) -> str:
        """Register a graph (a :class:`Graph` or an edge list) and return its digest."""
        if isinstance(graph_or_edges, Graph):
            edges: List[Tuple] = list(graph_or_edges.iter_edges())
            if vertices is None:
                vertices = sorted(
                    graph_or_edges.vertex_set(), key=lambda v: (str(type(v)), str(v))
                )
        else:
            edges = list(graph_or_edges)
        payload: Dict = {"op": "add-graph", "edges": [list(e) for e in edges]}
        if vertices is not None:
            payload["vertices"] = list(vertices)
        if name is not None:
            payload["name"] = name
        return self._checked(payload)["digest"]

    def mutate(
        self,
        graph: str,
        adds: Sequence[Tuple] = (),
        removes: Sequence[Tuple] = (),
        *,
        name: Optional[str] = None,
    ) -> Dict:
        """Apply an edge delta to a stored graph; return the mutate reply.

        ``graph`` is the predecessor's digest or name.  The reply carries
        the successor's ``digest`` (a first-class stored graph — solve it
        like any other; the service answers incrementally from the
        predecessor's solve when it can), its ``parent`` digest, and the
        successor's ``n``/``m``.  ``name`` optionally labels the successor,
        so a stream of mutations can keep one stable name whose latest
        bearer :meth:`mutate` resolves each time.
        """
        payload: Dict = {
            "op": "mutate",
            "graph": graph,
            "adds": [list(e) for e in adds],
            "removes": [list(e) for e in removes],
        }
        if name is not None:
            payload["name"] = name
        return self._checked(payload)

    def solve(
        self,
        digest: str,
        k: int,
        *,
        algorithm: str = "kDC",
        time_limit: Optional[float] = None,
        node_limit: Optional[int] = None,
        deadline: Optional[float] = None,
        timeout: Optional[float] = None,
    ) -> Dict:
        """Solve one query; returns the full reply (size, clique, optimal, stats).

        ``deadline`` is the end-to-end request budget enforced by the
        service (typed :class:`DeadlineExceededError` on expiry);
        ``time_limit`` bounds only the solve phase and yields a partial
        result instead.  The socket-read ``timeout`` is derived from
        whichever budget is set (plus a grace) when not given explicitly,
        so a budgeted solve never trips the client timeout first.
        """
        payload: Dict = {"op": "solve", "digest": digest, "k": k, "algorithm": algorithm}
        if time_limit is not None:
            payload["time_limit"] = time_limit
        if node_limit is not None:
            payload["node_limit"] = node_limit
        if deadline is not None:
            payload["deadline"] = deadline
        if timeout is None:
            budget = deadline if deadline is not None else time_limit
            if budget is not None:
                timeout = budget + _READ_GRACE_SECONDS
                if self.request_timeout is not None:
                    timeout = max(timeout, self.request_timeout)
        return self._checked(payload, timeout=timeout)

    def stats(self) -> Dict:
        """Service and store counters."""
        return self._checked({"op": "stats"})["stats"]

    def shutdown(self) -> bool:
        """Ask a socket server to stop (in-process services just close)."""
        if self._service is not None:
            self._service.close()
            return True
        reply = self.request({"op": "shutdown"})
        return bool(reply.get("shutting_down"))

    def close(self) -> None:
        """Close the socket (no-op for in-process clients)."""
        if self._rfile is not None:
            self._rfile.close()
        if self._sock is not None:
            self._sock.close()

    def __enter__(self) -> "Client":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()
