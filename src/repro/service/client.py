"""Client for the solver service, in-process or over the JSON-lines socket.

One :class:`Client` class speaks both transports:

* ``Client(service=svc)`` dispatches straight into
  :func:`~repro.service.server.handle_request` with no socket — what tests
  and embedded callers use;
* ``Client.connect(host, port)`` opens a TCP connection to a ``repro
  serve`` process and sends the same payloads as JSON lines.

Either way the reply dictionaries are identical, because the socket server
routes through the very same ``handle_request``.
"""

from __future__ import annotations

import json
import socket
from typing import Dict, List, Optional, Sequence, Tuple

from ..exceptions import ServiceError
from ..graphs.graph import Graph
from .scheduler import SolverService
from .server import handle_request

__all__ = ["Client"]


class Client:
    """Talk to a :class:`SolverService`, in-process or across a socket.

    Replies are the protocol dictionaries documented in
    :mod:`repro.service.server`; every method raises :class:`ServiceError`
    when the service answers ``{"ok": false, ...}``.
    """

    def __init__(
        self,
        service: Optional[SolverService] = None,
        sock: Optional[socket.socket] = None,
    ) -> None:
        if (service is None) == (sock is None):
            raise ServiceError("pass exactly one of 'service' (in-process) or 'sock'")
        self._service = service
        self._sock = sock
        self._rfile = sock.makefile("rb") if sock is not None else None

    @classmethod
    def connect(cls, host: str, port: int, timeout: Optional[float] = 30.0) -> "Client":
        """Open a socket client to a running ``repro serve`` process."""
        sock = socket.create_connection((host, port), timeout=timeout)
        return cls(sock=sock)

    # ------------------------------------------------------------------ #
    def request(self, payload: Dict) -> Dict:
        """Send one raw protocol request and return the raw reply."""
        if self._service is not None:
            return handle_request(self._service, payload)
        self._sock.sendall(json.dumps(payload).encode("utf-8") + b"\n")
        line = self._rfile.readline()
        if not line:
            raise ServiceError("server closed the connection")
        return json.loads(line)

    def _checked(self, payload: Dict) -> Dict:
        reply = self.request(payload)
        if not reply.get("ok"):
            raise ServiceError(
                f"{reply.get('kind', 'error')}: {reply.get('error', 'request failed')}"
            )
        return reply

    # ------------------------------------------------------------------ #
    def ping(self) -> bool:
        """Liveness probe."""
        return bool(self._checked({"op": "ping"}).get("pong"))

    def add_graph(
        self,
        graph_or_edges,
        vertices: Optional[Sequence] = None,
        name: Optional[str] = None,
    ) -> str:
        """Register a graph (a :class:`Graph` or an edge list) and return its digest."""
        if isinstance(graph_or_edges, Graph):
            edges: List[Tuple] = list(graph_or_edges.iter_edges())
            if vertices is None:
                vertices = sorted(
                    graph_or_edges.vertex_set(), key=lambda v: (str(type(v)), str(v))
                )
        else:
            edges = list(graph_or_edges)
        payload: Dict = {"op": "add-graph", "edges": [list(e) for e in edges]}
        if vertices is not None:
            payload["vertices"] = list(vertices)
        if name is not None:
            payload["name"] = name
        return self._checked(payload)["digest"]

    def solve(
        self,
        digest: str,
        k: int,
        *,
        algorithm: str = "kDC",
        time_limit: Optional[float] = None,
        node_limit: Optional[int] = None,
    ) -> Dict:
        """Solve one query; returns the full reply (size, clique, optimal, stats)."""
        payload: Dict = {"op": "solve", "digest": digest, "k": k, "algorithm": algorithm}
        if time_limit is not None:
            payload["time_limit"] = time_limit
        if node_limit is not None:
            payload["node_limit"] = node_limit
        return self._checked(payload)

    def stats(self) -> Dict:
        """Service and store counters."""
        return self._checked({"op": "stats"})["stats"]

    def shutdown(self) -> bool:
        """Ask a socket server to stop (in-process services just close)."""
        if self._service is not None:
            self._service.close()
            return True
        reply = self.request({"op": "shutdown"})
        return bool(reply.get("shutting_down"))

    def close(self) -> None:
        """Close the socket (no-op for in-process clients)."""
        if self._rfile is not None:
            self._rfile.close()
        if self._sock is not None:
            self._sock.close()

    def __enter__(self) -> "Client":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()
