"""Durable on-disk state for the solver service: snapshots + journals.

:class:`ServicePersistence` owns one *state directory* and gives the service
three kinds of durable state, each with crash semantics chosen for its write
pattern:

``graphs/<digest>.pkl`` and ``prepared/<token>.pkl``
    **Digest-addressed snapshots** of stored graphs and prepared artifacts,
    written via write-temp/fsync/atomic-rename
    (:func:`~repro.core.checkpoint.atomic_write_bytes`).  Content-addressed
    files are written at most once and never modified, so a crash can only
    leave behind a stale ``*.tmp.*`` file — which loading ignores.

``results.wal``
    A **checksummed append-only journal** of optimal-result cache entries
    (one pickled ``(key, SolveResult)`` per record, fsynced per append —
    optimal completions are rare events).  On startup the journal is
    replayed; a truncated or checksum-corrupt tail (the normal residue of a
    crash mid-append) is discarded with a warning and the file truncated
    back to its valid prefix, never a fatal error.

``checkpoints/<token>.wal``
    One :class:`~repro.core.checkpoint.SolveCheckpoint` journal per
    in-progress decomposed solve, keyed by the solve's identity token.  The
    journal survives a crash, is consumed by the resumed solve, and is
    deleted when the solve completes optimally.

``deltas.wal``
    A **checksummed append-only journal** of edge-delta mutations (one
    pickled ``(parent_digest, child_digest, name, adds, removes)`` per
    record, fsynced per append).  Replayed on startup by
    :class:`~repro.service.store.GraphStore` to re-link the digest chain —
    and to rebuild any successor graph whose own snapshot a crash cut off,
    since the WAL is append-ordered and a whole chain re-materializes from
    one surviving ancestor snapshot.  Same damaged-tail truncation policy
    as ``results.wal``.

Every load path is defensive: an unreadable snapshot or journal entry is
skipped with a warning — durable state accelerates a restart, it must never
prevent one.  Write paths *raise* (the callers in
:mod:`repro.service.store` / :mod:`repro.service.scheduler` catch and warn,
so a full disk degrades the service to in-memory operation instead of
killing requests).
"""

from __future__ import annotations

import hashlib
import io
import logging
import os
import pickle
import threading
from typing import Any, Dict, Iterator, List, Optional, Tuple

from ..core.checkpoint import (
    SolveCheckpoint,
    append_record,
    atomic_write_bytes,
    checkpoint_meta,
    checkpoint_token,
    read_records,
)
from ..core.config import SolverConfig
from ..core.prepared import PreparedInstance
from ..core.result import SolveResult
from ..graphs.graph import Graph
from ..testing import chaos as faults

__all__ = ["ServicePersistence"]

logger = logging.getLogger("repro.service.persistence")


def _prepared_token(key: Tuple) -> str:
    """Filename-safe token of a prepared-artifact cache key."""
    return hashlib.sha256(repr(key).encode("utf-8")).hexdigest()[:32]


class ServicePersistence:
    """Filesystem-backed durability for one solver service instance.

    Thread-safe.  One instance owns one state directory; sharing a directory
    between two live services is not supported (the last writer wins on the
    results journal).

    Parameters
    ----------
    root:
        State directory; created (with its subdirectories) when absent.
    """

    def __init__(self, root: str) -> None:
        self.root = root
        self.graphs_dir = os.path.join(root, "graphs")
        self.prepared_dir = os.path.join(root, "prepared")
        self.checkpoints_dir = os.path.join(root, "checkpoints")
        self.results_path = os.path.join(root, "results.wal")
        self.deltas_path = os.path.join(root, "deltas.wal")
        for directory in (self.graphs_dir, self.prepared_dir, self.checkpoints_dir):
            os.makedirs(directory, exist_ok=True)
        self._lock = threading.Lock()
        self._results_fh = None
        self._results_validated = False
        self._deltas_fh = None
        self._deltas_validated = False
        #: Solve-identity tokens with a live checkpoint handle: two
        #: concurrent solves of the same identity (same digest/k/config but
        #: e.g. different budgets, so they do not coalesce upstream) must
        #: not interleave appends into one journal.
        self._active_checkpoints: set = set()
        self._closed = False

    # ------------------------------------------------------------------ #
    # Graph snapshots
    # ------------------------------------------------------------------ #
    def _graph_path(self, digest: str) -> str:
        return os.path.join(self.graphs_dir, f"{digest}.pkl")

    def save_graph(self, digest: str, name: Optional[str], graph: Graph) -> None:
        """Persist one graph snapshot (idempotent: content-addressed)."""
        path = self._graph_path(digest)
        if os.path.exists(path):
            return
        blob = pickle.dumps((name, graph), protocol=pickle.HIGHEST_PROTOCOL)
        atomic_write_bytes(path, blob)

    def load_graphs(self) -> Iterator[Tuple[str, Optional[str], Graph]]:
        """Yield ``(digest, name, graph)`` for every readable graph snapshot."""
        for filename in sorted(os.listdir(self.graphs_dir)):
            if not filename.endswith(".pkl"):
                continue  # stale *.tmp.* files from a crash mid-publish
            path = os.path.join(self.graphs_dir, filename)
            faults.fire("persist.replay", path=path)
            try:
                with open(path, "rb") as fh:
                    name, graph = pickle.load(fh)
                if not isinstance(graph, Graph):
                    raise TypeError(f"expected a Graph, got {type(graph).__name__}")
            except Exception as exc:
                logger.warning("skipping unreadable graph snapshot %s: %s", path, exc)
                continue
            yield filename[: -len(".pkl")], name, graph

    # ------------------------------------------------------------------ #
    # Prepared-artifact snapshots
    # ------------------------------------------------------------------ #
    def save_prepared(self, key: Tuple, artifact: PreparedInstance) -> None:
        """Persist one prepared artifact under its cache key's token."""
        path = os.path.join(self.prepared_dir, f"{_prepared_token(key)}.pkl")
        if os.path.exists(path):
            return
        blob = pickle.dumps((key, artifact), protocol=pickle.HIGHEST_PROTOCOL)
        atomic_write_bytes(path, blob)

    def load_prepared(self) -> Iterator[Tuple[Tuple, PreparedInstance]]:
        """Yield ``(key, artifact)`` for every readable prepared snapshot."""
        for filename in sorted(os.listdir(self.prepared_dir)):
            if not filename.endswith(".pkl"):
                continue
            path = os.path.join(self.prepared_dir, filename)
            faults.fire("persist.replay", path=path)
            try:
                with open(path, "rb") as fh:
                    key, artifact = pickle.load(fh)
                if not isinstance(artifact, PreparedInstance):
                    raise TypeError(f"expected a PreparedInstance, got {type(artifact).__name__}")
            except Exception as exc:
                logger.warning("skipping unreadable prepared snapshot %s: %s", path, exc)
                continue
            yield tuple(key), artifact

    # ------------------------------------------------------------------ #
    # Optimal-result journal
    # ------------------------------------------------------------------ #
    def replay_results(self) -> List[Tuple[Tuple, SolveResult]]:
        """Replay the results journal, truncating any damaged tail.

        Unreadable records *within* the valid prefix (e.g. written by an
        incompatible version) are skipped with a warning; the damaged-tail
        truncation makes later appends land on a valid record boundary.
        """
        with self._lock:
            scan = read_records(self.results_path)
            if scan.damaged:
                try:
                    with open(self.results_path, "rb+") as fh:
                        fh.truncate(scan.valid_bytes)
                except OSError as exc:
                    logger.warning(
                        "could not truncate damaged results journal %s: %s",
                        self.results_path, exc,
                    )
            self._results_validated = True
        entries: List[Tuple[Tuple, SolveResult]] = []
        for raw in scan.records:
            try:
                key, result = pickle.loads(raw)
                if not isinstance(result, SolveResult):
                    raise TypeError(f"expected a SolveResult, got {type(result).__name__}")
            except Exception as exc:
                logger.warning("skipping unreadable results-journal record: %s", exc)
                continue
            entries.append((tuple(key), result))
        return entries

    def append_result(self, key: Tuple, result: SolveResult) -> None:
        """Append one optimal result to the journal (fsynced)."""
        with self._lock:
            if self._closed:
                return
            if not self._results_validated:
                # Never append after an unvalidated (possibly damaged) tail.
                scan = read_records(self.results_path)
                if scan.damaged:
                    with open(self.results_path, "rb+") as fh:
                        fh.truncate(scan.valid_bytes)
                self._results_validated = True
            if self._results_fh is None:
                self._results_fh = open(self.results_path, "ab")
            append_record(
                self._results_fh,
                pickle.dumps((key, result), protocol=pickle.HIGHEST_PROTOCOL),
            )
            self._results_fh.flush()
            os.fsync(self._results_fh.fileno())

    def rewrite_results(self, entries: List[Tuple[Tuple, SolveResult]]) -> None:
        """Atomically replace the results journal with ``entries`` (compaction)."""
        buffer = io.BytesIO()
        for key, result in entries:
            append_record(buffer, pickle.dumps((key, result), protocol=pickle.HIGHEST_PROTOCOL))
        with self._lock:
            if self._results_fh is not None:
                self._results_fh.close()
                self._results_fh = None
            atomic_write_bytes(self.results_path, buffer.getvalue())
            self._results_validated = True

    # ------------------------------------------------------------------ #
    # Edge-delta journal
    # ------------------------------------------------------------------ #
    def replay_deltas(self) -> List[Tuple[str, str, Optional[str], Tuple, Tuple]]:
        """Replay the delta journal, truncating any damaged tail.

        Yields ``(parent_digest, child_digest, name, adds, removes)`` in
        append (i.e. mutation) order; unreadable records within the valid
        prefix are skipped with a warning.
        """
        with self._lock:
            scan = read_records(self.deltas_path)
            if scan.damaged:
                try:
                    with open(self.deltas_path, "rb+") as fh:
                        fh.truncate(scan.valid_bytes)
                except OSError as exc:
                    logger.warning(
                        "could not truncate damaged delta journal %s: %s",
                        self.deltas_path, exc,
                    )
            self._deltas_validated = True
        entries: List[Tuple[str, str, Optional[str], Tuple, Tuple]] = []
        for raw in scan.records:
            try:
                parent, child, name, adds, removes = pickle.loads(raw)
            except Exception as exc:
                logger.warning("skipping unreadable delta-journal record: %s", exc)
                continue
            entries.append((parent, child, name, tuple(adds), tuple(removes)))
        return entries

    def append_delta(self, parent: str, child: str, name: Optional[str], delta) -> None:
        """Append one mutation link to the delta journal (fsynced)."""
        with self._lock:
            if self._closed:
                return
            if not self._deltas_validated:
                scan = read_records(self.deltas_path)
                if scan.damaged:
                    with open(self.deltas_path, "rb+") as fh:
                        fh.truncate(scan.valid_bytes)
                self._deltas_validated = True
            if self._deltas_fh is None:
                self._deltas_fh = open(self.deltas_path, "ab")
            append_record(
                self._deltas_fh,
                pickle.dumps(
                    (parent, child, name, tuple(delta.adds), tuple(delta.removes)),
                    protocol=pickle.HIGHEST_PROTOCOL,
                ),
            )
            self._deltas_fh.flush()
            os.fsync(self._deltas_fh.fileno())

    # ------------------------------------------------------------------ #
    # Solve checkpoints
    # ------------------------------------------------------------------ #
    def open_checkpoint(
        self, digest: str, k: int, algorithm: str, config: SolverConfig
    ) -> Optional[SolveCheckpoint]:
        """Open (resuming if present) the checkpoint journal for one solve.

        Returns ``None`` when another live solve of the same identity
        already owns the journal — the second solve simply runs
        un-checkpointed rather than corrupting the first one's journal.
        """
        meta = checkpoint_meta(digest, k, algorithm, config)
        token = checkpoint_token(meta)
        with self._lock:
            if self._closed or token in self._active_checkpoints:
                return None
            self._active_checkpoints.add(token)

        def release() -> None:
            with self._lock:
                self._active_checkpoints.discard(token)

        path = os.path.join(self.checkpoints_dir, f"{token}.wal")
        try:
            return SolveCheckpoint(path, meta, on_release=release)
        except Exception:
            release()
            raise

    # ------------------------------------------------------------------ #
    def close(self) -> None:
        """Flush and close the journal handle (snapshots need no teardown)."""
        with self._lock:
            self._closed = True
            for attr in ("_results_fh", "_deltas_fh"):
                fh = getattr(self, attr)
                if fh is None:
                    continue
                try:
                    fh.flush()
                    os.fsync(fh.fileno())
                except OSError:
                    pass
                try:
                    fh.close()
                except OSError:
                    pass
                setattr(self, attr, None)
