"""Asynchronous request scheduler batching solve queries onto a worker pool.

:class:`SolverService` accepts many ``(digest, k, budget)`` queries and
answers them with :class:`~repro.core.result.SolveResult` objects, reusing
work at three levels:

1. **prepared artifacts** — every query against the same ``(graph, k,
   prepare-config)`` slot shares one
   :class:`~repro.core.prepared.PreparedInstance` from the
   :class:`~repro.service.store.GraphStore`;
2. **result cache** — once a query has been answered *optimally*, repeated
   queries for the same ``(digest, k, algorithm, backend, engine)`` key are
   served from the cache without re-entering the search engine (the answer
   carries ``stats.cache_hit = True``).  Budget-limited (non-optimal)
   results are never cached;
3. **in-flight coalescing** — identical queries submitted while the first is
   still running attach to its computation instead of solving again.

Concurrency is bounded by a :class:`~concurrent.futures.ThreadPoolExecutor`
of ``max_concurrency`` workers.  The branch-and-bound itself is pure Python
(GIL-bound), so threads mostly interleave; true CPU parallelism comes from
``SolverConfig.workers >= 2``, which farms each solve's ego subproblems to a
process pool — the two levels compose.
"""

from __future__ import annotations

import copy
import threading
import time
from concurrent.futures import Future, ThreadPoolExecutor
from dataclasses import replace
from typing import Dict, Optional, Tuple, Union

from ..core.config import VARIANT_NAMES, SolverConfig, variant_config
from ..core.result import SolveResult
from ..core.solver import KDCSolver
from ..exceptions import InvalidParameterError, ServiceClosedError
from ..graphs.graph import Graph
from .store import GraphStore

__all__ = ["SolverService"]

#: Result-cache key: optimal sizes depend only on the instance and the
#: algorithm, but node/time profiles (and hence *which* optimum is found)
#: depend on the backend and engine, so both are part of the key — one
#: service answering mixed backend queries never conflates their results.
_ResultKey = Tuple[str, int, str, str, str]

#: In-flight coalescing key: budgets participate, because a tightly-budgeted
#: query must not be answered by attaching to a generously-budgeted run
#: (or vice versa) — only *identical* requests coalesce.
_RequestKey = Tuple[str, int, str, Optional[float], Optional[int]]


class SolverService:
    """Batching scheduler over a :class:`GraphStore` and a worker pool.

    Parameters
    ----------
    store:
        Graph store to serve from; a fresh private one when omitted.
    config:
        Execute configuration for ``algorithm="kDC"`` queries (backend,
        engine, workers, ...).  Named variant queries inherit its
        backend/engine/workers knobs on top of the variant's feature flags.
    max_concurrency:
        Upper bound on simultaneously executing solves (default 4).
    """

    def __init__(
        self,
        store: Optional[GraphStore] = None,
        config: Optional[SolverConfig] = None,
        max_concurrency: int = 4,
    ) -> None:
        if max_concurrency < 1:
            raise InvalidParameterError("max_concurrency must be a positive integer")
        self.store = store if store is not None else GraphStore()
        self.config = config if config is not None else SolverConfig()
        self.max_concurrency = max_concurrency
        self._executor = ThreadPoolExecutor(
            max_workers=max_concurrency, thread_name_prefix="repro-solve"
        )
        self._lock = threading.Lock()
        self._results: Dict[_ResultKey, SolveResult] = {}
        self._inflight: Dict[_RequestKey, Future] = {}
        self._requests = 0
        self._solves = 0
        self._cache_hits = 0
        self._coalesced = 0
        self._closed = False

    # ------------------------------------------------------------------ #
    # Configuration plumbing
    # ------------------------------------------------------------------ #
    def _solver_for(self, algorithm: str) -> KDCSolver:
        """Build the solver answering ``algorithm`` queries.

        ``"kDC"`` uses the service configuration as-is; other named variants
        take their feature flags from :func:`variant_config` and inherit the
        service's execute-side knobs, so e.g. a bitset-trail service answers
        ``kDC/UB1`` queries with the bitset trail engine too.
        """
        if algorithm == "kDC":
            return KDCSolver(self.config, name="kDC")
        if algorithm not in VARIANT_NAMES:
            raise InvalidParameterError(
                f"unknown algorithm {algorithm!r}; expected one of {', '.join(VARIANT_NAMES)}"
            )
        cfg = variant_config(algorithm)
        cfg = replace(
            cfg,
            backend=self.config.backend,
            engine=self.config.engine,
            workers=self.config.workers,
            decompose_threshold=self.config.decompose_threshold,
            recolor_period=self.config.recolor_period,
        )
        return KDCSolver(cfg, name=algorithm)

    def _result_key(self, digest: str, k: int, algorithm: str) -> _ResultKey:
        return (digest, k, algorithm, self.config.backend, self.config.engine)

    # ------------------------------------------------------------------ #
    # Submission
    # ------------------------------------------------------------------ #
    def submit(
        self,
        digest: str,
        k: int,
        *,
        algorithm: str = "kDC",
        time_limit: Optional[float] = None,
        node_limit: Optional[int] = None,
    ) -> "Future[SolveResult]":
        """Enqueue a solve query; returns a future resolving to its result.

        Raises
        ------
        UnknownGraphError
            Immediately (not through the future) when ``digest`` is not in
            the store.
        ServiceClosedError
            When the service has been closed — including a submit racing a
            concurrent :meth:`close` (the closed check and the executor
            hand-off happen under one lock, so a request either lands before
            the shutdown or fails with this catchable error, never with the
            executor's raw ``RuntimeError``).
        """
        self.store.get(digest)  # fail fast on unknown digests
        self._solver_for(algorithm)  # fail fast on unknown algorithms
        request_key: _RequestKey = (digest, k, algorithm, time_limit, node_limit)
        submitted = time.perf_counter()
        with self._lock:
            if self._closed:
                raise ServiceClosedError()
            self._requests += 1
            cached = self._results.get(self._result_key(digest, k, algorithm))
            if cached is not None:
                self._cache_hits += 1
                done: "Future[SolveResult]" = Future()
                done.set_result(self._cache_hit_copy(cached))
                return done
            running = self._inflight.get(request_key)
            if running is not None:
                self._coalesced += 1
                return self._follow(running)
            try:
                future = self._executor.submit(
                    self._run, digest, k, algorithm, time_limit, node_limit, submitted
                )
            except RuntimeError as exc:  # executor shut down out-of-band
                raise ServiceClosedError() from exc
            self._inflight[request_key] = future
        future.add_done_callback(lambda _f: self._forget(request_key))
        return future

    def solve(
        self,
        graph_or_digest: Union[Graph, str],
        k: int,
        *,
        algorithm: str = "kDC",
        time_limit: Optional[float] = None,
        node_limit: Optional[int] = None,
    ) -> SolveResult:
        """Synchronous convenience: submit one query and wait for its answer.

        A :class:`~repro.graphs.graph.Graph` argument is added to the store
        first (a no-op when already present).
        """
        if isinstance(graph_or_digest, Graph):
            digest = self.store.add(graph_or_digest)
        else:
            digest = graph_or_digest
        return self.submit(
            digest, k, algorithm=algorithm, time_limit=time_limit, node_limit=node_limit
        ).result()

    # ------------------------------------------------------------------ #
    # Internals
    # ------------------------------------------------------------------ #
    def _forget(self, request_key: _RequestKey) -> None:
        with self._lock:
            self._inflight.pop(request_key, None)

    def _follow(self, running: "Future[SolveResult]") -> "Future[SolveResult]":
        """Attach a coalesced request to an in-flight computation.

        The follower receives a cache-hit-marked copy (its answer cost no
        engine work of its own); a failed primary propagates its exception.
        """
        follower: "Future[SolveResult]" = Future()

        def _chain(primary: "Future[SolveResult]") -> None:
            exc = primary.exception()
            if exc is not None:
                follower.set_exception(exc)
            else:
                follower.set_result(self._cache_hit_copy(primary.result()))

        running.add_done_callback(_chain)
        return follower

    def _run(
        self,
        digest: str,
        k: int,
        algorithm: str,
        time_limit: Optional[float],
        node_limit: Optional[int],
        submitted: float,
    ) -> SolveResult:
        started = time.perf_counter()
        solver = self._solver_for(algorithm)
        prepared = self.store.prepared(digest, k, solver.config)
        prepare_ms = (time.perf_counter() - started) * 1000.0
        result = solver.solve_prepared(
            prepared, k, time_limit=time_limit, node_limit=node_limit
        )
        result.stats.queue_ms = (started - submitted) * 1000.0
        result.stats.prepare_ms = prepare_ms
        with self._lock:
            self._solves += 1
            if result.optimal:
                # Cache a private copy, never the object handed to the
                # caller: a caller mutating its answer (clique list, stats)
                # must not corrupt every later cache hit.
                self._results.setdefault(
                    self._result_key(digest, k, algorithm), self._copy_result(result)
                )
        return result

    @staticmethod
    def _copy_result(result: SolveResult) -> SolveResult:
        """A deep-enough independent copy of ``result``.

        The clique list and the stats object (including its mutable
        ``reductions`` dict) are what callers can reach and mutate; both are
        copied.  Used on the cache's write side (so the cached entry is
        isolated from the first caller) and by :meth:`_cache_hit_copy` on
        its read side (so no two callers share an answer either).
        """
        return SolveResult(
            clique=list(result.clique),
            size=result.size,
            k=result.k,
            optimal=result.optimal,
            algorithm=result.algorithm,
            stats=copy.deepcopy(result.stats),
        )

    @classmethod
    def _cache_hit_copy(cls, result: SolveResult) -> SolveResult:
        """An independent copy of a cached answer, marked ``cache_hit``.

        Search counters (nodes, prunes, ...) are preserved — they describe
        the run that produced the answer — while the request-level timings
        are zeroed: this request spent no measurable time preparing or
        searching.
        """
        out = cls._copy_result(result)
        out.stats.cache_hit = True
        out.stats.queue_ms = 0.0
        out.stats.prepare_ms = 0.0
        out.stats.solve_ms = 0.0
        out.stats.elapsed_seconds = 0.0
        return out

    # ------------------------------------------------------------------ #
    # Lifecycle and introspection
    # ------------------------------------------------------------------ #
    def stats(self) -> Dict[str, object]:
        """Service counters plus the underlying store's counters."""
        with self._lock:
            data: Dict[str, object] = {
                "requests": self._requests,
                "solves": self._solves,
                "cache_hits": self._cache_hits,
                "coalesced": self._coalesced,
                "max_concurrency": self.max_concurrency,
            }
        data.update(self.store.stats())
        return data

    def close(self) -> None:
        """Finish in-flight work and shut the worker pool down.

        The closed flag is flipped under the submission lock: any submit
        holding the lock finishes its executor hand-off first, and every
        later submit sees the flag and raises
        :class:`~repro.exceptions.ServiceClosedError`.
        """
        with self._lock:
            self._closed = True
        self._executor.shutdown(wait=True)

    def __enter__(self) -> "SolverService":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()
