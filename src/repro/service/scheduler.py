"""Asynchronous request scheduler batching solve queries onto a worker pool.

:class:`SolverService` accepts many ``(digest, k, budget)`` queries and
answers them with :class:`~repro.core.result.SolveResult` objects, reusing
work at three levels:

1. **prepared artifacts** — every query against the same ``(graph, k,
   prepare-config)`` slot shares one
   :class:`~repro.core.prepared.PreparedInstance` from the
   :class:`~repro.service.store.GraphStore`;
2. **result cache** — once a query has been answered *optimally*, repeated
   queries for the same ``(digest, k, algorithm, backend, engine)`` key are
   served from the cache without re-entering the search engine (the answer
   carries ``stats.cache_hit = True``).  Budget-limited (non-optimal)
   results are never cached, and the cache is LRU-bounded
   (``result_cache_size``) so a long-lived service cannot grow without
   bound;
3. **in-flight coalescing** — identical queries submitted while the first is
   still running attach to its computation instead of solving again.

Concurrency is bounded by a :class:`~concurrent.futures.ThreadPoolExecutor`
of ``max_concurrency`` workers.  The branch-and-bound itself is pure Python
(GIL-bound), so threads mostly interleave; true CPU parallelism comes from
``SolverConfig.workers >= 2``, which farms each solve's ego subproblems to a
process pool — the two levels compose.

Hardening
---------
Three mechanisms keep the service healthy under overload and failure:

* **Deadlines.**  Every request may carry a ``deadline`` (seconds,
  end-to-end; ``default_deadline`` supplies one when the client does not).
  The deadline covers queue wait, artifact preparation and the solve: a
  request still queued at expiry is cancelled by a watchdog thread without
  ever entering the engine, the solve phase runs with its time budget
  clamped to the remaining deadline, and a deadline miss resolves the
  future with a typed
  :class:`~repro.exceptions.DeadlineExceededError` instead of blocking.
* **Admission control.**  ``max_pending`` bounds the submitted-but-not-yet-
  executing queue; beyond it, submissions fast-fail with
  :class:`~repro.exceptions.ServiceOverloadedError` carrying a
  ``retry_after`` estimate derived from the backlog and an exponentially
  weighted average solve time.  Cache hits and coalesced requests are
  always admitted — they cost no engine work.
* **Graceful drain.**  ``close(drain_timeout=...)`` stops admissions,
  waits for in-flight work up to the timeout, then cancels: queued requests
  fail with :class:`~repro.exceptions.ServiceClosedError`, running solves
  are cooperatively interrupted (via the engine's per-node cancel poll) and
  answer with their best-so-far partial result.  Every request is answered
  or typed-failed; none is silently dropped.
"""

from __future__ import annotations

import copy
import logging
import threading
import time
from collections import OrderedDict
from concurrent.futures import Future, ThreadPoolExecutor, wait as futures_wait
from dataclasses import replace
from typing import TYPE_CHECKING, Dict, List, Optional, Set, Tuple, Union

from ..core.config import VARIANT_NAMES, SolverConfig, variant_config
from ..core.result import SolveResult
from ..core.solver import KDCSolver
from ..dynamic.delta import EdgeDelta
from ..dynamic.incremental import IncrementalSolver
from ..exceptions import (
    DeadlineExceededError,
    InvalidParameterError,
    ServiceClosedError,
    ServiceOverloadedError,
    UnknownGraphError,
)
from ..graphs.graph import Graph
from ..testing import chaos as faults
from .store import GraphStore

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .persistence import ServicePersistence

__all__ = ["SolverService"]

logger = logging.getLogger("repro.service.scheduler")

#: Result-cache key: optimal sizes depend only on the instance and the
#: algorithm, but node/time profiles (and hence *which* optimum is found)
#: depend on the backend and engine, so both are part of the key — one
#: service answering mixed backend queries never conflates their results.
_ResultKey = Tuple[str, int, str, str, str]

#: In-flight coalescing key: budgets (and the deadline) participate, because
#: a tightly-budgeted query must not be answered by attaching to a
#: generously-budgeted run (or vice versa) — only *identical* requests
#: coalesce.
_RequestKey = Tuple[str, int, str, Optional[float], Optional[int], Optional[float]]

#: Fallback per-solve seconds estimate for ``retry_after`` before the EWMA
#: has seen a completed solve.
_DEFAULT_SOLVE_ESTIMATE_SECONDS = 0.2

#: LRU cap on per-``(k, algorithm)`` incremental-solver states.  Each state
#: holds two copies of one graph plus its decomposition — a handful of hot
#: query shapes is the working set worth that footprint.
_MAX_DYNAMIC_STATES = 8

#: Smoothing factor of the solve-time EWMA behind ``retry_after``.
_EWMA_ALPHA = 0.2

#: Staleness half-life of the EWMA solve-time estimate: while the service
#: is idle, the estimate's excess over the default decays by half every
#: this many seconds, so one slow solve long ago cannot inflate shed-reply
#: ``retry_after`` hints forever (the default acts as the floor).
_EWMA_STALE_HALF_LIFE_SECONDS = 30.0

#: Upper bound the watchdog sleeps between deadline scans even when no
#: deadline is near — bounds how stale its view of a closing service can be.
_WATCHDOG_MAX_WAIT_SECONDS = 0.5

#: After a drain deadline expires and running solves are cooperatively
#: cancelled, how long ``close`` still waits for them to notice (they poll
#: the cancel event at every branch-and-bound node, so this is generous).
_DRAIN_CANCEL_GRACE_SECONDS = 5.0


class _Tracked:
    """Book-keeping of one admitted request.

    ``outer`` is the future handed to the caller; ``inner`` the executor's.
    Decoupling them lets the deadline watchdog and the drain path cancel a
    queued ``inner`` and resolve ``outer`` with a *typed* error instead of a
    bare ``CancelledError``.  ``cancel_reason`` is set by whichever path
    cancels, *before* calling ``inner.cancel()``, so the settle callback
    (which runs synchronously inside ``cancel()``) can read it.
    """

    __slots__ = ("outer", "inner", "deadline_at", "cancel", "started", "cancel_reason")

    def __init__(self, deadline_at: Optional[float]) -> None:
        self.outer: "Future[SolveResult]" = Future()
        self.inner: Optional[Future] = None
        self.deadline_at = deadline_at
        self.cancel = threading.Event()
        self.started = False
        self.cancel_reason: Optional[BaseException] = None


class SolverService:
    """Batching scheduler over a :class:`GraphStore` and a worker pool.

    Parameters
    ----------
    store:
        Graph store to serve from; a fresh private one when omitted.
    config:
        Execute configuration for ``algorithm="kDC"`` queries (backend,
        engine, workers, ...).  Named variant queries inherit its
        backend/engine/workers knobs on top of the variant's feature flags.
    max_concurrency:
        Upper bound on simultaneously executing solves (default 4).
    max_pending:
        Admission-control bound on the submitted-but-not-executing queue;
        beyond it submissions raise :class:`ServiceOverloadedError`
        (``None`` = unbounded, the default).
    default_deadline:
        End-to-end deadline (seconds) applied to every request that does
        not carry its own (``None`` = no default).
    result_cache_size:
        LRU cap on the optimal-result cache (default 1024; ``None`` =
        unbounded).
    persistence:
        Optional :class:`~repro.service.persistence.ServicePersistence`
        making the service durable: on construction the optimal-result
        journal is replayed into the cache (and, when ``store`` is omitted,
        the private store is built over the same persistence so graph and
        prepared-artifact snapshots restore too); afterwards every optimal
        result is journaled and every decomposed solve checkpoints its
        subproblem progress, so a killed service restarted on the same
        state directory answers warm and resumes interrupted solves instead
        of recomputing from zero.  All persistence I/O is best-effort: a
        failing disk degrades the service to in-memory operation with a
        warning, it never fails a request.
    """

    def __init__(
        self,
        store: Optional[GraphStore] = None,
        config: Optional[SolverConfig] = None,
        max_concurrency: int = 4,
        max_pending: Optional[int] = None,
        default_deadline: Optional[float] = None,
        result_cache_size: Optional[int] = 1024,
        persistence: Optional["ServicePersistence"] = None,
    ) -> None:
        if max_concurrency < 1:
            raise InvalidParameterError("max_concurrency must be a positive integer")
        if max_pending is not None and max_pending < 1:
            raise InvalidParameterError("max_pending must be a positive integer or None")
        if default_deadline is not None and default_deadline <= 0:
            raise InvalidParameterError("default_deadline must be positive or None")
        if result_cache_size is not None and result_cache_size < 1:
            raise InvalidParameterError("result_cache_size must be a positive integer or None")
        self._persistence = persistence
        self.store = store if store is not None else GraphStore(persistence=persistence)
        self.config = config if config is not None else SolverConfig()
        self.max_concurrency = max_concurrency
        self.max_pending = max_pending
        self.default_deadline = default_deadline
        self.result_cache_size = result_cache_size
        self._executor = ThreadPoolExecutor(
            max_workers=max_concurrency, thread_name_prefix="repro-solve"
        )
        self._lock = threading.Lock()
        self._deadline_cond = threading.Condition(self._lock)
        self._results: "OrderedDict[_ResultKey, SolveResult]" = OrderedDict()
        self._inflight: Dict[_RequestKey, "Future[SolveResult]"] = {}
        self._tracked: Set[_Tracked] = set()
        self._watchdog: Optional[threading.Thread] = None
        # Incremental solving over mutated graphs: one IncrementalSolver per
        # hot (k, algorithm) shape, advanced delta-by-delta when a solve
        # targets a descendant of its tracked digest.  Guarded by its own
        # lock so a (potentially long) incremental re-solve never blocks
        # submissions, stats or the watchdog.
        self._dynamic: "OrderedDict[Tuple[int, str], IncrementalSolver]" = OrderedDict()
        self._dynamic_lock = threading.Lock()
        self._requests = 0
        self._solves = 0
        self._cache_hits = 0
        self._coalesced = 0
        self._queued = 0
        self._shed = 0
        self._deadline_expired = 0
        self._drain_cancelled = 0
        self._result_evictions = 0
        self._restored_results = 0
        self._incremental_hits = 0
        self._anchors_reused = 0
        self._anchors_resolved = 0
        self._ewma_solve_seconds = 0.0
        self._ewma_updated = time.monotonic()
        self._closed = False
        if persistence is not None:
            self._replay_results()

    def _replay_results(self) -> None:
        """Warm the result cache from the persistence journal (never fatal)."""
        try:
            entries = self._persistence.replay_results()
        except Exception:
            logger.warning("replaying the results journal failed; starting cold",
                           exc_info=True)
            return
        kept: "OrderedDict[_ResultKey, SolveResult]" = OrderedDict()
        for key, result in entries:
            if len(key) != 5 or not result.optimal:
                continue
            kept[key] = result
            kept.move_to_end(key)
        if self.result_cache_size is not None:
            while len(kept) > self.result_cache_size:
                kept.popitem(last=False)
        self._results = kept
        self._restored_results = len(kept)
        if len(kept) != len(entries):
            # Journal had duplicates, damage or more entries than the cache
            # keeps: compact it to exactly what was restored.
            try:
                self._persistence.rewrite_results(list(kept.items()))
            except Exception:
                logger.warning("compacting the results journal failed", exc_info=True)

    # ------------------------------------------------------------------ #
    # Configuration plumbing
    # ------------------------------------------------------------------ #
    def _solver_for(self, algorithm: str) -> KDCSolver:
        """Build the solver answering ``algorithm`` queries.

        ``"kDC"`` uses the service configuration as-is; other named variants
        take their feature flags from :func:`variant_config` and inherit the
        service's execute-side knobs, so e.g. a bitset-trail service answers
        ``kDC/UB1`` queries with the bitset trail engine too.
        """
        if algorithm == "kDC":
            return KDCSolver(self.config, name="kDC")
        if algorithm not in VARIANT_NAMES:
            raise InvalidParameterError(
                f"unknown algorithm {algorithm!r}; expected one of {', '.join(VARIANT_NAMES)}"
            )
        cfg = variant_config(algorithm)
        cfg = replace(
            cfg,
            backend=self.config.backend,
            engine=self.config.engine,
            workers=self.config.workers,
            decompose_threshold=self.config.decompose_threshold,
            recolor_period=self.config.recolor_period,
        )
        return KDCSolver(cfg, name=algorithm)

    def _result_key(self, digest: str, k: int, algorithm: str) -> _ResultKey:
        return (digest, k, algorithm, self.config.backend, self.config.engine)

    # ------------------------------------------------------------------ #
    # Submission
    # ------------------------------------------------------------------ #
    def submit(
        self,
        digest: str,
        k: int,
        *,
        algorithm: str = "kDC",
        time_limit: Optional[float] = None,
        node_limit: Optional[int] = None,
        deadline: Optional[float] = None,
    ) -> "Future[SolveResult]":
        """Enqueue a solve query; returns a future resolving to its result.

        Parameters beyond the query itself:

        deadline:
            End-to-end budget in seconds for this request (queue wait +
            prepare + solve).  Defaults to the service's
            ``default_deadline``.  On expiry the future fails with
            :class:`DeadlineExceededError` — a request still queued is
            cancelled without entering the engine; a running solve is
            clamped to the remaining time.  Contrast ``time_limit``, which
            bounds only the solve phase and yields a partial
            (``optimal=False``) result rather than an error.

        Raises
        ------
        UnknownGraphError
            Immediately (not through the future) when ``digest`` is not in
            the store.
        ServiceOverloadedError
            Immediately, when admission control sheds the request because
            the pending queue is at ``max_pending``.  Carries
            ``retry_after``.
        ServiceClosedError
            When the service has been closed — including a submit racing a
            concurrent :meth:`close` (the closed check and the executor
            hand-off happen under one lock, so a request either lands before
            the shutdown or fails with this catchable error, never with the
            executor's raw ``RuntimeError``).
        """
        self.store.get(digest)  # fail fast on unknown digests
        self._solver_for(algorithm)  # fail fast on unknown algorithms
        if deadline is None:
            deadline = self.default_deadline
        if deadline is not None and deadline <= 0:
            raise InvalidParameterError("deadline must be positive")
        deadline_at = time.monotonic() + deadline if deadline is not None else None
        request_key: _RequestKey = (digest, k, algorithm, time_limit, node_limit, deadline)
        submitted = time.perf_counter()
        with self._lock:
            if self._closed:
                raise ServiceClosedError()
            self._requests += 1
            cached = self._results.get(self._result_key(digest, k, algorithm))
            if cached is not None:
                self._results.move_to_end(self._result_key(digest, k, algorithm))
                self._cache_hits += 1
                done: "Future[SolveResult]" = Future()
                done.set_result(self._cache_hit_copy(cached))
                return done
            running = self._inflight.get(request_key)
            if running is not None:
                self._coalesced += 1
                return self._follow(running)
            if self.max_pending is not None and self._queued >= self.max_pending:
                self._shed += 1
                retry_after = self._retry_after_locked()
                logger.warning(
                    "shedding request (digest=%s k=%d queue_depth=%d retry_after=%.2fs)",
                    digest[:12], k, self._queued, retry_after,
                )
                raise ServiceOverloadedError(
                    retry_after=retry_after, queue_depth=self._queued
                )
            entry = _Tracked(deadline_at)
            try:
                entry.inner = self._executor.submit(
                    self._run, entry, digest, k, algorithm,
                    time_limit, node_limit, deadline_at, deadline, submitted,
                )
            except RuntimeError as exc:  # executor shut down out-of-band
                raise ServiceClosedError() from exc
            self._queued += 1
            self._tracked.add(entry)
            self._inflight[request_key] = entry.outer
            if deadline_at is not None:
                self._ensure_watchdog_locked()
                self._deadline_cond.notify_all()
        entry.inner.add_done_callback(lambda inner: self._settle(entry, request_key, inner))
        return entry.outer

    def mutate(
        self,
        ref: str,
        adds=(),
        removes=(),
        name: Optional[str] = None,
    ) -> Dict[str, object]:
        """Apply an edge delta to a stored graph; return the successor's info.

        ``ref`` is a digest or a graph name (see
        :meth:`GraphStore.resolve`).  The successor is stored under its own
        content digest with a parent link, so a later solve of it can be
        answered incrementally from the predecessor's solve.  Returns
        ``{"digest", "parent", "n", "m", "adds", "removes"}``.

        Raises :class:`~repro.exceptions.UnknownGraphError` for an unknown
        ``ref``, the delta's own validation errors
        (:class:`~repro.exceptions.InvalidParameterError`,
        :class:`~repro.exceptions.EdgeNotFoundError`,
        :class:`~repro.exceptions.SelfLoopError`) when it does not describe
        a real transition, and :class:`ServiceClosedError` after close.
        """
        with self._lock:
            if self._closed:
                raise ServiceClosedError()
        digest = self.store.resolve(ref)
        delta = EdgeDelta(adds=adds, removes=removes)
        successor = self.store.apply_delta(digest, delta, name=name)
        graph = self.store.get(successor)
        return {
            "digest": successor,
            "parent": digest,
            "n": graph.num_vertices,
            "m": graph.num_edges,
            "adds": len(delta.adds),
            "removes": len(delta.removes),
        }

    def solve(
        self,
        graph_or_digest: Union[Graph, str],
        k: int,
        *,
        algorithm: str = "kDC",
        time_limit: Optional[float] = None,
        node_limit: Optional[int] = None,
        deadline: Optional[float] = None,
    ) -> SolveResult:
        """Synchronous convenience: submit one query and wait for its answer.

        A :class:`~repro.graphs.graph.Graph` argument is added to the store
        first (a no-op when already present).
        """
        if isinstance(graph_or_digest, Graph):
            digest = self.store.add(graph_or_digest)
        else:
            digest = graph_or_digest
        return self.submit(
            digest, k, algorithm=algorithm, time_limit=time_limit,
            node_limit=node_limit, deadline=deadline,
        ).result()

    # ------------------------------------------------------------------ #
    # Admission control internals
    # ------------------------------------------------------------------ #
    def _retry_after_locked(self) -> float:
        """Estimate (seconds) until capacity frees up, from backlog x EWMA solve time.

        The EWMA only updates when a solve completes, so without correction
        one pathologically slow solve would inflate every shed reply until
        the *next* completion — which overload may be actively preventing.
        The estimate's excess over the cold-start default therefore decays
        with the time since the last completion
        (:data:`_EWMA_STALE_HALF_LIFE_SECONDS` half-life), flooring at the
        default instead of at the stale measurement.
        """
        estimate = self._ewma_solve_seconds or _DEFAULT_SOLVE_ESTIMATE_SECONDS
        if estimate > _DEFAULT_SOLVE_ESTIMATE_SECONDS:
            idle = max(0.0, time.monotonic() - self._ewma_updated)
            estimate = _DEFAULT_SOLVE_ESTIMATE_SECONDS + (
                estimate - _DEFAULT_SOLVE_ESTIMATE_SECONDS
            ) * 0.5 ** (idle / _EWMA_STALE_HALF_LIFE_SECONDS)
        backlog = max(1, len(self._tracked))
        return min(30.0, max(0.05, backlog * estimate / self.max_concurrency))

    # ------------------------------------------------------------------ #
    # Deadline watchdog
    # ------------------------------------------------------------------ #
    def _ensure_watchdog_locked(self) -> None:
        if self._watchdog is None:
            self._watchdog = threading.Thread(
                target=self._watchdog_loop, name="repro-deadline", daemon=True
            )
            self._watchdog.start()

    def _watchdog_loop(self) -> None:
        """Cancel queued requests whose deadline expired, with a typed error.

        Only *queued* (not yet started) requests are the watchdog's job —
        a running solve already has its time budget clamped to the deadline
        and resolves itself.  Cancellation happens outside the lock because
        ``Future.cancel`` runs the settle callback synchronously.
        """
        while True:
            with self._lock:
                if self._closed and not self._tracked:
                    return
                now = time.monotonic()
                expired: List[_Tracked] = []
                next_deadline: Optional[float] = None
                for entry in self._tracked:
                    if entry.deadline_at is None or entry.started:
                        continue
                    if entry.deadline_at <= now:
                        expired.append(entry)
                        entry.deadline_at = None  # handled; never re-scanned
                    elif next_deadline is None or entry.deadline_at < next_deadline:
                        next_deadline = entry.deadline_at
                if not expired:
                    timeout = _WATCHDOG_MAX_WAIT_SECONDS
                    if next_deadline is not None:
                        timeout = min(timeout, max(0.0, next_deadline - now))
                    self._deadline_cond.wait(timeout)
                    continue
            for entry in expired:
                entry.cancel_reason = DeadlineExceededError(
                    "deadline expired while the request was queued; cancelled before execution"
                )
                # cancel() fails iff the run started in the meantime — then
                # the run's own deadline checks take over.
                entry.inner.cancel()

    # ------------------------------------------------------------------ #
    # Internals
    # ------------------------------------------------------------------ #
    def _settle(self, entry: _Tracked, request_key: _RequestKey, inner: Future) -> None:
        """Inner-future completion: book-keeping, then resolve the outer future."""
        with self._lock:
            self._tracked.discard(entry)
            if self._inflight.get(request_key) is entry.outer:
                del self._inflight[request_key]
            if not entry.started:
                self._queued -= 1
        if inner.cancelled():
            exc: Optional[BaseException] = entry.cancel_reason or ServiceClosedError(
                "request cancelled"
            )
        else:
            exc = inner.exception()
        if exc is not None:
            if isinstance(exc, DeadlineExceededError):
                with self._lock:
                    self._deadline_expired += 1
                logger.info("request failed deadline (digest=%s k=%s): %s",
                            request_key[0][:12], request_key[1], exc)
            entry.outer.set_exception(exc)
        else:
            entry.outer.set_result(inner.result())

    def _follow(self, running: "Future[SolveResult]") -> "Future[SolveResult]":
        """Attach a coalesced request to an in-flight computation.

        The follower receives a cache-hit-marked copy (its answer cost no
        engine work of its own); a failed primary propagates its exception.
        """
        follower: "Future[SolveResult]" = Future()

        def _chain(primary: "Future[SolveResult]") -> None:
            exc = primary.exception()
            if exc is not None:
                follower.set_exception(exc)
            else:
                follower.set_result(self._cache_hit_copy(primary.result()))

        running.add_done_callback(_chain)
        return follower

    def _run(
        self,
        entry: _Tracked,
        digest: str,
        k: int,
        algorithm: str,
        time_limit: Optional[float],
        node_limit: Optional[int],
        deadline_at: Optional[float],
        deadline: Optional[float],
        submitted: float,
    ) -> SolveResult:
        with self._lock:
            entry.started = True
            self._queued -= 1
        started = time.perf_counter()
        if deadline_at is not None and time.monotonic() >= deadline_at:
            # The watchdog lost the race to cancel us; same typed outcome.
            raise DeadlineExceededError(
                "deadline expired while the request was queued; cancelled before execution"
            )
        solver = self._solver_for(algorithm)
        prepare_ms = 0.0
        result = self._incremental_result(
            entry, digest, k, algorithm, time_limit, deadline_at
        )
        if result is None:
            prepared = self.store.prepared(digest, k, solver.config)
            prepare_ms = (time.perf_counter() - started) * 1000.0

            effective_limit = time_limit
            deadline_bound = False
            if deadline_at is not None:
                remaining = deadline_at - time.monotonic()
                if remaining <= 0:
                    raise DeadlineExceededError(
                        f"deadline of {deadline:.3f}s expired during preparation"
                    )
                if effective_limit is None or remaining < effective_limit:
                    effective_limit = remaining
                    deadline_bound = True
            faults.fire("scheduler.solve", digest=digest, k=k)
            checkpoint = None
            if self._persistence is not None:
                # Best-effort: a solve that cannot checkpoint (journal owned by
                # a concurrent identical solve, unwritable state dir) still runs
                # — it just cannot be resumed if interrupted.
                try:
                    checkpoint = self._persistence.open_checkpoint(
                        digest, k, algorithm, solver.config
                    )
                except Exception:
                    logger.warning("opening solve checkpoint failed (digest=%s k=%d)",
                                   digest[:12], k, exc_info=True)
            try:
                result = solver.solve_prepared(
                    prepared, k,
                    time_limit=effective_limit, node_limit=node_limit, cancel=entry.cancel,
                    checkpoint=checkpoint,
                )
            except BaseException:
                # Keep the journal: whatever the solve recorded before crashing
                # is exactly what a retry or a restart resumes from.
                if checkpoint is not None:
                    checkpoint.close()
                raise
            if checkpoint is not None:
                # Optimal answers retire the journal; interrupted ones (budget,
                # deadline clamp, drain cancel) keep it for the resume.
                if result.optimal:
                    checkpoint.complete()
                else:
                    checkpoint.close()
            if not result.optimal and not entry.cancel.is_set():
                # A drain-cancelled solve answers with its partial result; a
                # deadline-clamped one reports the miss as a typed error.  A miss
                # of the caller's own time/node budget keeps the partial-result
                # contract it always had.
                node_budget_hit = node_limit is not None and result.stats.nodes >= node_limit
                if deadline_bound and not node_budget_hit:
                    raise DeadlineExceededError(
                        f"deadline of {deadline:.3f}s exceeded during solve "
                        f"(best size so far: {result.size})"
                    )
            if result.optimal:
                # A fresh optimal solve (re-)anchors the incremental state for
                # this (k, algorithm) shape, so later solves of this graph's
                # mutations go through the delta route.
                self._seed_dynamic(digest, k, algorithm, result)
        result.stats.queue_ms = (started - submitted) * 1000.0
        result.stats.prepare_ms = prepare_ms
        wal_entry: Optional[Tuple[_ResultKey, SolveResult]] = None
        with self._lock:
            self._solves += 1
            solve_seconds = time.perf_counter() - started
            if self._ewma_solve_seconds:
                self._ewma_solve_seconds += _EWMA_ALPHA * (
                    solve_seconds - self._ewma_solve_seconds
                )
            else:
                self._ewma_solve_seconds = solve_seconds
            self._ewma_updated = time.monotonic()
            if result.optimal:
                key = self._result_key(digest, k, algorithm)
                if key not in self._results:
                    # Cache a private copy, never the object handed to the
                    # caller: a caller mutating its answer (clique list,
                    # stats) must not corrupt every later cache hit.
                    stored = self._copy_result(result)
                    self._results[key] = stored
                    wal_entry = (key, stored)
                self._results.move_to_end(key)
                if self.result_cache_size is not None:
                    while len(self._results) > self.result_cache_size:
                        self._results.popitem(last=False)
                        self._result_evictions += 1
        if wal_entry is not None and self._persistence is not None:
            # Outside the lock — the journal append fsyncs, and durability
            # of one result must not stall every concurrent submission.
            try:
                self._persistence.append_result(*wal_entry)
            except Exception:
                logger.warning("journaling optimal result failed (digest=%s k=%d)",
                               digest[:12], k, exc_info=True)
        return result

    # ------------------------------------------------------------------ #
    # Incremental solving over mutated graphs
    # ------------------------------------------------------------------ #
    def _incremental_result(
        self,
        entry: _Tracked,
        digest: str,
        k: int,
        algorithm: str,
        time_limit: Optional[float],
        deadline_at: Optional[float],
    ) -> Optional[SolveResult]:
        """Answer via the delta route when a predecessor solve is available.

        Walks the store's digest chain from this ``(k, algorithm)`` shape's
        tracked snapshot to ``digest``, applying each delta through the
        :class:`IncrementalSolver`.  Returns ``None`` whenever the route
        does not apply or anything goes wrong — the caller falls back to
        the ordinary prepared/solve path, so this is an accelerator, never
        a correctness dependency.  Exercised (and failure-injected) via the
        ``dynamic.resolve`` chaos point.
        """
        with self._dynamic_lock:
            state = self._dynamic.get((k, algorithm))
            if state is None or state.digest == digest:
                return None
            chain = self.store.delta_chain(state.digest, digest)
            if not chain:
                return None
            reused = 0
            resolved = 0
            try:
                faults.fire("dynamic.resolve", digest=digest, k=k,
                            algorithm=algorithm, steps=len(chain))
                report = None
                for _, delta in chain:
                    step_limit = time_limit
                    if deadline_at is not None:
                        remaining = deadline_at - time.monotonic()
                        if remaining <= 0:
                            return None  # normal path raises the typed error
                        if step_limit is None or remaining < step_limit:
                            step_limit = remaining
                    report = state.apply(
                        delta, time_limit=step_limit, cancel=entry.cancel
                    )
                    reused += report.anchors_reused
                    resolved += report.anchors_resolved
                if report is None or state.digest != digest or not report.result.optimal:
                    return None
            except Exception:
                logger.warning(
                    "incremental solve failed (digest=%s k=%d); falling back to full solve",
                    digest[:12], k, exc_info=True,
                )
                return None
            self._dynamic.move_to_end((k, algorithm))
        with self._lock:
            self._incremental_hits += 1
            self._anchors_reused += reused
            self._anchors_resolved += resolved
        # Hand out a private copy: the state keeps its own references alive
        # across future deltas, and callers may mutate their answers.
        return self._copy_result(report.result)

    def _seed_dynamic(
        self, digest: str, k: int, algorithm: str, result: SolveResult
    ) -> None:
        """Adopt a fresh optimal result as the incremental epoch (best-effort)."""
        try:
            graph = self.store.get(digest)
        except UnknownGraphError:
            return
        try:
            with self._dynamic_lock:
                state = self._dynamic.get((k, algorithm))
                if state is None:
                    checkpoint_dir = None
                    if self._persistence is not None:
                        checkpoint_dir = self._persistence.checkpoints_dir
                    state = IncrementalSolver(
                        self._solver_for(algorithm).config,
                        name=algorithm,
                        checkpoint_dir=checkpoint_dir,
                    )
                    self._dynamic[(k, algorithm)] = state
                state.seed(graph, k, result)
                self._dynamic.move_to_end((k, algorithm))
                while len(self._dynamic) > _MAX_DYNAMIC_STATES:
                    self._dynamic.popitem(last=False)
        except Exception:
            logger.warning("seeding incremental state failed (digest=%s k=%d)",
                           digest[:12], k, exc_info=True)

    @staticmethod
    def _copy_result(result: SolveResult) -> SolveResult:
        """A deep-enough independent copy of ``result``.

        The clique list and the stats object (including its mutable
        ``reductions`` dict) are what callers can reach and mutate; both are
        copied.  Used on the cache's write side (so the cached entry is
        isolated from the first caller) and by :meth:`_cache_hit_copy` on
        its read side (so no two callers share an answer either).
        """
        return SolveResult(
            clique=list(result.clique),
            size=result.size,
            k=result.k,
            optimal=result.optimal,
            algorithm=result.algorithm,
            stats=copy.deepcopy(result.stats),
        )

    @classmethod
    def _cache_hit_copy(cls, result: SolveResult) -> SolveResult:
        """An independent copy of a cached answer, marked ``cache_hit``.

        Search counters (nodes, prunes, ...) are preserved — they describe
        the run that produced the answer — while the request-level timings
        are zeroed: this request spent no measurable time preparing or
        searching.
        """
        out = cls._copy_result(result)
        out.stats.cache_hit = True
        out.stats.queue_ms = 0.0
        out.stats.prepare_ms = 0.0
        out.stats.solve_ms = 0.0
        out.stats.elapsed_seconds = 0.0
        return out

    # ------------------------------------------------------------------ #
    # Lifecycle and introspection
    # ------------------------------------------------------------------ #
    def stats(self) -> Dict[str, object]:
        """Service counters plus the underlying store's counters."""
        with self._lock:
            data: Dict[str, object] = {
                "requests": self._requests,
                "solves": self._solves,
                "cache_hits": self._cache_hits,
                "coalesced": self._coalesced,
                "max_concurrency": self.max_concurrency,
                "queue_depth": self._queued,
                "inflight": len(self._tracked),
                "shed": self._shed,
                "deadline_expired": self._deadline_expired,
                "drain_cancelled": self._drain_cancelled,
                "result_cache_entries": len(self._results),
                "result_cache_evictions": self._result_evictions,
                "restored_results": self._restored_results,
                "incremental_hits": self._incremental_hits,
                "anchors_reused": self._anchors_reused,
                "anchors_resolved": self._anchors_resolved,
            }
        data.update(self.store.stats())
        return data

    def close(self, drain_timeout: Optional[float] = None) -> None:
        """Stop admissions, drain in-flight work, then shut the pool down.

        The closed flag is flipped under the submission lock: any submit
        holding the lock finishes its executor hand-off first, and every
        later submit sees the flag and raises
        :class:`~repro.exceptions.ServiceClosedError`.

        Parameters
        ----------
        drain_timeout:
            ``None`` (default) waits for every in-flight request to finish,
            as before.  A number bounds the drain: after ``drain_timeout``
            seconds, still-queued requests are cancelled with
            :class:`ServiceClosedError` and running solves are cooperatively
            interrupted — they answer promptly with their best-so-far
            partial result (``optimal=False``).
        """
        with self._lock:
            self._closed = True
            tracked = list(self._tracked)
            self._deadline_cond.notify_all()
        if drain_timeout is None:
            self._executor.shutdown(wait=True)
            self._close_persistence()
            return
        pending = [entry.outer for entry in tracked]
        if pending:
            logger.info("draining %d in-flight request(s) for up to %.2fs",
                        len(pending), drain_timeout)
            futures_wait(pending, timeout=drain_timeout)
        leftovers = [entry for entry in tracked if not entry.outer.done()]
        for entry in leftovers:
            entry.cancel_reason = ServiceClosedError(
                "service drain deadline expired; request cancelled"
            )
            if not entry.inner.cancel():
                # Already running: cooperative cancel via the engine's
                # per-node poll; it returns a partial result promptly.
                entry.cancel.set()
        if leftovers:
            with self._lock:
                self._drain_cancelled += len(leftovers)
            logger.warning("drain deadline expired: cancelled %d request(s)", len(leftovers))
            futures_wait([e.outer for e in leftovers], timeout=_DRAIN_CANCEL_GRACE_SECONDS)
        self._executor.shutdown(wait=False)
        self._close_persistence()

    def _close_persistence(self) -> None:
        if self._persistence is not None:
            try:
                self._persistence.close()
            except Exception:
                logger.warning("closing persistence failed", exc_info=True)

    def __enter__(self) -> "SolverService":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()
