"""JSON-lines TCP front-end for :class:`~repro.service.scheduler.SolverService`.

The wire protocol is deliberately primitive — one JSON object per line, one
JSON reply per line, over a plain TCP socket — so any language (or ``nc``)
can drive a solver service without extra dependencies.  Requests are
dictionaries with an ``"op"`` field:

``{"op": "ping"}``
    Liveness probe; answers ``{"ok": true, "pong": true}``.
``{"op": "add-graph", "edges": [[u, v], ...], "vertices": [...], "name": ...}``
    Register a graph; answers its content ``digest``.  ``vertices`` (for
    isolated vertices) and ``name`` are optional.
``{"op": "mutate", "graph": <digest-or-name>, "adds": [[u, v], ...], "removes": [[u, v], ...], "name": ...}``
    Apply a validated edge delta to a stored graph; answers the successor's
    ``digest`` (plus ``parent``, ``n``, ``m``).  The successor is a
    first-class stored graph with a parent link, so solving it re-uses the
    predecessor's solve incrementally when one is available.  ``name``
    optionally labels the successor.
``{"op": "solve", "digest": ..., "k": ..., "algorithm": ..., "time_limit": ..., "node_limit": ..., "deadline": ...}``
    Solve one query; answers the clique, size, optimality flag and the full
    request-level statistics (``cache_hit``, ``prepare_ms``, ``queue_ms``,
    ``solve_ms``, ...).  ``deadline`` (seconds, end-to-end) bounds queue
    wait + prepare + solve; missing it answers ``{"ok": false, "kind":
    "DeadlineExceededError"}``.
``{"op": "stats"}``
    Service counters.
``{"op": "shutdown"}``
    Acknowledge, then stop the server.

Every reply carries ``"ok"``; failures answer ``{"ok": false, "error":
<message>, "kind": <exception class>}`` — plus ``"retry_after"`` on
overload sheds — and keep the connection (and the server) alive.  The same
:func:`handle_request` dispatch backs the in-process
:class:`~repro.service.client.Client`, so tests exercise exactly the code
path the socket serves.
"""

from __future__ import annotations

import json
import logging
import socketserver
import threading
from concurrent.futures import TimeoutError as FutureTimeoutError
from typing import Dict, Optional, Tuple

from ..core.config import SolverConfig
from ..exceptions import DeadlineExceededError, InvalidParameterError, ReproError
from ..graphs.graph import Graph
from ..testing import chaos as faults
from .scheduler import SolverService

__all__ = ["ServiceServer", "handle_request", "run_server"]

logger = logging.getLogger("repro.service.server")

#: Extra seconds a reply waits past the request's own deadline before the
#: server gives up on the future — covers scheduling noise only, since the
#: scheduler resolves deadline misses itself.
_DEADLINE_REPLY_GRACE_SECONDS = 5.0

#: Extra seconds a reply waits past a plain ``time_limit`` budget.  Generous,
#: because a time-limited solve still pays unbounded queue wait and prepare
#: time — but no longer *infinite*: a wedged worker thread answers the
#: client with a typed error instead of hanging the connection forever.
_BUDGET_REPLY_GRACE_SECONDS = 30.0


def _reply_timeout(
    deadline: Optional[float], time_limit: Optional[float]
) -> Optional[float]:
    """How long the dispatcher waits on a solve future before typed-failing."""
    if deadline is not None:
        return float(deadline) + _DEADLINE_REPLY_GRACE_SECONDS
    if time_limit is not None:
        return float(time_limit) + _BUDGET_REPLY_GRACE_SECONDS
    return None


def handle_request(service: SolverService, payload: Dict) -> Dict:
    """Dispatch one protocol request against ``service`` and return the reply.

    Never raises: library errors *and* unexpected internal errors come back
    as ``{"ok": False, "kind": <class>, ...}`` replies, so one bad query —
    or one crashing solve — cannot take a shared server (or its connection
    handler) down.
    """
    try:
        if not isinstance(payload, dict):
            raise ReproError("request must be a JSON object")
        op = payload.get("op")
        if op == "ping":
            return {"ok": True, "pong": True}
        if op == "add-graph":
            graph = Graph(
                edges=[tuple(edge) for edge in payload.get("edges", [])],
                vertices=payload.get("vertices"),
            )
            digest = service.store.add(graph, name=payload.get("name"))
            return {
                "ok": True,
                "digest": digest,
                "n": graph.num_vertices,
                "m": graph.num_edges,
            }
        if op == "mutate":
            ref = payload.get("graph") or payload.get("digest")
            if not ref:
                raise ReproError("mutate requires 'graph' (a digest or name)")
            reply = service.mutate(
                ref,
                adds=[tuple(edge) for edge in payload.get("adds") or []],
                removes=[tuple(edge) for edge in payload.get("removes") or []],
                name=payload.get("name"),
            )
            return {"ok": True, **reply}
        if op == "solve":
            if "digest" not in payload or "k" not in payload:
                raise ReproError("solve requires 'digest' and 'k'")
            deadline = payload.get("deadline")
            time_limit = payload.get("time_limit")
            future = service.submit(
                payload["digest"],
                payload["k"],
                algorithm=payload.get("algorithm", "kDC"),
                time_limit=time_limit,
                node_limit=payload.get("node_limit"),
                deadline=deadline,
            )
            effective_deadline = (
                deadline if deadline is not None else service.default_deadline
            )
            try:
                result = future.result(
                    timeout=_reply_timeout(effective_deadline, time_limit)
                )
            except FutureTimeoutError as exc:
                # The scheduler should have resolved this future itself; a
                # wait timeout here means a wedged worker.  Fail typed —
                # never leave the connection hanging on .result().
                raise DeadlineExceededError(
                    "the service did not answer within the request budget"
                ) from exc
            return {
                "ok": True,
                "size": result.size,
                "clique": list(result.clique),
                "optimal": result.optimal,
                "algorithm": result.algorithm,
                "k": result.k,
                "stats": result.stats.as_dict(),
            }
        if op == "stats":
            return {"ok": True, "stats": service.stats()}
        raise ReproError(f"unknown op {op!r}")
    except (ReproError, TypeError, ValueError, KeyError) as exc:
        reply = {"ok": False, "error": str(exc), "kind": type(exc).__name__}
        retry_after = getattr(exc, "retry_after", None)
        if retry_after is not None:
            reply["retry_after"] = retry_after
        return reply
    except Exception as exc:  # noqa: BLE001 - the server must always answer
        logger.exception("internal error handling %r", payload.get("op") if isinstance(payload, dict) else payload)
        return {"ok": False, "error": str(exc), "kind": type(exc).__name__}


class _LineHandler(socketserver.StreamRequestHandler):
    """One connection: read JSON lines, answer JSON lines."""

    def handle(self) -> None:
        server: "ServiceServer" = self.server  # type: ignore[assignment]
        try:
            for raw in self.rfile:
                line = raw.strip()
                if not line:
                    continue
                try:
                    payload = json.loads(line)
                except json.JSONDecodeError as exc:
                    reply = {"ok": False, "error": f"bad JSON: {exc}", "kind": "JSONDecodeError"}
                else:
                    if isinstance(payload, dict) and payload.get("op") == "shutdown":
                        self._reply({"ok": True, "shutting_down": True})
                        # shutdown() joins the serve loop, which waits for this
                        # handler — stop from a helper thread to avoid deadlock.
                        threading.Thread(target=server.shutdown, daemon=True).start()
                        return
                    reply = handle_request(server.service, payload)
                if not self._reply(reply):
                    return
        except (ConnectionResetError, BrokenPipeError, OSError) as exc:
            # A client vanishing mid-read is its problem, not the server's.
            logger.debug("connection dropped while reading: %s", exc)

    def _reply(self, reply: Dict) -> bool:
        """Write one reply line; returns ``False`` when the client is gone.

        A client that disconnected between request and reply must cost the
        server nothing but this connection — the handler closes quietly
        instead of unwinding through ``socketserver`` with a stack trace.
        """
        try:
            faults.fire("server.reply", op=reply.get("ok"))
            self.wfile.write(json.dumps(reply).encode("utf-8") + b"\n")
            self.wfile.flush()
            return True
        except (BrokenPipeError, ConnectionResetError, OSError) as exc:
            logger.debug("client disconnected before reply could be sent: %s", exc)
            return False


class ServiceServer(socketserver.ThreadingTCPServer):
    """Threaded TCP server wrapping one :class:`SolverService`.

    Binding to port 0 picks an ephemeral port; read it back from
    :attr:`address` (the CLI prints it on startup for exactly this reason).

    The hardening knobs (``default_deadline``, ``max_pending``) configure
    the service the server builds when none is passed in;
    ``drain_timeout`` bounds how long :meth:`server_close` waits for
    in-flight solves before cancelling them (``None`` = wait forever, the
    historical behaviour).  ``state_dir`` makes the built service durable:
    graphs, prepared artifacts, optimal results and in-progress solve
    checkpoints persist there across restarts and crashes (see
    :class:`~repro.service.persistence.ServicePersistence`).
    """

    daemon_threads = True
    allow_reuse_address = True

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        service: Optional[SolverService] = None,
        config: Optional[SolverConfig] = None,
        max_concurrency: int = 4,
        default_deadline: Optional[float] = None,
        max_pending: Optional[int] = None,
        drain_timeout: Optional[float] = None,
        state_dir: Optional[str] = None,
    ) -> None:
        if service is None:
            persistence = None
            if state_dir is not None:
                from .persistence import ServicePersistence

                persistence = ServicePersistence(state_dir)
            service = SolverService(
                config=config,
                max_concurrency=max_concurrency,
                default_deadline=default_deadline,
                max_pending=max_pending,
                persistence=persistence,
            )
        elif state_dir is not None:
            raise InvalidParameterError(
                "pass state_dir only when the server builds its own service; "
                "attach a ServicePersistence to the service you construct instead"
            )
        self.service = service
        self.drain_timeout = drain_timeout
        super().__init__((host, port), _LineHandler)

    @property
    def address(self) -> Tuple[str, int]:
        """The bound ``(host, port)`` — the actual port even when 0 was requested."""
        return self.server_address[0], self.server_address[1]

    def handle_error(self, request, client_address) -> None:  # pragma: no cover
        logger.exception("unhandled error serving %s", client_address)

    def server_close(self) -> None:
        super().server_close()
        self.service.close(drain_timeout=self.drain_timeout)


def run_server(server: ServiceServer) -> None:
    """Serve until a ``shutdown`` request (or KeyboardInterrupt), then clean up.

    Prints the bound address first — ``repro serve --port 0`` callers parse
    this line to learn the ephemeral port.
    """
    host, port = server.address
    print(f"repro-serve listening on {host}:{port}", flush=True)
    logger.info("serving on %s:%d", host, port)
    try:
        server.serve_forever(poll_interval=0.1)
    finally:
        logger.info("shutting down (drain_timeout=%s)", server.drain_timeout)
        server.server_close()
