"""JSON-lines TCP front-end for :class:`~repro.service.scheduler.SolverService`.

The wire protocol is deliberately primitive — one JSON object per line, one
JSON reply per line, over a plain TCP socket — so any language (or ``nc``)
can drive a solver service without extra dependencies.  Requests are
dictionaries with an ``"op"`` field:

``{"op": "ping"}``
    Liveness probe; answers ``{"ok": true, "pong": true}``.
``{"op": "add-graph", "edges": [[u, v], ...], "vertices": [...], "name": ...}``
    Register a graph; answers its content ``digest``.  ``vertices`` (for
    isolated vertices) and ``name`` are optional.
``{"op": "solve", "digest": ..., "k": ..., "algorithm": ..., "time_limit": ..., "node_limit": ...}``
    Solve one query; answers the clique, size, optimality flag and the full
    request-level statistics (``cache_hit``, ``prepare_ms``, ``queue_ms``,
    ``solve_ms``, ...).
``{"op": "stats"}``
    Service counters.
``{"op": "shutdown"}``
    Acknowledge, then stop the server.

Every reply carries ``"ok"``; failures answer ``{"ok": false, "error":
<message>, "kind": <exception class>}`` and keep the connection (and the
server) alive.  The same :func:`handle_request` dispatch backs the
in-process :class:`~repro.service.client.Client`, so tests exercise exactly
the code path the socket serves.
"""

from __future__ import annotations

import json
import socketserver
import threading
from typing import Dict, Optional, Tuple

from ..core.config import SolverConfig
from ..exceptions import ReproError
from ..graphs.graph import Graph
from .scheduler import SolverService

__all__ = ["ServiceServer", "handle_request", "run_server"]


def handle_request(service: SolverService, payload: Dict) -> Dict:
    """Dispatch one protocol request against ``service`` and return the reply.

    Never raises for malformed or failing requests — library errors come
    back as ``{"ok": False, ...}`` replies so one bad query cannot take a
    shared server down.  (Only genuinely unexpected internal errors
    propagate.)
    """
    try:
        if not isinstance(payload, dict):
            raise ReproError("request must be a JSON object")
        op = payload.get("op")
        if op == "ping":
            return {"ok": True, "pong": True}
        if op == "add-graph":
            graph = Graph(
                edges=[tuple(edge) for edge in payload.get("edges", [])],
                vertices=payload.get("vertices"),
            )
            digest = service.store.add(graph, name=payload.get("name"))
            return {
                "ok": True,
                "digest": digest,
                "n": graph.num_vertices,
                "m": graph.num_edges,
            }
        if op == "solve":
            if "digest" not in payload or "k" not in payload:
                raise ReproError("solve requires 'digest' and 'k'")
            result = service.submit(
                payload["digest"],
                payload["k"],
                algorithm=payload.get("algorithm", "kDC"),
                time_limit=payload.get("time_limit"),
                node_limit=payload.get("node_limit"),
            ).result()
            return {
                "ok": True,
                "size": result.size,
                "clique": list(result.clique),
                "optimal": result.optimal,
                "algorithm": result.algorithm,
                "k": result.k,
                "stats": result.stats.as_dict(),
            }
        if op == "stats":
            return {"ok": True, "stats": service.stats()}
        raise ReproError(f"unknown op {op!r}")
    except (ReproError, TypeError, ValueError, KeyError) as exc:
        return {"ok": False, "error": str(exc), "kind": type(exc).__name__}


class _LineHandler(socketserver.StreamRequestHandler):
    """One connection: read JSON lines, answer JSON lines."""

    def handle(self) -> None:
        server: "ServiceServer" = self.server  # type: ignore[assignment]
        for raw in self.rfile:
            line = raw.strip()
            if not line:
                continue
            try:
                payload = json.loads(line)
            except json.JSONDecodeError as exc:
                reply = {"ok": False, "error": f"bad JSON: {exc}", "kind": "JSONDecodeError"}
            else:
                if isinstance(payload, dict) and payload.get("op") == "shutdown":
                    self._reply({"ok": True, "shutting_down": True})
                    # shutdown() joins the serve loop, which waits for this
                    # handler — stop from a helper thread to avoid deadlock.
                    threading.Thread(target=server.shutdown, daemon=True).start()
                    return
                reply = handle_request(server.service, payload)
            self._reply(reply)

    def _reply(self, reply: Dict) -> None:
        self.wfile.write(json.dumps(reply).encode("utf-8") + b"\n")
        self.wfile.flush()


class ServiceServer(socketserver.ThreadingTCPServer):
    """Threaded TCP server wrapping one :class:`SolverService`.

    Binding to port 0 picks an ephemeral port; read it back from
    :attr:`address` (the CLI prints it on startup for exactly this reason).
    """

    daemon_threads = True
    allow_reuse_address = True

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        service: Optional[SolverService] = None,
        config: Optional[SolverConfig] = None,
        max_concurrency: int = 4,
    ) -> None:
        self.service = service if service is not None else SolverService(
            config=config, max_concurrency=max_concurrency
        )
        super().__init__((host, port), _LineHandler)

    @property
    def address(self) -> Tuple[str, int]:
        """The bound ``(host, port)`` — the actual port even when 0 was requested."""
        return self.server_address[0], self.server_address[1]

    def server_close(self) -> None:
        super().server_close()
        self.service.close()


def run_server(server: ServiceServer) -> None:
    """Serve until a ``shutdown`` request (or KeyboardInterrupt), then clean up.

    Prints the bound address first — ``repro serve --port 0`` callers parse
    this line to learn the ephemeral port.
    """
    host, port = server.address
    print(f"repro-serve listening on {host}:{port}", flush=True)
    try:
        server.serve_forever(poll_interval=0.1)
    finally:
        server.server_close()
