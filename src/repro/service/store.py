"""Digest-keyed graph store with per-``(graph, k)`` prepared-artifact slots.

The store is the service's memory: each graph is loaded once (keyed by its
canonical content digest, so re-adding the same graph — even built in a
different vertex order — is a no-op) and each ``(graph, k, prepare-config)``
combination is prepared at most once, no matter how many concurrent requests
ask for it.  Single-flight deduplication hands every concurrent requester the
same in-progress :class:`~concurrent.futures.Future` instead of preparing the
artifact twice.

Both caches are optionally bounded: ``max_graphs`` / ``max_prepared`` turn
them into LRU caches, so a long-lived service under an endless stream of
novel graphs degrades to evictions (counted in :meth:`stats`) instead of
growing without bound.  Evicting a graph also drops its prepared artifacts —
they are unreachable once :meth:`get` no longer resolves the digest.

Durability is optional and best-effort: with a
:class:`~repro.service.persistence.ServicePersistence` attached, every new
graph and prepared artifact is snapshotted to disk after it lands in the
in-memory cache, and construction restores whatever snapshots the state
directory holds (counted in :meth:`stats` as ``restored_*``).  Persistence
failures — full disk, bad permissions — log a warning and leave the store
running in-memory; they never fail the request that triggered the write.
On-disk snapshots are not deleted on LRU eviction (they are content-
addressed and cheap), so a restart may restore more than the evicting
process last held.

The store also pickles: live synchronisation state (the lock, in-flight
futures) and the persistence attachment are excluded, so a pickled store
round-trips into an independent, fully functional in-memory copy.
"""

from __future__ import annotations

import logging
import threading
from collections import OrderedDict
from concurrent.futures import Future
from typing import TYPE_CHECKING, Dict, Optional, Tuple

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .persistence import ServicePersistence

from ..core.config import SolverConfig
from ..core.prepared import PreparedInstance, prepare_instance
from ..exceptions import InvalidParameterError, UnknownGraphError
from ..graphs.graph import Graph
from ..testing import chaos as faults

__all__ = ["GraphStore"]

logger = logging.getLogger("repro.service.store")

#: Cache key of one prepared-artifact slot: the digest, ``k``, and the three
#: prepare-relevant configuration knobs (everything else — backend, engine,
#: workers, budgets — is execute-side and shares the artifact).
_PreparedKey = Tuple[str, int, str, bool, bool]


class GraphStore:
    """Thread-safe store of graphs and their prepared solve artifacts.

    All methods may be called concurrently; preparation of distinct slots
    proceeds in parallel while requests for the *same* slot block on one
    shared computation (single-flight).

    Parameters
    ----------
    max_graphs:
        LRU cap on stored graphs (``None`` = unbounded, the default).
    max_prepared:
        LRU cap on cached prepared artifacts (``None`` = unbounded).
    persistence:
        Optional :class:`~repro.service.persistence.ServicePersistence`;
        when given, construction restores its graph/prepared snapshots and
        every later addition is snapshotted best-effort.
    """

    def __init__(
        self,
        max_graphs: Optional[int] = None,
        max_prepared: Optional[int] = None,
        persistence: Optional["ServicePersistence"] = None,
    ) -> None:
        if max_graphs is not None and max_graphs < 1:
            raise InvalidParameterError("max_graphs must be a positive integer or None")
        if max_prepared is not None and max_prepared < 1:
            raise InvalidParameterError("max_prepared must be a positive integer or None")
        self.max_graphs = max_graphs
        self.max_prepared = max_prepared
        self._persistence = persistence
        self._lock = threading.Lock()
        self._graphs: "OrderedDict[str, Graph]" = OrderedDict()
        self._names: Dict[str, str] = {}
        self._prepared: "OrderedDict[_PreparedKey, PreparedInstance]" = OrderedDict()
        self._inflight: Dict[_PreparedKey, Future] = {}
        self._prepares = 0
        self._prepared_hits = 0
        self._graph_evictions = 0
        self._prepared_evictions = 0
        self._restored_graphs = 0
        self._restored_prepared = 0
        if persistence is not None:
            self._restore(persistence)

    def _restore(self, persistence: "ServicePersistence") -> None:
        """Warm the caches from on-disk snapshots (best-effort, never fatal)."""
        try:
            with self._lock:
                for digest, name, graph in persistence.load_graphs():
                    if digest in self._graphs:
                        continue
                    self._graphs[digest] = graph
                    if name:
                        self._names[digest] = name
                    self._restored_graphs += 1
                    self._evict_graphs_locked()
                for key, artifact in persistence.load_prepared():
                    # An artifact whose graph snapshot is gone (or was just
                    # evicted by the cap) is unreachable; skip it.
                    if key[0] not in self._graphs or key in self._prepared:
                        continue
                    self._prepared[key] = artifact
                    self._restored_prepared += 1
                    if self.max_prepared is not None:
                        while len(self._prepared) > self.max_prepared:
                            self._prepared.popitem(last=False)
                            self._prepared_evictions += 1
        except Exception:
            logger.warning("restoring store state failed; continuing with what loaded",
                           exc_info=True)

    # ------------------------------------------------------------------ #
    # Graphs
    # ------------------------------------------------------------------ #
    def add(self, graph: Graph, name: Optional[str] = None) -> str:
        """Register ``graph`` (copied) and return its content digest.

        Adding a graph whose digest is already present is a cheap no-op that
        returns the existing digest; ``name`` is a human-readable label kept
        for listings only.  With ``max_graphs`` set, inserting beyond the cap
        evicts the least-recently-used graph (and its prepared artifacts).
        """
        digest = graph.content_digest()
        stored: Optional[Graph] = None
        with self._lock:
            if digest not in self._graphs:
                stored = graph.copy()
                self._graphs[digest] = stored
                self._evict_graphs_locked()
            else:
                self._graphs.move_to_end(digest)
            if name is not None:
                self._names[digest] = name
        if stored is not None and self._persistence is not None:
            # Outside the lock: the snapshot fsyncs, and a slow (or failing)
            # disk must not serialise every other store operation behind it.
            try:
                self._persistence.save_graph(digest, name, stored)
            except Exception:
                logger.warning("persisting graph %s failed; kept in memory only",
                               digest[:12], exc_info=True)
        return digest

    def _evict_graphs_locked(self) -> None:
        if self.max_graphs is None:
            return
        while len(self._graphs) > self.max_graphs:
            evicted, _ = self._graphs.popitem(last=False)
            self._names.pop(evicted, None)
            self._graph_evictions += 1
            # Prepared artifacts of an evicted graph are unreachable through
            # the public surface (get() fails first); free them too.
            for key in [k for k in self._prepared if k[0] == evicted]:
                del self._prepared[key]
                self._prepared_evictions += 1

    def get(self, digest: str) -> Graph:
        """Return the stored graph for ``digest`` (the store's own copy; do not mutate)."""
        with self._lock:
            graph = self._graphs.get(digest)
            if graph is not None:
                self._graphs.move_to_end(digest)
        if graph is None:
            raise UnknownGraphError(digest)
        return graph

    def __contains__(self, digest: str) -> bool:
        with self._lock:
            return digest in self._graphs

    def __len__(self) -> int:
        with self._lock:
            return len(self._graphs)

    def graphs(self) -> Dict[str, str]:
        """Return ``{digest: name}`` for every stored graph (unnamed -> ``""``)."""
        with self._lock:
            return {d: self._names.get(d, "") for d in self._graphs}

    # ------------------------------------------------------------------ #
    # Prepared artifacts
    # ------------------------------------------------------------------ #
    @staticmethod
    def _key(digest: str, k: int, config: SolverConfig) -> _PreparedKey:
        return (digest, k, config.initial_heuristic, config.use_rr5, config.use_rr6)

    def prepared(
        self, digest: str, k: int, config: Optional[SolverConfig] = None
    ) -> PreparedInstance:
        """Return the prepared artifact for ``(digest, k, config)``, building it once.

        The first caller of a slot runs :func:`prepare_instance`; concurrent
        callers of the same slot wait on that computation instead of
        repeating it, and later callers get the cached artifact immediately.
        A failed preparation is not cached — the next request retries.
        """
        if config is None:
            config = SolverConfig()
        key = self._key(digest, k, config)
        with self._lock:
            artifact = self._prepared.get(key)
            if artifact is not None:
                self._prepared_hits += 1
                self._prepared.move_to_end(key)
                return artifact
            inflight = self._inflight.get(key)
            if inflight is None:
                graph = self._graphs.get(digest)
                if graph is None:
                    raise UnknownGraphError(digest)
                inflight = Future()
                self._inflight[key] = inflight
                owner = True
            else:
                owner = False
        if not owner:
            return inflight.result()
        try:
            faults.fire("store.prepare", digest=digest, k=k)
            artifact = prepare_instance(graph, k, config)
        except BaseException as exc:
            with self._lock:
                del self._inflight[key]
            inflight.set_exception(exc)
            raise
        with self._lock:
            self._prepared[key] = artifact
            self._prepares += 1
            del self._inflight[key]
            if self.max_prepared is not None:
                while len(self._prepared) > self.max_prepared:
                    self._prepared.popitem(last=False)
                    self._prepared_evictions += 1
        inflight.set_result(artifact)
        if self._persistence is not None:
            try:
                self._persistence.save_prepared(key, artifact)
            except Exception:
                logger.warning("persisting prepared artifact for %s failed; kept in memory only",
                               digest[:12], exc_info=True)
        return artifact

    # ------------------------------------------------------------------ #
    def stats(self) -> Dict[str, int]:
        """Counters: stored graphs/artifacts, builds, cache hits, evictions."""
        with self._lock:
            return {
                "graphs": len(self._graphs),
                "prepares": self._prepares,
                "prepared_hits": self._prepared_hits,
                "prepared_artifacts": len(self._prepared),
                "graph_evictions": self._graph_evictions,
                "prepared_evictions": self._prepared_evictions,
                "restored_graphs": self._restored_graphs,
                "restored_prepared": self._restored_prepared,
            }

    # ------------------------------------------------------------------ #
    # Pickling
    # ------------------------------------------------------------------ #
    def __getstate__(self) -> Dict[str, object]:
        """Snapshot the cached data, excluding live synchronisation state.

        The lock, the in-flight futures and the persistence attachment are
        process-local and unpicklable; the unpickled copy gets a fresh lock,
        an empty in-flight table (waiters cannot travel between processes —
        any in-progress preparation simply re-runs on first request) and no
        persistence (re-attach explicitly if the copy should persist).
        """
        with self._lock:
            return {
                "max_graphs": self.max_graphs,
                "max_prepared": self.max_prepared,
                "graphs": OrderedDict(self._graphs),
                "names": dict(self._names),
                "prepared": OrderedDict(self._prepared),
                "prepares": self._prepares,
                "prepared_hits": self._prepared_hits,
                "graph_evictions": self._graph_evictions,
                "prepared_evictions": self._prepared_evictions,
                "restored_graphs": self._restored_graphs,
                "restored_prepared": self._restored_prepared,
            }

    def __setstate__(self, state: Dict[str, object]) -> None:
        self.max_graphs = state["max_graphs"]
        self.max_prepared = state["max_prepared"]
        self._persistence = None
        self._lock = threading.Lock()
        self._graphs = OrderedDict(state["graphs"])
        self._names = dict(state["names"])
        self._prepared = OrderedDict(state["prepared"])
        self._inflight = {}
        self._prepares = state["prepares"]
        self._prepared_hits = state["prepared_hits"]
        self._graph_evictions = state["graph_evictions"]
        self._prepared_evictions = state["prepared_evictions"]
        self._restored_graphs = state["restored_graphs"]
        self._restored_prepared = state["restored_prepared"]
