"""Digest-keyed graph store with per-``(graph, k)`` prepared-artifact slots.

The store is the service's memory: each graph is loaded once (keyed by its
canonical content digest, so re-adding the same graph — even built in a
different vertex order — is a no-op) and each ``(graph, k, prepare-config)``
combination is prepared at most once, no matter how many concurrent requests
ask for it.  Single-flight deduplication hands every concurrent requester the
same in-progress :class:`~concurrent.futures.Future` instead of preparing the
artifact twice.

Both caches are optionally bounded: ``max_graphs`` / ``max_prepared`` turn
them into LRU caches, so a long-lived service under an endless stream of
novel graphs degrades to evictions (counted in :meth:`stats`) instead of
growing without bound.  Evicting a graph also drops its prepared artifacts —
they are unreachable once :meth:`get` no longer resolves the digest.

Durability is optional and best-effort: with a
:class:`~repro.service.persistence.ServicePersistence` attached, every new
graph and prepared artifact is snapshotted to disk after it lands in the
in-memory cache, and construction restores whatever snapshots the state
directory holds (counted in :meth:`stats` as ``restored_*``).  Persistence
failures — full disk, bad permissions — log a warning and leave the store
running in-memory; they never fail the request that triggered the write.
On-disk snapshots are not deleted on LRU eviction (they are content-
addressed and cheap), so a restart may restore more than the evicting
process last held.

The store also pickles: live synchronisation state (the lock, in-flight
futures) and the persistence attachment are excluded, so a pickled store
round-trips into an independent, fully functional in-memory copy.
"""

from __future__ import annotations

import logging
import threading
from collections import OrderedDict
from concurrent.futures import Future
from typing import TYPE_CHECKING, Dict, Optional, Tuple

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .persistence import ServicePersistence

from ..core.config import SolverConfig
from ..core.prepared import PreparedInstance, prepare_instance
from ..dynamic.delta import EdgeDelta
from ..dynamic.delta import apply_delta as _apply_edge_delta
from ..exceptions import InvalidParameterError, UnknownGraphError
from ..graphs.graph import Graph
from ..testing import chaos as faults

__all__ = ["GraphStore"]

logger = logging.getLogger("repro.service.store")

#: Cache key of one prepared-artifact slot: the digest, ``k``, and the three
#: prepare-relevant configuration knobs (everything else — backend, engine,
#: workers, budgets — is execute-side and shares the artifact).
_PreparedKey = Tuple[str, int, str, bool, bool]


class GraphStore:
    """Thread-safe store of graphs and their prepared solve artifacts.

    All methods may be called concurrently; preparation of distinct slots
    proceeds in parallel while requests for the *same* slot block on one
    shared computation (single-flight).

    Parameters
    ----------
    max_graphs:
        LRU cap on stored graphs (``None`` = unbounded, the default).
    max_prepared:
        LRU cap on cached prepared artifacts (``None`` = unbounded).
    persistence:
        Optional :class:`~repro.service.persistence.ServicePersistence`;
        when given, construction restores its graph/prepared snapshots and
        every later addition is snapshotted best-effort.
    """

    def __init__(
        self,
        max_graphs: Optional[int] = None,
        max_prepared: Optional[int] = None,
        persistence: Optional["ServicePersistence"] = None,
    ) -> None:
        if max_graphs is not None and max_graphs < 1:
            raise InvalidParameterError("max_graphs must be a positive integer or None")
        if max_prepared is not None and max_prepared < 1:
            raise InvalidParameterError("max_prepared must be a positive integer or None")
        self.max_graphs = max_graphs
        self.max_prepared = max_prepared
        self._persistence = persistence
        self._lock = threading.Lock()
        self._graphs: "OrderedDict[str, Graph]" = OrderedDict()
        self._names: Dict[str, str] = {}
        self._prepared: "OrderedDict[_PreparedKey, PreparedInstance]" = OrderedDict()
        self._inflight: Dict[_PreparedKey, Future] = {}
        # Digest chain of edge-delta mutations: child digest -> parent digest
        # (and the delta that produced the child).  Links outlive graph
        # eviction — they are tiny and let delta_chain() answer even when an
        # intermediate snapshot has been LRU-evicted.
        self._parents: Dict[str, str] = {}
        self._deltas: Dict[str, EdgeDelta] = {}
        self._prepares = 0
        self._prepared_hits = 0
        self._graph_evictions = 0
        self._prepared_evictions = 0
        self._restored_graphs = 0
        self._restored_prepared = 0
        self._mutations = 0
        self._restored_deltas = 0
        if persistence is not None:
            self._restore(persistence)

    def _restore(self, persistence: "ServicePersistence") -> None:
        """Warm the caches from on-disk snapshots (best-effort, never fatal)."""
        try:
            with self._lock:
                for digest, name, graph in persistence.load_graphs():
                    if digest in self._graphs:
                        continue
                    self._graphs[digest] = graph
                    if name:
                        self._names[digest] = name
                    self._restored_graphs += 1
                    self._evict_graphs_locked()
                for key, artifact in persistence.load_prepared():
                    # An artifact whose graph snapshot is gone (or was just
                    # evicted by the cap) is unreachable; skip it.
                    if key[0] not in self._graphs or key in self._prepared:
                        continue
                    self._prepared[key] = artifact
                    self._restored_prepared += 1
                    if self.max_prepared is not None:
                        while len(self._prepared) > self.max_prepared:
                            self._prepared.popitem(last=False)
                            self._prepared_evictions += 1
                self._restore_deltas_locked(persistence)
        except Exception:
            logger.warning("restoring store state failed; continuing with what loaded",
                           exc_info=True)

    def _restore_deltas_locked(self, persistence: "ServicePersistence") -> None:
        """Replay the delta WAL: re-link the digest chain and rebuild any
        successor whose own snapshot never made it to disk.

        The WAL is append-ordered, so a parent record always lands before
        its children — a whole chain re-materializes from one surviving
        ancestor snapshot.  A record that does not replay cleanly (digest
        mismatch, absent parent, invalid payload) is skipped with a warning;
        a crash mid-mutation therefore degrades to serving the predecessor,
        never to torn state.
        """
        for parent, child, name, adds, removes in persistence.replay_deltas():
            try:
                delta = EdgeDelta(adds=adds, removes=removes)
            except Exception:
                logger.warning("delta WAL record for %s is invalid; skipped", child[:12])
                continue
            if child not in self._graphs:
                source = self._graphs.get(parent)
                if source is None:
                    logger.warning(
                        "delta WAL parent %s not restored; successor %s unavailable",
                        parent[:12], child[:12],
                    )
                    continue
                try:
                    successor, succ_digest = _apply_edge_delta(source, delta)
                except Exception:
                    logger.warning("replaying delta onto %s failed; skipped",
                                   parent[:12], exc_info=True)
                    continue
                if succ_digest != child:
                    logger.warning(
                        "replayed delta digest %s does not match WAL record %s; skipped",
                        succ_digest[:12], child[:12],
                    )
                    continue
                self._graphs[child] = successor
                if name:
                    self._names[child] = name
                self._evict_graphs_locked()
            else:
                # Snapshots restore in filesystem order; the WAL holds the
                # true mutation order.  Re-touch each child as it replays so
                # "most recently touched bearer of a name" resolves to the
                # chain tip again after a restart.
                self._graphs.move_to_end(child)
            self._parents[child] = parent
            self._deltas[child] = delta
            self._restored_deltas += 1

    # ------------------------------------------------------------------ #
    # Graphs
    # ------------------------------------------------------------------ #
    def add(self, graph: Graph, name: Optional[str] = None) -> str:
        """Register ``graph`` (copied) and return its content digest.

        Adding a graph whose digest is already present is a cheap no-op that
        returns the existing digest; ``name`` is a human-readable label kept
        for listings only.  With ``max_graphs`` set, inserting beyond the cap
        evicts the least-recently-used graph (and its prepared artifacts).
        """
        digest = graph.content_digest()
        stored: Optional[Graph] = None
        with self._lock:
            if digest not in self._graphs:
                stored = graph.copy()
                self._graphs[digest] = stored
                self._evict_graphs_locked()
            else:
                self._graphs.move_to_end(digest)
            if name is not None:
                self._names[digest] = name
        if stored is not None and self._persistence is not None:
            # Outside the lock: the snapshot fsyncs, and a slow (or failing)
            # disk must not serialise every other store operation behind it.
            try:
                self._persistence.save_graph(digest, name, stored)
            except Exception:
                logger.warning("persisting graph %s failed; kept in memory only",
                               digest[:12], exc_info=True)
        return digest

    def _evict_graphs_locked(self) -> None:
        if self.max_graphs is None:
            return
        while len(self._graphs) > self.max_graphs:
            evicted, _ = self._graphs.popitem(last=False)
            self._names.pop(evicted, None)
            self._graph_evictions += 1
            # Prepared artifacts of an evicted graph are unreachable through
            # the public surface (get() fails first); free them too.
            for key in [k for k in self._prepared if k[0] == evicted]:
                del self._prepared[key]
                self._prepared_evictions += 1

    def get(self, digest: str) -> Graph:
        """Return the stored graph for ``digest`` (the store's own copy; do not mutate)."""
        with self._lock:
            graph = self._graphs.get(digest)
            if graph is not None:
                self._graphs.move_to_end(digest)
        if graph is None:
            raise UnknownGraphError(digest)
        return graph

    def __contains__(self, digest: str) -> bool:
        with self._lock:
            return digest in self._graphs

    def __len__(self) -> int:
        with self._lock:
            return len(self._graphs)

    def graphs(self) -> Dict[str, str]:
        """Return ``{digest: name}`` for every stored graph (unnamed -> ``""``)."""
        with self._lock:
            return {d: self._names.get(d, "") for d in self._graphs}

    def resolve(self, ref: str) -> str:
        """Resolve a digest *or* a human-readable name to a stored digest.

        A digest match wins; otherwise a name carried by exactly one current
        graph resolves to it (among several bearers — names are labels, not
        keys — the most recently touched one wins, which for a mutate-by-name
        stream is the latest successor).  Anything else raises
        :class:`~repro.exceptions.UnknownGraphError`.
        """
        with self._lock:
            if ref in self._graphs:
                return ref
            match: Optional[str] = None
            for digest in self._graphs:  # OrderedDict: oldest -> newest
                if self._names.get(digest) == ref:
                    match = digest
        if match is None:
            raise UnknownGraphError(ref)
        return match

    # ------------------------------------------------------------------ #
    # Edge-delta mutations
    # ------------------------------------------------------------------ #
    def apply_delta(
        self, digest: str, delta: EdgeDelta, name: Optional[str] = None
    ) -> str:
        """Apply ``delta`` to the stored graph ``digest``; return the successor digest.

        The successor is stored as a first-class graph under its own content
        digest with a ``parent_digest`` link back to the predecessor, and
        the delta is WAL-journaled through the attached persistence (if any)
        so a ``--state-dir`` restart keeps the digest chain.  The
        predecessor stays untouched and servable: mutation is copy-on-write,
        and everything observable — in-memory publish included — happens
        only after the successor is fully built, so a crash mid-mutation
        (exercised via the ``dynamic.apply`` chaos point) leaves the store
        exactly as it was.

        With ``max_prepared`` set, the predecessor's prepared artifacts are
        dropped eagerly — a mutated-away snapshot is the coldest thing in
        the cache, and the freed slots go to its successors.
        """
        with self._lock:
            source = self._graphs.get(digest)
            if source is not None:
                self._graphs.move_to_end(digest)
        if source is None:
            raise UnknownGraphError(digest)
        # The store's graphs are never mutated in place, so reading `source`
        # outside the lock is safe; apply_delta copies before touching it.
        successor, succ_digest = _apply_edge_delta(source, delta)
        faults.fire("dynamic.apply", digest=digest, child=succ_digest,
                    adds=len(delta.adds), removes=len(delta.removes))
        with self._lock:
            if succ_digest not in self._graphs:
                self._graphs[succ_digest] = successor
            else:
                self._graphs.move_to_end(succ_digest)
            if name is not None:
                self._names[succ_digest] = name
            self._parents[succ_digest] = digest
            self._deltas[succ_digest] = delta
            self._mutations += 1
            if self.max_prepared is not None:
                for key in [key for key in self._prepared if key[0] == digest]:
                    del self._prepared[key]
                    self._prepared_evictions += 1
            self._evict_graphs_locked()
        if self._persistence is not None:
            # Outside the lock, same policy as add(): durability is
            # best-effort and must not serialise the store behind a slow
            # disk.  Snapshot first, then the WAL link — a replay needs the
            # parent snapshot (or its own chain) either way.
            try:
                self._persistence.save_graph(succ_digest, name, successor)
                self._persistence.append_delta(digest, succ_digest, name, delta)
            except Exception:
                logger.warning("persisting delta %s -> %s failed; kept in memory only",
                               digest[:12], succ_digest[:12], exc_info=True)
        return succ_digest

    def parent_digest(self, digest: str) -> Optional[str]:
        """The digest this one was mutated from, or ``None`` for roots."""
        with self._lock:
            return self._parents.get(digest)

    def delta_chain(
        self, ancestor: str, descendant: str, max_steps: int = 64
    ) -> Optional[list]:
        """The delta path ``ancestor -> descendant`` as ``[(digest, delta), ...]``.

        Each entry is the successor digest and the delta that produced it,
        oldest first — exactly the replay an
        :class:`~repro.dynamic.incremental.IncrementalSolver` positioned at
        ``ancestor`` needs to answer ``descendant``.  Returns ``None`` when
        no link path exists (or it exceeds ``max_steps``, past which a full
        solve is the better deal anyway).  ``ancestor == descendant`` is the
        empty chain.
        """
        with self._lock:
            chain = []
            current = descendant
            for _ in range(max_steps + 1):
                if current == ancestor:
                    chain.reverse()
                    return chain
                parent = self._parents.get(current)
                if parent is None:
                    return None
                chain.append((current, self._deltas[current]))
                current = parent
            return None

    # ------------------------------------------------------------------ #
    # Prepared artifacts
    # ------------------------------------------------------------------ #
    @staticmethod
    def _key(digest: str, k: int, config: SolverConfig) -> _PreparedKey:
        return (digest, k, config.initial_heuristic, config.use_rr5, config.use_rr6)

    def prepared(
        self, digest: str, k: int, config: Optional[SolverConfig] = None
    ) -> PreparedInstance:
        """Return the prepared artifact for ``(digest, k, config)``, building it once.

        The first caller of a slot runs :func:`prepare_instance`; concurrent
        callers of the same slot wait on that computation instead of
        repeating it, and later callers get the cached artifact immediately.
        A failed preparation is not cached — the next request retries.
        """
        if config is None:
            config = SolverConfig()
        key = self._key(digest, k, config)
        with self._lock:
            artifact = self._prepared.get(key)
            if artifact is not None:
                self._prepared_hits += 1
                self._prepared.move_to_end(key)
                return artifact
            inflight = self._inflight.get(key)
            if inflight is None:
                graph = self._graphs.get(digest)
                if graph is None:
                    raise UnknownGraphError(digest)
                inflight = Future()
                self._inflight[key] = inflight
                owner = True
            else:
                owner = False
        if not owner:
            return inflight.result()
        try:
            faults.fire("store.prepare", digest=digest, k=k)
            artifact = prepare_instance(graph, k, config)
        except BaseException as exc:
            with self._lock:
                del self._inflight[key]
            inflight.set_exception(exc)
            raise
        with self._lock:
            self._prepared[key] = artifact
            self._prepares += 1
            del self._inflight[key]
            if self.max_prepared is not None:
                while len(self._prepared) > self.max_prepared:
                    self._prepared.popitem(last=False)
                    self._prepared_evictions += 1
        inflight.set_result(artifact)
        if self._persistence is not None:
            try:
                self._persistence.save_prepared(key, artifact)
            except Exception:
                logger.warning("persisting prepared artifact for %s failed; kept in memory only",
                               digest[:12], exc_info=True)
        return artifact

    # ------------------------------------------------------------------ #
    def stats(self) -> Dict[str, int]:
        """Counters: stored graphs/artifacts, builds, cache hits, evictions."""
        with self._lock:
            return {
                "graphs": len(self._graphs),
                "prepares": self._prepares,
                "prepared_hits": self._prepared_hits,
                "prepared_artifacts": len(self._prepared),
                "graph_evictions": self._graph_evictions,
                "prepared_evictions": self._prepared_evictions,
                "restored_graphs": self._restored_graphs,
                "restored_prepared": self._restored_prepared,
                "mutations": self._mutations,
                "restored_deltas": self._restored_deltas,
            }

    # ------------------------------------------------------------------ #
    # Pickling
    # ------------------------------------------------------------------ #
    def __getstate__(self) -> Dict[str, object]:
        """Snapshot the cached data, excluding live synchronisation state.

        The lock, the in-flight futures and the persistence attachment are
        process-local and unpicklable; the unpickled copy gets a fresh lock,
        an empty in-flight table (waiters cannot travel between processes —
        any in-progress preparation simply re-runs on first request) and no
        persistence (re-attach explicitly if the copy should persist).
        """
        with self._lock:
            return {
                "max_graphs": self.max_graphs,
                "max_prepared": self.max_prepared,
                "graphs": OrderedDict(self._graphs),
                "names": dict(self._names),
                "prepared": OrderedDict(self._prepared),
                "parents": dict(self._parents),
                "deltas": dict(self._deltas),
                "prepares": self._prepares,
                "prepared_hits": self._prepared_hits,
                "graph_evictions": self._graph_evictions,
                "prepared_evictions": self._prepared_evictions,
                "restored_graphs": self._restored_graphs,
                "restored_prepared": self._restored_prepared,
                "mutations": self._mutations,
                "restored_deltas": self._restored_deltas,
            }

    def __setstate__(self, state: Dict[str, object]) -> None:
        self.max_graphs = state["max_graphs"]
        self.max_prepared = state["max_prepared"]
        self._persistence = None
        self._lock = threading.Lock()
        self._graphs = OrderedDict(state["graphs"])
        self._names = dict(state["names"])
        self._prepared = OrderedDict(state["prepared"])
        self._inflight = {}
        self._parents = dict(state.get("parents", {}))
        self._deltas = dict(state.get("deltas", {}))
        self._prepares = state["prepares"]
        self._prepared_hits = state["prepared_hits"]
        self._graph_evictions = state["graph_evictions"]
        self._prepared_evictions = state["prepared_evictions"]
        self._restored_graphs = state["restored_graphs"]
        self._restored_prepared = state["restored_prepared"]
        self._mutations = state.get("mutations", 0)
        self._restored_deltas = state.get("restored_deltas", 0)
