"""Digest-keyed graph store with per-``(graph, k)`` prepared-artifact slots.

The store is the service's memory: each graph is loaded once (keyed by its
canonical content digest, so re-adding the same graph — even built in a
different vertex order — is a no-op) and each ``(graph, k, prepare-config)``
combination is prepared at most once, no matter how many concurrent requests
ask for it.  Single-flight deduplication hands every concurrent requester the
same in-progress :class:`~concurrent.futures.Future` instead of preparing the
artifact twice.
"""

from __future__ import annotations

import threading
from concurrent.futures import Future
from typing import Dict, Optional, Tuple

from ..core.config import SolverConfig
from ..core.prepared import PreparedInstance, prepare_instance
from ..exceptions import UnknownGraphError
from ..graphs.graph import Graph

__all__ = ["GraphStore"]

#: Cache key of one prepared-artifact slot: the digest, ``k``, and the three
#: prepare-relevant configuration knobs (everything else — backend, engine,
#: workers, budgets — is execute-side and shares the artifact).
_PreparedKey = Tuple[str, int, str, bool, bool]


class GraphStore:
    """Thread-safe store of graphs and their prepared solve artifacts.

    All methods may be called concurrently; preparation of distinct slots
    proceeds in parallel while requests for the *same* slot block on one
    shared computation (single-flight).
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._graphs: Dict[str, Graph] = {}
        self._names: Dict[str, str] = {}
        self._prepared: Dict[_PreparedKey, PreparedInstance] = {}
        self._inflight: Dict[_PreparedKey, Future] = {}
        self._prepares = 0
        self._prepared_hits = 0

    # ------------------------------------------------------------------ #
    # Graphs
    # ------------------------------------------------------------------ #
    def add(self, graph: Graph, name: Optional[str] = None) -> str:
        """Register ``graph`` (copied) and return its content digest.

        Adding a graph whose digest is already present is a cheap no-op that
        returns the existing digest; ``name`` is a human-readable label kept
        for listings only.
        """
        digest = graph.content_digest()
        with self._lock:
            if digest not in self._graphs:
                self._graphs[digest] = graph.copy()
            if name is not None:
                self._names[digest] = name
        return digest

    def get(self, digest: str) -> Graph:
        """Return the stored graph for ``digest`` (the store's own copy; do not mutate)."""
        with self._lock:
            graph = self._graphs.get(digest)
        if graph is None:
            raise UnknownGraphError(digest)
        return graph

    def __contains__(self, digest: str) -> bool:
        with self._lock:
            return digest in self._graphs

    def __len__(self) -> int:
        with self._lock:
            return len(self._graphs)

    def graphs(self) -> Dict[str, str]:
        """Return ``{digest: name}`` for every stored graph (unnamed -> ``""``)."""
        with self._lock:
            return {d: self._names.get(d, "") for d in self._graphs}

    # ------------------------------------------------------------------ #
    # Prepared artifacts
    # ------------------------------------------------------------------ #
    @staticmethod
    def _key(digest: str, k: int, config: SolverConfig) -> _PreparedKey:
        return (digest, k, config.initial_heuristic, config.use_rr5, config.use_rr6)

    def prepared(
        self, digest: str, k: int, config: Optional[SolverConfig] = None
    ) -> PreparedInstance:
        """Return the prepared artifact for ``(digest, k, config)``, building it once.

        The first caller of a slot runs :func:`prepare_instance`; concurrent
        callers of the same slot wait on that computation instead of
        repeating it, and later callers get the cached artifact immediately.
        A failed preparation is not cached — the next request retries.
        """
        if config is None:
            config = SolverConfig()
        key = self._key(digest, k, config)
        with self._lock:
            artifact = self._prepared.get(key)
            if artifact is not None:
                self._prepared_hits += 1
                return artifact
            inflight = self._inflight.get(key)
            if inflight is None:
                graph = self._graphs.get(digest)
                if graph is None:
                    raise UnknownGraphError(digest)
                inflight = Future()
                self._inflight[key] = inflight
                owner = True
            else:
                owner = False
        if not owner:
            return inflight.result()
        try:
            artifact = prepare_instance(graph, k, config)
        except BaseException as exc:
            with self._lock:
                del self._inflight[key]
            inflight.set_exception(exc)
            raise
        with self._lock:
            self._prepared[key] = artifact
            self._prepares += 1
            del self._inflight[key]
        inflight.set_result(artifact)
        return artifact

    # ------------------------------------------------------------------ #
    def stats(self) -> Dict[str, int]:
        """Counters: stored graphs, artifacts built, artifact cache hits."""
        with self._lock:
            return {
                "graphs": len(self._graphs),
                "prepares": self._prepares,
                "prepared_hits": self._prepared_hits,
            }
