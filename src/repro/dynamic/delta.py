"""Edge deltas: validated batch mutations and affected-anchor analysis.

A dynamic graph evolves by :class:`EdgeDelta` batches — edge additions and
removals applied atomically.  :func:`apply_delta` turns a snapshot into its
successor (and the successor's content digest, which is how the service's
digest chain is built), and :func:`affected_anchors` answers the question
the incremental solver lives on: *which ego subproblems of the previous
solve could a delta have invalidated?*

Why only **added** edges invalidate anchors
-------------------------------------------
Let ``G`` be the predecessor, ``G'`` the successor, and suppose the
previous optimum ``S*`` (size ``lb``) is still a valid k-defective clique
in ``G'`` (the caller re-verifies this; see
:meth:`repro.dynamic.incremental.IncrementalSolver.apply`).  Any solution
``S`` valid in ``G'`` with ``|S| > lb`` cannot be valid in ``G`` —
otherwise the previous solve would have found it.  Its missing-edge count
therefore *dropped* going from ``G`` to ``G'``, which only an **added**
edge inside ``S`` can cause: removed edges only add missing pairs.  So
``S`` contains both endpoints of some added edge ``(x, y)``.

Now let ``v`` be the lowest-ranked vertex of ``S`` under the previous
solve's degeneracy order.  ``|S| > lb >= k + 1`` gives ``|S| >= k + 2``,
so ``S`` has diameter at most 2 in ``G'`` [Chen et al. 2021] — hence
``x`` and ``y`` both lie within distance 2 of ``v`` in ``G'``, and both
rank at least ``pos(v)``.  Re-solving exactly the anchors

    ``{v : x, y ∈ B₂(v) and pos(v) <= min(pos(x), pos(y))}``

over all added edges ``(x, y)`` — with the still-valid previous optimum as
the incumbent — is therefore exact.  Removed edges never appear here; they
are handled entirely through incumbent re-verification (a removal can only
shrink the optimum, and if the previous witness survives it, the previous
optimum is still the optimum among all *old* solutions).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Mapping, Sequence, Set, Tuple

from ..exceptions import InvalidParameterError, SelfLoopError
from ..graphs.graph import Edge, Graph, Vertex

__all__ = ["EdgeDelta", "affected_anchors", "apply_delta"]


def _canonical_edge(edge: Sequence[Vertex]) -> Edge:
    """Normalise one edge: a 2-tuple with a deterministic endpoint order."""
    try:
        u, v = edge
    except (TypeError, ValueError):
        raise InvalidParameterError(f"delta edges must be (u, v) pairs, got {edge!r}")
    if u == v:
        raise SelfLoopError(u)
    # Arbitrary hashable labels may not be mutually orderable; sort by the
    # same type-tagged key the canonical content digest uses.
    key = lambda x: (str(type(x)), str(x))  # noqa: E731 - tiny local key
    return (u, v) if key(u) <= key(v) else (v, u)


def _canonical_edges(edges: Iterable[Sequence[Vertex]]) -> Tuple[Edge, ...]:
    seen: Dict[Edge, None] = {}
    for edge in edges:
        seen.setdefault(_canonical_edge(edge), None)
    key = lambda e: (str(type(e[0])), str(e[0]), str(type(e[1])), str(e[1]))  # noqa: E731
    return tuple(sorted(seen, key=key))


@dataclass(frozen=True)
class EdgeDelta:
    """One validated, canonicalized batch of edge additions and removals.

    Construction normalises both lists — endpoints ordered deterministically
    within each edge, duplicates dropped, edges sorted — so two deltas
    describing the same mutation compare equal and pickle identically.
    Self-loops raise :class:`~repro.exceptions.SelfLoopError`; an edge in
    both lists, or an entirely empty delta, raises
    :class:`~repro.exceptions.InvalidParameterError` (an empty delta would
    mint no successor digest, so it can only be a caller bug).

    Additions may reference vertices the graph does not have yet — applying
    the delta creates them (and the incremental solver falls back to a full
    solve, since its prepared relabeling cannot cover them).
    """

    adds: Tuple[Edge, ...] = ()
    removes: Tuple[Edge, ...] = ()

    def __init__(
        self,
        adds: Iterable[Sequence[Vertex]] = (),
        removes: Iterable[Sequence[Vertex]] = (),
    ) -> None:
        object.__setattr__(self, "adds", _canonical_edges(adds))
        object.__setattr__(self, "removes", _canonical_edges(removes))
        overlap = set(self.adds) & set(self.removes)
        if overlap:
            raise InvalidParameterError(
                f"delta adds and removes overlap: {sorted(map(str, overlap))}"
            )
        if not self.adds and not self.removes:
            raise InvalidParameterError("a delta must add or remove at least one edge")

    def __len__(self) -> int:
        return len(self.adds) + len(self.removes)

    def vertices(self) -> Set[Vertex]:
        """Every vertex touched by the delta."""
        out: Set[Vertex] = set()
        for u, v in self.adds + self.removes:
            out.add(u)
            out.add(v)
        return out

    def relabel(self, to_int: Mapping[Vertex, int]) -> "EdgeDelta":
        """The same delta over relabeled integer ids.

        Raises ``KeyError`` when an endpoint is outside the relabeling —
        the incremental solver's signal that the graph grew past its
        prepared epoch and a full solve is required.
        """
        return EdgeDelta(
            adds=[(to_int[u], to_int[v]) for u, v in self.adds],
            removes=[(to_int[u], to_int[v]) for u, v in self.removes],
        )

    # ------------------------------------------------------------------ #
    # Wire format (JSON-lines protocol / persistence WAL)
    # ------------------------------------------------------------------ #
    def as_payload(self) -> Dict[str, List[List[Vertex]]]:
        """JSON-ready ``{"adds": [[u, v], ...], "removes": ...}`` form."""
        return {
            "adds": [list(e) for e in self.adds],
            "removes": [list(e) for e in self.removes],
        }

    @classmethod
    def from_payload(cls, payload: Mapping) -> "EdgeDelta":
        """Rebuild (and re-validate) a delta from its wire form."""
        return cls(adds=payload.get("adds") or (), removes=payload.get("removes") or ())


def apply_delta(graph: Graph, delta: EdgeDelta) -> Tuple[Graph, str]:
    """Return ``(successor, successor_digest)`` for ``graph`` under ``delta``.

    ``graph`` is never modified.  Validation is strict — adding an edge that
    already exists raises :class:`~repro.exceptions.InvalidParameterError`
    and removing one that does not exist raises
    :class:`~repro.exceptions.EdgeNotFoundError` — so a delta that does not
    describe a real transition fails loudly instead of silently producing a
    digest chain that skips states.
    """
    successor = graph.copy()
    for u, v in delta.removes:
        successor.remove_edge(u, v)  # EdgeNotFoundError on a missing edge
    for u, v in delta.adds:
        if successor.has_edge(u, v):
            raise InvalidParameterError(
                f"delta adds edge ({u!r}, {v!r}) which already exists"
            )
        successor.add_edge(u, v)
    return successor, successor.content_digest()


def affected_anchors(
    graph: Graph,
    position: Mapping[Vertex, int],
    delta: EdgeDelta,
    k: int,
) -> Set[Vertex]:
    """Anchors whose journaled ego-subproblem results ``delta`` invalidates.

    Parameters
    ----------
    graph:
        The **successor** graph (``delta`` already applied) — solutions the
        re-solve must find live here, and the diameter-2 balls are taken in
        this graph.
    position:
        Vertex -> rank of the previous solve's degeneracy order (any fixed
        total order is sound; degeneracy just keeps subproblems small).
        Every vertex of ``graph`` must have a rank — callers fall back to a
        full solve when the delta grew the vertex set.
    delta:
        The applied delta.  Only its ``adds`` generate anchors (see the
        module docstring proof); a removal-only delta returns the empty set
        because removals are handled by incumbent re-verification alone.
    k:
        Defectiveness parameter; the argument needs the re-solve to search
        only solutions of size ``>= k + 2``, which the decomposition driver
        guarantees by requiring an incumbent of size ``>= k + 1``.

    Returns
    -------
    The set of anchors ``v`` with both endpoints of some added edge inside
    ``v``'s distance-2 ball and ranked no lower than ``v`` — the only
    anchors where a solution beating a still-valid previous optimum can
    hide.  Every other anchor's journaled result carries over verbatim.
    """
    if k < 0:
        raise InvalidParameterError(f"k must be non-negative, got {k}")
    anchors: Set[Vertex] = set()
    balls: Dict[Vertex, Set[Vertex]] = {}

    def ball2(x: Vertex) -> Set[Vertex]:
        cached = balls.get(x)
        if cached is None:
            cached = {x}
            cached.update(graph.neighbors(x))
            for w in tuple(graph.neighbors(x)):
                cached.update(graph.neighbors(w))
            balls[x] = cached
        return cached

    for x, y in delta.adds:
        cutoff = min(position[x], position[y])
        for v in ball2(x) & ball2(y):
            if position[v] <= cutoff:
                anchors.add(v)
    return anchors
