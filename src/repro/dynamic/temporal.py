"""Temporal graphs: a timestamped stream of edge deltas over a base graph.

:class:`TemporalGraph` is the thin modelling layer between raw dynamic-graph
data (timestamped edge events, periodic snapshots) and the incremental
solver: it holds an initial snapshot plus an ordered sequence of
``(timestamp, EdgeDelta)`` steps and replays them on demand, yielding either
the deltas themselves (to drive
:meth:`~repro.dynamic.incremental.IncrementalSolver.apply`) or materialized
snapshots (to drive a from-scratch baseline).  Replay is deterministic and
validated — a step that does not describe a real transition (removing an
absent edge, re-adding a present one) raises at the offending timestamp.

``examples/citation_hotspots.py`` is the flagship consumer: it tracks
maximum k-defective-clique "hot spots" across the snapshots of a synthetic
evolving citation network, comparing the incremental solver against the
from-scratch baseline step by step.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, List, Optional, Sequence, Tuple

from ..exceptions import InvalidParameterError
from ..graphs.graph import Graph, Vertex
from .delta import EdgeDelta, apply_delta

__all__ = ["TemporalGraph", "TemporalStep"]

#: Accepted spellings for edge events, normalised to "add" / "remove".
_EVENT_OPS = {
    "add": "add", "+": "add", "insert": "add",
    "remove": "remove", "-": "remove", "delete": "remove",
}


@dataclass(frozen=True)
class TemporalStep:
    """One replayed step: the delta applied at ``timestamp`` and the
    resulting snapshot (a private copy — safe to keep or mutate)."""

    timestamp: object
    delta: EdgeDelta
    graph: Graph
    digest: str


class TemporalGraph:
    """An evolving graph as ``base`` plus ordered ``(timestamp, delta)`` steps.

    Timestamps are opaque sortable labels (ints, floats, dates); they must
    be strictly increasing, making each one a unique snapshot identity.
    """

    def __init__(
        self,
        base: Graph,
        steps: Iterable[Tuple[object, EdgeDelta]] = (),
    ) -> None:
        self._base = base.copy()
        self._steps: List[Tuple[object, EdgeDelta]] = []
        last = None
        for timestamp, delta in steps:
            if not isinstance(delta, EdgeDelta):
                delta = EdgeDelta.from_payload(delta)
            if self._steps and not last < timestamp:
                raise InvalidParameterError(
                    f"temporal steps must have strictly increasing timestamps; "
                    f"{timestamp!r} follows {last!r}"
                )
            self._steps.append((timestamp, delta))
            last = timestamp

    @classmethod
    def from_events(
        cls,
        events: Iterable[Tuple[object, str, Vertex, Vertex]],
        *,
        base: Optional[Graph] = None,
    ) -> "TemporalGraph":
        """Build from an edge-event stream ``(timestamp, op, u, v)``.

        ``op`` is ``"add"``/``"+"``/``"insert"`` or
        ``"remove"``/``"-"``/``"delete"``.  Events sharing a timestamp are
        batched into one delta (one atomic step); timestamps must arrive
        sorted.  With no ``base``, the stream starts from an empty graph.
        """
        steps: List[Tuple[object, EdgeDelta]] = []
        pending_t: object = None
        adds: List[Tuple[Vertex, Vertex]] = []
        removes: List[Tuple[Vertex, Vertex]] = []

        def flush() -> None:
            if adds or removes:
                steps.append((pending_t, EdgeDelta(adds=adds, removes=removes)))
                adds.clear()
                removes.clear()

        for timestamp, op, u, v in events:
            kind = _EVENT_OPS.get(str(op).lower())
            if kind is None:
                raise InvalidParameterError(f"unknown edge-event op {op!r}")
            if (adds or removes) and timestamp != pending_t:
                flush()
            pending_t = timestamp
            (adds if kind == "add" else removes).append((u, v))
        flush()
        return cls(base if base is not None else Graph(), steps)

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        return len(self._steps)

    @property
    def base(self) -> Graph:
        """A copy of the initial snapshot."""
        return self._base.copy()

    def timestamps(self) -> Sequence[object]:
        return tuple(t for t, _ in self._steps)

    def deltas(self) -> Iterator[Tuple[object, EdgeDelta]]:
        """The raw ``(timestamp, delta)`` stream, without materializing."""
        return iter(tuple(self._steps))

    # ------------------------------------------------------------------ #
    # Replay
    # ------------------------------------------------------------------ #
    def __iter__(self) -> Iterator[TemporalStep]:
        return self.steps()

    def steps(self) -> Iterator[TemporalStep]:
        """Replay the stream, yielding one :class:`TemporalStep` per delta.

        Each yielded snapshot is an independent copy, so consumers may hold
        several timestamps at once (or hand them to a solver that keeps
        them).  Validation is inherited from
        :func:`~repro.dynamic.delta.apply_delta` — an inconsistent step
        raises when reached.
        """
        current = self._base.copy()
        for timestamp, delta in self._steps:
            current, digest = apply_delta(current, delta)
            yield TemporalStep(
                timestamp=timestamp, delta=delta, graph=current.copy(), digest=digest
            )

    def snapshots(self) -> Iterator[Tuple[object, Graph]]:
        """Just ``(timestamp, graph)`` pairs — the from-scratch view."""
        for step in self.steps():
            yield step.timestamp, step.graph

    def snapshot_at(self, timestamp: object) -> Graph:
        """The snapshot exactly at ``timestamp`` (the base graph's own state
        has no timestamp; the first step's result is the first snapshot)."""
        for step in self.steps():
            if step.timestamp == timestamp:
                return step.graph
        raise InvalidParameterError(f"no temporal step at timestamp {timestamp!r}")
