"""Dynamic-graph subsystem: edge deltas, incremental re-solve, temporal streams.

Static solves treat a graph as immutable; this package makes the solver
*incremental* across edge mutations:

- :mod:`repro.dynamic.delta` — validated :class:`EdgeDelta` batches,
  successor construction (:func:`apply_delta`) and the affected-anchor
  analysis (:func:`affected_anchors`) that bounds which ego subproblems a
  delta can invalidate.
- :mod:`repro.dynamic.incremental` — :class:`IncrementalSolver`, an exact
  solver that re-runs only affected subproblems per delta, carrying the
  rest over through the :class:`~repro.core.checkpoint.SolveCheckpoint`
  journal contract.
- :mod:`repro.dynamic.temporal` — :class:`TemporalGraph`, a timestamped
  delta stream with deterministic snapshot replay.

The service layer exposes the same machinery over the wire: the ``mutate``
request (see :mod:`repro.service.server`) applies a delta to a stored
graph, and :class:`~repro.service.scheduler.SolverService` routes solves on
mutated graphs through an :class:`IncrementalSolver` when a predecessor
solve is available.
"""

from .delta import EdgeDelta, affected_anchors, apply_delta
from .incremental import DeltaSolveReport, IncrementalSolver
from .temporal import TemporalGraph, TemporalStep

__all__ = [
    "DeltaSolveReport",
    "EdgeDelta",
    "IncrementalSolver",
    "TemporalGraph",
    "TemporalStep",
    "affected_anchors",
    "apply_delta",
]
