"""Incremental exact maximum k-defective clique solving over edge deltas.

:class:`IncrementalSolver` wraps :class:`~repro.core.solver.KDCSolver` with
an *epoch* of reusable state from the last full solve — the relabeled graph,
its degeneracy decomposition, and the optimum witness.  Applying an
:class:`~repro.dynamic.delta.EdgeDelta` then re-runs only the ego
subproblems the delta can have invalidated (see
:func:`repro.dynamic.delta.affected_anchors` for the proof), seeding the
shared incumbent from the re-verified previous optimum and carrying every
unaffected anchor over as already-completed — the same journal contract
:func:`repro.core.decompose.solve_decomposed` honours for crash resume, so
the carry-over store *is* a :class:`~repro.core.checkpoint.SolveCheckpoint`
when a ``checkpoint_dir`` is given (a killed incremental re-solve resumes
mid-delta) and an in-memory equivalent when not.

Exactness is non-negotiable and rests on three guards, all enforced here:

1. **Witness re-verification.**  The previous optimum is re-checked against
   the successor graph before it seeds anything — an edge removal can
   silently shrink a previously valid kDC, so stale incumbents are never
   trusted.  If the witness broke, the previous optimum value itself is no
   longer a certified lower bound for carried-over anchors and the solver
   falls back to a full solve.
2. **Epoch-bounded relabeling.**  A delta that introduces vertices outside
   the epoch's relabeling cannot be expressed over the prepared
   decomposition; full solve.
3. **Fresh-graph preprocessing only.**  The epoch keeps the *unreduced*
   relabeled graph, never the RR5/RR6-preprocessed one — those reductions
   were taken relative to an old lower bound on an old graph and are
   unsound to reuse once edges are added.  The decomposition's per-anchor
   size cap provides the pruning instead.

When the affected set grows past ``max_affected_fraction`` of the vertices
the incremental route would do most of a full solve's work anyway, so the
solver falls back (and re-establishes a fresh epoch while it is at it).
"""

from __future__ import annotations

import logging
import os
import time
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Set, Tuple

from ..core.checkpoint import SolveCheckpoint, checkpoint_meta, checkpoint_token
from ..core.decompose import solve_decomposed
from ..core.result import SearchStats, SolveResult
from ..core.solver import KDCSolver
from ..exceptions import BudgetExceededError, InvalidParameterError
from ..graphs.degeneracy import degeneracy_ordering
from ..graphs.graph import Graph, Vertex
from ..testing import chaos as faults
from .delta import EdgeDelta, affected_anchors, apply_delta

logger = logging.getLogger(__name__)

__all__ = ["DeltaSolveReport", "IncrementalSolver"]


class _MemoryCarry:
    """In-memory stand-in for :class:`SolveCheckpoint`'s journal contract.

    The decomposition drivers only need ``completed``,
    ``verified_incumbent``, ``record``/``record_batch`` and the lifecycle
    no-ops; keeping the same duck type means the incremental re-solve code
    is identical whether the carry-over store is durable or not.
    """

    def __init__(self) -> None:
        self.completed: Set[int] = set()
        self._incumbent: List[int] = []

    def verified_incumbent(self, neighbors: Callable[[int], Sequence[int]], k: int) -> List[int]:
        vs = self._incumbent
        if not vs or len(set(vs)) != len(vs):
            return []
        missing = 0
        try:
            for i, u in enumerate(vs):
                nbrs = set(neighbors(u))
                missing += sum(1 for w in vs[i + 1:] if w not in nbrs)
        except Exception:
            return []
        return list(vs) if missing <= k else []

    def record(self, anchor: int, incumbent: Sequence[int]) -> None:
        if anchor in self.completed:
            return
        # Same chaos point (and context) as SolveCheckpoint.record, so fault
        # scripts drive the durable and in-memory carries identically.
        faults.fire("checkpoint.append", anchor=anchor, count=len(self.completed))
        self.completed.add(anchor)
        if len(incumbent) > len(self._incumbent):
            self._incumbent = list(incumbent)

    def record_batch(self, anchors: Sequence[int], incumbent: Sequence[int]) -> None:
        for anchor in anchors:
            self.record(anchor, incumbent)

    def sync(self) -> None:  # pragma: no cover - trivial
        pass

    def close(self) -> None:  # pragma: no cover - trivial
        pass

    def complete(self) -> None:
        pass


@dataclass
class _Epoch:
    """Reusable state from the last successful *optimal* solve."""

    digest: str
    graph: Graph                      # relabeled successor of the epoch's solves
    to_int: Dict[Vertex, int]
    to_label: List[Vertex]            # to_label[i] recovers the original label
    ordering: Tuple[int, ...]         # fixed total order over ALL epoch vertices
    position: Dict[int, int]
    best: List[int]                   # optimum witness, relabeled ids


@dataclass
class DeltaSolveReport:
    """What one :meth:`IncrementalSolver.apply` did and found."""

    result: SolveResult
    digest: str
    parent_digest: str
    incremental: bool
    fallback_reason: Optional[str] = None
    anchors_total: int = 0
    anchors_affected: int = 0
    anchors_reused: int = 0
    anchors_resolved: int = 0
    elapsed_seconds: float = 0.0

    def as_dict(self) -> Dict[str, object]:
        out = {
            "digest": self.digest,
            "parent_digest": self.parent_digest,
            "incremental": self.incremental,
            "anchors_total": self.anchors_total,
            "anchors_affected": self.anchors_affected,
            "anchors_reused": self.anchors_reused,
            "anchors_resolved": self.anchors_resolved,
            "elapsed_seconds": self.elapsed_seconds,
        }
        if self.fallback_reason:
            out["fallback_reason"] = self.fallback_reason
        return out


class IncrementalSolver:
    """Exact maximum-kDC tracking across a stream of edge deltas.

    Usage: one :meth:`solve` (or :meth:`seed` from an existing optimal
    result) establishes the epoch, then :meth:`apply` advances the tracked
    graph one delta at a time, answering each successor exactly while
    re-solving only the affected ego subproblems whenever the guards allow.

    Not thread-safe; the service serialises access per
    ``(k, algorithm)`` dynamic state.
    """

    def __init__(
        self,
        config=None,
        *,
        name: str = "kDC",
        max_affected_fraction: float = 0.35,
        checkpoint_dir: Optional[str] = None,
    ) -> None:
        if not 0.0 <= max_affected_fraction <= 1.0:
            raise InvalidParameterError(
                f"max_affected_fraction must be in [0, 1], got {max_affected_fraction}"
            )
        self._solver = KDCSolver(config, name=name)
        self.max_affected_fraction = max_affected_fraction
        self.checkpoint_dir = checkpoint_dir
        self._graph: Optional[Graph] = None
        self._digest: Optional[str] = None
        self._k: Optional[int] = None
        self._epoch: Optional[_Epoch] = None
        self._last_result: Optional[SolveResult] = None
        # Carry-over store of a crashed/raised apply(), keyed by the
        # successor digest it was re-solving toward: retrying the same delta
        # resumes instead of restarting.
        self._pending: Optional[Tuple[str, _MemoryCarry]] = None

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    @property
    def config(self):
        return self._solver.config

    @property
    def name(self) -> str:
        return self._solver.name

    @property
    def digest(self) -> Optional[str]:
        """Content digest of the currently tracked snapshot."""
        return self._digest

    @property
    def k(self) -> Optional[int]:
        return self._k

    @property
    def last_result(self) -> Optional[SolveResult]:
        return self._last_result

    def graph(self) -> Graph:
        """A defensive copy of the currently tracked snapshot."""
        if self._graph is None:
            raise InvalidParameterError("no graph tracked yet; call solve() first")
        return self._graph.copy()

    # ------------------------------------------------------------------ #
    # Epoch management
    # ------------------------------------------------------------------ #
    def solve(self, graph: Graph, k: int) -> SolveResult:
        """Full from-scratch solve; establishes the tracked snapshot/epoch."""
        if k < 0:
            raise InvalidParameterError(f"k must be non-negative, got {k}")
        snapshot = graph.copy()
        result = self._solver.solve(snapshot, k)
        self._install(snapshot, snapshot.content_digest(), k, result)
        return result

    def seed(self, graph: Graph, k: int, result: SolveResult) -> None:
        """Adopt an existing **optimal** result for ``graph`` as the epoch.

        Lets the service reuse a solve it already paid for instead of
        re-solving just to start tracking.  The witness is re-validated
        against the graph before anything trusts it.
        """
        if not result.optimal:
            raise InvalidParameterError("seed() requires an optimal result")
        from ..core.defective import is_k_defective_clique

        if result.clique and not is_k_defective_clique(graph, result.clique, k):
            raise InvalidParameterError("seed() witness is not a valid k-defective clique")
        snapshot = graph.copy()
        self._install(snapshot, snapshot.content_digest(), k, result)

    def _install(self, snapshot: Graph, digest: str, k: int, result: SolveResult) -> None:
        self._graph = snapshot
        self._digest = digest
        self._k = k
        self._last_result = result
        self._pending = None
        if not result.optimal:
            # A budget-truncated answer certifies nothing; keep tracking the
            # graph but drop the epoch so the next apply() full-solves.
            self._epoch = None
            return
        relabeled, to_int, to_label = snapshot.relabel()
        decomp = degeneracy_ordering(relabeled)
        self._epoch = _Epoch(
            digest=digest,
            graph=relabeled,
            to_int=dict(to_int),
            to_label=list(to_label),
            ordering=tuple(decomp.ordering),
            position=dict(decomp.position),
            best=[to_int[v] for v in result.clique],
        )

    # ------------------------------------------------------------------ #
    # Delta application
    # ------------------------------------------------------------------ #
    def apply(
        self,
        delta: EdgeDelta,
        *,
        time_limit: Optional[float] = None,
        cancel=None,
    ) -> DeltaSolveReport:
        """Advance the tracked graph by ``delta`` and solve the successor.

        Returns a :class:`DeltaSolveReport` whose ``result`` is exactly what
        a from-scratch solve of the successor would return (same optimum
        size; both witnesses valid).  On an exception — budget trip, cancel,
        injected fault — no state is committed: the solver still tracks the
        predecessor, and retrying the *same* delta resumes from the journal
        of completed anchors instead of restarting.
        """
        if self._graph is None or self._k is None:
            raise InvalidParameterError("no graph tracked yet; call solve() first")
        started = time.monotonic()
        parent_digest = self._digest
        successor, succ_digest = apply_delta(self._graph, delta)
        k = self._k

        check_budget = self._budget(started, time_limit, cancel)
        report = self._try_incremental(
            successor, succ_digest, delta, check_budget
        )
        if report is None or report.fallback_reason is not None:
            reason = report.fallback_reason if report is not None else "no-epoch"
            report = self._full_apply(successor, succ_digest, k, reason, check_budget)
        report.parent_digest = parent_digest or ""
        report.elapsed_seconds = time.monotonic() - started
        return report

    def _budget(
        self, started: float, time_limit: Optional[float], cancel
    ) -> Callable[[], None]:
        deadline = started + time_limit if time_limit is not None else None

        def check_budget() -> None:
            if cancel is not None and cancel.is_set():
                raise BudgetExceededError("incremental solve cancelled")
            if deadline is not None and time.monotonic() > deadline:
                raise BudgetExceededError("incremental solve time limit exceeded")

        return check_budget

    def _full_apply(
        self,
        successor: Graph,
        succ_digest: str,
        k: int,
        reason: Optional[str],
        check_budget: Callable[[], None],
    ) -> DeltaSolveReport:
        check_budget()
        result = self._solver.solve(successor, k)
        self._install(successor, succ_digest, k, result)
        n = successor.num_vertices
        return DeltaSolveReport(
            result=result,
            digest=succ_digest,
            parent_digest="",
            incremental=False,
            fallback_reason=reason,
            anchors_total=n,
            anchors_affected=n,
            anchors_reused=0,
            anchors_resolved=n,
        )

    def _try_incremental(
        self,
        successor: Graph,
        succ_digest: str,
        delta: EdgeDelta,
        check_budget: Callable[[], None],
    ) -> Optional[DeltaSolveReport]:
        """The affected-anchors route, or a fallback-tagged report when a
        guard fails (``None`` only when there is no epoch at all)."""
        epoch = self._epoch
        k = self._k
        if epoch is None:
            return None

        def fallback(reason: str) -> DeltaSolveReport:
            return DeltaSolveReport(
                result=self._last_result,  # placeholder; _full_apply replaces
                digest=succ_digest,
                parent_digest="",
                incremental=False,
                fallback_reason=reason,
            )

        try:
            rel_delta = delta.relabel(epoch.to_int)
        except KeyError:
            return fallback("new-vertex")

        rel_successor, _ = apply_delta(epoch.graph, rel_delta)
        n = len(epoch.ordering)

        # Guard 1: the previous optimum must survive as a valid witness.
        best = epoch.best
        if len(best) < k + 1:
            return fallback("incumbent-below-k+1")
        if self._missing_edges(rel_successor, best) > k:
            return fallback("witness-broken")

        affected = affected_anchors(rel_successor, epoch.position, rel_delta, k)
        if len(affected) > self.max_affected_fraction * n:
            return fallback(f"affected-{len(affected)}-of-{n}")

        faults.fire(
            "dynamic.resolve",
            digest=succ_digest,
            parent=epoch.digest,
            affected=len(affected),
            total=n,
        )

        unaffected = [v for v in epoch.ordering if v not in affected]
        carry = self._open_carry(succ_digest, unaffected)
        incumbent = list(best)
        stats = SearchStats()
        config = self._solver.config
        solve_started = time.monotonic()
        try:
            if config.workers and config.workers > 1 and affected:
                from ..core.parallel import solve_decomposed_parallel

                solve_decomposed_parallel(
                    rel_successor, k, config, stats, check_budget, incumbent,
                    decomposition=(epoch.ordering, epoch.position),
                    checkpoint=carry,
                )
            else:
                solve_decomposed(
                    rel_successor, k, config, stats, check_budget, incumbent,
                    decomposition=(epoch.ordering, epoch.position),
                    checkpoint=carry,
                )
        except BaseException:
            # Keep the journal for a same-delta retry; commit nothing.
            carry.close()
            raise
        carry.complete()
        self._pending = None

        stats.backend = "bitset"
        stats.engine = config.engine
        stats.elapsed_seconds = time.monotonic() - solve_started
        clique = sorted(
            (epoch.to_label[v] for v in incumbent),
            key=lambda x: (str(type(x)), str(x)),
        )
        result = SolveResult(
            clique=list(clique),
            size=len(clique),
            k=k,
            optimal=True,
            algorithm=self._solver.name,
            stats=stats,
        )
        # Commit: successor graph in original labels + epoch advanced in
        # relabeled space (the relabeling and ordering persist unchanged —
        # correctness only needs a fixed total order, see delta.py).
        self._graph = successor
        self._digest = succ_digest
        self._last_result = result
        self._epoch = _Epoch(
            digest=succ_digest,
            graph=rel_successor,
            to_int=epoch.to_int,
            to_label=epoch.to_label,
            ordering=epoch.ordering,
            position=epoch.position,
            best=list(incumbent),
        )
        return DeltaSolveReport(
            result=result,
            digest=succ_digest,
            parent_digest="",
            incremental=True,
            anchors_total=n,
            anchors_affected=len(affected),
            anchors_reused=n - len(affected),
            anchors_resolved=len(affected),
        )

    # ------------------------------------------------------------------ #
    # Carry-over store
    # ------------------------------------------------------------------ #
    def _open_carry(self, succ_digest: str, unaffected: Sequence[int]):
        """The carry-over journal for one successor re-solve.

        Durable (:class:`SolveCheckpoint`) when a ``checkpoint_dir`` is set,
        in-memory otherwise; either way the journal holds only the
        *affected* anchors completed so far — the unaffected set is
        recomputed deterministically from the delta on every attempt and
        merged in before the drivers snapshot ``completed``, so a resumed
        attempt skips both carried-over and already-re-solved anchors.
        """
        carry = None
        if self.checkpoint_dir is not None:
            try:
                os.makedirs(self.checkpoint_dir, exist_ok=True)
                meta = checkpoint_meta(
                    succ_digest, self._k, f"{self._solver.name}-incremental",
                    self._solver.config,
                )
                path = os.path.join(self.checkpoint_dir, f"{checkpoint_token(meta)}.wal")
                carry = SolveCheckpoint(path, meta)
            except OSError as exc:  # pragma: no cover - disk trouble
                logger.warning("incremental carry-over journal unavailable: %s", exc)
                carry = None
        if carry is None:
            if self._pending is not None and self._pending[0] == succ_digest:
                carry = self._pending[1]
            else:
                carry = _MemoryCarry()
            self._pending = (succ_digest, carry)
        carry.completed.update(unaffected)
        return carry

    @staticmethod
    def _missing_edges(graph: Graph, vertices: Sequence[int]) -> int:
        missing = 0
        for i, u in enumerate(vertices):
            nbrs = graph.neighbors(u)
            missing += sum(1 for w in vertices[i + 1:] if w not in nbrs)
        return missing
