"""Properties of maximum k-defective cliques (Section 4.3: Tables 5, 6 and 7).

Three analyses are reproduced:

* **Table 5** — ratio of the maximum k-defective clique size over the maximum
  clique size (average and maximum per graph collection);
* **Table 6** — number of graphs whose maximum k-defective clique is an
  extension of a maximum clique (i.e. contains a clique of maximum size);
* **Table 7** — average percentage of vertices inside the maximum k-defective
  clique that are not fully connected to the rest of the clique.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence

from ..baselines.max_clique import MaxCliqueSolver
from ..core.config import SolverConfig
from ..core.solver import KDCSolver
from ..graphs.graph import Graph, Vertex

__all__ = [
    "DefectiveCliqueProperties",
    "analyze_graph",
    "size_ratio",
    "extends_maximum_clique",
    "fraction_not_fully_connected",
    "aggregate_properties",
]


@dataclass(frozen=True)
class DefectiveCliqueProperties:
    """Per-graph, per-k property record used by the Tables 5–7 analyses."""

    graph_name: str
    k: int
    max_clique_size: int
    max_defective_clique_size: int
    size_ratio: float
    extends_max_clique: bool
    fraction_not_fully_connected: float
    solved: bool


def size_ratio(defective_size: int, clique_size: int) -> float:
    """Return ``defective_size / clique_size`` (0.0 when the clique size is 0)."""
    if clique_size == 0:
        return 0.0
    return defective_size / clique_size


def extends_maximum_clique(graph: Graph, clique: Sequence[Vertex], max_clique_size: int) -> bool:
    """Return ``True`` if ``clique`` contains a clique of size ``max_clique_size``.

    This is the paper's Table 6 criterion: the reported maximum k-defective
    clique "is an extension of a maximum clique" when some maximum clique of
    the graph is a subset of it.
    """
    if max_clique_size == 0:
        return True
    if len(clique) < max_clique_size:
        return False
    induced = graph.subgraph(clique)
    inner = MaxCliqueSolver().solve(induced)
    return inner.size >= max_clique_size


def fraction_not_fully_connected(graph: Graph, clique: Sequence[Vertex]) -> float:
    """Return the fraction of clique vertices with at least one non-neighbour inside the clique."""
    members = list(clique)
    if not members:
        return 0.0
    member_set = set(members)
    not_full = 0
    for v in members:
        nbrs = graph.neighbors(v)
        if any(u != v and u not in nbrs for u in member_set):
            not_full += 1
    return not_full / len(members)


def analyze_graph(
    graph: Graph,
    k: int,
    graph_name: str = "graph",
    config: Optional[SolverConfig] = None,
    time_limit: Optional[float] = None,
) -> DefectiveCliqueProperties:
    """Solve maximum clique and maximum k-defective clique on ``graph`` and report the Table 5–7 metrics."""
    if config is None:
        config = SolverConfig(time_limit=time_limit)
    solver = KDCSolver(config)
    defective = solver.solve(graph, k)
    clique_result = MaxCliqueSolver(time_limit=time_limit).solve(graph)
    return DefectiveCliqueProperties(
        graph_name=graph_name,
        k=k,
        max_clique_size=clique_result.size,
        max_defective_clique_size=defective.size,
        size_ratio=size_ratio(defective.size, clique_result.size),
        extends_max_clique=extends_maximum_clique(graph, defective.clique, clique_result.size),
        fraction_not_fully_connected=fraction_not_fully_connected(graph, defective.clique),
        solved=defective.optimal and clique_result.optimal,
    )


def aggregate_properties(records: Iterable[DefectiveCliqueProperties]) -> Dict[str, float]:
    """Aggregate per-graph records into the row format of Tables 5–7.

    Only records with ``solved=True`` are aggregated, matching the paper's
    convention of reporting properties only for instances solved within the
    time limit.
    """
    solved: List[DefectiveCliqueProperties] = [r for r in records if r.solved]
    if not solved:
        return {
            "count": 0,
            "avg_ratio": 0.0,
            "max_ratio": 0.0,
            "num_extending_max_clique": 0,
            "avg_pct_not_fully_connected": 0.0,
        }
    ratios = [r.size_ratio for r in solved]
    return {
        "count": len(solved),
        "avg_ratio": sum(ratios) / len(ratios),
        "max_ratio": max(ratios),
        "num_extending_max_clique": sum(1 for r in solved if r.extends_max_clique),
        "avg_pct_not_fully_connected": 100.0
        * sum(r.fraction_not_fully_connected for r in solved)
        / len(solved),
    }
