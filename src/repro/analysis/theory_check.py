"""Empirical checks of the complexity analysis (Section 3.1.2, Lemma 3.4).

The heart of the paper's :math:`O^*(\\gamma_k^n)` bound is **Fact 3**: along a
chain of consecutive left branches (always including the branching vertex),
at most ``k + 1`` branchings can happen before the reduction rules shrink the
instance by at least two vertices — because rule BR only branches on vertices
that add missing edges once the solution stops being fully adjacent, and
RR1/RR2 guarantee every candidate has at least two non-neighbours
(Lemma 3.3).

This module replays left-branch chains on arbitrary graphs and measures their
length, so the proof's combinatorial core can be validated empirically, and
it compares the solver's actual node count against the theoretical
:math:`2\\gamma_k^n` node bound.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from ..core.branching import select_branching_vertex
from ..core.config import SolverConfig
from ..core.gamma import gamma
from ..core.instance import SearchState
from ..core.reductions import apply_reductions
from ..core.solver import KDCSolver
from ..graphs.graph import Graph

__all__ = ["LeftSpineTrace", "trace_left_spine", "NodeCountCheck", "check_node_count_bound"]

#: Configuration matching Algorithm 1 (kDC-t): only BR + RR1 + RR2.
_THEORY_CONFIG = SolverConfig(
    use_ub1=False,
    use_ub2=False,
    use_ub3=False,
    use_rr3=False,
    use_rr4=False,
    use_rr5=False,
    use_rr6=False,
    initial_heuristic="none",
)


@dataclass(frozen=True)
class LeftSpineTrace:
    """One maximal chain of left branches, in the sense of Lemma 3.4.

    Attributes
    ----------
    branchings_before_shrink:
        The ``q`` of the lemma: how many consecutive left branches were taken
        before the instance size ``|I| = |V(g) \\ S|`` dropped by at least two
        in a single step (or the chain ended at a leaf).
    sizes:
        The instance sizes ``|I_0|, |I_1|, ...`` along the chain, measured
        after the reduction rules of each node.
    ended_at_leaf:
        Whether the chain terminated because the instance became a
        k-defective clique rather than because of a size drop.
    """

    branchings_before_shrink: int
    sizes: List[int]
    ended_at_leaf: bool


def trace_left_spine(graph: Graph, k: int, max_steps: int = 10_000) -> LeftSpineTrace:
    """Follow the always-left path of Algorithm 1 on ``graph`` and measure its shape.

    The path starts at the root instance ``(G, ∅)`` and repeatedly applies
    RR1/RR2, selects the BR branching vertex, and descends into the inclusion
    child — exactly the path the proof of Lemma 3.4 reasons about.  The walk
    stops at the first step whose reductions shrink the instance by at least
    two vertices (beyond the branching vertex itself), or at a leaf.
    """
    relabeled, _, _ = graph.relabel()
    adj = [set(relabeled.neighbors(v)) for v in range(relabeled.num_vertices)]
    state = SearchState.initial(adj, k)

    sizes: List[int] = []
    branchings = 0
    ended_at_leaf = False
    previous_size: Optional[int] = None

    for _ in range(max_steps):
        apply_reductions(state, _THEORY_CONFIG, lower_bound=0)
        size = state.instance_size
        sizes.append(size)
        if previous_size is not None and size <= previous_size - 2:
            # The lemma's terminating condition: |I_q| <= |I_{q-1}| - 2.
            break
        if state.is_defective_clique():
            ended_at_leaf = True
            break
        vertex = select_branching_vertex(state)
        if vertex is None:
            ended_at_leaf = True
            break
        state.add_to_solution(vertex)
        branchings += 1
        previous_size = size
    return LeftSpineTrace(
        branchings_before_shrink=branchings,
        sizes=sizes,
        ended_at_leaf=ended_at_leaf,
    )


@dataclass(frozen=True)
class NodeCountCheck:
    """Comparison of the measured search-tree size against the theoretical bound."""

    k: int
    num_vertices: int
    measured_nodes: int
    gamma_k: float
    #: theoretical bound on the number of search-tree nodes: 2 * gamma_k ** n
    node_bound: float

    @property
    def within_bound(self) -> bool:
        """True when the measured node count respects the theoretical bound."""
        return self.measured_nodes <= self.node_bound


def check_node_count_bound(graph: Graph, k: int, config: Optional[SolverConfig] = None) -> NodeCountCheck:
    """Solve ``graph`` and compare the explored node count with ``2·γ_k^n``.

    The comparison uses the number of vertices of the *reduced* graph handed
    to the branch-and-bound (the bound in Theorem 3.5 is stated for the graph
    the search actually runs on).  For the full practical solver the measured
    count is typically many orders of magnitude below the bound; the check is
    still meaningful for the theoretical variant ``kDC-t`` on small graphs.
    """
    if config is None:
        config = _THEORY_CONFIG
    solver = KDCSolver(config, name="theory-check")
    result = solver.solve(graph, k)
    n = graph.num_vertices
    g = gamma(k)
    bound = 2.0 * (g ** n)
    return NodeCountCheck(
        k=k,
        num_vertices=n,
        measured_nodes=result.stats.nodes,
        gamma_k=g,
        node_bound=bound,
    )
