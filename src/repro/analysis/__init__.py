"""Analyses of maximum k-defective cliques (the paper's Section 4.3) and bound quality."""

from .bound_quality import BoundQualityReport, BoundSample, sample_bound_quality
from .theory_check import (
    LeftSpineTrace,
    NodeCountCheck,
    check_node_count_bound,
    trace_left_spine,
)
from .properties import (
    DefectiveCliqueProperties,
    aggregate_properties,
    analyze_graph,
    extends_maximum_clique,
    fraction_not_fully_connected,
    size_ratio,
)

__all__ = [
    "DefectiveCliqueProperties",
    "analyze_graph",
    "aggregate_properties",
    "extends_maximum_clique",
    "fraction_not_fully_connected",
    "size_ratio",
    "BoundSample",
    "BoundQualityReport",
    "sample_bound_quality",
    "LeftSpineTrace",
    "trace_left_spine",
    "NodeCountCheck",
    "check_node_count_bound",
]
