"""Upper-bound quality study (supporting the Section 3.2.1 discussion).

The paper's central practical argument for UB1 is that it is much tighter
than both the original coloring bound (Eq. (2)) and the degree-sequence bound
UB3 on the instances that arise during the search.  This module samples
branch-and-bound instances of a graph — by replaying the greedy left spine of
the search for a few steps — and measures every bound on each of them, so the
claim can be quantified on any workload.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from ..core.bounds import (
    color_candidates,
    eq2_original_coloring,
    ub1_improved_coloring,
    ub2_min_degree,
    ub3_degree_sequence,
)
from ..core.branching import select_branching_vertex
from ..core.config import SolverConfig
from ..core.instance import SearchState
from ..core.reductions import apply_reductions
from ..graphs.graph import Graph

__all__ = ["BoundSample", "BoundQualityReport", "sample_bound_quality"]


@dataclass(frozen=True)
class BoundSample:
    """Bound values measured on one sampled search instance."""

    depth: int
    solution_size: int
    candidate_count: int
    ub1: int
    ub2: int
    ub3: int
    eq2: int

    @property
    def ub1_vs_eq2_gap(self) -> int:
        """How many vertices tighter UB1 is than the Eq. (2) bound."""
        return self.eq2 - self.ub1

    @property
    def ub1_vs_ub3_gap(self) -> int:
        """How many vertices tighter UB1 is than UB3."""
        return self.ub3 - self.ub1


@dataclass(frozen=True)
class BoundQualityReport:
    """Aggregate of the bound samples collected on one graph."""

    samples: List[BoundSample]

    @property
    def mean_ub1_vs_eq2_gap(self) -> float:
        if not self.samples:
            return 0.0
        return sum(s.ub1_vs_eq2_gap for s in self.samples) / len(self.samples)

    @property
    def mean_ub1_vs_ub3_gap(self) -> float:
        if not self.samples:
            return 0.0
        return sum(s.ub1_vs_ub3_gap for s in self.samples) / len(self.samples)

    def dominance_holds(self) -> bool:
        """Return True if UB1 <= min(Eq.(2), UB3) on every sampled instance."""
        return all(s.ub1 <= s.eq2 and s.ub1 <= s.ub3 for s in self.samples)

    def as_dict(self) -> Dict[str, float]:
        return {
            "samples": float(len(self.samples)),
            "mean_ub1_vs_eq2_gap": self.mean_ub1_vs_eq2_gap,
            "mean_ub1_vs_ub3_gap": self.mean_ub1_vs_ub3_gap,
        }


def sample_bound_quality(
    graph: Graph,
    k: int,
    max_depth: int = 8,
    config: Optional[SolverConfig] = None,
) -> BoundQualityReport:
    """Replay the greedy left spine of the search on ``graph`` and measure every bound.

    Starting from the root instance, the function repeatedly applies the
    reduction rules, records all four bounds, and descends into the
    "include the branching vertex" child — the path along which the paper's
    Lemma 3.4 accounting happens — until ``max_depth`` instances have been
    sampled or the instance becomes a leaf.
    """
    if config is None:
        config = SolverConfig()
    relabeled, _, _ = graph.relabel()
    adj = [set(relabeled.neighbors(v)) for v in range(relabeled.num_vertices)]
    state = SearchState.initial(adj, k)

    samples: List[BoundSample] = []
    for depth in range(max_depth):
        pruned = apply_reductions(state, config, lower_bound=0)
        if pruned or state.is_defective_clique():
            break
        classes = color_candidates(state)
        samples.append(
            BoundSample(
                depth=depth,
                solution_size=len(state.solution),
                candidate_count=len(state.candidates),
                ub1=ub1_improved_coloring(state, classes),
                ub2=ub2_min_degree(state),
                ub3=ub3_degree_sequence(state),
                eq2=eq2_original_coloring(state, classes),
            )
        )
        branching_vertex = select_branching_vertex(state)
        if branching_vertex is None:
            break
        state.add_to_solution(branching_vertex)
    return BoundQualityReport(samples=samples)
