"""Enumeration of maximal k-defective cliques (Section 6 of the paper).

The paper sketches how kDC's machinery extends to enumerating large maximal
k-defective cliques.  This module provides a straightforward, correct
enumerator suitable for the moderate graph sizes of this repository: a binary
include/exclude search that keeps an explicit "excluded" set so maximality is
checked against the *original* graph, in the spirit of Bron–Kerbosch.

A ``min_size`` threshold can be supplied to prune the search; with a large
threshold the enumeration degrades gracefully towards the top-r use case in
:mod:`repro.extensions.top_r`.
"""

from __future__ import annotations

from typing import Iterator, List, Optional, Set

from ..core.defective import validate_k
from ..graphs.graph import Graph, Vertex

__all__ = ["enumerate_maximal_defective_cliques", "count_maximal_defective_cliques"]


def enumerate_maximal_defective_cliques(
    graph: Graph,
    k: int,
    min_size: int = 1,
    limit: Optional[int] = None,
) -> Iterator[List[Vertex]]:
    """Yield every maximal k-defective clique of ``graph`` with at least ``min_size`` vertices.

    Parameters
    ----------
    graph:
        Input graph (not modified).
    k:
        Defectiveness parameter.
    min_size:
        Only cliques with at least this many vertices are reported (smaller
        ones are still explored when they can grow, but never yielded).
    limit:
        Optional cap on the number of cliques yielded.

    Yields
    ------
    list
        Vertex labels of one maximal k-defective clique; no clique is
        reported twice.
    """
    validate_k(k)
    if graph.num_vertices == 0:
        return

    relabeled, _, to_label = graph.relabel()
    adj = [set(relabeled.neighbors(v)) for v in range(relabeled.num_vertices)]
    emitted = 0

    def extra_missing(vertex: int, solution: List[int]) -> int:
        adjacency = adj[vertex]
        return sum(1 for u in solution if u not in adjacency)

    solution: List[int] = []
    solution_set: Set[int] = set()

    def search(candidates: List[int], excluded: Set[int], missing: int) -> Iterator[List[Vertex]]:
        nonlocal emitted
        if limit is not None and emitted >= limit:
            return
        # Candidates that can still join the current solution.  Because both
        # the missing count and the per-vertex extra cost only grow as the
        # solution grows, a candidate filtered out here can never become
        # addable again, so it needs no further maximality consideration.
        extendable = [v for v in candidates if missing + extra_missing(v, solution) <= k]
        if not extendable:
            # The solution is maximal unless an explicitly excluded vertex
            # could still rejoin it (in which case the clique containing that
            # vertex is reported on another branch instead).
            if len(solution) >= min_size and all(
                missing + extra_missing(v, solution) > k for v in excluded
            ):
                emitted += 1
                yield [to_label[v] for v in solution]
            return
        v = extendable[0]
        rest = [u for u in extendable[1:]]
        # Branch 1: include v.
        gained = extra_missing(v, solution)
        solution.append(v)
        solution_set.add(v)
        yield from search(rest, set(excluded), missing + gained)
        solution.pop()
        solution_set.discard(v)
        if limit is not None and emitted >= limit:
            return
        # Branch 2: exclude v.
        excluded_with_v = set(excluded)
        excluded_with_v.add(v)
        yield from search(rest, excluded_with_v, missing)

    yield from search(list(range(len(adj))), set(), 0)


def count_maximal_defective_cliques(graph: Graph, k: int, min_size: int = 1) -> int:
    """Return the number of maximal k-defective cliques with at least ``min_size`` vertices."""
    return sum(1 for _ in enumerate_maximal_defective_cliques(graph, k, min_size=min_size))
