"""Top-r diversified k-defective cliques (Section 6 of the paper).

The goal is to report ``r`` k-defective cliques that together cover as many
distinct vertices as possible.  Following the paper, the greedy strategy —
repeatedly find a maximum k-defective clique with kDC, report it, delete its
vertices, and continue — yields a ``(1 - 1/e)``-approximation of the optimal
cover because vertex coverage is a monotone submodular objective.
"""

from __future__ import annotations

from typing import List, Optional, Set

from ..core.config import SolverConfig
from ..core.defective import validate_k
from ..core.solver import KDCSolver
from ..exceptions import InvalidParameterError
from ..graphs.graph import Graph, Vertex

__all__ = ["top_r_diversified_defective_cliques", "coverage"]


def top_r_diversified_defective_cliques(
    graph: Graph,
    k: int,
    r: int,
    config: Optional[SolverConfig] = None,
) -> List[List[Vertex]]:
    """Greedily compute ``r`` k-defective cliques maximising distinct-vertex coverage.

    The procedure iterates at most ``r`` times: each round solves a maximum
    k-defective clique instance with :class:`KDCSolver` on the remaining
    graph, records the solution, and removes its vertices.  Iteration stops
    early when the remaining graph is empty.

    Returns the cliques in the order they were found (non-increasing size).
    """
    validate_k(k)
    if r < 1:
        raise InvalidParameterError("r must be at least 1")

    solver = KDCSolver(config)
    remaining = graph.copy()
    result: List[List[Vertex]] = []
    for _ in range(r):
        if remaining.num_vertices == 0:
            break
        solution = solver.solve(remaining, k)
        if solution.size == 0:
            break
        result.append(solution.clique)
        remaining.remove_vertices(solution.clique)
    return result


def coverage(cliques: List[List[Vertex]]) -> Set[Vertex]:
    """Return the set of distinct vertices covered by a family of cliques."""
    covered: Set[Vertex] = set()
    for clique in cliques:
        covered.update(clique)
    return covered
