"""Extensions sketched in Section 6 of the paper: top-r and diversified variants."""

from .diversified import coverage, top_r_diversified_defective_cliques
from .enumeration import count_maximal_defective_cliques, enumerate_maximal_defective_cliques
from .top_r import top_r_maximal_defective_cliques

__all__ = [
    "enumerate_maximal_defective_cliques",
    "count_maximal_defective_cliques",
    "top_r_maximal_defective_cliques",
    "top_r_diversified_defective_cliques",
    "coverage",
]
