"""Top-r maximal k-defective cliques (Section 6 of the paper).

The paper outlines how kDC extends to finding the ``r`` largest *maximal*
k-defective cliques: maintain a pool of the ``r`` best maximal solutions
found so far and use the size of the smallest pool member as the lower bound
driving the reductions.  This module implements that idea on top of the
enumeration machinery: maximal cliques are generated with a growing size
threshold so that the pool converges to the true top-r set.
"""

from __future__ import annotations

import heapq
from typing import List, Tuple

from ..core.defective import validate_k
from ..exceptions import InvalidParameterError
from ..graphs.graph import Graph, Vertex
from .enumeration import enumerate_maximal_defective_cliques

__all__ = ["top_r_maximal_defective_cliques"]


def top_r_maximal_defective_cliques(graph: Graph, k: int, r: int) -> List[List[Vertex]]:
    """Return the ``r`` largest maximal k-defective cliques of ``graph``.

    Cliques are returned in non-increasing size order.  If the graph has
    fewer than ``r`` maximal k-defective cliques, all of them are returned.

    Parameters
    ----------
    graph:
        Input graph.
    k:
        Defectiveness parameter.
    r:
        Number of cliques requested (``r >= 1``).
    """
    validate_k(k)
    if r < 1:
        raise InvalidParameterError("r must be at least 1")

    # Min-heap of (size, tiebreak, clique); the smallest member is the
    # current admission threshold once the pool is full.
    pool: List[Tuple[int, int, List[Vertex]]] = []
    tiebreak = 0
    for clique in enumerate_maximal_defective_cliques(graph, k, min_size=1):
        tiebreak += 1
        if len(pool) < r:
            heapq.heappush(pool, (len(clique), tiebreak, clique))
        elif len(clique) > pool[0][0]:
            heapq.heapreplace(pool, (len(clique), tiebreak, clique))
    ordered = sorted(pool, key=lambda item: (-item[0], item[1]))
    return [clique for _, _, clique in ordered]
