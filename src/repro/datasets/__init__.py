"""Synthetic benchmark collections standing in for the paper's graph corpora,
plus the paper's published results embedded as reference data."""

from .collections import (
    COLLECTION_NAMES,
    SCALES,
    DatasetInstance,
    all_collections,
    dimacs_snap_like_collection,
    facebook_like_collection,
    get_collection,
    real_world_like_collection,
)
from .paper_reference import (
    COLLECTION_SIZES,
    PAPER_K_VALUES,
    TABLE2_SOLVED,
    TABLE3_AVG_SPEEDUP_OVER_KDBB,
    TABLE4_PREPROCESSING,
    TABLE5_SIZE_RATIOS,
    TABLE6_EXTENDS_MAX_CLIQUE,
    TABLE7_PCT_NOT_FULLY_CONNECTED,
    paper_winner_table2,
)

__all__ = [
    "DatasetInstance",
    "COLLECTION_NAMES",
    "SCALES",
    "get_collection",
    "all_collections",
    "real_world_like_collection",
    "facebook_like_collection",
    "dimacs_snap_like_collection",
    "PAPER_K_VALUES",
    "COLLECTION_SIZES",
    "TABLE2_SOLVED",
    "TABLE3_AVG_SPEEDUP_OVER_KDBB",
    "TABLE4_PREPROCESSING",
    "TABLE5_SIZE_RATIOS",
    "TABLE6_EXTENDS_MAX_CLIQUE",
    "TABLE7_PCT_NOT_FULLY_CONNECTED",
    "paper_winner_table2",
]
