"""Synthetic benchmark collections standing in for the paper's graph corpora.

The paper evaluates on three collections — 139 "real-world graphs", 114
Facebook social networks, and 37 DIMACS10&SNAP graphs — none of which can be
downloaded in this offline environment, and none of which would be tractable
for a pure-Python exact solver at their original sizes.  Following the
substitution rule documented in ``DESIGN.md``, this module generates three
synthetic collections whose qualitative structure matches what the kDC
algorithm exploits:

* ``real_world_like`` — power-law / preferential-attachment graphs with
  varied density plus a few planted near-cliques (mirrors the heterogeneous
  Network Data Repository collection);
* ``facebook_like`` — dense community-structured social graphs (mirrors the
  socfb-* Facebook networks, which contain large near-cliques);
* ``dimacs_snap_like`` — a mix of meshes, sparse random graphs, caveman
  communities and split graphs (mirrors the DIMACS10 & SNAP mix).

Every instance is generated from an explicit seed, so collections are
reproducible across runs and machines.  Three scales are available: ``tiny``
(unit tests / CI), ``small`` (default benchmark harness) and ``medium``
(longer experiments).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional

from ..exceptions import InvalidParameterError
from ..graphs import generators
from ..graphs.graph import Graph

__all__ = [
    "DatasetInstance",
    "COLLECTION_NAMES",
    "SCALES",
    "real_world_like_collection",
    "facebook_like_collection",
    "dimacs_snap_like_collection",
    "get_collection",
    "all_collections",
]

#: Names of the three collections, mirroring the paper's Table 2 columns.
COLLECTION_NAMES = ("real_world_like", "facebook_like", "dimacs_snap_like")

#: Available collection scales (number of instances / vertex counts grow with scale).
SCALES = ("tiny", "small", "medium")


@dataclass
class DatasetInstance:
    """A named graph instance belonging to a synthetic collection."""

    name: str
    collection: str
    #: zero-argument callable building the graph (graphs are built lazily and cached)
    builder: Callable[[], Graph] = field(repr=False)
    _graph: Optional[Graph] = field(default=None, repr=False)

    @property
    def graph(self) -> Graph:
        """Build (once) and return the instance graph."""
        if self._graph is None:
            self._graph = self.builder()
        return self._graph

    def describe(self) -> str:
        """Return a one-line description including basic size statistics."""
        g = self.graph
        return f"{self.collection}/{self.name}: n={g.num_vertices}, m={g.num_edges}"


_SCALE_FACTORS: Dict[str, float] = {"tiny": 0.35, "small": 1.0, "medium": 2.0}
_SCALE_COUNTS: Dict[str, int] = {"tiny": 4, "small": 10, "medium": 16}


def _check_scale(scale: str) -> None:
    if scale not in _SCALE_FACTORS:
        raise InvalidParameterError(f"unknown scale {scale!r}; expected one of {SCALES}")


def _sized(base: int, scale: str, minimum: int = 20) -> int:
    return max(minimum, int(base * _SCALE_FACTORS[scale]))


def real_world_like_collection(scale: str = "small", seed: int = 20230901) -> List[DatasetInstance]:
    """Generate the ``real_world_like`` collection (heterogeneous sparse graphs)."""
    _check_scale(scale)
    count = _SCALE_COUNTS[scale]
    instances: List[DatasetInstance] = []
    for i in range(count):
        instance_seed = seed + i
        kind = i % 4
        if kind == 0:
            n = _sized(150 + 30 * i, scale)
            instances.append(
                DatasetInstance(
                    name=f"ba_{i:02d}",
                    collection="real_world_like",
                    builder=_bind(generators.barabasi_albert_graph, n, 4, seed=instance_seed),
                )
            )
        elif kind == 1:
            n = _sized(140 + 25 * i, scale)
            instances.append(
                DatasetInstance(
                    name=f"plc_{i:02d}",
                    collection="real_world_like",
                    builder=_bind(generators.powerlaw_cluster_graph, n, 5, 0.5, seed=instance_seed),
                )
            )
        elif kind == 2:
            n = _sized(120 + 20 * i, scale)
            clique = max(8, n // 12)
            instances.append(
                DatasetInstance(
                    name=f"planted_{i:02d}",
                    collection="real_world_like",
                    builder=_bind(
                        generators.planted_defective_clique_graph,
                        n,
                        clique,
                        3,
                        background_p=0.04,
                        seed=instance_seed,
                    ),
                )
            )
        else:
            n = _sized(100 + 20 * i, scale)
            p = 0.06 + 0.01 * (i % 3)
            instances.append(
                DatasetInstance(
                    name=f"gnp_{i:02d}",
                    collection="real_world_like",
                    builder=_bind(generators.gnp_random_graph, n, p, seed=instance_seed),
                )
            )
    return instances


def facebook_like_collection(scale: str = "small", seed: int = 20230902) -> List[DatasetInstance]:
    """Generate the ``facebook_like`` collection (dense community social graphs)."""
    _check_scale(scale)
    count = _SCALE_COUNTS[scale]
    instances: List[DatasetInstance] = []
    for i in range(count):
        instance_seed = seed + i
        n = _sized(100 + 18 * i, scale)
        communities = 4 + i % 4
        intra = 0.45 + 0.04 * (i % 3)
        instances.append(
            DatasetInstance(
                name=f"socfb_{i:02d}",
                collection="facebook_like",
                builder=_bind(
                    generators.social_network_graph,
                    n,
                    num_communities=communities,
                    intra_p=intra,
                    inter_p=0.01,
                    seed=instance_seed,
                ),
            )
        )
    return instances


def dimacs_snap_like_collection(scale: str = "small", seed: int = 20230903) -> List[DatasetInstance]:
    """Generate the ``dimacs_snap_like`` collection (meshes, caveman graphs, split graphs, sparse G(n, m))."""
    _check_scale(scale)
    count = max(3, _SCALE_COUNTS[scale] - 2)
    instances: List[DatasetInstance] = []
    for i in range(count):
        instance_seed = seed + i
        kind = i % 4
        if kind == 0:
            side = max(5, _sized(10 + i, scale, minimum=5))
            instances.append(
                DatasetInstance(
                    name=f"mesh_{i:02d}",
                    collection="dimacs_snap_like",
                    builder=_bind(generators.mesh_graph, side, side + 2),
                )
            )
        elif kind == 1:
            cliques = 6 + i
            size = max(5, _sized(8, scale, minimum=5))
            instances.append(
                DatasetInstance(
                    name=f"caveman_{i:02d}",
                    collection="dimacs_snap_like",
                    builder=_bind(generators.relaxed_caveman_graph, cliques, size, 0.15, seed=instance_seed),
                )
            )
        elif kind == 2:
            clique = max(10, _sized(16, scale, minimum=8))
            independent = clique * 3
            instances.append(
                DatasetInstance(
                    name=f"split_{i:02d}",
                    collection="dimacs_snap_like",
                    builder=_bind(generators.split_graph, clique, independent, 0.4, seed=instance_seed),
                )
            )
        else:
            n = _sized(150 + 25 * i, scale)
            m = n * 4
            instances.append(
                DatasetInstance(
                    name=f"gnm_{i:02d}",
                    collection="dimacs_snap_like",
                    builder=_bind(generators.gnm_random_graph, n, m, seed=instance_seed),
                )
            )
    return instances


_COLLECTION_BUILDERS = {
    "real_world_like": real_world_like_collection,
    "facebook_like": facebook_like_collection,
    "dimacs_snap_like": dimacs_snap_like_collection,
}


def get_collection(name: str, scale: str = "small", seed: Optional[int] = None) -> List[DatasetInstance]:
    """Return the named collection at the requested scale.

    Parameters
    ----------
    name:
        One of :data:`COLLECTION_NAMES`.
    scale:
        One of :data:`SCALES`.
    seed:
        Optional override of the collection's default seed.
    """
    if name not in _COLLECTION_BUILDERS:
        raise InvalidParameterError(
            f"unknown collection {name!r}; expected one of {COLLECTION_NAMES}"
        )
    builder = _COLLECTION_BUILDERS[name]
    if seed is None:
        return builder(scale=scale)
    return builder(scale=scale, seed=seed)


def all_collections(scale: str = "small") -> Dict[str, List[DatasetInstance]]:
    """Return every collection at the requested scale, keyed by collection name."""
    return {name: get_collection(name, scale=scale) for name in COLLECTION_NAMES}


def _bind(func: Callable[..., Graph], *args, **kwargs) -> Callable[[], Graph]:
    """Return a zero-argument builder capturing ``func`` and its arguments."""

    def build() -> Graph:
        return func(*args, **kwargs)

    return build
