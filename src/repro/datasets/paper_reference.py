"""Published results of the paper, embedded as data.

These are the numbers reported in the paper's evaluation (Section 4) — the
ground truth this reproduction is compared against in ``EXPERIMENTS.md`` and
in the benchmark assertions.  Only the headline tables are embedded; the
per-graph Table 3 timings are summarised by the average speedup factors the
paper quotes in the text.

The collection keys use the paper's names (``real_world``, ``facebook``,
``dimacs_snap``); the reproduction's synthetic stand-ins use the ``*_like``
suffix to make the substitution explicit.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

__all__ = [
    "PAPER_K_VALUES",
    "COLLECTION_SIZES",
    "TABLE2_SOLVED",
    "TABLE4_PREPROCESSING",
    "TABLE5_SIZE_RATIOS",
    "TABLE6_EXTENDS_MAX_CLIQUE",
    "TABLE7_PCT_NOT_FULLY_CONNECTED",
    "TABLE3_AVG_SPEEDUP_OVER_KDBB",
    "paper_winner_table2",
]

#: The k values used throughout the paper's evaluation.
PAPER_K_VALUES: Tuple[int, ...] = (1, 3, 5, 10, 15, 20)

#: Number of graph instances per collection.
COLLECTION_SIZES: Dict[str, int] = {
    "real_world": 139,
    "facebook": 114,
    "dimacs_snap": 37,
}

#: Table 2 — number of solved instances within 3 hours, per algorithm, collection and k.
TABLE2_SOLVED: Dict[str, Dict[str, Dict[int, int]]] = {
    "real_world": {
        "kDC": {1: 133, 3: 130, 5: 127, 10: 119, 15: 110, 20: 104},
        "KDBB": {1: 117, 3: 107, 5: 104, 10: 85, 15: 68, 20: 56},
        "MADEC": {1: 115, 3: 94, 5: 81, 10: 36, 15: 26, 20: 20},
    },
    "facebook": {
        "kDC": {1: 114, 3: 114, 5: 114, 10: 111, 15: 101, 20: 88},
        "KDBB": {1: 110, 3: 110, 5: 108, 10: 109, 15: 103, 20: 80},
        "MADEC": {1: 110, 3: 104, 5: 78, 10: 9, 15: 0, 20: 0},
    },
    "dimacs_snap": {
        "kDC": {1: 37, 3: 37, 5: 37, 10: 36, 15: 29, 20: 27},
        "KDBB": {1: 36, 3: 35, 5: 34, 10: 30, 15: 25, 20: 22},
        "MADEC": {1: 36, 3: 31, 5: 28, 10: 15, 15: 10, 20: 6},
    },
}

#: Table 3 summary — the paper states kDC is on average this many times faster
#: than KDBB on the 41 large Facebook graphs, per k.
TABLE3_AVG_SPEEDUP_OVER_KDBB: Dict[int, float] = {1: 1552.0, 3: 1754.0, 5: 1636.0, 10: 820.0}

#: Table 4 — preprocessing comparison kDC vs kDC-Degen:
#: (initial-solution size ratio, reduced-vertex ratio, reduced-edge ratio).
TABLE4_PREPROCESSING: Dict[str, Dict[int, Tuple[float, float, float]]] = {
    "real_world": {
        1: (1.19, 0.27, 0.26),
        3: (1.15, 0.47, 0.45),
        5: (1.13, 0.52, 0.52),
        10: (1.11, 0.63, 0.63),
        15: (1.09, 0.68, 0.69),
        20: (1.08, 0.73, 0.74),
    },
    "facebook": {
        1: (1.30, 0.03, 0.02),
        3: (1.26, 0.04, 0.03),
        5: (1.24, 0.06, 0.04),
        10: (1.21, 0.11, 0.08),
        15: (1.19, 0.16, 0.13),
        20: (1.18, 0.23, 0.19),
    },
}

#: Table 5 — (average, maximum) ratio of maximum k-defective clique size over maximum clique size.
TABLE5_SIZE_RATIOS: Dict[str, Dict[int, Tuple[float, float]]] = {
    "real_world": {
        1: (1.067, 1.5), 3: (1.144, 2.0), 5: (1.201, 2.0),
        10: (1.314, 2.5), 15: (1.422, 3.0), 20: (1.516, 3.5),
    },
    "facebook": {
        1: (1.032, 1.25), 3: (1.083, 1.5), 5: (1.118, 1.67),
        10: (1.170, 1.75), 15: (1.223, 2.0), 20: (1.264, 2.25),
    },
    "dimacs_snap": {
        1: (1.046, 1.2), 3: (1.107, 1.4), 5: (1.169, 1.6),
        10: (1.243, 1.8), 15: (1.313, 2.0), 20: (1.370, 2.2),
    },
}

#: Table 6 — number of solved graphs whose maximum k-defective clique extends a maximum clique.
TABLE6_EXTENDS_MAX_CLIQUE: Dict[str, Dict[int, int]] = {
    "real_world": {1: 133, 3: 124, 5: 114, 10: 105, 15: 98, 20: 94},
    "facebook": {1: 114, 3: 93, 5: 77, 10: 70, 15: 62, 20: 61},
    "dimacs_snap": {1: 37, 3: 30, 5: 28, 10: 28, 15: 23, 20: 24},
}

#: Table 7 — average percentage of not-fully-connected vertices in the maximum k-defective clique.
TABLE7_PCT_NOT_FULLY_CONNECTED: Dict[str, Dict[int, float]] = {
    "real_world": {1: 19.2, 3: 33.7, 5: 43.3, 10: 52.5, 15: 59.5, 20: 62.9},
    "facebook": {1: 6.1, 3: 15.9, 5: 23.0, 10: 34.4, 15: 43.7, 20: 50.3},
    "dimacs_snap": {1: 16.9, 3: 32.3, 5: 46.6, 10: 56.8, 15: 64.7, 20: 65.9},
}


def paper_winner_table2(collection: str, k: int) -> List[str]:
    """Return the algorithm(s) solving the most instances in the paper's Table 2.

    Useful for "shape" checks: the reproduction should (with rare, documented
    exceptions such as k = 15 on the Facebook collection) find the same winner.
    """
    scores = {alg: counts[k] for alg, counts in TABLE2_SOLVED[collection].items()}
    best = max(scores.values())
    return sorted(alg for alg, value in scores.items() if value == best)
