"""Test-support utilities shipped with the library.

:mod:`repro.testing.chaos` is the deterministic fault-injection harness the
service's chaos suite is built on.  This package is import-light on purpose:
production modules reference its fault points, so it must not pull in any
heavier part of the library.
"""

from .chaos import FaultInjector, InjectedFaultError

__all__ = ["FaultInjector", "InjectedFaultError"]
