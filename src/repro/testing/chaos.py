"""Deterministic fault injection for the solver service (chaos testing).

Production code is sprinkled with cheap, named *fault points*::

    faults.fire("store.prepare", digest=digest, k=k)

When no injector is installed (the normal case) ``fire`` is a single global
read and an immediate return.  Tests install a :class:`FaultInjector` whose
rules match points (optionally filtered on the call's context) and execute a
named action a bounded number of times:

``delay=seconds``
    Sleep before proceeding — a slow prepare, a slow solve.
``error=exc``
    Raise an exception (an instance, or a string wrapped in
    :class:`InjectedFaultError`) — a crashing worker thread.
``disconnect=True``
    Raise :class:`ConnectionResetError` — a socket dropped mid-reply.
``kill=True``
    ``SIGKILL`` the *current process* — a pool worker dying abruptly.
    Only ever use this matched to a worker-side fault point.
``phantom=N``
    Inflate the shared best-size cell in the context by ``N`` and then
    ``SIGKILL`` the process — a worker that published a bound whose witness
    solution died with it (exercises the phantom-bound audit of
    :mod:`repro.core.parallel`).

Rules fire deterministically: ``times`` bounds how often a rule triggers and
``match`` pins it to specific context values (e.g. one batch index), so a
chaos test can script an exact failure sequence instead of rolling dice.

Named fault points currently wired into production code:

``store.prepare`` / ``scheduler.solve`` / ``server.reply`` /
``parallel.batch``
    The service pipeline (PR 8): artifact preparation, the solve phase, the
    socket reply, and a worker-pool batch (worker-side; ``kill`` and
    ``phantom`` belong here).
``persist.write``
    Inside :func:`~repro.core.checkpoint.atomic_write_bytes`, between the
    temp file's fsync and the atomic rename — a crash in the torn-publish
    window leaves a stale temp file and no destination.
``persist.replay``
    At the start of every journal scan and snapshot load — lets tests fail
    or delay state restoration.
``checkpoint.append``
    In :meth:`~repro.core.checkpoint.SolveCheckpoint.record`, before
    anything is written for that anchor; its context carries ``anchor`` and
    ``count`` (completed anchors already durable), so ``kill`` pinned to a
    ``count`` models SIGKILL mid-decomposed-solve with an exact journal
    state.
``dynamic.apply``
    In :meth:`~repro.service.store.GraphStore.apply_delta`, after the
    successor graph is built but before anything observable (in-memory
    publish, snapshot, delta WAL) happens — a crash here must leave the
    store serving the predecessor digest with no torn state.  Context:
    ``digest`` (parent), ``child``, ``adds``, ``removes``.
``dynamic.resolve``
    At the start of an incremental re-solve, both in
    :meth:`~repro.dynamic.incremental.IncrementalSolver.apply` (context:
    ``digest``, ``parent``, ``affected``, ``total``) and in the service's
    delta-chain routing (context: ``digest``, ``k``, ``algorithm``,
    ``steps``) — an error makes the service fall back to a full solve, and
    a kill mid-re-solve exercises the carry-over checkpoint resume.

Worker processes
----------------
:meth:`FaultInjector.install` also serialises the env-safe rules into the
``REPRO_FAULTS`` environment variable.  Pool workers created while it is set
load the rules on their first ``fire`` call — under the default ``fork``
start method they additionally inherit the module global directly.  Fire
counts in a worker are per-process; pin worker-side rules with ``match``
(e.g. ``match={"index": 0}``) to keep multi-worker runs deterministic.
"""

from __future__ import annotations

import json
import os
import signal
import threading
import time
from typing import Any, Dict, List, Optional, Tuple

__all__ = ["FaultInjector", "InjectedFaultError", "fire", "install", "uninstall"]

#: Environment variable carrying the env-safe rule specs to worker processes.
ENV_VAR = "REPRO_FAULTS"

_active: Optional["FaultInjector"] = None
#: Guards installation; ``fire`` itself reads ``_active`` without the lock
#: (a stale ``None`` read during racy installation only skips a fault).
_install_lock = threading.Lock()
#: Worker-side sentinel: the env var has been checked once in this process.
_env_checked = False


class InjectedFaultError(RuntimeError):
    """The exception raised by string-valued ``error=`` fault rules.

    Deliberately *not* a :class:`~repro.exceptions.ReproError`: an injected
    crash must exercise the service's handling of unexpected internal
    errors, not the typed-error fast path.
    """


class _Rule:
    """One fault rule: a point, an action, a match filter and a fire budget."""

    __slots__ = ("point", "action", "value", "match", "remaining")

    def __init__(
        self,
        point: str,
        action: str,
        value: Any,
        match: Optional[Dict[str, Any]],
        times: Optional[int],
    ) -> None:
        self.point = point
        self.action = action
        self.value = value
        self.match = match or {}
        self.remaining = times  # None = unlimited

    def matches(self, point: str, ctx: Dict[str, Any]) -> bool:
        if point != self.point or self.remaining == 0:
            return False
        return all(key in ctx and ctx[key] == want for key, want in self.match.items())

    def to_spec(self) -> Optional[Dict[str, Any]]:
        """The JSON-safe spec shipped to worker processes (``None`` if not serialisable)."""
        value = self.value
        if self.action == "error":
            if not isinstance(value, str):
                if isinstance(value, BaseException):
                    value = str(value)
                else:
                    return None
        return {
            "point": self.point,
            "action": self.action,
            "value": value,
            "match": self.match,
            "times": self.remaining,
        }


class FaultInjector:
    """A scripted set of fault rules, installable as the process-wide injector."""

    def __init__(self) -> None:
        self._rules: List[_Rule] = []
        self._lock = threading.Lock()
        #: ``(point, ctx-subset)`` log of every fault that fired in this
        #: process — chaos tests assert the script actually ran.
        self.fired: List[Tuple[str, Dict[str, Any]]] = []

    # ------------------------------------------------------------------ #
    def add(
        self,
        point: str,
        *,
        delay: Optional[float] = None,
        error: Optional[object] = None,
        disconnect: bool = False,
        kill: bool = False,
        phantom: Optional[int] = None,
        times: Optional[int] = 1,
        match: Optional[Dict[str, Any]] = None,
    ) -> "FaultInjector":
        """Register one rule (exactly one action); returns ``self`` for chaining."""
        actions = [
            ("delay", delay),
            ("error", error),
            ("disconnect", disconnect or None),
            ("kill", kill or None),
            ("phantom", phantom),
        ]
        chosen = [(name, value) for name, value in actions if value is not None]
        if len(chosen) != 1:
            raise ValueError("pass exactly one of delay=, error=, disconnect=, kill=, phantom=")
        action, value = chosen[0]
        self._rules.append(_Rule(point, action, value, match, times))
        return self

    # ------------------------------------------------------------------ #
    def install(self) -> "FaultInjector":
        """Make this injector the process-wide one (and export it to workers)."""
        global _active
        with _install_lock:
            _active = self
            specs = [s for s in (r.to_spec() for r in self._rules) if s is not None]
            os.environ[ENV_VAR] = json.dumps(specs)
        return self

    def uninstall(self) -> None:
        global _active
        with _install_lock:
            if _active is self:
                _active = None
            os.environ.pop(ENV_VAR, None)

    def __enter__(self) -> "FaultInjector":
        return self.install()

    def __exit__(self, *_exc) -> None:
        self.uninstall()

    # ------------------------------------------------------------------ #
    def _fire(self, point: str, ctx: Dict[str, Any]) -> None:
        for rule in self._rules:
            with self._lock:
                if not rule.matches(point, ctx):
                    continue
                if rule.remaining is not None:
                    rule.remaining -= 1
                self.fired.append(
                    (point, {k: v for k, v in ctx.items() if isinstance(v, (str, int, float, bool))})
                )
            self._execute(rule, ctx)

    @staticmethod
    def _execute(rule: _Rule, ctx: Dict[str, Any]) -> None:
        if rule.action == "delay":
            time.sleep(rule.value)
        elif rule.action == "error":
            exc = rule.value
            if isinstance(exc, str):
                exc = InjectedFaultError(exc)
            elif isinstance(exc, type):
                exc = exc("injected fault")
            raise exc
        elif rule.action == "disconnect":
            raise ConnectionResetError("injected disconnect")
        elif rule.action == "kill":
            os.kill(os.getpid(), signal.SIGKILL)
        elif rule.action == "phantom":
            # Publish an unbacked bound, then die before reporting any
            # solution: the parent's phantom-bound audit must catch this.
            best_size = ctx.get("best_size")
            if best_size is not None:
                best_size.value += rule.value
            os.kill(os.getpid(), signal.SIGKILL)


def install(injector: FaultInjector) -> FaultInjector:
    """Module-level alias of :meth:`FaultInjector.install`."""
    return injector.install()


def uninstall() -> None:
    """Remove whatever injector is installed (worker-side env copy included)."""
    global _active
    with _install_lock:
        _active = None
        os.environ.pop(ENV_VAR, None)


def _load_from_env() -> None:
    """Worker-side: build an injector from ``REPRO_FAULTS`` (once per process)."""
    global _active, _env_checked
    _env_checked = True
    raw = os.environ.get(ENV_VAR)
    if not raw:
        return
    try:
        specs = json.loads(raw)
    except ValueError:
        return
    injector = FaultInjector()
    for spec in specs:
        injector._rules.append(
            _Rule(
                spec.get("point", ""),
                spec.get("action", ""),
                spec.get("value"),
                spec.get("match"),
                spec.get("times"),
            )
        )
    _active = injector


def fire(point: str, **ctx: Any) -> None:
    """Trigger the fault point ``point``; a near-free no-op when nothing is installed."""
    if _active is None:
        if _env_checked or ENV_VAR not in os.environ:
            return
        _load_from_env()
        if _active is None:
            return
    _active._fire(point, ctx)
