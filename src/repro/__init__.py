"""repro — reproduction of "Efficient Maximum k-Defective Clique Computation
with Improved Time Complexity" (Lijun Chang, SIGMOD 2023).

Quick start
-----------
>>> from repro import Graph, find_maximum_defective_clique
>>> g = Graph(edges=[(0, 1), (0, 2), (1, 2), (2, 3)])
>>> result = find_maximum_defective_clique(g, k=2)
>>> result.size
4

Package layout
--------------
* :mod:`repro.graphs` — graph substrate (data structure, k-core, k-truss,
  degeneracy, coloring, generators, I/O);
* :mod:`repro.core` — the kDC solver, branching rule, reduction rules,
  upper bounds, heuristics, and complexity analysis;
* :mod:`repro.baselines` — MADEC+-style, KDBB-style, maximum-clique and
  brute-force reference solvers;
* :mod:`repro.extensions` — top-r and diversified variants (paper Section 6);
* :mod:`repro.analysis` — properties of maximum k-defective cliques;
* :mod:`repro.dynamic` — edge-delta updates, incremental re-solve, and
  temporal graph streams;
* :mod:`repro.datasets` — synthetic benchmark collections;
* :mod:`repro.bench` — experiment drivers for every table and figure.
"""

from .baselines import (
    KDBBSolver,
    MADECSolver,
    MaxCliqueSolver,
    brute_force_maximum_defective_clique,
    maximum_clique,
    maximum_clique_size,
)
from .core import (
    KDCSolver,
    SearchStats,
    SolveResult,
    SolverConfig,
    VARIANT_NAMES,
    degen,
    degen_opt,
    find_maximum_defective_clique,
    gamma,
    is_k_defective_clique,
    is_maximal_k_defective_clique,
    maximum_defective_clique_size,
    missing_edge_count,
    sigma,
    variant_config,
)
from .dynamic import (
    EdgeDelta,
    IncrementalSolver,
    TemporalGraph,
    apply_delta,
)
from .exceptions import (
    BudgetExceededError,
    GraphError,
    GraphFormatError,
    InvalidParameterError,
    ReproError,
    SolverError,
)
from .extensions import (
    enumerate_maximal_defective_cliques,
    top_r_diversified_defective_cliques,
    top_r_maximal_defective_cliques,
)
from .graphs import Graph, load_graph, save_graph

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # graph substrate
    "Graph",
    "load_graph",
    "save_graph",
    # core solver API
    "KDCSolver",
    "SolverConfig",
    "SolveResult",
    "SearchStats",
    "find_maximum_defective_clique",
    "maximum_defective_clique_size",
    "variant_config",
    "VARIANT_NAMES",
    "is_k_defective_clique",
    "is_maximal_k_defective_clique",
    "missing_edge_count",
    "degen",
    "degen_opt",
    "gamma",
    "sigma",
    # baselines
    "KDBBSolver",
    "MADECSolver",
    "MaxCliqueSolver",
    "maximum_clique",
    "maximum_clique_size",
    "brute_force_maximum_defective_clique",
    # dynamic graphs
    "EdgeDelta",
    "IncrementalSolver",
    "TemporalGraph",
    "apply_delta",
    # extensions
    "enumerate_maximal_defective_cliques",
    "top_r_maximal_defective_cliques",
    "top_r_diversified_defective_cliques",
    # exceptions
    "ReproError",
    "GraphError",
    "GraphFormatError",
    "InvalidParameterError",
    "SolverError",
    "BudgetExceededError",
]
