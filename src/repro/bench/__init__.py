"""Benchmark harness reproducing every table and figure of the paper's evaluation."""

from .comparison import ShapeCheck, compare_table2_shape, ordering_holds, trend_is_non_decreasing
from .experiments import (
    DEFAULT_K_VALUES,
    EXPERIMENTS,
    ExperimentResult,
    figure7,
    figure8,
    run_experiment,
    table2,
    table3,
    table4,
    table5,
    table6,
    table7,
)
from .harness import (
    ALGORITHMS,
    InstanceRecord,
    count_solved,
    make_solver,
    run_collection,
    run_instance,
    solved_within,
)
from .reporting import format_float, format_solved_table, format_table

__all__ = [
    "ALGORITHMS",
    "make_solver",
    "InstanceRecord",
    "run_instance",
    "run_collection",
    "count_solved",
    "solved_within",
    "ExperimentResult",
    "EXPERIMENTS",
    "DEFAULT_K_VALUES",
    "run_experiment",
    "table2",
    "table3",
    "table4",
    "table5",
    "table6",
    "table7",
    "figure7",
    "figure8",
    "format_table",
    "format_solved_table",
    "format_float",
    "ShapeCheck",
    "compare_table2_shape",
    "ordering_holds",
    "trend_is_non_decreasing",
]
