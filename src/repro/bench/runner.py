"""Resumable experiment-matrix runner over the :class:`ExperimentStore`.

A campaign executes the full ``instance × k × algorithm × backend × engine ×
workers`` grid described by a :class:`MatrixSpec`.  Every completed cell is
committed to the store before the next one starts, so an interrupted
campaign (Ctrl-C, crash, CI timeout, ``max_cells`` budget) resumes from its
checkpoint: re-running the same spec finds the unfinished run row (matched
by the spec digest) and executes only the missing cells.

The grid is normalised rather than taken as a raw cross product:

* the ``set`` backend ignores the engine knob, so its cells collapse the
  engine axis to a single ``""`` cell (running ``set × trail`` and
  ``set × copy`` would measure the same code twice under two names);
* the ``KDBB``/``MADEC`` baselines have a single implementation and reject
  backend/engine/workers selection, so they contribute one cell per
  ``(instance, k)``.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import asdict, dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..core.config import BACKEND_NAMES, ENGINE_NAMES
from ..datasets.collections import COLLECTION_NAMES, SCALES, DatasetInstance, get_collection
from ..exceptions import InvalidParameterError
from .harness import ALGORITHMS, InstanceRecord, run_instance
from .store import ExperimentStore, split_record

__all__ = ["MatrixSpec", "RunReport", "run_matrix"]

#: Algorithms with a single implementation (no backend/engine/workers axes).
_BASELINES = ("KDBB", "MADEC", "MADEC+")


@dataclass(frozen=True)
class MatrixSpec:
    """The experiment grid of one campaign.

    The spec is hashable into a stable digest (:meth:`digest`) that names
    the campaign in the store — resuming matches on it, so two specs differ
    exactly when their grids differ.
    """

    collections: Tuple[str, ...] = ("facebook_like",)
    scale: str = "tiny"
    k_values: Tuple[int, ...] = (1,)
    algorithms: Tuple[str, ...] = ("kDC",)
    backends: Tuple[str, ...] = ("set", "bitset")
    engines: Tuple[str, ...] = ("trail", "copy")
    workers: Tuple[int, ...] = (1,)
    time_limit: Optional[float] = 2.0
    node_limit: Optional[int] = None
    #: cap on instances taken per collection (None = all at this scale);
    #: lets smoke grids stay small without inventing a new scale
    instance_limit: Optional[int] = None

    def __post_init__(self) -> None:
        for name in self.collections:
            if name not in COLLECTION_NAMES:
                raise InvalidParameterError(
                    f"unknown collection {name!r}; expected one of {', '.join(COLLECTION_NAMES)}"
                )
        if self.scale not in SCALES:
            raise InvalidParameterError(
                f"unknown scale {self.scale!r}; expected one of {', '.join(SCALES)}"
            )
        for name in self.algorithms:
            if name not in ALGORITHMS and name != "MADEC+":
                raise InvalidParameterError(
                    f"unknown algorithm {name!r}; expected one of {', '.join(ALGORITHMS)}"
                )
        for name in self.backends:
            if name not in BACKEND_NAMES:
                raise InvalidParameterError(
                    f"unknown backend {name!r}; expected one of {', '.join(BACKEND_NAMES)}"
                )
        for name in self.engines:
            if name not in ENGINE_NAMES:
                raise InvalidParameterError(
                    f"unknown engine {name!r}; expected one of {', '.join(ENGINE_NAMES)}"
                )
        if not self.k_values:
            raise InvalidParameterError("k_values must not be empty")
        if any(k < 0 for k in self.k_values):
            raise InvalidParameterError("k values must be non-negative")
        if any(w < 1 for w in self.workers):
            raise InvalidParameterError("worker counts must be positive")
        if self.instance_limit is not None and self.instance_limit < 1:
            raise InvalidParameterError("instance_limit must be positive when given")

    def digest(self) -> str:
        """Stable 16-hex-digit identity of this grid (used to match resumes)."""
        payload = json.dumps(asdict(self), sort_keys=True)
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:16]

    def instances(self) -> List[DatasetInstance]:
        """Materialise the spec's dataset instances (seeded, so deterministic)."""
        out: List[DatasetInstance] = []
        for name in self.collections:
            instances = get_collection(name, scale=self.scale)
            if self.instance_limit is not None:
                instances = instances[: self.instance_limit]
            out.extend(instances)
        return out

    def cell_keyfields(self, instances: Sequence[DatasetInstance]) -> List[Dict[str, object]]:
        """The normalised grid: one keyfield dict per cell, in execution order."""
        cells: List[Dict[str, object]] = []
        for inst in instances:
            for k in self.k_values:
                for algorithm in self.algorithms:
                    if algorithm in _BASELINES:
                        cells.append(
                            {
                                "collection": inst.collection,
                                "instance": inst.name,
                                "k": k,
                                "algorithm": algorithm,
                                "backend": "",
                                "engine": "",
                                "workers": 0,
                            }
                        )
                        continue
                    for backend in self.backends:
                        # The set backend has no engine axis; collapse it.
                        engines = self.engines if backend != "set" else ("",)
                        for engine in engines:
                            for workers in self.workers:
                                cells.append(
                                    {
                                        "collection": inst.collection,
                                        "instance": inst.name,
                                        "k": k,
                                        "algorithm": algorithm,
                                        "backend": backend,
                                        "engine": engine,
                                        "workers": workers,
                                    }
                                )
        return cells


@dataclass
class RunReport:
    """What one :func:`run_matrix` call did."""

    run_id: int
    status: str
    total_cells: int
    executed: int
    skipped: int
    resumed: bool
    records: List[InstanceRecord] = field(default_factory=list)

    @property
    def remaining(self) -> int:
        return self.total_cells - self.executed - self.skipped

    def summary(self) -> str:
        return (
            f"run {self.run_id} [{self.status}]: {self.executed} executed,"
            f" {self.skipped} checkpointed, {self.remaining} remaining"
            f" of {self.total_cells} cells"
            + (" (resumed)" if self.resumed else "")
        )


def _execute_cell(
    keyfields: Dict[str, object], spec: MatrixSpec, graph
) -> InstanceRecord:
    """Run the solver for one grid cell and return its measurement record."""
    algorithm = str(keyfields["algorithm"])
    if algorithm in _BASELINES:
        backend = workers = engine = None
    else:
        backend = str(keyfields["backend"])
        engine = str(keyfields["engine"]) or None
        workers = int(keyfields["workers"])
    return run_instance(
        algorithm,
        graph,
        int(keyfields["k"]),
        spec.time_limit,
        collection=str(keyfields["collection"]),
        instance=str(keyfields["instance"]),
        backend=backend,
        workers=workers,
        engine=engine,
    )


def run_matrix(
    store: ExperimentStore,
    spec: MatrixSpec,
    label: str = "matrix",
    resume: bool = True,
    max_cells: Optional[int] = None,
    progress: Optional[Callable[[Dict[str, object], InstanceRecord], None]] = None,
) -> RunReport:
    """Execute (or continue) the campaign described by ``spec``.

    Parameters
    ----------
    store:
        Experiment store receiving the checkpointed cells.
    spec:
        The grid to execute.
    label:
        Human-readable run label (recorded on new run rows).
    resume:
        When True (default), an unfinished run with the same spec digest is
        continued — only its missing cells execute.  When False a fresh run
        row always starts.
    max_cells:
        Execute at most this many *missing* cells, then stop with status
        ``partial`` (the incremental-campaign / smoke-budget knob).
    progress:
        Optional callback invoked after each executed cell with
        ``(keyfields, record)``.

    A ``KeyboardInterrupt`` mid-campaign marks the run ``interrupted`` (and
    logs the event) before propagating, so the next ``resume=True`` call
    picks the campaign up at its checkpoint.
    """
    if max_cells is not None and max_cells < 1:
        raise InvalidParameterError("max_cells must be positive when given")
    digest = spec.digest()
    instances = spec.instances()
    cells = spec.cell_keyfields(instances)
    graphs = {(inst.collection, inst.name): inst for inst in instances}

    run_id = store.find_resumable(digest) if resume else None
    resumed = run_id is not None
    if run_id is None:
        run_id = store.begin_run(label=label, spec_digest=digest, meta=asdict(spec))
        store.log(run_id, "begin", {"cells": len(cells), "spec_digest": digest})
    else:
        store.log(run_id, "resume", {"cells": len(cells)})

    report = RunReport(
        run_id=run_id,
        status="running",
        total_cells=len(cells),
        executed=0,
        skipped=0,
        resumed=resumed,
    )
    try:
        for keyfields in cells:
            if store.has_cell(run_id, keyfields):
                report.skipped += 1
                continue
            if max_cells is not None and report.executed >= max_cells:
                break
            inst = graphs[(keyfields["collection"], keyfields["instance"])]
            record = _execute_cell(keyfields, spec, inst.graph)
            _, resultfields, extra = split_record(record.as_dict())
            experiment_id = store.record(
                run_id, keyfields, resultfields, extra=extra
            )
            store.log(
                run_id,
                "cell_done",
                {"elapsed_seconds": record.elapsed_seconds, "nodes": record.nodes},
                experiment_id=experiment_id,
            )
            report.executed += 1
            report.records.append(record)
            if progress is not None:
                progress(keyfields, record)
    except KeyboardInterrupt:
        report.status = "interrupted"
        store.log(
            run_id,
            "interrupted",
            {"executed": report.executed, "skipped": report.skipped},
        )
        store.finish_run(run_id, status="interrupted")
        raise
    if report.remaining == 0:
        report.status = "complete"
    else:
        report.status = "partial"
    store.log(
        run_id,
        report.status,
        {"executed": report.executed, "skipped": report.skipped, "remaining": report.remaining},
    )
    store.finish_run(run_id, status=report.status)
    return report
