"""Experiment drivers: one function per table/figure of the paper's evaluation.

Each driver returns a structured result object carrying both the raw records
and a pre-formatted text table, so it can be used programmatically (tests,
benchmarks) or printed from the command line (``python -m repro experiments
table2``).

The defaults are scaled down from the paper (smaller synthetic graphs, a few
seconds of time limit instead of three hours, ``k ∈ {1, 2, 3, 5}`` instead of
up to 20) so that a complete reproduction run finishes on a laptop in
minutes; every scale knob can be overridden.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from ..analysis.properties import DefectiveCliqueProperties, aggregate_properties, analyze_graph
from ..core.config import variant_config
from ..core.heuristics import degen, degen_opt
from ..core.reductions import preprocess_graph
from ..core.solver import KDCSolver
from ..datasets.collections import DatasetInstance, all_collections, get_collection
from .harness import InstanceRecord, run_collection, count_solved, solved_within
from .reporting import format_solved_table, format_table

__all__ = [
    "ExperimentResult",
    "DEFAULT_K_VALUES",
    "table2",
    "table3",
    "table4",
    "table5",
    "table6",
    "table7",
    "figure7",
    "figure8",
    "run_experiment",
    "EXPERIMENTS",
]

#: Downscaled analogue of the paper's k ∈ {1, 3, 5, 10, 15, 20}.
DEFAULT_K_VALUES = (1, 2, 3, 5)

#: Per-instance time limit (seconds) standing in for the paper's 3 hours.
DEFAULT_TIME_LIMIT = 5.0


@dataclass
class ExperimentResult:
    """Output of one experiment driver."""

    name: str
    description: str
    text: str
    data: Dict[str, object] = field(default_factory=dict)
    records: List[InstanceRecord] = field(default_factory=list)

    def __str__(self) -> str:
        return self.text


# --------------------------------------------------------------------------- #
# Table 2: number of solved instances per algorithm / collection / k
# --------------------------------------------------------------------------- #
def table2(
    scale: str = "tiny",
    k_values: Sequence[int] = DEFAULT_K_VALUES,
    time_limit: float = DEFAULT_TIME_LIMIT,
    algorithms: Sequence[str] = ("kDC", "KDBB", "MADEC"),
) -> ExperimentResult:
    """Reproduce Table 2: solved instances of kDC vs KDBB vs MADEC+ per collection and k."""
    sections: List[str] = []
    data: Dict[str, object] = {}
    all_records: List[InstanceRecord] = []
    for collection_name, instances in all_collections(scale=scale).items():
        records = run_collection(algorithms, instances, k_values, time_limit)
        all_records.extend(records)
        solved = count_solved(records)
        data[collection_name] = solved
        sections.append(
            format_solved_table(
                solved,
                list(k_values),
                total_instances=len(instances),
                title=f"Table 2 — {collection_name} (time limit {time_limit}s)",
            )
        )
    return ExperimentResult(
        name="table2",
        description="Number of solved instances per algorithm, collection and k",
        text="\n\n".join(sections),
        data=data,
        records=all_records,
    )


# --------------------------------------------------------------------------- #
# Table 3: per-instance processing time on the largest facebook-like graphs
# --------------------------------------------------------------------------- #
def table3(
    scale: str = "tiny",
    k_values: Sequence[int] = (1, 3),
    time_limit: float = DEFAULT_TIME_LIMIT,
    algorithms: Sequence[str] = ("kDC", "kDC/RR3&4", "kDC/UB1", "kDC-Degen", "KDBB"),
    top_fraction: float = 0.5,
) -> ExperimentResult:
    """Reproduce Table 3: per-graph runtimes of kDC, its ablations and KDBB on the largest facebook-like graphs."""
    instances = get_collection("facebook_like", scale=scale)
    instances = sorted(instances, key=lambda inst: inst.graph.num_vertices, reverse=True)
    keep = max(1, int(len(instances) * top_fraction))
    instances = instances[:keep]

    records = run_collection(algorithms, instances, k_values, time_limit)
    rows = []
    for inst in instances:
        graph = inst.graph
        row: List[object] = [inst.name, graph.num_vertices, graph.num_edges]
        for k in k_values:
            for algorithm in algorithms:
                match = [
                    r
                    for r in records
                    if r.instance == inst.name and r.k == k and r.algorithm == algorithm
                ]
                cell = "-"
                if match:
                    record = match[0]
                    cell = f"{record.elapsed_seconds:.3f}" if record.solved else "TL"
                row.append(cell)
        rows.append(row)
    headers = ["instance", "n", "m"] + [
        f"{alg} (k={k})" for k in k_values for alg in algorithms
    ]
    text = format_table(headers, rows, title=f"Table 3 — per-instance runtime (s), time limit {time_limit}s")
    return ExperimentResult(
        name="table3",
        description="Per-instance processing time of kDC, its ablations and KDBB",
        text=text,
        data={"algorithms": list(algorithms), "k_values": list(k_values)},
        records=records,
    )


# --------------------------------------------------------------------------- #
# Table 4: preprocessing comparison kDC vs kDC-Degen
# --------------------------------------------------------------------------- #
def table4(
    scale: str = "tiny",
    k_values: Sequence[int] = DEFAULT_K_VALUES,
) -> ExperimentResult:
    """Reproduce Table 4: initial-solution size and reduced-graph size, kDC preprocessing vs kDC-Degen preprocessing."""
    rows = []
    data: Dict[str, object] = {}
    for collection_name in ("real_world_like", "facebook_like"):
        instances = get_collection(collection_name, scale=scale)
        for k in k_values:
            ratio_c0, ratio_n, ratio_m, counted = 0.0, 0.0, 0.0, 0
            for inst in instances:
                graph = inst.graph
                c_opt = degen_opt(graph, k)
                c_deg = degen(graph, k)

                reduced_full = graph.copy()
                preprocess_graph(reduced_full, k, len(c_opt), use_rr5=True, use_rr6=True)
                reduced_degen = graph.copy()
                preprocess_graph(reduced_degen, k, len(c_deg), use_rr5=True, use_rr6=False)

                if not c_deg:
                    continue
                counted += 1
                ratio_c0 += len(c_opt) / max(1, len(c_deg))
                ratio_n += reduced_full.num_vertices / max(1, reduced_degen.num_vertices)
                ratio_m += reduced_full.num_edges / max(1, reduced_degen.num_edges)
            if counted:
                row = [
                    collection_name,
                    k,
                    ratio_c0 / counted,
                    ratio_n / counted,
                    ratio_m / counted,
                ]
                rows.append(row)
                data[f"{collection_name}/k={k}"] = {
                    "initial_solution_ratio": ratio_c0 / counted,
                    "reduced_vertices_ratio": ratio_n / counted,
                    "reduced_edges_ratio": ratio_m / counted,
                }
    headers = ["collection", "k", "|C0_kDC| / |C0_kDC-D|", "n0_kDC / n0_kDC-D", "m0_kDC / m0_kDC-D"]
    text = format_table(headers, rows, title="Table 4 — preprocessing comparison (kDC vs kDC-Degen)")
    return ExperimentResult(
        name="table4",
        description="Initial-solution and reduced-graph comparison between kDC and kDC-Degen preprocessing",
        text=text,
        data=data,
    )


# --------------------------------------------------------------------------- #
# Tables 5, 6, 7: properties of the maximum k-defective clique
# --------------------------------------------------------------------------- #
def _property_records(
    scale: str,
    k_values: Sequence[int],
    time_limit: float,
) -> Dict[str, Dict[int, List[DefectiveCliqueProperties]]]:
    out: Dict[str, Dict[int, List[DefectiveCliqueProperties]]] = {}
    for collection_name, instances in all_collections(scale=scale).items():
        per_k: Dict[int, List[DefectiveCliqueProperties]] = {}
        for k in k_values:
            per_k[k] = [
                analyze_graph(inst.graph, k, graph_name=inst.name, time_limit=time_limit)
                for inst in instances
            ]
        out[collection_name] = per_k
    return out


def table5(
    scale: str = "tiny",
    k_values: Sequence[int] = DEFAULT_K_VALUES,
    time_limit: float = DEFAULT_TIME_LIMIT,
) -> ExperimentResult:
    """Reproduce Table 5: ratio of maximum k-defective clique size over maximum clique size."""
    records = _property_records(scale, k_values, time_limit)
    rows = []
    data: Dict[str, object] = {}
    for k in k_values:
        row: List[object] = [k]
        for collection_name in records:
            agg = aggregate_properties(records[collection_name][k])
            row.extend([agg["avg_ratio"], agg["max_ratio"]])
            data[f"{collection_name}/k={k}"] = agg
        rows.append(row)
    headers = ["k"]
    for collection_name in records:
        headers.extend([f"{collection_name} avg", f"{collection_name} max"])
    text = format_table(headers, rows, title="Table 5 — max k-defective clique size / max clique size")
    return ExperimentResult(
        name="table5",
        description="Size ratio of maximum k-defective clique over maximum clique",
        text=text,
        data=data,
    )


def table6(
    scale: str = "tiny",
    k_values: Sequence[int] = DEFAULT_K_VALUES,
    time_limit: float = DEFAULT_TIME_LIMIT,
) -> ExperimentResult:
    """Reproduce Table 6: graphs whose maximum k-defective clique extends a maximum clique."""
    records = _property_records(scale, k_values, time_limit)
    rows = []
    data: Dict[str, object] = {}
    for k in k_values:
        row: List[object] = [k]
        for collection_name in records:
            agg = aggregate_properties(records[collection_name][k])
            row.append(f"{agg['num_extending_max_clique']}/{agg['count']}")
            data[f"{collection_name}/k={k}"] = agg
        rows.append(row)
    headers = ["k"] + [name for name in records]
    text = format_table(headers, rows, title="Table 6 — maximum k-defective clique extends a maximum clique")
    return ExperimentResult(
        name="table6",
        description="Number of graphs whose maximum k-defective clique contains a maximum clique",
        text=text,
        data=data,
    )


def table7(
    scale: str = "tiny",
    k_values: Sequence[int] = DEFAULT_K_VALUES,
    time_limit: float = DEFAULT_TIME_LIMIT,
) -> ExperimentResult:
    """Reproduce Table 7: average % of vertices not fully connected inside the maximum k-defective clique."""
    records = _property_records(scale, k_values, time_limit)
    rows = []
    data: Dict[str, object] = {}
    for k in k_values:
        row: List[object] = [k]
        for collection_name in records:
            agg = aggregate_properties(records[collection_name][k])
            row.append(agg["avg_pct_not_fully_connected"])
            data[f"{collection_name}/k={k}"] = agg
        rows.append(row)
    headers = ["k"] + [f"{name} (%)" for name in records]
    text = format_table(headers, rows, title="Table 7 — vertices with missing neighbours in the maximum k-defective clique")
    return ExperimentResult(
        name="table7",
        description="Average percentage of not-fully-connected vertices in the maximum k-defective clique",
        text=text,
        data=data,
    )


# --------------------------------------------------------------------------- #
# Figures 7 and 8: number of solved instances vs time limit
# --------------------------------------------------------------------------- #
def _solved_vs_time_limit(
    collection_name: str,
    scale: str,
    k_values: Sequence[int],
    time_limits: Sequence[float],
    algorithms: Sequence[str],
) -> ExperimentResult:
    instances = get_collection(collection_name, scale=scale)
    max_limit = max(time_limits)
    records = run_collection(algorithms, instances, k_values, max_limit)
    sections: List[str] = []
    data: Dict[str, object] = {}
    for k in k_values:
        k_records = [r for r in records if r.k == k]
        rows = []
        for limit in time_limits:
            solved = solved_within(k_records, limit)
            row: List[object] = [limit]
            for algorithm in algorithms:
                row.append(solved.get(algorithm, {}).get(k, 0))
            rows.append(row)
            data[f"k={k}/limit={limit}"] = {
                algorithm: solved.get(algorithm, {}).get(k, 0) for algorithm in algorithms
            }
        headers = ["time limit (s)"] + list(algorithms)
        sections.append(
            format_table(headers, rows, title=f"{collection_name}: #solved instances vs time limit (k={k})")
        )
    return ExperimentResult(
        name=f"solved_vs_time_{collection_name}",
        description=f"Number of solved instances vs time limit on {collection_name}",
        text="\n\n".join(sections),
        data=data,
        records=records,
    )


def _limits_from_budget(time_limit: Optional[float], default: Sequence[float]) -> Sequence[float]:
    """Derive a sweep of plotted time limits from a single overall budget."""
    if time_limit is None:
        return default
    return (time_limit / 20, time_limit / 5, time_limit / 2, time_limit)


def figure7(
    scale: str = "tiny",
    k_values: Sequence[int] = (1, 3),
    time_limits: Sequence[float] = (0.1, 0.3, 1.0, 3.0, 5.0),
    algorithms: Sequence[str] = ("kDC", "kDC/RR3&4", "kDC/UB1", "kDC-Degen", "KDBB"),
    time_limit: Optional[float] = None,
) -> ExperimentResult:
    """Reproduce Figure 7: solved instances vs time limit on the real-world-like collection.

    ``time_limit`` (a single budget) is a convenience used by the CLI: when
    given, the plotted sweep is derived from it instead of ``time_limits``.
    """
    limits = _limits_from_budget(time_limit, time_limits)
    result = _solved_vs_time_limit("real_world_like", scale, k_values, limits, algorithms)
    result.name = "figure7"
    return result


def figure8(
    scale: str = "tiny",
    k_values: Sequence[int] = (1, 3),
    time_limits: Sequence[float] = (0.1, 0.3, 1.0, 3.0, 5.0),
    algorithms: Sequence[str] = ("kDC", "kDC/RR3&4", "kDC/UB1", "kDC-Degen", "KDBB"),
    time_limit: Optional[float] = None,
) -> ExperimentResult:
    """Reproduce Figure 8: solved instances vs time limit on the facebook-like collection.

    See :func:`figure7` for the meaning of ``time_limit``.
    """
    limits = _limits_from_budget(time_limit, time_limits)
    result = _solved_vs_time_limit("facebook_like", scale, k_values, limits, algorithms)
    result.name = "figure8"
    return result


#: Registry used by the command line interface.
EXPERIMENTS = {
    "table2": table2,
    "table3": table3,
    "table4": table4,
    "table5": table5,
    "table6": table6,
    "table7": table7,
    "figure7": figure7,
    "figure8": figure8,
}


def run_experiment(name: str, **kwargs) -> ExperimentResult:
    """Run a named experiment (see :data:`EXPERIMENTS` for the available names)."""
    if name not in EXPERIMENTS:
        raise KeyError(f"unknown experiment {name!r}; available: {', '.join(sorted(EXPERIMENTS))}")
    return EXPERIMENTS[name](**kwargs)
