"""Shape comparison between the paper's published results and the reproduction.

The reproduction cannot match the paper's absolute numbers (different graphs,
different language, different time budgets), so what is checked instead is
the *shape* of the results:

* **who wins** — does the same algorithm solve the most instances?
* **ordering** — is kDC ≥ KDBB ≥ MADEC in solved instances for every k?
* **trends** — do the Table 5/7 quantities grow with k, and do the Table 4
  ratios sit on the same side of 1.0 as the paper's?

:func:`compare_table2_shape` and friends return structured verdicts that
``EXPERIMENTS.md`` and the benchmark assertions are built on.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Sequence

from ..datasets.paper_reference import TABLE2_SOLVED, paper_winner_table2

__all__ = [
    "ShapeCheck",
    "compare_table2_shape",
    "ordering_holds",
    "trend_is_non_decreasing",
]

#: Maps the reproduction's synthetic collection names to the paper's collection names.
COLLECTION_NAME_MAP: Dict[str, str] = {
    "real_world_like": "real_world",
    "facebook_like": "facebook",
    "dimacs_snap_like": "dimacs_snap",
}


@dataclass(frozen=True)
class ShapeCheck:
    """Outcome of one qualitative comparison against the paper."""

    name: str
    passed: bool
    detail: str

    def __str__(self) -> str:
        status = "OK " if self.passed else "DIFF"
        return f"[{status}] {self.name}: {self.detail}"


def ordering_holds(solved: Mapping[str, Mapping[int, int]], k: int) -> bool:
    """Return True if kDC >= KDBB >= MADEC in solved instances for the given k."""
    kdc = solved.get("kDC", {}).get(k, 0)
    kdbb = solved.get("KDBB", {}).get(k, 0)
    madec = solved.get("MADEC", {}).get(k, 0)
    return kdc >= kdbb >= madec


def compare_table2_shape(
    measured: Mapping[str, Mapping[str, Mapping[int, int]]],
    k_values: Sequence[int],
) -> List[ShapeCheck]:
    """Compare a measured Table 2 against the paper's, collection by collection.

    ``measured`` maps reproduction collection names to
    ``{algorithm: {k: solved}}`` tables (the output of
    :func:`repro.bench.harness.count_solved` per collection).
    """
    checks: List[ShapeCheck] = []
    for repro_name, solved in measured.items():
        paper_name = COLLECTION_NAME_MAP.get(repro_name)
        for k in k_values:
            ordered = ordering_holds(solved, k)
            checks.append(
                ShapeCheck(
                    name=f"{repro_name} k={k} ordering",
                    passed=ordered,
                    detail="kDC >= KDBB >= MADEC"
                    if ordered
                    else f"measured counts {{alg: solved}} = "
                    f"{ {alg: solved[alg].get(k, 0) for alg in solved} }",
                )
            )
            if paper_name is not None and k in TABLE2_SOLVED[paper_name]["kDC"]:
                paper_best = paper_winner_table2(paper_name, k)
                counts = {alg: solved[alg].get(k, 0) for alg in solved}
                best_count = max(counts.values()) if counts else 0
                measured_best = sorted(alg for alg, c in counts.items() if c == best_count)
                same_winner = bool(set(paper_best) & set(measured_best))
                checks.append(
                    ShapeCheck(
                        name=f"{repro_name} k={k} winner",
                        passed=same_winner,
                        detail=f"paper winner {paper_best}, measured winner {measured_best}",
                    )
                )
    return checks


def trend_is_non_decreasing(values: Sequence[float], tolerance: float = 1e-9) -> bool:
    """Return True if the sequence never decreases (up to ``tolerance``)."""
    return all(b >= a - tolerance for a, b in zip(values, values[1:]))
