"""Benchmark harness: timed solver runs and solved-instance accounting.

The paper's headline evaluation metric is the *number of solved instances
within a time limit* (Table 2, Figures 7 and 8) complemented by per-instance
processing times (Table 3).  This module provides the runner that produces
those records for any of the registered algorithms.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field, replace as dataclass_replace
from typing import Callable, Dict, Iterable, List, Optional, Sequence

from ..baselines.kdbb import KDBBSolver
from ..baselines.madec import MADECSolver
from ..core.config import variant_config
from ..core.result import SolveResult
from ..core.solver import KDCSolver
from ..datasets.collections import DatasetInstance
from ..exceptions import InvalidParameterError
from ..graphs.graph import Graph

__all__ = [
    "ALGORITHMS",
    "make_solver",
    "InstanceRecord",
    "run_instance",
    "run_collection",
    "count_solved",
    "solved_within",
]

#: Algorithm names accepted by :func:`make_solver`, in the order the paper reports them.
ALGORITHMS = (
    "kDC",
    "kDC-t",
    "kDC/UB1",
    "kDC/RR3&4",
    "kDC/UB1&RR3&4",
    "kDC-Degen",
    "KDBB",
    "MADEC",
)


def make_solver(
    name: str,
    time_limit: Optional[float] = None,
    node_limit: Optional[int] = None,
    backend: Optional[str] = None,
    workers: Optional[int] = None,
    engine: Optional[str] = None,
):
    """Instantiate a solver by its paper name.

    ``kDC`` and its ablation variants map to :class:`KDCSolver` configured via
    :func:`~repro.core.config.variant_config`; ``KDBB`` and ``MADEC`` map to
    the baseline reimplementations.

    ``backend`` overrides the search-state backend of the kDC variants
    (``"auto"``, ``"set"`` or ``"bitset"``), ``workers`` the number of
    decomposition worker processes, and ``engine`` the bitset
    branch-and-bound engine (``"trail"`` or ``"copy"``); the baselines have
    a single implementation and reject all three.
    """
    if name in ("KDBB",):
        if backend is not None or workers is not None or engine is not None:
            raise InvalidParameterError(
                "backend/workers/engine selection only applies to the kDC variants"
            )
        return KDBBSolver(time_limit=time_limit, node_limit=node_limit)
    if name in ("MADEC", "MADEC+"):
        if backend is not None or workers is not None or engine is not None:
            raise InvalidParameterError(
                "backend/workers/engine selection only applies to the kDC variants"
            )
        return MADECSolver(time_limit=time_limit, node_limit=node_limit)
    try:
        config = variant_config(name, time_limit=time_limit, node_limit=node_limit)
    except InvalidParameterError as exc:
        raise InvalidParameterError(
            f"unknown algorithm {name!r}; expected one of {', '.join(ALGORITHMS)}"
        ) from exc
    overrides = {}
    if backend is not None:
        overrides["backend"] = backend
    if workers is not None:
        overrides["workers"] = workers
    if engine is not None:
        overrides["engine"] = engine
    if overrides:
        config = dataclass_replace(config, **overrides)
    return KDCSolver(config, name=name)


@dataclass(frozen=True)
class InstanceRecord:
    """One (algorithm, graph, k) benchmark measurement."""

    algorithm: str
    collection: str
    instance: str
    k: int
    solved: bool
    size: int
    elapsed_seconds: float
    nodes: int
    #: search-state backend that ran ("" for the baselines or when the solve
    #: was interrupted before the search phase)
    backend: str = ""
    #: decomposition worker processes used (0 when the solve never entered
    #: the degeneracy decomposition, e.g. baselines or whole-graph searches)
    workers: int = 0
    #: bitset engine that ran ("trail"/"copy"; "" when the bitset backend
    #: never ran)
    engine: str = ""
    #: trail engine counters (all 0 for the copy engine / set backend)
    trail_pushes: int = 0
    trail_pops: int = 0
    dirty_drained: int = 0
    recolor_full: int = 0
    recolor_repair: int = 0
    #: request-level phase timings (see :class:`~repro.core.result.SearchStats`):
    #: milliseconds spent preparing (relabel + heuristic + preprocessing +
    #: degeneracy order) and in the branch-and-bound itself, plus the queue
    #: wait when the record came through the solver service
    prepare_ms: float = 0.0
    queue_ms: float = 0.0
    solve_ms: float = 0.0
    #: ``True`` when the solver service answered this measurement from its
    #: result cache without re-entering the search engine
    cache_hit: bool = False

    def as_dict(self) -> Dict[str, object]:
        """Return the record as a flat dictionary (for CSV-style reporting)."""
        return {
            "algorithm": self.algorithm,
            "collection": self.collection,
            "instance": self.instance,
            "k": self.k,
            "solved": self.solved,
            "size": self.size,
            "elapsed_seconds": self.elapsed_seconds,
            "nodes": self.nodes,
            "backend": self.backend,
            "workers": self.workers,
            "engine": self.engine,
            "trail_pushes": self.trail_pushes,
            "trail_pops": self.trail_pops,
            "dirty_drained": self.dirty_drained,
            "recolor_full": self.recolor_full,
            "recolor_repair": self.recolor_repair,
            "prepare_ms": self.prepare_ms,
            "queue_ms": self.queue_ms,
            "solve_ms": self.solve_ms,
            "cache_hit": self.cache_hit,
        }

    @classmethod
    def from_result(
        cls,
        result: SolveResult,
        *,
        algorithm: str,
        collection: str = "",
        instance: str = "",
        elapsed_seconds: Optional[float] = None,
    ) -> "InstanceRecord":
        """Build a record from any :class:`SolveResult` (solver or service)."""
        stats = result.stats
        return cls(
            algorithm=algorithm,
            collection=collection,
            instance=instance,
            k=result.k,
            solved=result.optimal,
            size=result.size,
            elapsed_seconds=(
                elapsed_seconds if elapsed_seconds is not None else stats.elapsed_seconds
            ),
            nodes=stats.nodes,
            backend=stats.backend,
            workers=stats.workers,
            engine=stats.engine,
            trail_pushes=stats.trail_pushes,
            trail_pops=stats.trail_pops,
            dirty_drained=stats.dirty_drained,
            recolor_full=stats.recolor_full,
            recolor_repair=stats.recolor_repair,
            prepare_ms=stats.prepare_ms,
            queue_ms=stats.queue_ms,
            solve_ms=stats.solve_ms,
            cache_hit=stats.cache_hit,
        )


def run_instance(
    algorithm: str,
    graph: Graph,
    k: int,
    time_limit: Optional[float],
    collection: str = "",
    instance: str = "",
    backend: Optional[str] = None,
    workers: Optional[int] = None,
    engine: Optional[str] = None,
) -> InstanceRecord:
    """Run one algorithm on one graph for one ``k`` under a time limit.

    ``backend`` optionally forces the kDC search-state backend, ``workers``
    the decomposition worker-process count, and ``engine`` the bitset
    engine; what actually ran (backend resolved from ``"auto"``, workers
    actually used by the decomposition, the engine that searched) is
    recorded on the returned record.
    """
    solver = make_solver(
        algorithm, time_limit=time_limit, backend=backend, workers=workers, engine=engine
    )
    start = time.perf_counter()
    result: SolveResult = solver.solve(graph, k)
    elapsed = time.perf_counter() - start
    return InstanceRecord.from_result(
        result,
        algorithm=algorithm,
        collection=collection,
        instance=instance,
        elapsed_seconds=elapsed,
    )


def run_collection(
    algorithms: Sequence[str],
    instances: Iterable[DatasetInstance],
    k_values: Sequence[int],
    time_limit: Optional[float],
    progress: Optional[Callable[[InstanceRecord], None]] = None,
) -> List[InstanceRecord]:
    """Run every algorithm on every instance for every ``k``; return all records.

    Parameters
    ----------
    algorithms:
        Algorithm names (see :data:`ALGORITHMS`).
    instances:
        Dataset instances to solve.
    k_values:
        Values of ``k`` to test (the paper uses {1, 3, 5, 10, 15, 20}).
    time_limit:
        Per-run wall-clock budget in seconds (``None`` = unlimited).
    progress:
        Optional callback invoked with each finished record.
    """
    records: List[InstanceRecord] = []
    instances = list(instances)
    for k in k_values:
        for inst in instances:
            graph = inst.graph
            for algorithm in algorithms:
                record = run_instance(
                    algorithm,
                    graph,
                    k,
                    time_limit,
                    collection=inst.collection,
                    instance=inst.name,
                )
                records.append(record)
                if progress is not None:
                    progress(record)
    return records


def count_solved(records: Iterable[InstanceRecord]) -> Dict[str, Dict[int, int]]:
    """Aggregate records into ``{algorithm: {k: solved_count}}`` (the Table 2 shape)."""
    table: Dict[str, Dict[int, int]] = {}
    for record in records:
        per_k = table.setdefault(record.algorithm, {})
        per_k.setdefault(record.k, 0)
        if record.solved:
            per_k[record.k] += 1
    return table


def solved_within(records: Iterable[InstanceRecord], time_limit: float) -> Dict[str, Dict[int, int]]:
    """Count, per algorithm and k, the records solved within ``time_limit`` seconds.

    Used to produce the Figure 7/8 curves: one full run with a generous limit
    is recorded once, then re-thresholded at each plotted time limit.
    """
    table: Dict[str, Dict[int, int]] = {}
    for record in records:
        per_k = table.setdefault(record.algorithm, {})
        per_k.setdefault(record.k, 0)
        if record.solved and record.elapsed_seconds <= time_limit:
            per_k[record.k] += 1
    return table
