"""SQLite-backed experiment store: the repository's perf trajectory memory.

The paper's headline evaluation is "instances solved within a time limit"
across an algorithm × instance × k matrix, and the repo's performance story
(PR 1's bitset backend, PR 3's trail engine, PR 6's prepare amortization) is
only durable if those measurements accumulate somewhere queryable.  The
:class:`ExperimentStore` keeps them in one SQLite file, organised in the
style of py_experimenter (keyfields → resultfields, plus incremental log
tables):

* ``runs`` — one row per campaign: label, the spec digest that identifies
  the matrix it executes, git SHA, host, python version, CPU count, start/
  finish timestamps and a status (``running``/``partial``/``interrupted``/
  ``complete``);
* ``experiments`` — one row per completed cell, keyed by the **keyfields**
  ``(collection, instance, k, algorithm, backend, engine, workers)`` with
  the **resultfields** ``size``/``optimal``/``nodes``/``elapsed_seconds``/
  ``node_throughput`` plus the request-level phase timings
  (``prepare_ms``/``queue_ms``/``solve_ms``/``cache_hit``) introduced by the
  solver service.  Unmapped fields survive in an ``extra`` JSON column.
  A UNIQUE constraint over ``(run_id, *keyfields)`` is what makes campaigns
  checkpointable: a cell either exists or it does not;
* ``logs`` — an append-only event stream per run (begin/resume/cell_done/
  interrupted/...), the debugging trail of long campaigns.

On top of the storage, :func:`compare_runs` implements the regression gate:
it groups two runs' rows by ``(backend, engine)`` cell, compares median
node throughput (nodes / elapsed second), and flags any cell whose median
dropped by more than ``threshold`` (default 20%).  ``repro experiments
compare`` turns a flagged report into a non-zero exit code, which is what
the CI ``perf-gate`` job enforces.

For ad-hoc analysis, :func:`query_store` runs read-only SQL (the database
is opened in SQLite's ``mode=ro``; only ``SELECT``/``WITH``/``EXPLAIN``
statements are admitted) and :data:`CANNED_REPORTS` names a few prepared
trend queries — ``repro experiments query`` exposes both with table or CSV
output.
"""

from __future__ import annotations

import json
import os
import platform
import sqlite3
import subprocess
import threading
import time
from dataclasses import dataclass, field
from statistics import median
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from ..exceptions import InvalidParameterError

__all__ = [
    "KEYFIELDS",
    "RESULTFIELDS",
    "CANNED_REPORTS",
    "ExperimentStore",
    "CellComparison",
    "ComparisonReport",
    "compare_runs",
    "query_store",
    "split_record",
]

#: Fields identifying one experiment cell (the py_experimenter "keyfields").
KEYFIELDS = ("collection", "instance", "k", "algorithm", "backend", "engine", "workers")

#: Measured outcome fields of one cell (the "resultfields").
RESULTFIELDS = (
    "size",
    "optimal",
    "nodes",
    "elapsed_seconds",
    "node_throughput",
    "prepare_ms",
    "queue_ms",
    "solve_ms",
    "cache_hit",
)

#: Run statuses: ``running`` (in progress or crashed), ``partial`` (stopped
#: at a cell budget), ``interrupted`` (Ctrl-C), ``complete`` (all cells done).
RUN_STATUSES = ("running", "partial", "interrupted", "complete")

_SCHEMA = """
CREATE TABLE IF NOT EXISTS runs (
    run_id        INTEGER PRIMARY KEY AUTOINCREMENT,
    label         TEXT NOT NULL DEFAULT '',
    spec_digest   TEXT NOT NULL DEFAULT '',
    git_sha       TEXT NOT NULL DEFAULT '',
    host          TEXT NOT NULL DEFAULT '',
    python        TEXT NOT NULL DEFAULT '',
    cpus          INTEGER,
    meta          TEXT NOT NULL DEFAULT '{}',
    started_unix  REAL NOT NULL,
    finished_unix REAL,
    status        TEXT NOT NULL DEFAULT 'running'
);
CREATE TABLE IF NOT EXISTS experiments (
    experiment_id   INTEGER PRIMARY KEY AUTOINCREMENT,
    run_id          INTEGER NOT NULL REFERENCES runs(run_id),
    collection      TEXT NOT NULL DEFAULT '',
    instance        TEXT NOT NULL,
    k               INTEGER NOT NULL DEFAULT -1,
    algorithm       TEXT NOT NULL DEFAULT '',
    backend         TEXT NOT NULL DEFAULT '',
    engine          TEXT NOT NULL DEFAULT '',
    workers         INTEGER NOT NULL DEFAULT 0,
    size            INTEGER,
    optimal         INTEGER,
    nodes           INTEGER,
    elapsed_seconds REAL,
    node_throughput REAL,
    prepare_ms      REAL,
    queue_ms        REAL,
    solve_ms        REAL,
    cache_hit       INTEGER,
    extra           TEXT NOT NULL DEFAULT '{}',
    created_unix    REAL NOT NULL,
    UNIQUE (run_id, collection, instance, k, algorithm, backend, engine, workers)
);
CREATE TABLE IF NOT EXISTS logs (
    log_id        INTEGER PRIMARY KEY AUTOINCREMENT,
    run_id        INTEGER NOT NULL REFERENCES runs(run_id),
    experiment_id INTEGER,
    created_unix  REAL NOT NULL,
    event         TEXT NOT NULL,
    payload       TEXT NOT NULL DEFAULT '{}'
);
CREATE INDEX IF NOT EXISTS idx_experiments_run ON experiments(run_id);
CREATE INDEX IF NOT EXISTS idx_logs_run ON logs(run_id);
"""


def _git_sha() -> str:
    """Best-effort HEAD SHA of the current checkout (empty outside a repo)."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            capture_output=True,
            text=True,
            timeout=5,
            check=False,
        )
    except (OSError, subprocess.SubprocessError):
        return ""
    return out.stdout.strip() if out.returncode == 0 else ""


def split_record(record: Dict[str, object]) -> Tuple[Dict[str, object], Dict[str, object], Dict[str, object]]:
    """Split one flat measurement row into (keyfields, resultfields, extra).

    The flat shape is what :class:`benchmarks._bench_utils.BenchRecorder` and
    :meth:`~repro.bench.harness.InstanceRecord.as_dict` produce; anything the
    schema does not model lands in ``extra`` so no measurement is dropped.
    """
    keyfields: Dict[str, object] = {}
    resultfields: Dict[str, object] = {}
    extra: Dict[str, object] = {}
    for name, value in record.items():
        if name in KEYFIELDS:
            keyfields[name] = value
        elif name in RESULTFIELDS:
            resultfields[name] = value
        elif name == "solved":  # InstanceRecord calls "optimal" "solved"
            resultfields.setdefault("optimal", value)
        else:
            extra[name] = value
    return keyfields, resultfields, extra


class ExperimentStore:
    """Thread-safe SQLite store of experiment runs, cells and logs.

    Parameters
    ----------
    path:
        SQLite database file (created with its schema on first open);
        ``":memory:"`` builds a private in-memory store for tests.
    """

    def __init__(self, path: str = ":memory:") -> None:
        self.path = path
        if path != ":memory:":
            directory = os.path.dirname(os.path.abspath(path))
            os.makedirs(directory, exist_ok=True)
        self._lock = threading.Lock()
        self._conn = sqlite3.connect(path, check_same_thread=False)
        self._conn.row_factory = sqlite3.Row
        with self._lock:
            self._conn.executescript(_SCHEMA)
            self._conn.commit()

    # ------------------------------------------------------------------ #
    # Runs
    # ------------------------------------------------------------------ #
    def begin_run(
        self,
        label: str = "",
        spec_digest: str = "",
        meta: Optional[Dict[str, object]] = None,
    ) -> int:
        """Open a new run row (status ``running``) and return its id.

        Environment provenance — git SHA, hostname, python version, CPU
        count — is captured automatically; ``meta`` carries anything else
        (scale, time limit, the full spec) as JSON.
        """
        with self._lock:
            cur = self._conn.execute(
                "INSERT INTO runs (label, spec_digest, git_sha, host, python, cpus,"
                " meta, started_unix) VALUES (?, ?, ?, ?, ?, ?, ?, ?)",
                (
                    label,
                    spec_digest,
                    _git_sha(),
                    platform.node(),
                    platform.python_version(),
                    os.cpu_count(),
                    json.dumps(meta or {}, sort_keys=True),
                    time.time(),
                ),
            )
            self._conn.commit()
            return int(cur.lastrowid)

    def finish_run(self, run_id: int, status: str = "complete") -> None:
        """Stamp a run's finish time and final status."""
        if status not in RUN_STATUSES:
            raise InvalidParameterError(
                f"unknown run status {status!r}; expected one of {', '.join(RUN_STATUSES)}"
            )
        with self._lock:
            self._conn.execute(
                "UPDATE runs SET finished_unix = ?, status = ? WHERE run_id = ?",
                (time.time(), status, run_id),
            )
            self._conn.commit()

    def run(self, run_id: int) -> Dict[str, object]:
        """Return one run row as a dict."""
        with self._lock:
            row = self._conn.execute(
                "SELECT * FROM runs WHERE run_id = ?", (run_id,)
            ).fetchone()
        if row is None:
            raise InvalidParameterError(f"no run {run_id} in {self.path}")
        data = dict(row)
        data["meta"] = json.loads(data.get("meta") or "{}")
        return data

    def runs(self) -> List[Dict[str, object]]:
        """Return every run row, oldest first."""
        with self._lock:
            rows = self._conn.execute("SELECT * FROM runs ORDER BY run_id").fetchall()
        out = []
        for row in rows:
            data = dict(row)
            data["meta"] = json.loads(data.get("meta") or "{}")
            out.append(data)
        return out

    def latest_run(
        self,
        label: Optional[str] = None,
        exclude: Sequence[int] = (),
        with_cells: bool = False,
    ) -> Optional[int]:
        """Return the most recent run id (optionally filtered), or ``None``.

        ``with_cells`` restricts the search to runs that recorded at least
        one experiment row — what ``compare`` wants as its endpoints.
        """
        query = "SELECT run_id FROM runs"
        clauses, params = [], []
        if label is not None:
            clauses.append("label = ?")
            params.append(label)
        if with_cells:
            clauses.append("run_id IN (SELECT DISTINCT run_id FROM experiments)")
        for run_id in exclude:
            clauses.append("run_id != ?")
            params.append(run_id)
        if clauses:
            query += " WHERE " + " AND ".join(clauses)
        query += " ORDER BY run_id DESC LIMIT 1"
        with self._lock:
            row = self._conn.execute(query, params).fetchone()
        return int(row["run_id"]) if row is not None else None

    def find_resumable(self, spec_digest: str) -> Optional[int]:
        """Return the newest non-complete run executing ``spec_digest``, if any.

        This is the resume hook: an interrupted or partial campaign for the
        same matrix is picked up instead of starting a fresh run row.
        """
        with self._lock:
            row = self._conn.execute(
                "SELECT run_id FROM runs WHERE spec_digest = ? AND status != 'complete'"
                " ORDER BY run_id DESC LIMIT 1",
                (spec_digest,),
            ).fetchone()
        return int(row["run_id"]) if row is not None else None

    # ------------------------------------------------------------------ #
    # Experiments (cells)
    # ------------------------------------------------------------------ #
    @staticmethod
    def _cell_key(keyfields: Dict[str, object]) -> Tuple[object, ...]:
        return (
            str(keyfields.get("collection", "")),
            str(keyfields["instance"]),
            int(keyfields.get("k", -1)),
            str(keyfields.get("algorithm", "")),
            str(keyfields.get("backend", "")),
            str(keyfields.get("engine", "")),
            int(keyfields.get("workers", 0)),
        )

    def record(
        self,
        run_id: int,
        keyfields: Dict[str, object],
        resultfields: Dict[str, object],
        extra: Optional[Dict[str, object]] = None,
        on_conflict: str = "replace",
    ) -> int:
        """Insert one completed cell; returns its ``experiment_id``.

        ``node_throughput`` is derived (``nodes / elapsed_seconds``) when not
        supplied and derivable.  ``on_conflict`` controls what a duplicate
        ``(run_id, *keyfields)`` does: ``"replace"`` (default — re-measuring
        a cell keeps the latest row) or ``"fail"`` (checkpointed campaigns
        treat a duplicate as a programming error).
        """
        if on_conflict not in ("replace", "fail"):
            raise InvalidParameterError("on_conflict must be 'replace' or 'fail'")
        key = self._cell_key(keyfields)
        results = dict(resultfields)
        if results.get("node_throughput") is None:
            nodes = results.get("nodes")
            elapsed = results.get("elapsed_seconds")
            if nodes is not None and elapsed is not None and float(elapsed) > 0:
                results["node_throughput"] = float(nodes) / float(elapsed)
        values = [results.get(name) for name in RESULTFIELDS]
        # SQLite has no bool affinity; normalise to 0/1 so queries stay plain.
        for i, name in enumerate(RESULTFIELDS):
            if name in ("optimal", "cache_hit") and values[i] is not None:
                values[i] = int(bool(values[i]))
        verb = "INSERT OR REPLACE" if on_conflict == "replace" else "INSERT"
        with self._lock:
            cur = self._conn.execute(
                f"{verb} INTO experiments (run_id, collection, instance, k, algorithm,"
                " backend, engine, workers, size, optimal, nodes, elapsed_seconds,"
                " node_throughput, prepare_ms, queue_ms, solve_ms, cache_hit, extra,"
                " created_unix) VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?)",
                (run_id, *key, *values, json.dumps(extra or {}, sort_keys=True), time.time()),
            )
            self._conn.commit()
            return int(cur.lastrowid)

    def has_cell(self, run_id: int, keyfields: Dict[str, object]) -> bool:
        """True when ``run_id`` already recorded the cell — the resume test."""
        key = self._cell_key(keyfields)
        with self._lock:
            row = self._conn.execute(
                "SELECT 1 FROM experiments WHERE run_id = ? AND collection = ? AND"
                " instance = ? AND k = ? AND algorithm = ? AND backend = ? AND"
                " engine = ? AND workers = ? LIMIT 1",
                (run_id, *key),
            ).fetchone()
        return row is not None

    def cells(self, run_id: int) -> List[Tuple[object, ...]]:
        """Return the keyfield tuples of every cell recorded by ``run_id``."""
        with self._lock:
            rows = self._conn.execute(
                "SELECT collection, instance, k, algorithm, backend, engine, workers"
                " FROM experiments WHERE run_id = ? ORDER BY experiment_id",
                (run_id,),
            ).fetchall()
        return [tuple(r) for r in rows]

    def rows(self, run_id: Optional[int] = None) -> List[Dict[str, object]]:
        """Return experiment rows (all runs, or one run) as plain dicts."""
        query = "SELECT * FROM experiments"
        params: Tuple[object, ...] = ()
        if run_id is not None:
            query += " WHERE run_id = ?"
            params = (run_id,)
        query += " ORDER BY experiment_id"
        with self._lock:
            rows = self._conn.execute(query, params).fetchall()
        out = []
        for row in rows:
            data = dict(row)
            data["extra"] = json.loads(data.get("extra") or "{}")
            out.append(data)
        return out

    # ------------------------------------------------------------------ #
    # Logs
    # ------------------------------------------------------------------ #
    def log(
        self,
        run_id: int,
        event: str,
        payload: Optional[Dict[str, object]] = None,
        experiment_id: Optional[int] = None,
    ) -> None:
        """Append one event to the run's log table."""
        with self._lock:
            self._conn.execute(
                "INSERT INTO logs (run_id, experiment_id, created_unix, event, payload)"
                " VALUES (?, ?, ?, ?, ?)",
                (run_id, experiment_id, time.time(), event, json.dumps(payload or {}, sort_keys=True)),
            )
            self._conn.commit()

    def logs(self, run_id: int) -> List[Dict[str, object]]:
        """Return the run's log events, oldest first."""
        with self._lock:
            rows = self._conn.execute(
                "SELECT * FROM logs WHERE run_id = ? ORDER BY log_id", (run_id,)
            ).fetchall()
        out = []
        for row in rows:
            data = dict(row)
            data["payload"] = json.loads(data.get("payload") or "{}")
            out.append(data)
        return out

    # ------------------------------------------------------------------ #
    # Export / lifecycle
    # ------------------------------------------------------------------ #
    def export_run(self, run_id: int) -> Dict[str, object]:
        """Return one run as a JSON-ready payload: run row, cells, logs."""
        return {
            "run": self.run(run_id),
            "experiments": self.rows(run_id),
            "logs": self.logs(run_id),
        }

    def close(self) -> None:
        with self._lock:
            self._conn.close()

    def __enter__(self) -> "ExperimentStore":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()


# ---------------------------------------------------------------------- #
# Regression comparison
# ---------------------------------------------------------------------- #
@dataclass(frozen=True)
class CellComparison:
    """Median node-throughput comparison of one (backend, engine) cell."""

    backend: str
    engine: str
    baseline_median: Optional[float]
    candidate_median: Optional[float]
    baseline_rows: int
    candidate_rows: int
    regressed: bool

    @property
    def ratio(self) -> Optional[float]:
        """candidate / baseline median throughput (None when either side is missing)."""
        if not self.baseline_median or self.candidate_median is None:
            return None
        return self.candidate_median / self.baseline_median


@dataclass
class ComparisonReport:
    """Outcome of :func:`compare_runs`: per-cell medians and the verdict."""

    threshold: float
    cells: List[CellComparison] = field(default_factory=list)

    @property
    def regressions(self) -> List[CellComparison]:
        return [c for c in self.cells if c.regressed]

    @property
    def ok(self) -> bool:
        return not self.regressions

    def format_table(self) -> str:
        """Human-readable per-cell summary (one line per (backend, engine))."""
        lines = [
            f"{'backend':<8} {'engine':<6} {'baseline nps':>14} {'candidate nps':>14}"
            f" {'ratio':>7}  status"
        ]
        for cell in self.cells:
            base = f"{cell.baseline_median:.1f}" if cell.baseline_median is not None else "-"
            cand = f"{cell.candidate_median:.1f}" if cell.candidate_median is not None else "-"
            ratio = f"{cell.ratio:.3f}" if cell.ratio is not None else "-"
            status = "REGRESSED" if cell.regressed else "ok"
            lines.append(
                f"{cell.backend or '-':<8} {cell.engine or '-':<6} {base:>14} {cand:>14}"
                f" {ratio:>7}  {status}"
            )
        verdict = (
            "PASS: no cell regressed"
            if self.ok
            else f"FAIL: {len(self.regressions)} cell(s) regressed more than"
            f" {self.threshold:.0%} in median node throughput"
        )
        lines.append(verdict)
        return "\n".join(lines)


def _throughput_samples(rows: Iterable[Dict[str, object]]) -> Dict[Tuple[str, str], List[float]]:
    """Group usable throughput samples by (backend, engine).

    Cache hits and rows without real search work (no nodes, or zero elapsed
    time) carry no throughput signal and are excluded.
    """
    samples: Dict[Tuple[str, str], List[float]] = {}
    for row in rows:
        if row.get("cache_hit"):
            continue
        throughput = row.get("node_throughput")
        if throughput is None:
            nodes, elapsed = row.get("nodes"), row.get("elapsed_seconds")
            if not nodes or not elapsed or float(elapsed) <= 0:
                continue
            throughput = float(nodes) / float(elapsed)
        if throughput <= 0:
            continue
        key = (str(row.get("backend") or ""), str(row.get("engine") or ""))
        samples.setdefault(key, []).append(float(throughput))
    return samples


def compare_runs(
    baseline_rows: Iterable[Dict[str, object]],
    candidate_rows: Iterable[Dict[str, object]],
    threshold: float = 0.20,
) -> ComparisonReport:
    """Diff two runs' rows; flag >``threshold`` median-throughput drops.

    A cell regresses when its candidate median node throughput falls below
    ``(1 - threshold)`` times the baseline median.  Cells present on only
    one side are reported but never flagged (a new backend has no baseline;
    a removed one has no candidate).
    """
    if not 0 < threshold < 1:
        raise InvalidParameterError("threshold must be a fraction in (0, 1)")
    baseline = _throughput_samples(baseline_rows)
    candidate = _throughput_samples(candidate_rows)
    report = ComparisonReport(threshold=threshold)
    for key in sorted(set(baseline) | set(candidate)):
        base_samples = baseline.get(key, [])
        cand_samples = candidate.get(key, [])
        base_median = median(base_samples) if base_samples else None
        cand_median = median(cand_samples) if cand_samples else None
        regressed = (
            base_median is not None
            and cand_median is not None
            and cand_median < (1.0 - threshold) * base_median
        )
        report.cells.append(
            CellComparison(
                backend=key[0],
                engine=key[1],
                baseline_median=base_median,
                candidate_median=cand_median,
                baseline_rows=len(base_samples),
                candidate_rows=len(cand_samples),
                regressed=regressed,
            )
        )
    return report


# --------------------------------------------------------------------------- #
# Read-only querying (``repro experiments query``)
# --------------------------------------------------------------------------- #

#: Canned trend reports keyed by name: ``(description, sql)``.  Each is a
#: plain read-only SELECT against the schema above, runnable as
#: ``repro experiments query --report <name>``.
CANNED_REPORTS: Dict[str, Tuple[str, str]] = {
    "runs": (
        "every recorded run: label, status, git SHA, cell count",
        """
        SELECT r.run_id, r.label, r.status, r.git_sha,
               datetime(r.started_unix, 'unixepoch') AS started,
               COUNT(e.experiment_id) AS cells
        FROM runs r LEFT JOIN experiments e USING (run_id)
        GROUP BY r.run_id
        ORDER BY r.started_unix
        """,
    ),
    "throughput-trend": (
        "median-free throughput trajectory: per run and (backend, engine) cell",
        """
        SELECT r.run_id, r.label,
               datetime(r.started_unix, 'unixepoch') AS started,
               e.backend, e.engine,
               COUNT(*) AS cells,
               AVG(e.node_throughput) AS avg_node_throughput
        FROM experiments e JOIN runs r USING (run_id)
        WHERE e.node_throughput IS NOT NULL AND e.node_throughput > 0
              AND (e.cache_hit IS NULL OR e.cache_hit = 0)
        GROUP BY r.run_id, e.backend, e.engine
        ORDER BY r.started_unix, e.backend, e.engine
        """,
    ),
    "solved-by-k": (
        "optimally solved cell counts and mean solve time, grouped by k",
        """
        SELECT e.k, e.algorithm,
               COUNT(*) AS cells,
               SUM(COALESCE(e.optimal, 0)) AS solved,
               AVG(e.elapsed_seconds) AS avg_elapsed_seconds
        FROM experiments e
        GROUP BY e.k, e.algorithm
        ORDER BY e.k, e.algorithm
        """,
    ),
    "slowest": (
        "the 20 slowest solved cells across all runs",
        """
        SELECT e.run_id, e.collection, e.instance, e.k, e.algorithm,
               e.backend, e.engine, e.workers, e.nodes, e.elapsed_seconds
        FROM experiments e
        WHERE e.elapsed_seconds IS NOT NULL
        ORDER BY e.elapsed_seconds DESC
        LIMIT 20
        """,
    ),
}

#: First keywords of statements :func:`query_store` admits.
_READONLY_KEYWORDS = ("select", "with", "explain")


def query_store(
    path: str, sql: str, params: Sequence[object] = ()
) -> Tuple[List[str], List[Tuple[object, ...]]]:
    """Run one read-only SQL statement against an experiment store.

    Returns ``(column_names, rows)``.  The database is opened through a
    ``mode=ro`` SQLite URI, so even a hostile statement cannot write, and
    the statement must start with ``SELECT``/``WITH``/``EXPLAIN`` — this is
    an analysis surface, not an administration one.

    Raises :class:`~repro.exceptions.InvalidParameterError` for a missing
    file or a non-query statement, and lets :class:`sqlite3.Error` propagate
    for SQL mistakes (the CLI renders those as ordinary errors).
    """
    statement = sql.strip().rstrip(";")
    if not statement:
        raise InvalidParameterError("empty SQL statement")
    first = statement.split(None, 1)[0].lower()
    if first not in _READONLY_KEYWORDS:
        raise InvalidParameterError(
            f"only read-only queries are allowed ({'/'.join(_READONLY_KEYWORDS)}); "
            f"got a statement starting with {first!r}"
        )
    if not os.path.exists(path):
        raise InvalidParameterError(f"experiment store not found: {path}")
    uri = f"file:{path}?mode=ro"
    conn = sqlite3.connect(uri, uri=True)
    try:
        cursor = conn.execute(statement, tuple(params))
        headers = [col[0] for col in cursor.description or ()]
        rows = [tuple(row) for row in cursor.fetchall()]
    finally:
        conn.close()
    return headers, rows
