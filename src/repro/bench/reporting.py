"""Plain-text table formatting for experiment results.

The experiment drivers return structured data; these helpers render them as
aligned text tables that mirror the layout of the paper's tables so the
reproduced numbers can be compared side by side with the published ones.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Sequence

__all__ = ["format_table", "format_solved_table", "format_float"]


def format_float(value: float, digits: int = 3) -> str:
    """Format a float compactly (trailing zeros trimmed, at most ``digits`` decimals)."""
    text = f"{value:.{digits}f}"
    if "." in text:
        text = text.rstrip("0").rstrip(".")
    return text if text else "0"


def format_table(headers: Sequence[str], rows: Iterable[Sequence[object]], title: str = "") -> str:
    """Render rows as an aligned monospace table.

    Parameters
    ----------
    headers:
        Column headers.
    rows:
        Row values; every cell is converted with ``str`` (floats are formatted
        with :func:`format_float`).
    title:
        Optional title printed above the table.
    """
    rendered_rows: List[List[str]] = []
    for row in rows:
        rendered_rows.append(
            [format_float(cell) if isinstance(cell, float) else str(cell) for cell in row]
        )
    widths = [len(h) for h in headers]
    for row in rendered_rows:
        for i, cell in enumerate(row):
            if i < len(widths):
                widths[i] = max(widths[i], len(cell))

    def render_row(cells: Sequence[str]) -> str:
        return "  ".join(cell.ljust(widths[i]) for i, cell in enumerate(cells))

    lines: List[str] = []
    if title:
        lines.append(title)
        lines.append("=" * len(title))
    lines.append(render_row(list(headers)))
    lines.append(render_row(["-" * w for w in widths]))
    for row in rendered_rows:
        lines.append(render_row(row))
    return "\n".join(lines)


def format_solved_table(
    solved: Mapping[str, Mapping[int, int]],
    k_values: Sequence[int],
    total_instances: int,
    title: str = "",
) -> str:
    """Render a ``{algorithm: {k: count}}`` mapping in the Table 2 layout."""
    headers = ["algorithm"] + [f"k={k}" for k in k_values] + ["total instances"]
    rows = []
    for algorithm, per_k in solved.items():
        rows.append([algorithm] + [per_k.get(k, 0) for k in k_values] + [total_instances])
    return format_table(headers, rows, title=title)
