"""Solver configuration and the named variants evaluated in the paper.

The paper deliberately separates the techniques needed for the improved time
complexity (branching rule BR plus reduction rules RR1 and RR2 — always on)
from the techniques used purely for practical performance (upper bounds
UB1–UB3, reduction rules RR3–RR6, and the Degen/Degen-opt initial solution).
Every ablation studied in Section 4.2 is therefore expressible as a
:class:`SolverConfig`, and :func:`variant_config` builds the exact
configurations the paper names.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, Optional

from ..exceptions import InvalidParameterError

__all__ = ["SolverConfig", "variant_config", "VARIANT_NAMES", "BACKEND_NAMES", "ENGINE_NAMES"]

#: Search-state backends accepted by :attr:`SolverConfig.backend`.
BACKEND_NAMES = ("auto", "set", "bitset")

#: Bitset branch-and-bound engines accepted by :attr:`SolverConfig.engine`.
ENGINE_NAMES = ("trail", "copy")

#: The solver variants evaluated in the paper's experiments.
VARIANT_NAMES = (
    "kDC",
    "kDC-t",
    "kDC/UB1",
    "kDC/RR3&4",
    "kDC/UB1&RR3&4",
    "kDC-Degen",
)


@dataclass(frozen=True)
class SolverConfig:
    """Feature flags and budgets for :class:`~repro.core.solver.KDCSolver`.

    The defaults correspond to the full ``kDC`` algorithm (Algorithm 2).
    BR, RR1 and RR2 are not configurable: they are the minimal machinery that
    guarantees the :math:`O^*(\\gamma_k^n)` running time and disabling them
    would change the algorithm rather than ablate it.
    """

    #: improved coloring-based upper bound (Section 3.2.1)
    use_ub1: bool = True
    #: min-degree upper bound from [Chen et al. 2021]
    use_ub2: bool = True
    #: degree-sequence upper bound from [Gao et al. 2022]
    use_ub3: bool = True
    #: degree-sequence-based reduction rule (Section 3.2.2)
    use_rr3: bool = True
    #: second-order reduction rule (Section 3.2.2)
    use_rr4: bool = True
    #: (lb - k)-core reduction rule from [Chen et al. 2021]
    use_rr5: bool = True
    #: (lb - k + 1)-truss preprocessing rule from [Gao et al. 2022]
    use_rr6: bool = True
    #: initial solution heuristic: "degen-opt" (Algorithm 4), "degen" (Algorithm 3), or "none"
    initial_heuristic: str = "degen-opt"
    #: search-state backend: "set" (dict/set SearchState), "bitset" (packed
    #: adjacency bitmaps, see :mod:`repro.core.fastpath`), or "auto" (pick by
    #: instance size after preprocessing)
    backend: str = "auto"
    #: bitset branch-and-bound engine: "trail" (single mutable state plus an
    #: undo stack; branching costs O(changes), reductions drain per-rule
    #: dirty-vertex worklists, and the coloring bound is repaired across
    #: branches instead of rebuilt — see :mod:`repro.core.fastpath`) or
    #: "copy" (the original copy-per-child engine, kept as the differential
    #: baseline).  Both are exact; the set backend ignores this knob.
    engine: str = "trail"
    #: trail engine only: number of consecutive nodes allowed to *repair* the
    #: inherited coloring-bound classes before a full recolor is forced (a
    #: repaired bound that lands next to the incumbent escalates to a full
    #: recolor regardless, so this is the upper bound on staleness, not the
    #: typical case).  1 recolors at every node, making the trail engine
    #: node-for-node identical to the copy engine — the lockstep tests run
    #: exactly that; larger values trade bound tightness for per-node cost.
    recolor_period: int = 8
    #: minimum number of (reduced) vertices before the bitset backend switches
    #: from one whole-graph search to the degeneracy decomposition of
    #: :mod:`repro.core.decompose`
    decompose_threshold: int = 128
    #: worker processes for the degeneracy decomposition: 1 (default) solves
    #: the ego subproblems sequentially in-process; >= 2 farms them to a
    #: :mod:`multiprocessing` pool (:mod:`repro.core.parallel`) sharing one
    #: best-size incumbent.  The optimal size returned is identical for every
    #: worker count; only wall-clock time changes.  Ignored by the set
    #: backend and by whole-graph bitset solves.
    workers: int = 1
    #: wall-clock budget in seconds (None = unlimited)
    time_limit: Optional[float] = None
    #: branch-and-bound node budget (None = unlimited)
    node_limit: Optional[int] = None

    def __post_init__(self) -> None:
        if self.initial_heuristic not in ("degen-opt", "degen", "none"):
            raise InvalidParameterError(
                f"initial_heuristic must be 'degen-opt', 'degen' or 'none', got {self.initial_heuristic!r}"
            )
        if self.backend not in BACKEND_NAMES:
            raise InvalidParameterError(
                f"backend must be one of {', '.join(BACKEND_NAMES)}, got {self.backend!r}"
            )
        if self.engine not in ENGINE_NAMES:
            raise InvalidParameterError(
                f"engine must be one of {', '.join(ENGINE_NAMES)}, got {self.engine!r}"
            )
        if self.recolor_period < 1:
            raise InvalidParameterError("recolor_period must be a positive integer")
        if self.decompose_threshold < 1:
            raise InvalidParameterError("decompose_threshold must be a positive integer")
        if self.workers < 1:
            raise InvalidParameterError("workers must be a positive integer")
        if self.time_limit is not None and self.time_limit <= 0:
            raise InvalidParameterError("time_limit must be positive or None")
        if self.node_limit is not None and self.node_limit <= 0:
            raise InvalidParameterError("node_limit must be positive or None")

    def with_budget(
        self,
        time_limit: Optional[float] = None,
        node_limit: Optional[int] = None,
    ) -> "SolverConfig":
        """Return a copy of this configuration with different budgets."""
        return replace(self, time_limit=time_limit, node_limit=node_limit)

    @property
    def uses_practical_techniques(self) -> bool:
        """``True`` unless this is the bare theoretical configuration (kDC-t)."""
        return any(
            (
                self.use_ub1,
                self.use_ub2,
                self.use_ub3,
                self.use_rr3,
                self.use_rr4,
                self.use_rr5,
                self.use_rr6,
                self.initial_heuristic != "none",
            )
        )


#: Configuration deltas for each named paper variant, applied on top of the defaults.
_VARIANT_OVERRIDES: Dict[str, Dict[str, object]] = {
    "kDC": {},
    # Algorithm 1: only BR + RR1 + RR2, nothing else.
    "kDC-t": {
        "use_ub1": False,
        "use_ub2": False,
        "use_ub3": False,
        "use_rr3": False,
        "use_rr4": False,
        "use_rr5": False,
        "use_rr6": False,
        "initial_heuristic": "none",
    },
    "kDC/UB1": {"use_ub1": False},
    "kDC/RR3&4": {"use_rr3": False, "use_rr4": False},
    "kDC/UB1&RR3&4": {"use_ub1": False, "use_rr3": False, "use_rr4": False},
    "kDC-Degen": {"initial_heuristic": "degen", "use_rr6": False},
}


def variant_config(
    name: str,
    time_limit: Optional[float] = None,
    node_limit: Optional[int] = None,
) -> SolverConfig:
    """Return the :class:`SolverConfig` of a named paper variant.

    Parameters
    ----------
    name:
        One of :data:`VARIANT_NAMES`.
    time_limit, node_limit:
        Optional budgets applied to the returned configuration.
    """
    if name not in _VARIANT_OVERRIDES:
        raise InvalidParameterError(
            f"unknown variant {name!r}; expected one of {', '.join(VARIANT_NAMES)}"
        )
    overrides = dict(_VARIANT_OVERRIDES[name])
    overrides["time_limit"] = time_limit
    overrides["node_limit"] = node_limit
    return SolverConfig(**overrides)  # type: ignore[arg-type]
