"""Bitset-backed branch-and-bound state: the fast-path twin of :class:`SearchState`.

This mirrors the public API of :class:`~repro.core.instance.SearchState`, but
every vertex set — the candidate set, the partial solution and the adjacency
rows — is stored as an arbitrary-precision Python ``int`` used as a bitmask
(bit ``v`` set ⇔ vertex ``v`` is in the set).  That turns the operations the
solver performs at every node into word-parallel integer arithmetic:

* copying a state is a flat ``list`` copy plus a handful of ``int``
  references instead of three dict/set deep copies;
* degrees are ``(adj[v] & verts).bit_count()`` popcounts;
* neighbourhood intersections (RR4, UB1's coloring, the decomposition's
  candidate filters) are single ``&`` operations over n-bit words.

States built over a *local* vertex universe (e.g. one ego subproblem of the
degeneracy decomposition) use masks only as wide as the subproblem, which is
what makes the decomposition driver in :mod:`repro.core.decompose` scale to
graphs far larger than the set-based backend can handle.

The invariants maintained are exactly those of ``SearchState``:

* ``missing_in_solution`` — number of non-edges inside ``S``;
* ``non_nbrs[v]`` — for every candidate ``v``, ``|\\bar{N}_S(v)|``;
* ``edges_in_graph`` — number of edges of the instance graph (kept
  incrementally so the leaf test is O(1)).
"""

from __future__ import annotations

from typing import Iterator, List, Optional, Sequence

__all__ = ["BitsetSearchState", "iter_bits", "bits_of", "mask_of"]


def mask_of(vertices) -> int:
    """Return the bitmask with exactly the bits of ``vertices`` set."""
    mask = 0
    for v in vertices:
        mask |= 1 << v
    return mask


def iter_bits(mask: int) -> Iterator[int]:
    """Iterate over the set bit positions of ``mask`` in increasing order."""
    while mask:
        low = mask & -mask
        yield low.bit_length() - 1
        mask ^= low


#: ``_BYTE_BITS[b]`` lists the set bit offsets of the byte value ``b``.
_BYTE_BITS = tuple(tuple(i for i in range(8) if (b >> i) & 1) for b in range(256))


def bits_of(mask: int) -> List[int]:
    """Return the set bit positions of ``mask`` as a list (increasing order).

    Uses a byte-level lookup table over ``int.to_bytes`` instead of repeated
    lowest-bit extraction: iterating the bytes object is a C-level loop, so
    the per-element cost is several times lower than the ``mask & -mask``
    idiom.  This is the workhorse of every candidate scan in
    :mod:`repro.core.fastpath`.
    """
    if not mask:
        return []
    out: List[int] = []
    append = out.append
    base = 0
    byte_bits = _BYTE_BITS
    for byte in mask.to_bytes((mask.bit_length() + 7) >> 3, "little"):
        if byte:
            for offset in byte_bits[byte]:
                append(base + offset)
        base += 8
    return out


class BitsetSearchState:
    """Mutable branch-and-bound instance ``(g, S)`` over packed adjacency bitmaps.

    Parameters mirror :class:`~repro.core.instance.SearchState`; vertex ids
    must be integers in ``range(len(adj))``.  The ``adj`` list is shared
    (never mutated) by every state derived from the same root.
    """

    __slots__ = (
        "adj",
        "k",
        "solution",
        "solution_bits",
        "cand_bits",
        "missing_in_solution",
        "non_nbrs",
        "edges_in_graph",
        "last_added",
    )

    def __init__(
        self,
        adj: Sequence[int],
        k: int,
        solution: List[int],
        solution_bits: int,
        cand_bits: int,
        missing_in_solution: int,
        non_nbrs: List[int],
        edges_in_graph: int,
        last_added: Optional[int],
    ) -> None:
        self.adj = adj
        self.k = k
        self.solution = solution
        self.solution_bits = solution_bits
        self.cand_bits = cand_bits
        self.missing_in_solution = missing_in_solution
        self.non_nbrs = non_nbrs
        self.edges_in_graph = edges_in_graph
        self.last_added = last_added

    # ------------------------------------------------------------------ #
    # Construction
    # ------------------------------------------------------------------ #
    @classmethod
    def initial(cls, adj: Sequence[int], k: int, vertices_bits: Optional[int] = None) -> "BitsetSearchState":
        """Build the root instance ``(G, ∅)``.

        Parameters
        ----------
        adj:
            Packed adjacency rows indexed by integer vertex id; ``adj[v]``
            has bit ``u`` set iff ``(u, v)`` is an edge.  Shared, never
            mutated.
        k:
            Defectiveness parameter.
        vertices_bits:
            Optional bitmask of the vertex ids forming the instance graph;
            defaults to all of ``range(len(adj))``.
        """
        if vertices_bits is None:
            vertices_bits = (1 << len(adj)) - 1
        edges = sum((adj[v] & vertices_bits).bit_count() for v in bits_of(vertices_bits)) // 2
        return cls(
            adj=adj,
            k=k,
            solution=[],
            solution_bits=0,
            cand_bits=vertices_bits,
            missing_in_solution=0,
            non_nbrs=[0] * len(adj),
            edges_in_graph=edges,
            last_added=None,
        )

    def copy(self) -> "BitsetSearchState":
        """Return an independent copy sharing only the immutable adjacency rows."""
        return BitsetSearchState(
            adj=self.adj,
            k=self.k,
            solution=list(self.solution),
            solution_bits=self.solution_bits,
            cand_bits=self.cand_bits,
            missing_in_solution=self.missing_in_solution,
            non_nbrs=list(self.non_nbrs),
            edges_in_graph=self.edges_in_graph,
            last_added=self.last_added,
        )

    # ------------------------------------------------------------------ #
    # Size / structure queries
    # ------------------------------------------------------------------ #
    @property
    def verts_bits(self) -> int:
        """Bitmask of every vertex of the instance graph ``g``."""
        return self.solution_bits | self.cand_bits

    @property
    def graph_size(self) -> int:
        """Number of vertices of the instance graph ``g``."""
        return (self.solution_bits | self.cand_bits).bit_count()

    @property
    def instance_size(self) -> int:
        """The measure ``|I| = |V(g) \\ S|`` used by the complexity analysis."""
        return self.cand_bits.bit_count()

    def graph_vertices(self) -> List[int]:
        """Return all vertices of the instance graph (solution first, then candidates)."""
        return self.solution + bits_of(self.cand_bits)

    def degree(self, v: int) -> int:
        """Degree of ``v`` inside the instance graph (one popcount)."""
        return (self.adj[v] & (self.solution_bits | self.cand_bits)).bit_count()

    def total_edges(self) -> int:
        """Number of edges of the instance graph (maintained incrementally)."""
        return self.edges_in_graph

    def total_missing(self) -> int:
        """Number of non-edges of the whole instance graph ``g``."""
        n = self.graph_size
        return n * (n - 1) // 2 - self.edges_in_graph

    def is_defective_clique(self) -> bool:
        """``True`` iff the entire instance graph is a k-defective clique (leaf test)."""
        return self.total_missing() <= self.k

    def missing_if_added(self, v: int) -> int:
        """Return ``|\\bar{E}(S ∪ v)|`` for a candidate ``v`` in O(1)."""
        return self.missing_in_solution + self.non_nbrs[v]

    def slack(self) -> int:
        """Return ``k - |\\bar{E}(S)|``: missing edges the solution may still absorb."""
        return self.k - self.missing_in_solution

    # ------------------------------------------------------------------ #
    # Transitions
    # ------------------------------------------------------------------ #
    def add_to_solution(self, v: int) -> None:
        """Move candidate ``v`` into the partial solution ``S``.

        O(|candidates| \\ N(v)) bit iteration to bump the non-neighbour
        counters, everything else word-parallel.
        """
        bit = 1 << v
        self.cand_bits &= ~bit
        self.solution_bits |= bit
        self.solution.append(v)
        self.missing_in_solution += self.non_nbrs[v]
        non_nbrs = self.non_nbrs
        for u in bits_of(self.cand_bits & ~self.adj[v]):
            non_nbrs[u] += 1
        self.last_added = v

    def remove_candidate(self, v: int) -> None:
        """Delete candidate ``v`` from the instance graph ``g`` (one popcount)."""
        bit = 1 << v
        self.edges_in_graph -= (self.adj[v] & (self.solution_bits | self.cand_bits & ~bit)).bit_count()
        self.cand_bits &= ~bit

    # ------------------------------------------------------------------ #
    # Invariant checking (used by tests)
    # ------------------------------------------------------------------ #
    def check_invariants(self) -> None:
        """Recompute every cached quantity from scratch and assert it matches.

        Mirrors :meth:`SearchState.check_invariants`; intended exclusively
        for tests, never called on the hot path.
        """
        assert self.solution_bits == mask_of(self.solution), "solution_bits out of sync with solution list"
        assert not (self.solution_bits & self.cand_bits), "solution and candidates overlap"
        verts = self.solution_bits | self.cand_bits
        edges = sum((self.adj[v] & verts).bit_count() for v in iter_bits(verts)) // 2
        assert edges == self.edges_in_graph, (
            f"edge count mismatch: cached {self.edges_in_graph}, actual {edges}"
        )
        sol = self.solution
        missing = 0
        for i, u in enumerate(sol):
            for w in sol[i + 1:]:
                if not (self.adj[u] >> w) & 1:
                    missing += 1
        assert missing == self.missing_in_solution, (
            f"missing_in_solution mismatch: cached {self.missing_in_solution}, actual {missing}"
        )
        for v in iter_bits(self.cand_bits):
            expected = (self.solution_bits & ~self.adj[v]).bit_count()
            assert self.non_nbrs[v] == expected, (
                f"non_nbrs mismatch for {v}: cached {self.non_nbrs[v]}, actual {expected}"
            )
