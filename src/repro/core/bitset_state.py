"""Bitset-backed branch-and-bound state: the fast-path twin of :class:`SearchState`.

This mirrors the public API of :class:`~repro.core.instance.SearchState`, but
every vertex set — the candidate set, the partial solution and the adjacency
rows — is stored as an arbitrary-precision Python ``int`` used as a bitmask
(bit ``v`` set ⇔ vertex ``v`` is in the set).  That turns the operations the
solver performs at every node into word-parallel integer arithmetic:

* copying a state is a flat ``list`` copy plus a handful of ``int``
  references instead of three dict/set deep copies;
* degrees are ``(adj[v] & verts).bit_count()`` popcounts;
* neighbourhood intersections (RR4, UB1's coloring, the decomposition's
  candidate filters) are single ``&`` operations over n-bit words.

States built over a *local* vertex universe (e.g. one ego subproblem of the
degeneracy decomposition) use masks only as wide as the subproblem, which is
what makes the decomposition driver in :mod:`repro.core.decompose` scale to
graphs far larger than the set-based backend can handle.

The invariants maintained are exactly those of ``SearchState``:

* ``missing_in_solution`` — number of non-edges inside ``S``;
* ``non_nbrs[v]`` — for every candidate ``v``, ``|\\bar{N}_S(v)|``;
* ``edges_in_graph`` — number of edges of the instance graph (kept
  incrementally so the leaf test is O(1)).

Trail (undo stack)
------------------
A state can optionally record every transition on a *trail* so it can be
rewound instead of copied: :meth:`BitsetSearchState.begin_trail` installs the
trail, after which :meth:`add_to_solution` and :meth:`remove_candidate` push
one reversible entry each, and :meth:`rewind_to` pops entries back to a mark
taken with :meth:`trail_mark`.  An entry stores only what the inverse
operation cannot recompute — the previous ``last_added`` for an addition, the
edge-count delta for a removal; everything else (``non_nbrs`` updates, the
``missing_in_solution`` delta) is reconstructed from the state itself, which
is valid precisely because rewinding is LIFO: when an entry is popped the
state is bit-for-bit the state right after that entry was pushed.  This is
what the trail engine in :mod:`repro.core.fastpath` builds on: branching
costs O(changes), not O(n).
"""

from __future__ import annotations

from typing import Iterator, List, Optional, Sequence

__all__ = ["BitsetSearchState", "iter_bits", "bits_of", "mask_of"]


def mask_of(vertices) -> int:
    """Return the bitmask with exactly the bits of ``vertices`` set."""
    mask = 0
    for v in vertices:
        mask |= 1 << v
    return mask


def iter_bits(mask: int) -> Iterator[int]:
    """Iterate over the set bit positions of ``mask`` in increasing order."""
    while mask:
        low = mask & -mask
        yield low.bit_length() - 1
        mask ^= low


#: ``_BYTE_BITS[b]`` lists the set bit offsets of the byte value ``b``.
_BYTE_BITS = tuple(tuple(i for i in range(8) if (b >> i) & 1) for b in range(256))


def bits_of(mask: int) -> List[int]:
    """Return the set bit positions of ``mask`` as a list (increasing order).

    Adaptive: dense masks walk a byte-level lookup table over
    ``int.to_bytes`` (iterating the bytes object is a C-level loop, so the
    per-element cost is several times lower than repeated lowest-bit
    extraction), while sparse masks — common for the trail engine's dirty
    queues and colour-class members, where a handful of bits sit in a wide
    word — use ``mask & -mask`` extraction and skip the zero bytes
    entirely.  This is the workhorse of every candidate scan in
    :mod:`repro.core.fastpath`.
    """
    if not mask:
        return []
    out: List[int] = []
    append = out.append
    nbytes = (mask.bit_length() + 7) >> 3
    if mask.bit_count() * 3 < nbytes:
        while mask:
            low = mask & -mask
            append(low.bit_length() - 1)
            mask ^= low
        return out
    base = 0
    byte_bits = _BYTE_BITS
    for byte in mask.to_bytes(nbytes, "little"):
        if byte:
            for offset in byte_bits[byte]:
                append(base + offset)
        base += 8
    return out


# Trail entry encoding: a candidate removal is pushed as the bare vertex id
# ``v`` under lazy edge tracking (the common case by far — nothing else needs
# restoring) or as ``-(v + 1)`` with the edge delta in a side list otherwise;
# an addition to ``S`` is pushed as the 2-tuple ``(v, previous_last_added)``.


class BitsetSearchState:
    """Mutable branch-and-bound instance ``(g, S)`` over packed adjacency bitmaps.

    Parameters mirror :class:`~repro.core.instance.SearchState`; vertex ids
    must be integers in ``range(len(adj))``.  The ``adj`` list is shared
    (never mutated) by every state derived from the same root.
    """

    __slots__ = (
        "adj",
        "k",
        "solution",
        "solution_bits",
        "cand_bits",
        "missing_in_solution",
        "non_nbrs",
        "edges_in_graph",
        "last_added",
        "trail",
        "trail_pushes",
        "trail_pops",
        "lazy_edges",
        "_cand_key",
        "_cand_list",
    )

    def __init__(
        self,
        adj: Sequence[int],
        k: int,
        solution: List[int],
        solution_bits: int,
        cand_bits: int,
        missing_in_solution: int,
        non_nbrs: List[int],
        edges_in_graph: int,
        last_added: Optional[int],
    ) -> None:
        self.adj = adj
        self.k = k
        self.solution = solution
        self.solution_bits = solution_bits
        self.cand_bits = cand_bits
        self.missing_in_solution = missing_in_solution
        self.non_nbrs = non_nbrs
        self.edges_in_graph = edges_in_graph
        self.last_added = last_added
        #: Undo stack; entries are bare ints (lazy removals) or 2-tuples.
        self.trail: Optional[list] = None
        self.trail_pushes = 0
        self.trail_pops = 0
        self.lazy_edges = False
        self._cand_key = -1
        self._cand_list: List[int] = []

    # ------------------------------------------------------------------ #
    # Construction
    # ------------------------------------------------------------------ #
    @classmethod
    def initial(cls, adj: Sequence[int], k: int, vertices_bits: Optional[int] = None) -> "BitsetSearchState":
        """Build the root instance ``(G, ∅)``.

        Parameters
        ----------
        adj:
            Packed adjacency rows indexed by integer vertex id; ``adj[v]``
            has bit ``u`` set iff ``(u, v)`` is an edge.  Shared, never
            mutated.
        k:
            Defectiveness parameter.
        vertices_bits:
            Optional bitmask of the vertex ids forming the instance graph;
            defaults to all of ``range(len(adj))``.
        """
        if vertices_bits is None:
            vertices_bits = (1 << len(adj)) - 1
        edges = sum((adj[v] & vertices_bits).bit_count() for v in bits_of(vertices_bits)) // 2
        return cls(
            adj=adj,
            k=k,
            solution=[],
            solution_bits=0,
            cand_bits=vertices_bits,
            missing_in_solution=0,
            non_nbrs=[0] * len(adj),
            edges_in_graph=edges,
            last_added=None,
        )

    def copy(self) -> "BitsetSearchState":
        """Return an independent copy sharing only the immutable adjacency rows.

        The copy never inherits a trail: copies exist precisely so the copy
        engine does not need one, and a shared trail would corrupt rewinds.
        """
        clone = BitsetSearchState(
            adj=self.adj,
            k=self.k,
            solution=list(self.solution),
            solution_bits=self.solution_bits,
            cand_bits=self.cand_bits,
            missing_in_solution=self.missing_in_solution,
            non_nbrs=list(self.non_nbrs),
            edges_in_graph=self.edges_in_graph,
            last_added=self.last_added,
        )
        clone.lazy_edges = self.lazy_edges
        return clone

    # ------------------------------------------------------------------ #
    # Size / structure queries
    # ------------------------------------------------------------------ #
    @property
    def verts_bits(self) -> int:
        """Bitmask of every vertex of the instance graph ``g``."""
        return self.solution_bits | self.cand_bits

    @property
    def graph_size(self) -> int:
        """Number of vertices of the instance graph ``g``."""
        return (self.solution_bits | self.cand_bits).bit_count()

    @property
    def instance_size(self) -> int:
        """The measure ``|I| = |V(g) \\ S|`` used by the complexity analysis."""
        return self.cand_bits.bit_count()

    def graph_vertices(self) -> List[int]:
        """Return all vertices of the instance graph (solution first, then candidates)."""
        return self.solution + bits_of(self.cand_bits)

    def candidate_list(self) -> List[int]:
        """The candidate set as an ascending list, memoised on ``cand_bits``.

        Several per-node consumers (RR3, RR4, the leaf test, UB3, BR) need
        the same materialised candidate bits; the cache is keyed on the
        bitmask itself, so any mutation — including a trail rewind —
        invalidates it by comparison, never by bookkeeping.  Callers must
        treat the returned list as read-only.
        """
        if self._cand_key != self.cand_bits:
            self._cand_list = bits_of(self.cand_bits)
            self._cand_key = self.cand_bits
        return self._cand_list

    def degree(self, v: int) -> int:
        """Degree of ``v`` inside the instance graph (one popcount)."""
        return (self.adj[v] & (self.solution_bits | self.cand_bits)).bit_count()

    def total_edges(self) -> int:
        """Number of edges of the instance graph (incremental, or recounted under ``lazy_edges``)."""
        if not self.lazy_edges:
            return self.edges_in_graph
        verts = self.solution_bits | self.cand_bits
        adj = self.adj
        return sum((adj[v] & verts).bit_count() for v in iter_bits(verts)) // 2

    def total_missing(self) -> int:
        """Number of non-edges of the whole instance graph ``g``."""
        n = self.graph_size
        return n * (n - 1) // 2 - self.total_edges()

    def is_defective_clique(self, cand_list: Optional[List[int]] = None) -> bool:
        """``True`` iff the entire instance graph is a k-defective clique (leaf test).

        With incremental edge tracking this is one O(1) comparison.  Under
        :attr:`lazy_edges` the missing edges are counted on demand with an
        early exit: first the exactly-known ``S``-side misses
        (``missing_in_solution`` plus the ``non_nbrs`` counters), then the
        candidate-internal misses vertex by vertex — on non-leaf instances
        the budget ``k`` is exhausted within a few candidates, so the common
        case costs a handful of integer adds and popcounts, not O(n).
        ``cand_list`` (the materialised candidate bits) is accepted to reuse
        the engine's per-node scan.
        """
        k = self.k
        if not self.lazy_edges:
            return self.total_missing() <= k
        missing = self.missing_in_solution
        if missing > k:
            return False
        non_nbrs = self.non_nbrs
        cand = self.cand_bits
        if cand_list is None:
            cand_list = bits_of(cand)
        for v in cand_list:
            missing += non_nbrs[v]
            if missing > k:
                return False
        adj = self.adj
        remaining = len(cand_list) - 1
        for i, v in enumerate(cand_list[:-1]):
            # Non-neighbours of v among the higher candidates; each missing
            # candidate-candidate pair is counted exactly once.
            higher = (cand >> v >> 1) << v << 1
            missing += remaining - (adj[v] & higher).bit_count()
            if missing > k:
                return False
            remaining -= 1
        return True

    def missing_if_added(self, v: int) -> int:
        """Return ``|\\bar{E}(S ∪ v)|`` for a candidate ``v`` in O(1)."""
        return self.missing_in_solution + self.non_nbrs[v]

    def slack(self) -> int:
        """Return ``k - |\\bar{E}(S)|``: missing edges the solution may still absorb."""
        return self.k - self.missing_in_solution

    # ------------------------------------------------------------------ #
    # Transitions
    # ------------------------------------------------------------------ #
    def add_to_solution(self, v: int) -> None:
        """Move candidate ``v`` into the partial solution ``S``.

        O(|candidates| \\ N(v)) bit iteration to bump the non-neighbour
        counters, everything else word-parallel.
        """
        if self.trail is not None:
            self.trail.append((v, self.last_added))
            self.trail_pushes += 1
        bit = 1 << v
        self.cand_bits &= ~bit
        self.solution_bits |= bit
        self.solution.append(v)
        self.missing_in_solution += self.non_nbrs[v]
        non_nbrs = self.non_nbrs
        for u in bits_of(self.cand_bits & ~self.adj[v]):
            non_nbrs[u] += 1
        self.last_added = v

    def remove_candidate(self, v: int) -> None:
        """Delete candidate ``v`` from the instance graph ``g``.

        One popcount to keep ``edges_in_graph`` exact — unless the owner
        enabled :attr:`lazy_edges` (see :meth:`defer_edge_tracking`), in
        which case a removal is a pure bit-clear and the leaf test counts
        missing edges on demand.
        """
        bit = 1 << v
        if self.lazy_edges:
            if self.trail is not None:
                self.trail.append(v)
                self.trail_pushes += 1
            self.cand_bits &= ~bit
            return
        removed_edges = (self.adj[v] & (self.solution_bits | self.cand_bits & ~bit)).bit_count()
        if self.trail is not None:
            self.trail.append((-v - 1, removed_edges))
            self.trail_pushes += 1
        self.edges_in_graph -= removed_edges
        self.cand_bits &= ~bit

    def defer_edge_tracking(self) -> None:
        """Stop maintaining ``edges_in_graph`` incrementally.

        Afterwards removals are pure bit-clears, ``edges_in_graph`` is
        stale, and every edge-count query (:meth:`total_edges`,
        :meth:`total_missing`, :meth:`is_defective_clique`) recomputes what
        it needs on demand — :meth:`is_defective_clique` with an early exit
        that is far cheaper than per-removal maintenance under heavy
        reduction churn.  Used by the trail engine, which removes (and
        rewinds) each candidate many times along different branches.
        """
        self.lazy_edges = True

    # ------------------------------------------------------------------ #
    # Trail (undo stack)
    # ------------------------------------------------------------------ #
    def begin_trail(self) -> list:
        """Install (and return) an empty trail; subsequent transitions record onto it."""
        self.trail = []
        return self.trail

    def trail_mark(self) -> int:
        """Return the current trail position (pass to :meth:`rewind_to`)."""
        trail = self.trail
        assert trail is not None, "trail_mark() requires begin_trail()"
        return len(trail)

    def rewind_to(self, mark: int) -> int:
        """Undo every transition recorded after ``mark``; return how many were popped.

        Entries are popped LIFO, so each inverse runs against exactly the
        state that existed right after its forward operation — which is what
        lets the inverse recompute the ``non_nbrs`` / ``missing_in_solution``
        deltas instead of storing them.
        """
        trail = self.trail
        assert trail is not None, "rewind_to() requires begin_trail()"
        adj = self.adj
        non_nbrs = self.non_nbrs
        popped = 0
        while len(trail) > mark:
            entry = trail.pop()
            popped += 1
            if type(entry) is int:
                # Lazy-mode candidate removal: restoring the bit is all there is.
                self.cand_bits |= 1 << entry
                continue
            v, aux = entry
            if v < 0:
                # Tracked candidate removal: restore the bit and the edge count.
                self.cand_bits |= 1 << (-v - 1)
                self.edges_in_graph += aux
                continue
            # Inverse of add_to_solution(v): decrement the very counters
            # the forward op incremented (cand_bits still excludes v
            # here, exactly as it did right after the forward update).
            bit = 1 << v
            for u in bits_of(self.cand_bits & ~adj[v]):
                non_nbrs[u] -= 1
            self.solution.pop()
            self.solution_bits &= ~bit
            self.cand_bits |= bit
            self.missing_in_solution -= non_nbrs[v]
            self.last_added = aux
        self.trail_pops += popped
        return popped

    # ------------------------------------------------------------------ #
    # Invariant checking (used by tests)
    # ------------------------------------------------------------------ #
    def check_invariants(self) -> None:
        """Recompute every cached quantity from scratch and assert it matches.

        Mirrors :meth:`SearchState.check_invariants`; intended exclusively
        for tests, never called on the hot path.
        """
        assert self.solution_bits == mask_of(self.solution), "solution_bits out of sync with solution list"
        assert not (self.solution_bits & self.cand_bits), "solution and candidates overlap"
        verts = self.solution_bits | self.cand_bits
        if not self.lazy_edges:
            edges = sum((self.adj[v] & verts).bit_count() for v in iter_bits(verts)) // 2
            assert edges == self.edges_in_graph, (
                f"edge count mismatch: cached {self.edges_in_graph}, actual {edges}"
            )
        sol = self.solution
        missing = 0
        for i, u in enumerate(sol):
            for w in sol[i + 1:]:
                if not (self.adj[u] >> w) & 1:
                    missing += 1
        assert missing == self.missing_in_solution, (
            f"missing_in_solution mismatch: cached {self.missing_in_solution}, actual {missing}"
        )
        for v in iter_bits(self.cand_bits):
            expected = (self.solution_bits & ~self.adj[v]).bit_count()
            assert self.non_nbrs[v] == expected, (
                f"non_nbrs mismatch for {v}: cached {self.non_nbrs[v]}, actual {expected}"
            )
