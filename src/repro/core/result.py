"""Solver results and search statistics."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..graphs.graph import Vertex

__all__ = ["SearchStats", "SolveResult"]


@dataclass
class SearchStats:
    """Counters collected while a branch-and-bound solver runs.

    All counters are cumulative over one ``solve`` call.  They power the
    ablation analyses: e.g. comparing ``prunes_by_bound`` between ``kDC`` and
    ``kDC/UB1`` shows how much work the improved coloring bound saves.
    """

    #: number of branch-and-bound nodes (instances) visited
    nodes: int = 0
    #: maximum recursion depth reached
    max_depth: int = 0
    #: instances pruned because an upper bound did not exceed the best solution
    prunes_by_bound: int = 0
    #: instances that terminated as leaves (the whole instance was a k-defective clique)
    leaves: int = 0
    #: vertices removed by each reduction rule, keyed by rule name ("RR1" ... "RR6")
    reductions: Dict[str, int] = field(default_factory=dict)
    #: number of vertices greedily added to the partial solution by RR2
    rr2_additions: int = 0
    #: number of times the incumbent (best solution) was improved
    improvements: int = 0
    #: size of the heuristically computed initial solution (0 if disabled)
    initial_solution_size: int = 0
    #: vertices removed by preprocessing (RR5/RR6 applied to the input graph)
    preprocess_removed_vertices: int = 0
    #: edges removed by preprocessing
    preprocess_removed_edges: int = 0
    #: wall-clock seconds spent in the solve call
    elapsed_seconds: float = 0.0
    #: search-state backend that ran ("set" or "bitset"); "" when no
    #: backend was reached — baselines, or a solve interrupted before the
    #: search phase
    backend: str = ""
    #: decomposition ego subproblems actually searched (0 when the solve
    #: never entered the degeneracy decomposition)
    subproblems: int = 0
    #: decomposition anchors skipped outright because the incumbent size cap
    #: proved their ego net could not contain a larger solution
    subproblems_pruned: int = 0
    #: decomposition anchors skipped because a solve checkpoint journaled
    #: them as completed by an earlier (interrupted) run of the same solve
    subproblems_restored: int = 0
    #: worker processes used by the decomposition (1 = sequential in-process;
    #: 0 when the solve never entered the decomposition).  A parallel solve
    #: degraded to sequential by lost-worker recovery reports 1, so timing
    #: consumers never over-state parallelism.
    workers: int = 0
    #: bitset engine that ran ("trail" or "copy"; "" when the bitset backend
    #: never ran)
    engine: str = ""
    #: trail engine: reversible deltas pushed onto the undo stack
    trail_pushes: int = 0
    #: trail engine: deltas popped while backtracking
    trail_pops: int = 0
    #: trail engine: vertices drained from the reduction worklist's dirty
    #: queues (the worklist twin of "candidates scanned per node")
    dirty_drained: int = 0
    #: trail engine: coloring-bound full recolors (staleness counter tripped
    #: or no cached classes)
    recolor_full: int = 0
    #: trail engine: coloring-bound repairs (cached classes intersected with
    #: the surviving candidates instead of recoloring)
    recolor_repair: int = 0
    #: milliseconds spent preparing (relabel + heuristic + RR5/RR6
    #: preprocessing + degeneracy order) *for this call*: the full prepare
    #: cost for a plain ``solve``, the (near-zero) artifact-lookup cost for a
    #: service request answered from an already-prepared instance, and 0.0
    #: for a bare ``solve_prepared`` (its artifact was paid for earlier)
    prepare_ms: float = 0.0
    #: milliseconds the request waited in the service scheduler's queue
    #: before a worker picked it up (0.0 outside the service)
    queue_ms: float = 0.0
    #: milliseconds spent in the branch-and-bound search phase itself
    solve_ms: float = 0.0
    #: ``True`` when the service answered this request from its result cache
    #: without re-entering the search engine
    cache_hit: bool = False

    def count_reduction(self, rule: str, amount: int = 1) -> None:
        """Increment the removal counter of a reduction rule."""
        if amount:
            self.reductions[rule] = self.reductions.get(rule, 0) + amount

    def as_dict(self) -> Dict[str, object]:
        """Return a flat dictionary (used by the benchmark harness for reporting)."""
        data: Dict[str, object] = {
            "nodes": self.nodes,
            "max_depth": self.max_depth,
            "prunes_by_bound": self.prunes_by_bound,
            "leaves": self.leaves,
            "rr2_additions": self.rr2_additions,
            "improvements": self.improvements,
            "initial_solution_size": self.initial_solution_size,
            "preprocess_removed_vertices": self.preprocess_removed_vertices,
            "preprocess_removed_edges": self.preprocess_removed_edges,
            "elapsed_seconds": self.elapsed_seconds,
            "backend": self.backend,
            "subproblems": self.subproblems,
            "subproblems_pruned": self.subproblems_pruned,
            "subproblems_restored": self.subproblems_restored,
            "workers": self.workers,
            "engine": self.engine,
            "trail_pushes": self.trail_pushes,
            "trail_pops": self.trail_pops,
            "dirty_drained": self.dirty_drained,
            "recolor_full": self.recolor_full,
            "recolor_repair": self.recolor_repair,
            "prepare_ms": self.prepare_ms,
            "queue_ms": self.queue_ms,
            "solve_ms": self.solve_ms,
            "cache_hit": self.cache_hit,
        }
        for rule, count in sorted(self.reductions.items()):
            data[f"removed_{rule}"] = count
        return data

    def merge_from(self, other: "SearchStats") -> None:
        """Fold the counters of ``other`` into this object.

        Used by the parallel decomposition driver to aggregate the
        per-worker statistics into the owning solve's counters.  Additive
        counters are summed, ``max_depth`` is maximised; phase-level fields
        (``initial_solution_size``, ``elapsed_seconds``, ``backend``,
        ``workers``, ``subproblems_restored``, and the request-level
        ``prepare_ms``/``queue_ms``/``solve_ms``/``cache_hit``) belong to
        the owning solve and are left untouched.
        """
        self.nodes += other.nodes
        self.max_depth = max(self.max_depth, other.max_depth)
        self.prunes_by_bound += other.prunes_by_bound
        self.leaves += other.leaves
        self.rr2_additions += other.rr2_additions
        self.improvements += other.improvements
        self.subproblems += other.subproblems
        self.subproblems_pruned += other.subproblems_pruned
        self.trail_pushes += other.trail_pushes
        self.trail_pops += other.trail_pops
        self.dirty_drained += other.dirty_drained
        self.recolor_full += other.recolor_full
        self.recolor_repair += other.recolor_repair
        for rule, count in other.reductions.items():
            self.count_reduction(rule, count)


@dataclass
class SolveResult:
    """The outcome of a maximum k-defective clique computation.

    Attributes
    ----------
    clique:
        The best k-defective clique found, as a list of the caller's original
        vertex labels.
    size:
        ``len(clique)``.
    k:
        The defectiveness parameter used.
    optimal:
        ``True`` if the search completed (the clique is a maximum k-defective
        clique); ``False`` if a time or node budget interrupted the search, in
        which case ``clique`` is the best solution found so far.
    algorithm:
        Human-readable name of the solver/variant that produced the result.
    stats:
        Search statistics.
    """

    clique: List[Vertex]
    size: int
    k: int
    optimal: bool
    algorithm: str
    stats: SearchStats = field(default_factory=SearchStats)

    def __post_init__(self) -> None:
        self.size = len(self.clique)

    @property
    def vertices(self) -> List[Vertex]:
        """Alias of :attr:`clique` kept for readability at call sites."""
        return self.clique

    def summary(self) -> str:
        """Return a one-line human-readable summary of the result."""
        status = "optimal" if self.optimal else "budget-limited"
        return (
            f"{self.algorithm}: |C|={self.size} (k={self.k}, {status}, "
            f"{self.stats.nodes} nodes, {self.stats.elapsed_seconds:.3f}s)"
        )
