"""Reduction rules RR1–RR6 (Sections 3.1.1 and 3.2.2 of the paper).

The rules fall into three groups:

* **RR1 / RR2** are required for the :math:`O^*(\\gamma_k^n)` time complexity
  and are always applied (they are what guarantees Lemma 3.3: after
  exhaustive application every candidate has at least two non-neighbours in
  the instance graph).
* **RR3 / RR4 / RR5** are practical rules applied at every search node when
  enabled; they remove candidates that provably cannot appear in a solution
  larger than the incumbent.
* **RR6** (common-neighbour / truss pruning) is only applied during
  preprocessing of the input graph because of its higher cost; see
  :func:`preprocess_graph`.
"""

from __future__ import annotations

from typing import Callable, Optional, Tuple

from ..graphs.graph import Graph
from ..graphs.kcore import core_reduce_in_place
from ..graphs.truss import truss_reduce_in_place
from .config import SolverConfig
from .instance import SearchState
from .result import SearchStats

__all__ = [
    "apply_rr1",
    "apply_rr2",
    "apply_rr3",
    "apply_rr4",
    "apply_rr5",
    "apply_reductions",
    "preprocess_graph",
]


def apply_rr1(state: SearchState, stats: Optional[SearchStats] = None) -> int:
    """RR1 (excess-removal): drop candidates whose inclusion would exceed ``k`` missing edges.

    Returns the number of removed candidates.
    """
    k = state.k
    to_remove = [v for v in state.candidates if state.missing_if_added(v) > k]
    for v in to_remove:
        state.remove_candidate(v)
    if stats is not None:
        stats.count_reduction("RR1", len(to_remove))
    return len(to_remove)


def apply_rr2(state: SearchState, stats: Optional[SearchStats] = None) -> int:
    """RR2 (high-degree): greedily move into ``S`` every candidate adjacent to all but at most one vertex of ``g``.

    Only candidates that keep ``S`` a valid k-defective clique are moved
    (``|\\bar{E}(S ∪ u)| <= k``), as required by Lemma 3.1.  Returns the
    number of vertices moved.
    """
    k = state.k
    moved = 0
    progress = True
    while progress:
        progress = False
        threshold = state.graph_size - 2
        for v in list(state.candidates):
            if state.missing_if_added(v) <= k and state.degree_in_graph[v] >= threshold:
                state.add_to_solution(v)
                moved += 1
                progress = True
                # Moving a vertex into S changes the non-neighbour counters of
                # the remaining candidates, so restart the scan.
                break
    if stats is not None and moved:
        stats.rr2_additions += moved
    return moved


def apply_rr3(state: SearchState, lower_bound: int, stats: Optional[SearchStats] = None) -> int:
    """RR3 (degree-sequence-based): remove candidates that UB3 proves useless.

    A candidate ``v_i`` (in non-decreasing order of ``|\\bar{N}_S(·)|``) is
    removed when ``i > lb - |S|`` and its non-neighbour count exceeds the
    budget left after reserving the ``lb - |S|`` cheapest candidates.
    Returns the number of removed candidates.
    """
    needed = lower_bound - len(state.solution)
    if needed < 0 or not state.candidates:
        return 0
    non_nbrs = state.non_nbrs_in_solution
    ordered = sorted(state.candidates, key=lambda v: non_nbrs[v])
    if needed >= len(ordered):
        return 0
    prefix_cost = sum(non_nbrs[v] for v in ordered[:needed])
    threshold = state.slack() - prefix_cost
    to_remove = [v for v in ordered[needed:] if non_nbrs[v] > threshold]
    for v in to_remove:
        state.remove_candidate(v)
    if stats is not None:
        stats.count_reduction("RR3", len(to_remove))
    return len(to_remove)


def apply_rr4(state: SearchState, lower_bound: int, stats: Optional[SearchStats] = None) -> int:
    """RR4 (second-order): remove candidates using the pairwise bound with the last-added solution vertex.

    Following Section 3.2.3, the rule is applied once per node, pairing every
    candidate ``v`` with the vertex ``u`` most recently added to ``S``; the
    candidate is removed when the second-order upper bound on solutions
    containing both ``u`` and ``v`` does not exceed the incumbent size.
    Returns the number of removed candidates.
    """
    u = state.last_added
    if u is None or not state.candidates:
        return 0
    k = state.k
    adj = state.adj
    candidates = state.candidates
    # Neighbours of u among the current candidates (computed once, shared by every pair).
    u_nbrs_in_cand = adj[u] & candidates

    to_remove = []
    for v in candidates:
        missing_s_prime = state.missing_if_added(v)
        if missing_s_prime > k:
            continue  # RR1 will remove it
        slack = k - missing_s_prime
        total = len(candidates) - 1
        nu = len(u_nbrs_in_cand) - (1 if v in u_nbrs_in_cand else 0)
        v_nbrs_in_cand = adj[v] & candidates
        cn = len(u_nbrs_in_cand & v_nbrs_in_cand)
        dv = len(v_nbrs_in_cand)
        xn = (nu - cn) + (dv - cn)
        cnon = total - cn - xn
        if slack > xn:
            tail = xn + min(cnon, max(0, (slack - xn) // 2))
        else:
            tail = slack
        bound = (len(state.solution) + 1) + cn + min(slack, tail)
        if bound <= lower_bound:
            to_remove.append(v)

    for v in to_remove:
        state.remove_candidate(v)
    if stats is not None:
        stats.count_reduction("RR4", len(to_remove))
    return len(to_remove)


def apply_rr5(
    state: SearchState,
    lower_bound: int,
    stats: Optional[SearchStats] = None,
) -> Tuple[int, bool]:
    """RR5 (degree / core): remove candidates of degree < ``lb - k`` in the instance graph.

    Returns ``(removed, prune)``; ``prune`` is ``True`` when a *solution*
    vertex violates the degree requirement, in which case the whole instance
    cannot contain a solution larger than ``lb`` (this is the UB2 argument)
    and the caller should discard it.
    """
    threshold = lower_bound - state.k
    if threshold <= 0:
        return 0, False
    degree = state.degree_in_graph
    for u in state.solution:
        if degree[u] < threshold:
            return 0, True
    removed = 0
    progress = True
    while progress:
        progress = False
        for v in list(state.candidates):
            if degree[v] < threshold:
                state.remove_candidate(v)
                removed += 1
                progress = True
        for u in state.solution:
            if degree[u] < threshold:
                if stats is not None:
                    stats.count_reduction("RR5", removed)
                return removed, True
    if stats is not None:
        stats.count_reduction("RR5", removed)
    return removed, False


def apply_reductions(
    state: SearchState,
    config: SolverConfig,
    lower_bound: int,
    stats: Optional[SearchStats] = None,
) -> bool:
    """Exhaustively apply the enabled reduction rules to ``state`` (Line 4 of Algorithms 1/2).

    RR1 and RR2 are always applied (they are required for the time-complexity
    guarantee); RR3, RR4 and RR5 are applied when enabled in ``config``.
    RR4 is applied at most once per call, as in the paper.

    Returns ``True`` when the instance can be discarded entirely (RR5 proved
    that no solution in it can beat the incumbent).
    """
    rr4_done = False
    changed = True
    while changed:
        changed = False
        if apply_rr1(state, stats):
            changed = True
        if apply_rr2(state, stats):
            changed = True
        if config.use_rr5:
            removed, prune = apply_rr5(state, lower_bound, stats)
            if prune:
                return True
            if removed:
                changed = True
        if config.use_rr3:
            if apply_rr3(state, lower_bound, stats):
                changed = True
        if config.use_rr4 and not rr4_done:
            rr4_done = True
            if apply_rr4(state, lower_bound, stats):
                changed = True
    return False


def preprocess_graph(
    graph: Graph,
    k: int,
    lower_bound: int,
    use_rr5: bool = True,
    use_rr6: bool = True,
    stats: Optional[SearchStats] = None,
    budget_check: Optional[Callable[[], None]] = None,
) -> Graph:
    """Reduce the input graph before the search starts (Line 2 of Algorithm 2).

    Exhaustively applying RR5 reduces the graph to its ``(lb - k)``-core;
    exhaustively applying RR6 then reduces it to its ``(lb - k + 1)``-truss.
    The graph is modified **in place** and also returned for convenience.

    ``budget_check`` (typically the solve run's budget check) is polled before
    each reduction phase and, forwarded into the core/truss peeling loops,
    every few thousand steps *within* each phase; a raised
    :class:`~repro.exceptions.BudgetExceededError` propagates to the caller.
    Since every phase only ever removes provably useless vertices/edges, an
    interrupted graph is still a safe (if less reduced) search instance.
    """
    before_vertices = graph.num_vertices
    before_edges = graph.num_edges
    if budget_check is not None:
        budget_check()
    if use_rr5 and lower_bound - k > 0:
        core_reduce_in_place(graph, lower_bound - k, budget_check=budget_check)
    if use_rr6 and lower_bound - k - 1 > 0:
        if budget_check is not None:
            budget_check()
        truss_reduce_in_place(graph, lower_bound - k + 1, budget_check=budget_check)
        # Edge removals can lower degrees below the core threshold again.
        if use_rr5 and lower_bound - k > 0:
            if budget_check is not None:
                budget_check()
            core_reduce_in_place(graph, lower_bound - k, budget_check=budget_check)
    if stats is not None:
        stats.preprocess_removed_vertices += before_vertices - graph.num_vertices
        stats.preprocess_removed_edges += before_edges - graph.num_edges
    return graph
