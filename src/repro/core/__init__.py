"""The paper's core contribution: the kDC maximum k-defective clique solver.

This subpackage contains the branching rule (BR), the reduction rules
(RR1–RR6), the upper bounds (UB1–UB3 plus the original Eq. (2) bound), the
initial-solution heuristics (Degen, Degen-opt), the branch-and-bound solver
itself, and the branching-factor analysis (γ_k / σ_k).
"""

from .bitset_state import BitsetSearchState
from .bounds import (
    best_upper_bound,
    color_candidates,
    eq2_original_coloring,
    ub1_improved_coloring,
    ub2_min_degree,
    ub3_degree_sequence,
)
from .branching import select_branching_vertex
from .checkpoint import SolveCheckpoint, checkpoint_meta
from .config import BACKEND_NAMES, ENGINE_NAMES, VARIANT_NAMES, SolverConfig, variant_config
from .decompose import build_ego_subproblem, solve_decomposed
from .parallel import solve_decomposed_parallel
from .fastpath import (
    BitsetEngine,
    ReductionWorklist,
    bitset_apply_reductions,
    bitset_color_classes,
    bitset_select_branching_vertex,
    bitset_ub1_from_classes,
    bitset_ub1_improved_coloring,
    bitset_ub2_min_degree,
    bitset_ub3_degree_sequence,
)
from .defective import (
    defect,
    is_k_defective_clique,
    is_maximal_k_defective_clique,
    missing_edge_count,
    missing_edges,
    validate_k,
)
from .gamma import (
    PAPER_GAMMA_VALUES,
    ComplexityComparison,
    characteristic_polynomial,
    complexity_comparison,
    gamma,
    sigma,
)
from .heuristics import degen, degen_opt, initial_solution
from .instance import SearchState
from .prepared import PreparedInstance, prepare_instance
from .reductions import (
    apply_reductions,
    apply_rr1,
    apply_rr2,
    apply_rr3,
    apply_rr4,
    apply_rr5,
    preprocess_graph,
)
from .result import SearchStats, SolveResult
from .solver import KDCSolver, find_maximum_defective_clique, maximum_defective_clique_size

__all__ = [
    "KDCSolver",
    "find_maximum_defective_clique",
    "maximum_defective_clique_size",
    "SolverConfig",
    "variant_config",
    "VARIANT_NAMES",
    "BACKEND_NAMES",
    "ENGINE_NAMES",
    "SolveResult",
    "SearchStats",
    "PreparedInstance",
    "prepare_instance",
    "SearchState",
    "BitsetSearchState",
    "BitsetEngine",
    "ReductionWorklist",
    "bitset_apply_reductions",
    "bitset_color_classes",
    "bitset_select_branching_vertex",
    "bitset_ub1_from_classes",
    "bitset_ub1_improved_coloring",
    "bitset_ub2_min_degree",
    "bitset_ub3_degree_sequence",
    "solve_decomposed",
    "solve_decomposed_parallel",
    "build_ego_subproblem",
    "SolveCheckpoint",
    "checkpoint_meta",
    "select_branching_vertex",
    "apply_reductions",
    "apply_rr1",
    "apply_rr2",
    "apply_rr3",
    "apply_rr4",
    "apply_rr5",
    "preprocess_graph",
    "best_upper_bound",
    "ub1_improved_coloring",
    "ub2_min_degree",
    "ub3_degree_sequence",
    "eq2_original_coloring",
    "color_candidates",
    "degen",
    "degen_opt",
    "initial_solution",
    "is_k_defective_clique",
    "is_maximal_k_defective_clique",
    "missing_edge_count",
    "missing_edges",
    "defect",
    "validate_k",
    "gamma",
    "sigma",
    "characteristic_polynomial",
    "complexity_comparison",
    "ComplexityComparison",
    "PAPER_GAMMA_VALUES",
]
