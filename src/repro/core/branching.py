"""Branching rule BR: non-fully-adjacent-first branching (Section 3.1.1).

Given an instance ``(g, S)``, the branching vertex is a candidate that has at
least one non-neighbour inside ``S``; only when every candidate is fully
adjacent to ``S`` may an arbitrary candidate be chosen.  Together with
reduction rules RR1 and RR2 this rule is what bounds the length of
left-branch chains by ``k + 2`` in the complexity proof (Fact 3 of
Lemma 3.4).

Within the freedom the rule leaves, this implementation prefers the candidate
with the **most** non-neighbours in ``S`` (ties broken towards smaller degree
in ``g``): removing or committing such a vertex tends to change the instance
the most, which is a common branch-and-bound heuristic and does not affect
the worst-case analysis.
"""

from __future__ import annotations

from typing import Optional

from .instance import SearchState

__all__ = ["select_branching_vertex"]


def select_branching_vertex(state: SearchState) -> Optional[int]:
    """Return the branching vertex for ``state`` according to rule BR.

    Returns ``None`` when the candidate set is empty (the caller should have
    recognised the instance as a leaf before branching).
    """
    if not state.candidates:
        return None

    non_nbrs = state.non_nbrs_in_solution
    degree = state.degree_in_graph

    best_vertex: Optional[int] = None
    best_key = None
    for v in state.candidates:
        count = non_nbrs[v]
        if count == 0:
            continue
        # Among the vertices the rule allows, prefer the one with the fewest
        # non-neighbours in S and, among those, the highest degree: its
        # inclusion branch is the most promising, which raises the incumbent
        # early and feeds the lb-driven reductions.
        key = (-count, degree[v])
        if best_key is None or key > best_key:
            best_key = key
            best_vertex = v
    if best_vertex is not None:
        return best_vertex

    # Every candidate is fully adjacent to S: the rule allows an arbitrary
    # choice.  Pick a maximum-degree candidate so the inclusion branch keeps
    # growing through the densest part of the instance.
    return max(state.candidates, key=lambda v: (degree[v], -v))
