"""Crash-safe journal primitives and subproblem-level solve checkpointing.

Two building blocks live here, shared by the service persistence layer
(:mod:`repro.service.persistence`) and the decomposition drivers:

**Checksummed append-only journals (WAL).**  A journal is a flat file of
records, each ``8-byte header + payload`` where the header packs the payload
length and its CRC-32.  :func:`append_record` writes one record;
:func:`read_records` scans a journal and returns every record up to the
first truncated or checksum-corrupt one — a damaged tail (the expected
outcome of a crash mid-append) is *discarded with a warning, never an
error*, and the scan reports how many bytes were valid so the caller can
truncate before appending again.  :func:`atomic_write_bytes` is the
complementary snapshot primitive: write a temp file in the same directory,
flush + fsync, then atomically rename over the destination, so readers only
ever observe the old or the new content, never a torn write.

**Subproblem-level solve checkpointing.**  A decomposed solve (see
:mod:`repro.core.decompose`) is a loop over independent per-vertex ego
subproblems threaded through one shared incumbent — exactly the shape that
checkpoints well.  :class:`SolveCheckpoint` journals, per completed anchor,
a ``done`` record (and an ``incumbent`` record whenever the best solution
grew), so a solve killed mid-loop and restarted against the same ``(digest,
k, config)`` skips the completed prefix and re-executes only the unfinished
anchors.  Two disciplines keep the resume exact:

* the journal's incumbent is **verified before reuse**
  (:meth:`SolveCheckpoint.verified_incumbent` re-checks it is a valid
  k-defective clique against the instance adjacency) — the journal can
  never smuggle in a phantom bound whose witness died with the crashed
  process, mirroring the phantom-bound audit of :mod:`repro.core.parallel`;
* ``done`` records are only written for anchors whose search *completed*
  (the sequential driver records after each anchor returns; the parallel
  driver records a round's batches only when the round finished clean and
  passed the phantom-bound audit), so a resume never skips work that was
  merely started.

For the sequential driver the resume is bit-identical: skipping a completed
prefix and restoring the journaled incumbent reproduces exactly the state
the uninterrupted loop would have had at that point, and the engine is
deterministic from there.

Durability model: every record is flushed to the OS (``flush``) before the
next anchor starts, which survives process death (SIGKILL included); an
``fsync`` every :attr:`SolveCheckpoint.sync_every` records (and on close)
additionally bounds the loss window on power failure.
"""

from __future__ import annotations

import hashlib
import io
import json
import logging
import os
import pickle
import struct
import threading
import zlib
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Sequence, Set, Tuple

from ..testing import chaos as faults

__all__ = [
    "JournalScan",
    "SolveCheckpoint",
    "append_record",
    "atomic_write_bytes",
    "checkpoint_meta",
    "checkpoint_token",
    "read_records",
]

logger = logging.getLogger("repro.core.checkpoint")

#: Record header: payload length, CRC-32 of the payload.
_HEADER = struct.Struct("<II")

#: Version stamp of the checkpoint meta record; bump on incompatible layout
#: changes so old journals are discarded instead of misread.
_CHECKPOINT_VERSION = 1


# --------------------------------------------------------------------- #
# Journal primitives
# --------------------------------------------------------------------- #
def _fsync_dir(path: str) -> None:
    """fsync the directory containing ``path`` so a rename itself is durable."""
    dirname = os.path.dirname(os.path.abspath(path))
    try:
        fd = os.open(dirname, os.O_RDONLY)
    except OSError:  # pragma: no cover - exotic filesystems
        return
    try:
        os.fsync(fd)
    except OSError:  # pragma: no cover - directories not fsync-able here
        pass
    finally:
        os.close(fd)


def atomic_write_bytes(path: str, data: bytes) -> None:
    """Write ``data`` to ``path`` atomically (write temp, fsync, rename).

    A crash at any point leaves either the old content or the new content at
    ``path`` — never a prefix.  A stale ``*.tmp.<pid>`` file may survive a
    crash between the write and the rename; readers must ignore them.
    """
    tmp = f"{path}.tmp.{os.getpid()}"
    with open(tmp, "wb") as fh:
        fh.write(data)
        fh.flush()
        os.fsync(fh.fileno())
    # Chaos fault point: a crash after the temp file is durable but before
    # it is renamed into place — the classic torn-publish window.
    faults.fire("persist.write", path=path)
    os.replace(tmp, path)
    _fsync_dir(path)


def append_record(fh, payload: bytes) -> None:
    """Append one checksummed record (header + payload) to an open binary file."""
    fh.write(_HEADER.pack(len(payload), zlib.crc32(payload)))
    fh.write(payload)


@dataclass
class JournalScan:
    """Outcome of scanning a journal file.

    ``records`` holds every payload up to the first damage; ``valid_bytes``
    is the file offset they end at (truncate here before appending after a
    damaged tail); ``damaged`` flags that a truncated or checksum-corrupt
    tail was discarded.
    """

    records: List[bytes]
    valid_bytes: int
    damaged: bool


def read_records(path: str) -> JournalScan:
    """Scan the journal at ``path``, discarding any damaged tail with a warning.

    A missing file scans as empty.  Truncated headers, truncated payloads
    and CRC mismatches — all expected after a crash mid-append — stop the
    scan at the last fully-valid record; they are *never* an error.
    """
    faults.fire("persist.replay", path=path)
    records: List[bytes] = []
    valid = 0
    damaged = False
    try:
        fh = open(path, "rb")
    except FileNotFoundError:
        return JournalScan(records, 0, False)
    with fh:
        while True:
            header = fh.read(_HEADER.size)
            if not header:
                break
            if len(header) < _HEADER.size:
                damaged = True
                break
            length, crc = _HEADER.unpack(header)
            payload = fh.read(length)
            if len(payload) < length or zlib.crc32(payload) != crc:
                damaged = True
                break
            records.append(payload)
            valid += _HEADER.size + length
    if damaged:
        logger.warning(
            "journal %s has a truncated or corrupt tail after %d record(s) "
            "(%d valid bytes); discarding the tail",
            path, len(records), valid,
        )
    return JournalScan(records, valid, damaged)


# --------------------------------------------------------------------- #
# Solve checkpoints
# --------------------------------------------------------------------- #
def checkpoint_meta(digest: str, k: int, algorithm: str, config) -> Dict[str, Any]:
    """The identity record of one checkpointed solve.

    Everything that changes which anchors exist or what their completed
    searches mean is part of the identity: the instance digest, ``k``, the
    algorithm, the prepare-relevant knobs (heuristic, RR5/RR6 — they shape
    the prepared instance the anchors come from) and the backend/engine
    pair.  A journal whose meta does not match is discarded, never reused.
    """
    return {
        "version": _CHECKPOINT_VERSION,
        "digest": digest,
        "k": k,
        "algorithm": algorithm,
        "heuristic": config.initial_heuristic,
        "rr5": config.use_rr5,
        "rr6": config.use_rr6,
        "backend": config.backend,
        "engine": config.engine,
    }


def checkpoint_token(meta: Dict[str, Any]) -> str:
    """Stable filename-safe token of a checkpoint identity."""
    blob = json.dumps(meta, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()[:32]


class SolveCheckpoint:
    """Append-only journal of one decomposed solve's completed subproblems.

    Opening the checkpoint replays whatever a previous run journaled to
    ``path`` (a meta mismatch or damaged tail starts fresh with a warning —
    the file is compacted on open either way, so appends always land on a
    valid tail), exposing the completed anchors as :attr:`completed` and the
    journaled best solution via :meth:`verified_incumbent`.

    Thread-safe; write failures (disk full, permissions) disable further
    journaling with a warning instead of failing the solve — checkpointing
    is an accelerator for the *next* run, never a correctness dependency of
    this one.

    Parameters
    ----------
    path:
        Journal file; created (with its meta record) when absent.
    meta:
        Identity from :func:`checkpoint_meta`.
    sync_every:
        fsync cadence in records (every record is flushed to the OS
        regardless, which is what SIGKILL-crash durability needs; the
        periodic fsync bounds loss on power failure).
    on_release:
        Called exactly once when the checkpoint is closed or completed —
        the persistence layer uses it to release its active-token guard.
    """

    def __init__(
        self,
        path: str,
        meta: Dict[str, Any],
        *,
        sync_every: int = 16,
        on_release: Optional[Callable[[], None]] = None,
    ) -> None:
        self.path = path
        self.meta = dict(meta)
        self.sync_every = max(1, sync_every)
        self._on_release = on_release
        self._lock = threading.Lock()
        self.completed: Set[int] = set()
        self._incumbent: Optional[List[int]] = None
        self._since_sync = 0
        self._closed = False
        self._broken = False
        self._fh = None
        self._load()

    # ------------------------------------------------------------------ #
    def _load(self) -> None:
        scan = read_records(self.path)
        fresh = not scan.records
        mismatch = False
        if scan.records:
            try:
                first = pickle.loads(scan.records[0])
            except Exception:
                first = None
            if first != ("meta", self.meta):
                logger.warning(
                    "checkpoint %s belongs to a different solve identity; starting fresh",
                    self.path,
                )
                mismatch = True
            else:
                for raw in scan.records[1:]:
                    try:
                        kind, payload = pickle.loads(raw)
                    except Exception:
                        logger.warning(
                            "checkpoint %s: unreadable record; ignoring the rest", self.path
                        )
                        break
                    if kind == "done":
                        self.completed.add(payload)
                    elif kind == "incumbent":
                        self._incumbent = list(payload)
        if mismatch:
            self.completed.clear()
            self._incumbent = None
        # Compact on open: rewrites the journal from the replayed state, so
        # a damaged tail, a stale identity or duplicate records can never
        # sit underneath fresh appends.
        buffer = io.BytesIO()
        append_record(buffer, pickle.dumps(("meta", self.meta), protocol=pickle.HIGHEST_PROTOCOL))
        if self._incumbent is not None:
            append_record(
                buffer,
                pickle.dumps(("incumbent", tuple(self._incumbent)), protocol=pickle.HIGHEST_PROTOCOL),
            )
        for anchor in sorted(self.completed):
            append_record(buffer, pickle.dumps(("done", anchor), protocol=pickle.HIGHEST_PROTOCOL))
        atomic_write_bytes(self.path, buffer.getvalue())
        self._fh = open(self.path, "ab")
        if fresh or mismatch or scan.damaged:
            logger.info(
                "checkpoint %s opened (%s, %d completed anchor(s))",
                self.path,
                "fresh" if fresh or mismatch else "recovered from damaged tail",
                len(self.completed),
            )

    # ------------------------------------------------------------------ #
    def verified_incumbent(self, neighbors: Callable[[int], Sequence[int]], k: int) -> List[int]:
        """The journaled best solution, re-verified against the instance.

        Returns ``[]`` unless the journaled vertices form a valid
        k-defective clique under ``neighbors`` — a crashed process must not
        be able to leave behind an unbacked ("phantom") bound that prunes
        the resumed search below the true optimum.
        """
        incumbent = self._incumbent
        if not incumbent:
            return []
        if len(set(incumbent)) != len(incumbent):
            logger.warning("checkpoint %s: journaled incumbent has duplicates; discarded", self.path)
            return []
        missing = 0
        try:
            for i, u in enumerate(incumbent):
                nbrs = set(neighbors(u))
                for w in incumbent[i + 1:]:
                    if w not in nbrs:
                        missing += 1
        except Exception:
            logger.warning(
                "checkpoint %s: journaled incumbent references unknown vertices; discarded",
                self.path,
            )
            return []
        if missing > k:
            logger.warning(
                "checkpoint %s: journaled incumbent is not a valid %d-defective clique "
                "(%d missing edges); discarded",
                self.path, k, missing,
            )
            return []
        return list(incumbent)

    # ------------------------------------------------------------------ #
    def _append(self, record: Tuple[str, Any]) -> None:
        append_record(self._fh, pickle.dumps(record, protocol=pickle.HIGHEST_PROTOCOL))

    def record(self, anchor: int, incumbent: Sequence[int]) -> None:
        """Journal one *completed* anchor (and the incumbent, if it grew).

        Must only be called after the anchor's search finished — never for
        an anchor that was merely started (a budget interrupt mid-anchor
        unwinds before this call, so the anchor correctly re-runs on
        resume).  Flushed before returning, so the record survives the
        process dying at any later point.
        """
        with self._lock:
            if self._closed or self._broken or anchor in self.completed:
                return
            # Chaos fault point, fired before anything is written: a kill
            # here models a crash between anchors, with exactly
            # ``count`` completed anchors durable in the journal.
            faults.fire("checkpoint.append", anchor=anchor, count=len(self.completed))
            try:
                if self._incumbent is None or len(incumbent) > len(self._incumbent):
                    self._incumbent = list(incumbent)
                    self._append(("incumbent", tuple(self._incumbent)))
                self._append(("done", anchor))
                self._fh.flush()
                self.completed.add(anchor)
                self._since_sync += 1
                if self._since_sync >= self.sync_every:
                    os.fsync(self._fh.fileno())
                    self._since_sync = 0
            except OSError as exc:
                self._broken = True
                logger.warning("checkpoint %s: write failed (%s); journaling disabled", self.path, exc)

    def record_batch(self, anchors: Sequence[int], incumbent: Sequence[int]) -> None:
        """Journal a batch of completed anchors, then fsync once."""
        for anchor in anchors:
            self.record(anchor, incumbent)
        self.sync()

    def sync(self) -> None:
        """Force the journal to stable storage (best-effort)."""
        with self._lock:
            if self._closed or self._broken or self._fh is None:
                return
            try:
                self._fh.flush()
                os.fsync(self._fh.fileno())
                self._since_sync = 0
            except OSError as exc:
                self._broken = True
                logger.warning("checkpoint %s: fsync failed (%s); journaling disabled", self.path, exc)

    # ------------------------------------------------------------------ #
    def close(self) -> None:
        """Stop journaling but *keep* the file — the solve may resume later."""
        self._teardown(unlink=False)

    def complete(self) -> None:
        """The solve finished; the journal has served its purpose — delete it."""
        self._teardown(unlink=True)

    def _teardown(self, unlink: bool) -> None:
        with self._lock:
            if self._closed:
                return
            self._closed = True
            if self._fh is not None:
                try:
                    self._fh.flush()
                    os.fsync(self._fh.fileno())
                except OSError:
                    pass
                try:
                    self._fh.close()
                except OSError:
                    pass
                self._fh = None
            if unlink:
                try:
                    os.unlink(self.path)
                except OSError:
                    pass
        if self._on_release is not None:
            callback, self._on_release = self._on_release, None
            callback()

    def __enter__(self) -> "SolveCheckpoint":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()
