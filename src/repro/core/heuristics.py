"""Initial-solution heuristics ``Degen`` and ``Degen-opt`` (Section 3.3, Algorithms 3 and 4).

Both heuristics build a large k-defective clique quickly so the exact search
can start with a strong lower bound, which powers the RR3–RR6 reductions and
the preprocessing of the input graph.

* ``Degen`` (Algorithm 3) computes a degeneracy ordering and returns its
  longest suffix that forms a k-defective clique; O(n + m) time.
* ``Degen-opt`` (Algorithm 4) additionally runs ``Degen`` inside the subgraph
  induced by every vertex's higher-ranked neighbours and keeps the best of
  the ``n + 1`` solutions; O(δ(G) · m) time.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Set

from ..exceptions import BudgetExceededError
from ..graphs.degeneracy import degeneracy_ordering
from ..graphs.graph import Graph, Vertex
from .defective import validate_k

__all__ = ["degen", "degen_opt", "initial_solution"]


#: How many suffix-scan iterations :func:`degen` runs between budget polls.
_DEGEN_BUDGET_STRIDE = 2048


def degen(
    graph: Graph,
    k: int,
    budget_check: Optional[Callable[[], None]] = None,
) -> List[Vertex]:
    """Algorithm 3: the longest k-defective-clique suffix of a degeneracy ordering.

    Because missing edges only accumulate as the suffix grows, the longest
    valid suffix is found by scanning the ordering from the end and stopping
    at the first vertex whose inclusion would exceed ``k`` missing edges.

    Returns the vertices of the heuristic solution (possibly empty for an
    empty graph).  ``budget_check`` is polled every
    :data:`_DEGEN_BUDGET_STRIDE` scan steps; when it raises
    :class:`~repro.exceptions.BudgetExceededError` the suffix built so far is
    returned (callers re-check the budget themselves afterwards).
    """
    validate_k(k)
    if graph.num_vertices == 0:
        return []
    ordering = degeneracy_ordering(graph).ordering
    chosen: List[Vertex] = []
    chosen_set: Set[Vertex] = set()
    missing = 0
    for i, v in enumerate(reversed(ordering)):
        if budget_check is not None and i % _DEGEN_BUDGET_STRIDE == 0 and i:
            try:
                budget_check()
            except BudgetExceededError:
                break
        adjacent = sum(1 for u in graph.neighbors(v) if u in chosen_set)
        extra = len(chosen) - adjacent
        if missing + extra > k:
            break
        missing += extra
        chosen.append(v)
        chosen_set.add(v)
    return chosen


def degen_opt(
    graph: Graph,
    k: int,
    budget_check: Optional[Callable[[], None]] = None,
) -> List[Vertex]:
    """Algorithm 4: ``Degen`` on the whole graph plus on every higher-neighbourhood subgraph.

    For each vertex ``u``, the subgraph induced by its higher-ranked
    neighbours ``N⁺(u)`` (w.r.t. the degeneracy ordering) is extracted and
    ``Degen`` is run inside it; since every vertex of ``N⁺(u)`` is adjacent
    to ``u``, appending ``u`` to the sub-solution keeps it a k-defective
    clique.  The largest of the ``n + 1`` solutions is returned.

    ``budget_check`` (typically the solve run's budget check) is polled once
    per vertex; when it raises
    :class:`~repro.exceptions.BudgetExceededError` the best solution found
    *so far* is returned — callers that need to know the budget fired should
    re-check it themselves afterwards.
    """
    validate_k(k)
    best = degen(graph, k, budget_check=budget_check)
    if graph.num_vertices == 0:
        return best
    decomposition = degeneracy_ordering(graph)
    position = decomposition.position
    for u in decomposition.ordering:
        if budget_check is not None:
            try:
                budget_check()
            except BudgetExceededError:
                return best
        pos_u = position[u]
        higher = [v for v in graph.neighbors(u) if position[v] > pos_u]
        if len(higher) + 1 <= len(best):
            continue  # even a perfect sub-solution cannot beat the incumbent
        sub = graph.subgraph(higher)
        # Forward the budget poll: a hub's ego subgraph can hold millions of
        # edges, and degen's partial-return semantics make interruption safe.
        candidate = degen(sub, k, budget_check=budget_check)
        if len(candidate) + 1 > len(best):
            best = candidate + [u]
    return best


def initial_solution(
    graph: Graph,
    k: int,
    method: str = "degen-opt",
    budget_check: Optional[Callable[[], None]] = None,
) -> List[Vertex]:
    """Dispatch helper used by the solver's Line 1 of Algorithm 2.

    Parameters
    ----------
    method:
        ``"degen-opt"`` (default), ``"degen"``, or ``"none"`` (returns an
        empty solution, used by the kDC-t theoretical variant).
    budget_check:
        Optional budget poll forwarded to :func:`degen_opt` (see there for
        the partial-result semantics on interruption).
    """
    if method == "none":
        return []
    if method == "degen":
        return degen(graph, k, budget_check=budget_check)
    if method == "degen-opt":
        return degen_opt(graph, k, budget_check=budget_check)
    raise ValueError(f"unknown initial-solution method {method!r}")
