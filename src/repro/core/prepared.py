"""Immutable prepared solve artifacts: the compile half of the solve pipeline.

Every :meth:`KDCSolver.solve <repro.core.solver.KDCSolver.solve>` call used to
re-run the same prepare work from scratch — relabeling, the Degen/Degen-opt
heuristic incumbent, RR5/RR6 preprocessing of the input graph, the degeneracy
order, and the packed bitset adjacency.  For many-query workloads (one graph
interrogated repeatedly at varying ``k`` and budgets, the shape of traffic a
long-running solver service handles) that work dominates and is identical
across queries.

This module splits the pipeline at a compile/execute boundary:

* :func:`prepare_instance` runs the prepare phase once and returns a
  :class:`PreparedInstance` — an immutable, picklable artifact holding
  everything the search phase consumes;
* :meth:`KDCSolver.solve_prepared <repro.core.solver.KDCSolver.solve_prepared>`
  executes the branch-and-bound against an artifact, any number of times,
  with per-call budget overrides;
* the classic ``solve(graph, k)`` is now a thin prepare-then-execute wrapper
  over the same two halves, so the differential suite pins both routes to
  identical results.

A :class:`PreparedInstance` is specific to one ``(graph, k)`` pair plus the
prepare-relevant configuration knobs (initial heuristic, RR5/RR6): the
heuristic incumbent and the preprocessing both depend on ``k`` and on those
flags.  Execute-side knobs (backend, engine, workers, budgets, UB/RR toggles
applied at search nodes) are *not* baked in — one artifact serves every
backend × engine × workers cell, which is what lets the service answer a
mixed query stream from a single per-``(graph, k)`` slot.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Tuple

from ..exceptions import InvalidParameterError
from ..graphs.degeneracy import degeneracy_ordering
from ..graphs.graph import Graph, Vertex
from .config import SolverConfig
from .defective import validate_k
from .heuristics import initial_solution
from .reductions import preprocess_graph
from .result import SearchStats

__all__ = ["PreparedInstance", "prepare_instance"]


@dataclass(frozen=True)
class PreparedInstance:
    """Everything the search phase needs, computed once and frozen.

    Instances are immutable (a frozen dataclass; the mapping-typed fields
    must be treated as read-only) and picklable, so they can be stored in a
    graph store, shipped to other processes, or written to disk.  All vertex
    ids below ``working_adj``/``ordering``/``heuristic`` live in the
    *relabeled* space ``0 .. n_original - 1``; :attr:`to_label` maps them
    back to the caller's original labels.

    Attributes
    ----------
    k:
        The defectiveness parameter the artifact was prepared for.
    digest:
        :meth:`~repro.graphs.graph.Graph.content_digest` of the source
        graph — the canonical cache key tying the artifact to its graph
        (``""`` for throwaway artifacts prepared with
        ``compute_digest=False``).
    to_label:
        ``to_label[i]`` recovers the original label of relabeled id ``i``.
    heuristic:
        The Degen/Degen-opt initial solution (relabeled ids); the starting
        incumbent of every execute.
    working_adj:
        Adjacency of the RR5/RR6-preprocessed graph as ``{vertex: (sorted
        neighbour tuple, ...)}`` — exactly the mapping the decomposition
        drivers ship to worker processes.
    working_num_edges:
        Edge count of the preprocessed graph.
    ordering / position:
        Degeneracy ordering of the preprocessed graph and its inverse
        (vertex -> rank), reused by the ego-subproblem decomposition.
    heuristic_method / use_rr5 / use_rr6:
        The prepare-relevant configuration the artifact was built with;
        :meth:`check_compatible` rejects executes under a mismatching
        configuration (they could silently return different incumbents).
    prepare_seconds:
        Wall-clock cost of the prepare phase (the amortised saving every
        reuse banks).
    preprocess_removed_vertices / preprocess_removed_edges /
    preprocess_reductions:
        Preprocessing statistics, replayed into every execute's
        :class:`~repro.core.result.SearchStats` so stats parity with a
        fresh ``solve`` holds.
    """

    k: int
    digest: str
    to_label: Tuple[Vertex, ...]
    heuristic: Tuple[int, ...]
    working_adj: Mapping[int, Tuple[int, ...]]
    working_num_edges: int
    ordering: Tuple[int, ...]
    position: Mapping[int, int]
    heuristic_method: str
    use_rr5: bool
    use_rr6: bool
    prepare_seconds: float
    preprocess_removed_vertices: int
    preprocess_removed_edges: int
    preprocess_reductions: Mapping[str, int]
    #: lazily-built derived caches (packed rows); excluded from equality and
    #: dropped on pickling — they are recomputed on demand.
    _cache: Dict[str, object] = field(default_factory=dict, compare=False, repr=False)

    # ------------------------------------------------------------------ #
    @property
    def n_original(self) -> int:
        """Vertices in the input graph (the relabeled id space width)."""
        return len(self.to_label)

    @property
    def working_n(self) -> int:
        """Vertices surviving RR5/RR6 preprocessing."""
        return len(self.working_adj)

    @property
    def lower_bound(self) -> int:
        """Size of the heuristic incumbent the search starts from."""
        return len(self.heuristic)

    def decomposition(self) -> Tuple[Sequence[int], Mapping[int, int]]:
        """The ``(ordering, position)`` pair the decomposition drivers accept."""
        return self.ordering, self.position

    def packed_adjacency(self) -> Tuple[Tuple[int, ...], Tuple[int, ...]]:
        """Packed whole-graph bitset rows ``(to_global, adj_bits)``.

        Local ids are assigned degree-descending (ties by ``working_adj``
        iteration order), matching what the solver's whole-graph bitset
        search builds per call.  Computed lazily — the rows cost O(n²/8)
        bytes and go unused whenever the degeneracy decomposition engages —
        then cached on the artifact.
        """
        packed = self._cache.get("packed")
        if packed is None:
            order = sorted(self.working_adj, key=lambda v: -len(self.working_adj[v]))
            local = {v: i for i, v in enumerate(order)}
            rows = [0] * len(order)
            for v, i in local.items():
                row = 0
                for u in self.working_adj[v]:
                    row |= 1 << local[u]
                rows[i] = row
            packed = (tuple(order), tuple(rows))
            self._cache["packed"] = packed
        return packed

    def working_graph(self) -> Graph:
        """Rebuild the preprocessed graph as a fresh mutable :class:`Graph`.

        A convenience for inspection and tests; the solver itself executes
        straight off :attr:`working_adj` and never needs this.
        """
        g = Graph(vertices=self.working_adj)
        for v, nbrs in self.working_adj.items():
            for u in nbrs:
                if u > v:
                    g.add_edge(v, u)
        return g

    def check_compatible(self, config: SolverConfig) -> None:
        """Raise unless ``config``'s prepare-relevant knobs match this artifact.

        Executing under a different initial heuristic or RR5/RR6 setting
        would not crash — it would silently answer with the *wrong
        variant's* results, which is worse.
        """
        mismatches = []
        if config.initial_heuristic != self.heuristic_method:
            mismatches.append(
                f"initial_heuristic={config.initial_heuristic!r} != prepared "
                f"{self.heuristic_method!r}"
            )
        if config.use_rr5 != self.use_rr5:
            mismatches.append(f"use_rr5={config.use_rr5} != prepared {self.use_rr5}")
        if config.use_rr6 != self.use_rr6:
            mismatches.append(f"use_rr6={config.use_rr6} != prepared {self.use_rr6}")
        if mismatches:
            raise InvalidParameterError(
                "PreparedInstance was built under a different prepare "
                "configuration: " + "; ".join(mismatches)
            )

    def seed_stats(self, stats: SearchStats) -> None:
        """Replay the prepare-phase counters into a fresh execute's stats."""
        stats.initial_solution_size = len(self.heuristic)
        stats.preprocess_removed_vertices = self.preprocess_removed_vertices
        stats.preprocess_removed_edges = self.preprocess_removed_edges
        for rule, count in self.preprocess_reductions.items():
            stats.count_reduction(rule, count)

    # ------------------------------------------------------------------ #
    # Pickling: drop the derived caches, restore around the frozen guard.
    def __getstate__(self) -> Dict[str, object]:
        state = dict(self.__dict__)
        state["_cache"] = {}
        return state

    def __setstate__(self, state: Dict[str, object]) -> None:
        for name, value in state.items():
            object.__setattr__(self, name, value)


def prepare_instance(
    graph: Graph,
    k: int,
    config: Optional[SolverConfig] = None,
    budget_check: Optional[Callable[[], None]] = None,
    on_heuristic: Optional[Callable[[List[int], List[Vertex]], None]] = None,
    compute_digest: bool = True,
) -> PreparedInstance:
    """Run the prepare phase once and freeze it into a :class:`PreparedInstance`.

    Parameters
    ----------
    graph:
        Input graph (not modified).
    k:
        Defectiveness parameter (``k >= 0``).
    config:
        Only the prepare-relevant knobs are read: ``initial_heuristic``,
        ``use_rr5``, ``use_rr6``.  Defaults to the full kDC configuration.
    budget_check:
        Optional callable raising
        :class:`~repro.exceptions.BudgetExceededError` to interrupt; polled
        throughout the heuristic and the preprocessing.  An interrupted
        prepare propagates the exception (no artifact is produced).
    on_heuristic:
        Optional callback invoked with ``(heuristic_ids, to_label)``
        immediately after the initial solution is computed and *before* the
        post-heuristic budget poll — the hook ``KDCSolver.solve`` uses to
        keep the partial incumbent when a budget fires during preprocessing.
    compute_digest:
        When ``False`` the (sort-the-edges) content digest is skipped and
        :attr:`PreparedInstance.digest` is ``""`` — used by the throwaway
        artifacts of the plain ``solve`` wrapper, which never cache.
    """
    validate_k(k)
    if config is None:
        config = SolverConfig()
    start = time.perf_counter()
    digest = graph.content_digest() if compute_digest else ""

    relabeled, _, to_label = graph.relabel()
    heuristic = initial_solution(
        relabeled, k, config.initial_heuristic, budget_check=budget_check
    )
    if on_heuristic is not None:
        on_heuristic(list(heuristic), to_label)
    if budget_check is not None:
        budget_check()

    prep_stats = SearchStats()
    working = relabeled.copy()
    if config.use_rr5 or config.use_rr6:
        preprocess_graph(
            working,
            k,
            lower_bound=len(heuristic),
            use_rr5=config.use_rr5,
            use_rr6=config.use_rr6,
            stats=prep_stats,
            budget_check=budget_check,
        )

    decomposition = degeneracy_ordering(working)
    working_adj = {v: tuple(sorted(working.neighbors(v))) for v in working}

    return PreparedInstance(
        k=k,
        digest=digest,
        to_label=tuple(to_label),
        heuristic=tuple(heuristic),
        working_adj=working_adj,
        working_num_edges=working.num_edges,
        ordering=tuple(decomposition.ordering),
        position=dict(decomposition.position),
        heuristic_method=config.initial_heuristic,
        use_rr5=config.use_rr5,
        use_rr6=config.use_rr6,
        prepare_seconds=time.perf_counter() - start,
        preprocess_removed_vertices=prep_stats.preprocess_removed_vertices,
        preprocess_removed_edges=prep_stats.preprocess_removed_edges,
        preprocess_reductions=dict(prep_stats.reductions),
    )
