"""Parallel degeneracy-decomposition driver: ego subproblems across worker processes.

The per-vertex ego subproblems of :mod:`repro.core.decompose` are independent
once the incumbent lower bound is shared — exactly the structure Chang's kDC
implementation exploits to scale to million-edge inputs.  This module farms
them to a :mod:`multiprocessing` pool:

* the parent computes the degeneracy ordering once and ships the adjacency
  lists, the position map and the solver configuration to each worker via the
  pool initializer (one pickle per worker, not per task);
* the current best *size* is broadcast through shared memory; each worker
  refreshes its local lower bound from it before building every subproblem,
  so an improvement found by any worker immediately tightens the size cap
  and the candidate filters everywhere else;
* the best *vertices* stay worker-local and travel back to the parent with
  each finished batch, where they are merged into the caller's incumbent;
* each worker solves its ego subproblems with the engine selected by
  ``SolverConfig.engine`` (the trail undo-stack engine by default); the
  trail/worklist counters a batch collects are merged into the parent's
  :class:`~repro.core.result.SearchStats` with everything else.

Shared state is deliberately crash-tolerant: the best-size and node-counter
cells are *raw* (lockless) shared values read without any lock, and the
separate locks guarding their read-modify-write updates are only ever taken
with a timeout — a worker SIGKILLed while holding one can therefore stall
peers for at most the timeout, never deadlock them.

Determinism
-----------
Worker scheduling changes which subproblems get pruned by a tightened bound,
so node counts and wall-clock vary between runs — but the returned *size* is
identical for every worker count: each subproblem is an exact search over a
candidate restriction that is sound for any lower bound below the optimum,
and the optimum's anchor subproblem can only be skipped when a solution at
least as large has already been recorded.

Budgets
-------
The wall-clock deadline is shipped to workers as a ``time.monotonic`` value
(system-wide on the platforms we target), polled at every engine node.  The
node budget is enforced against the shared counter: each worker accumulates
a private count, flushes it into the counter every
:data:`_NODE_FLUSH_INTERVAL` nodes (plus a final flush when its batch ends),
and raises as soon as the shared total plus its private count reaches the
limit — the raise does not depend on the flush succeeding, so enforcement
survives even an orphaned counter lock.  A worker that trips a budget
returns its partial result flagged (improvements the engine recorded before
the interrupt are salvaged); the parent drains every already-completed
batch, terminates the pool, and raises
:class:`~repro.exceptions.BudgetExceededError` so the solve reports
``optimal=False`` with the best solution found anywhere.

Worker loss
-----------
``multiprocessing.Pool`` silently respawns a worker that dies abruptly (e.g.
OOM-killed) but the batch it was running is lost and its result never
arrives.  The parent waits with a timeout and watches the pool's own worker
processes for pid turnover (with a generous empty-poll watchdog as the
backstop on runtimes where the pool's worker list is not introspectable).
On a detected loss it drains whatever did complete and retries on a fresh
pool with fresh shared state; any batches still unaccounted after the pool
rounds are finished sequentially in-process, so the solve stays exact
instead of hanging forever.  One subtlety makes the retry sound: a dying
worker may have *published* a best size whose witness vertices died with it
(a "phantom" bound that pruned other subproblems without any backing
solution reaching the parent).  Each round therefore starts its bound cell
from the parent's verified incumbent, and a round that ends with a bound
exceeding what the parent actually holds re-queues every batch it merged —
anything pruned against the unbacked bound gets re-searched.
"""

from __future__ import annotations

import multiprocessing
import time
from typing import TYPE_CHECKING, Callable, Dict, List, Optional, Sequence, Tuple

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .checkpoint import SolveCheckpoint

from ..exceptions import BudgetExceededError
from ..graphs.degeneracy import degeneracy_ordering
from ..graphs.graph import Graph
from ..testing import chaos as faults
from .config import SolverConfig
from .decompose import solve_anchor
from .result import SearchStats

__all__ = ["solve_decomposed_parallel"]

#: Engine polls between unconditional flushes of a worker's private node
#: count into the shared counter (the limit itself is checked against
#: ``shared + private`` at every poll, independently of flushing).
_NODE_FLUSH_INTERVAL = 64

#: Upper bound on the number of anchors per pool task: big enough to
#: amortise the IPC round-trip, small enough that the shared bound is
#: re-read (and results stream back) frequently.
_MAX_BATCH_SIZE = 64

#: Seconds the parent waits for a result before polling its own budget and
#: checking worker liveness.
_RESULT_POLL_SECONDS = 0.2

#: Timeout for every acquisition of a shared-state lock (parent and worker
#: side): bounds the stall a lock orphaned by a killed process can cause.
#: On failure the update is skipped or retried later — never blocked on.
_LOCK_TIMEOUT_SECONDS = 1.0

#: Pool rounds before falling back to in-process sequential recovery: the
#: initial round plus one full-parallelism retry after a worker death.
_MAX_POOL_ROUNDS = 2

#: No-hang backstop when the pool's worker list is not introspectable (pid
#: turnover invisible): consecutive empty result polls before a round is
#: abandoned.  Generous — ~5 minutes — because abandoning early only costs
#: wall-clock (the batches re-run via retry/sequential recovery), while a
#: legitimate batch rarely stays silent this long.
_MAX_BLIND_EMPTY_POLLS = 1500

# Per-worker-process context installed by _init_worker (a module global is
# the standard way to hand pool workers their initializer state).
_CTX: Optional["_WorkerContext"] = None


class _WorkerContext:
    """Read-mostly per-process state shared by every task a worker runs.

    ``best_size`` and ``node_counter`` are raw (lockless) shared values;
    ``best_lock`` / ``counter_lock`` guard their read-modify-write updates
    and are only ever acquired with :data:`_LOCK_TIMEOUT_SECONDS`.
    """

    __slots__ = ("adj", "position", "k", "config", "best_size", "best_lock",
                 "node_counter", "counter_lock", "node_limit", "deadline")

    def __init__(self, adj, position, k, config, best_size, best_lock,
                 node_counter, counter_lock, node_limit, deadline) -> None:
        self.adj = adj
        self.position = position
        self.k = k
        self.config = config
        self.best_size = best_size
        self.best_lock = best_lock
        self.node_counter = node_counter
        self.counter_lock = counter_lock
        self.node_limit = node_limit
        self.deadline = deadline


def _init_worker(
    adj: Dict[int, Tuple[int, ...]],
    position: Dict[int, int],
    k: int,
    config: SolverConfig,
    best_size,
    best_lock,
    node_counter,
    counter_lock,
    node_limit: Optional[int],
    deadline: Optional[float],
) -> None:
    global _CTX
    _CTX = _WorkerContext(adj, position, k, config, best_size, best_lock,
                          node_counter, counter_lock, node_limit, deadline)


def _publish_best(best_size, best_lock, size: int) -> None:
    """Raise the shared best-size cell to ``size`` (best-effort, timed lock).

    Publishing only accelerates pruning elsewhere, so on a lock-acquire
    timeout (e.g. the lock died with a killed worker) the update is simply
    skipped.
    """
    if size > best_size.value and best_lock.acquire(timeout=_LOCK_TIMEOUT_SECONDS):
        try:
            if size > best_size.value:
                best_size.value = size
        finally:
            best_lock.release()


def _make_budget_check(
    ctx: "_WorkerContext",
) -> Tuple[Callable[[], None], Callable[[], None], Callable[[], None]]:
    """Return ``(node_check, poll, flush)`` for one task.

    ``node_check`` is handed to the engine, whose contract is one call per
    branch-and-bound node: it counts the node into the worker's private
    count, raises when the shared total plus the private count reaches the
    limit (independently of any lock), and opportunistically flushes the
    private count every :data:`_NODE_FLUSH_INTERVAL` nodes.  ``poll`` is the
    anchor-loop check: it tests the deadline and the already-spent node
    total without counting anything — mirroring the sequential driver, where
    per-anchor budget checks compare ``stats.nodes`` but only engine nodes
    increment it.  ``flush`` pushes any residual private count into the
    shared counter (called when the batch ends, so small batches cannot
    silently under-report their spend).
    """
    pending = [0]

    def flush() -> None:
        if pending[0] and ctx.counter_lock.acquire(timeout=_LOCK_TIMEOUT_SECONDS):
            try:
                ctx.node_counter.value += pending[0]
                pending[0] = 0
            finally:
                ctx.counter_lock.release()

    def node_check() -> None:
        if ctx.deadline is not None and time.monotonic() > ctx.deadline:
            raise BudgetExceededError("time limit exceeded")
        limit = ctx.node_limit
        if limit is not None:
            pending[0] += 1
            if ctx.node_counter.value + pending[0] >= limit:
                flush()
                raise BudgetExceededError("node limit exceeded")
            if pending[0] >= _NODE_FLUSH_INTERVAL:
                flush()

    def poll() -> None:
        if ctx.deadline is not None and time.monotonic() > ctx.deadline:
            raise BudgetExceededError("time limit exceeded")
        limit = ctx.node_limit
        if limit is not None and ctx.node_counter.value + pending[0] >= limit:
            raise BudgetExceededError("node limit exceeded")

    return node_check, poll, flush


def _solve_batch(task: Tuple[int, Sequence[int]]):
    """Solve one batch of anchor subproblems inside a worker process.

    ``task`` is ``(index, anchors)``; returns ``(index, local_best, stats,
    exceeded)`` where ``local_best`` is the best solution found by this
    batch in instance-graph vertex ids (empty when nothing beat the shared
    bound), ``stats`` carries this batch's counters (including subproblem
    counts), and ``exceeded`` flags a budget interruption (the other fields
    still hold the partial result).
    """
    index, anchors = task
    ctx = _CTX
    assert ctx is not None, "_solve_batch called outside an initialised worker"
    # Chaos fault point: lets the fault-injection harness kill this worker
    # process (plain or after publishing a phantom bound) or delay a batch,
    # deterministically pinned by batch index.  No-op outside chaos tests.
    faults.fire("parallel.batch", index=index, best_size=ctx.best_size)
    stats = SearchStats()
    node_check, poll, flush = _make_budget_check(ctx)
    adj = ctx.adj
    position = ctx.position
    k = ctx.k
    best_size = ctx.best_size
    local_best: List[int] = []
    exceeded = False
    try:
        try:
            for v in anchors:
                poll()
                lb = max(best_size.value, len(local_best))
                # The engine treats the incumbent list as lower bound *and*
                # output.  When another worker owns the current bound, hand
                # the anchor solve a placeholder of that length: its contents
                # are never read (only its length), and it is
                # wholesale-replaced on the first strict improvement.
                incumbent = local_best if len(local_best) >= lb else [-1] * lb
                try:
                    solve_anchor(adj.__getitem__, position, v, k, ctx.config,
                                 stats, node_check, incumbent)
                finally:
                    # The engine records improvements into `incumbent` in
                    # place, so a solution found before a budget interrupt
                    # unwinds the anchor solve must be salvaged, not lost
                    # with the exception.
                    if len(incumbent) > lb:
                        local_best = list(incumbent)
                        _publish_best(best_size, ctx.best_lock, len(local_best))
        finally:
            flush()
    except BudgetExceededError:
        exceeded = True
    return index, local_best, stats, exceeded


def _batched(anchors: List[int], workers: int) -> List[List[int]]:
    """Split ``anchors`` into contiguous batches preserving their order.

    Contiguity keeps the densest anchors (front of the list) in the earliest
    batches, so the shared bound tightens as early as in the sequential
    driver; ~8 batches per worker keeps the pool load-balanced even when a
    few dense batches dominate.
    """
    if not anchors:
        return []
    size = max(1, min(_MAX_BATCH_SIZE, -(-len(anchors) // (workers * 8))))
    return [anchors[i:i + size] for i in range(0, len(anchors), size)]


def solve_decomposed_parallel(
    working: Optional[Graph],
    k: int,
    config: SolverConfig,
    stats: SearchStats,
    check_budget: Callable[[], None],
    incumbent: List[int],
    deadline: Optional[float] = None,
    node_limit: Optional[int] = None,
    adj: Optional[Dict[int, Tuple[int, ...]]] = None,
    decomposition: Optional[Tuple[Sequence[int], Dict[int, int]]] = None,
    checkpoint: Optional["SolveCheckpoint"] = None,
) -> None:
    """Parallel twin of :func:`repro.core.decompose.solve_decomposed`.

    Parameters mirror the sequential driver; additionally:

    deadline:
        Absolute ``time.monotonic()`` wall-clock deadline shipped to the
        workers (``None`` = unlimited).  The parent's own ``check_budget``
        is still polled while waiting for results.
    node_limit:
        Total branch-and-bound node budget across all workers, counted on
        top of ``stats.nodes`` already spent (``None`` = unlimited).
    adj:
        Optional precomputed ``vertex -> neighbour tuple`` adjacency used
        verbatim as the worker-pool payload (a
        :class:`~repro.core.prepared.PreparedInstance` passes its frozen
        ``working_adj``); built from ``working`` when absent.
    decomposition:
        Optional precomputed ``(ordering, position)`` degeneracy
        decomposition; computed from ``working`` when absent.  ``working``
        may be ``None`` when both ``adj`` and ``decomposition`` are given.
    checkpoint:
        Optional :class:`~repro.core.checkpoint.SolveCheckpoint` (used in
        the parent process only; workers never see it).  Anchors journaled
        as completed are excluded up front (counted in
        ``stats.subproblems_restored``) after restoring the re-verified
        incumbent; a pool round's merged batches are journaled only when
        the round finished without a budget trip *and* passed the
        phantom-bound audit — a batch interrupted mid-flight or a round
        whose pruning may have leaned on an unbacked bound is never marked
        done.

    Raises
    ------
    BudgetExceededError
        When any worker (or the parent's ``check_budget``) trips a budget;
        ``incumbent`` and ``stats`` already include every completed result.
    """
    if len(incumbent) < k + 1:
        raise ValueError(
            "solve_decomposed_parallel requires an incumbent of size >= k + 1; "
            "fall back to the whole-graph bitset solve instead"
        )
    workers = config.workers
    if decomposition is None:
        result = degeneracy_ordering(working)
        ordering, position = result.ordering, dict(result.position)
    else:
        ordering, position = decomposition[0], dict(decomposition[1])
    anchors = list(reversed(ordering))
    stats.workers = workers

    if adj is None:
        adj = {v: tuple(working.neighbors(v)) for v in working}
    if checkpoint is not None:
        restored = checkpoint.verified_incumbent(adj.__getitem__, k)
        if len(restored) > len(incumbent):
            incumbent[:] = restored
        done = checkpoint.completed
        if done:
            kept = [v for v in anchors if v not in done]
            stats.subproblems_restored += len(anchors) - len(kept)
            anchors = kept
    mp = multiprocessing.get_context()

    def merge(local_best: List[int], batch_stats: SearchStats) -> None:
        stats.merge_from(batch_stats)
        if len(local_best) > len(incumbent):
            incumbent[:] = local_best

    #: Batches not yet merged, by task index; whatever is left after the
    #: pool rounds wind down is re-solved sequentially (last-resort
    #: lost-worker recovery).
    remaining: Dict[int, List[int]] = dict(enumerate(_batched(anchors, workers)))
    exceeded = False

    def run_pool_round() -> None:
        """Run the unmerged batches through one worker pool.

        Pops batches from ``remaining`` as their results merge.  Returns
        normally on completion, worker turnover, or a budget trip (setting
        ``exceeded``).  Each round gets a fresh pool and fresh shared cells,
        so a retry after a worker death neither receives duplicate results
        from the old round's in-flight tasks nor inherits its possibly
        orphaned locks; and a round that ends with the shared bound above
        the parent's verified incumbent (a phantom bound from a worker that
        died after publishing but before reporting) re-queues the batches it
        merged, because their pruning may have leaned on the unbacked bound.
        """
        nonlocal exceeded
        best_size = mp.Value("q", len(incumbent), lock=False)
        best_lock = mp.Lock()
        node_counter = mp.Value("q", stats.nodes, lock=False)
        counter_lock = mp.Lock()
        merged_this_round: Dict[int, List[int]] = {}
        pool = mp.Pool(
            processes=workers,
            initializer=_init_worker,
            initargs=(adj, position, k, config, best_size, best_lock,
                      node_counter, counter_lock, node_limit, deadline),
        )
        try:
            results = pool.imap_unordered(_solve_batch, sorted(remaining.items()))
            # Snapshot this pool's worker pids (not process-wide children:
            # an unrelated child — e.g. another concurrent solve's pool —
            # exiting must not look like one of OUR workers dying).  Pool
            # keeps its worker Process objects in the private but
            # long-stable `_pool` attribute; without it, turnover detection
            # degrades to the blind empty-poll watchdog below.
            pool_procs = getattr(pool, "_pool", None)
            worker_pids = {p.pid for p in pool_procs} if pool_procs is not None else None
            empty_polls = 0

            def take(index: int, local_best: List[int], batch_stats: SearchStats) -> None:
                batch = remaining.pop(index, None)
                if batch is not None:
                    merged_this_round[index] = batch
                merge(local_best, batch_stats)

            try:
                while remaining:
                    try:
                        index, local_best, batch_stats, batch_exceeded = results.next(
                            timeout=_RESULT_POLL_SECONDS
                        )
                    except multiprocessing.TimeoutError:
                        # Poll the parent's own budget only while batches
                        # are still outstanding, so a solve whose last merge
                        # lands exactly on the node limit is not spuriously
                        # flagged non-optimal — the sequential driver checks
                        # budgets at node entry, never after the last one.
                        check_budget()
                        # Pool silently respawns dead workers (with new
                        # pids) but their in-flight batch is lost; pid
                        # turnover is the signal to stop waiting.  Without
                        # pid visibility, a long stretch of empty polls is
                        # the (blunter) no-hang backstop — worst case it
                        # abandons a slow round early and the work finishes
                        # via retry/sequential recovery, still exact.
                        if worker_pids is not None:
                            if {p.pid for p in pool_procs} != worker_pids:
                                break
                        else:
                            empty_polls += 1
                            if empty_polls >= _MAX_BLIND_EMPTY_POLLS:
                                break
                        continue
                    except StopIteration:
                        break
                    empty_polls = 0
                    take(index, local_best, batch_stats)
                    _publish_best(best_size, best_lock, len(incumbent))
                    if batch_exceeded:
                        exceeded = True
                        break
            except BudgetExceededError:
                # Parent-side trip: fall through to the same drain as a
                # worker-side trip so completed batches are not discarded.
                exceeded = True
            # Batches that finished while we were deciding to stop may sit
            # in the result queue holding a larger solution; drain whatever
            # is (nearly) ready before terminating the pool.  After a
            # budget trip the other workers trip at their next poll, so
            # this converges fast.
            if remaining:
                while True:
                    try:
                        index, local_best, batch_stats, batch_exceeded = results.next(
                            timeout=0.1
                        )
                    except (StopIteration, multiprocessing.TimeoutError):
                        break
                    take(index, local_best, batch_stats)
                    if batch_exceeded:
                        # A drained batch that tripped a budget left anchors
                        # unsearched; the flag must survive the drain or the
                        # solve would report optimal=True without them.
                        exceeded = True
        finally:
            pool.terminate()
            pool.join()
        # Phantom-bound audit: every published size must by now be backed by
        # a solution merged into the parent's incumbent.  A higher value
        # means its witness died with a worker — conservatively re-queue
        # everything this round merged, since those batches may have pruned
        # subproblems against the unbacked bound.  (On a fully completed
        # healthy round the audit always passes, so this costs nothing.)
        if best_size.value > len(incumbent):
            if not exceeded:
                remaining.update(merged_this_round)
        elif checkpoint is not None and not exceeded and merged_this_round:
            # Journal only audit-clean rounds: a merged batch then provably
            # completed all its anchors with every prune backed by the
            # verified incumbent.  Budget-tripped rounds journal nothing —
            # a batch flagged `exceeded` is partial, and even its clean
            # siblings are cheap to redo compared to marking one started
            # anchor as done.
            for index in sorted(merged_this_round):
                checkpoint.record_batch(merged_this_round[index], incumbent)

    for _ in range(_MAX_POOL_ROUNDS):
        if not remaining or exceeded:
            break
        run_pool_round()
    if exceeded:
        raise BudgetExceededError("budget exceeded during parallel decomposition")
    if remaining:
        # Last-resort lost-worker recovery: finish the unaccounted batches
        # sequentially in the parent, under the parent's own budget checks.
        # Exactness is preserved — these anchors simply never got searched.
        # Record the degradation: timing consumers (bench records) must not
        # read this solve as having run at full pool width.
        stats.workers = 1
        for _, batch in sorted(remaining.items()):
            for v in batch:
                check_budget()
                solve_anchor(adj.__getitem__, position, v, k, config, stats,
                             check_budget, incumbent)
                if checkpoint is not None:
                    checkpoint.record(v, incumbent)