"""Branching-factor analysis (Section 3.1.2 of the paper).

The running time of kDC is :math:`O^*(\\gamma_k^n)` where ``γ_k < 2`` is the
largest real root of

.. math::   x^{k+3} - 2 x^{k+2} + 1 = 0.

The prior state of the art, MADEC+, runs in :math:`O^*(\\sigma_k^n)` with
``σ_k`` the largest real root of ``x^{2k+3} - 2x^{2k+2} + 1 = 0``; the paper
observes ``σ_k = γ_{2k}``, and since ``γ_k`` is increasing in ``k`` the new
bound is strictly better for every ``k ≥ 1``.

This module computes the roots numerically (bisection to machine precision)
so the theoretical claims can be checked by tests and reported alongside the
empirical results.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from ..exceptions import InvalidParameterError

__all__ = [
    "gamma",
    "sigma",
    "characteristic_polynomial",
    "ComplexityComparison",
    "complexity_comparison",
    "PAPER_GAMMA_VALUES",
]

#: Values of γ_k quoted in the paper (Lemma 3.4) for k = 0..5, to three decimals.
PAPER_GAMMA_VALUES: Dict[int, float] = {
    0: 1.619,
    1: 1.840,
    2: 1.928,
    3: 1.966,
    4: 1.984,
    5: 1.992,
}


def characteristic_polynomial(x: float, k: int) -> float:
    """Evaluate the characteristic polynomial ``x^{k+3} - 2 x^{k+2} + 1``."""
    return x ** (k + 3) - 2.0 * x ** (k + 2) + 1.0


def gamma(k: int, tolerance: float = 1e-12) -> float:
    """Return γ_k, the largest real root of ``x^{k+3} - 2x^{k+2} + 1 = 0``.

    The polynomial has a root at ``x = 1``; its unique stationary point on
    ``(0, ∞)`` lies at ``x* = 2(k+2)/(k+3) ∈ (1, 2)``, where the polynomial is
    negative, and the polynomial is positive at ``x = 2``.  The largest real
    root therefore lies in ``(x*, 2)`` and is found by bisection.

    Parameters
    ----------
    k:
        Defectiveness parameter (``k >= 0``).
    tolerance:
        Absolute bisection tolerance.
    """
    if k < 0:
        raise InvalidParameterError("k must be non-negative")
    lo = 2.0 * (k + 2) / (k + 3)
    hi = 2.0
    flo = characteristic_polynomial(lo, k)
    if flo > 0.0:
        # Degenerate only if numeric noise; nudge the bracket outward.
        lo = 1.0 + 1e-9
    while hi - lo > tolerance:
        mid = 0.5 * (lo + hi)
        if characteristic_polynomial(mid, k) < 0.0:
            lo = mid
        else:
            hi = mid
    return 0.5 * (lo + hi)


def sigma(k: int, tolerance: float = 1e-12) -> float:
    """Return σ_k, MADEC+'s branching factor: the largest root of ``x^{2k+3} - 2x^{2k+2} + 1``.

    The paper's observation ``σ_k = γ_{2k}`` is used directly.
    """
    if k < 0:
        raise InvalidParameterError("k must be non-negative")
    return gamma(2 * k, tolerance=tolerance)


@dataclass(frozen=True)
class ComplexityComparison:
    """A single row of the theoretical comparison between kDC and MADEC+."""

    k: int
    gamma_k: float
    sigma_k: float
    #: ratio of exponential bases; < 1 means kDC's bound is better
    base_ratio: float
    #: speedup exponent for n = 100 vertices: (sigma_k / gamma_k) ** 100
    speedup_n100: float


def complexity_comparison(k_values: List[int]) -> List[ComplexityComparison]:
    """Tabulate γ_k vs σ_k (kDC vs MADEC+) for the given ``k`` values.

    Used by ``examples/complexity_table.py`` and the documentation to
    reproduce the theoretical part of the paper's contribution.
    """
    rows: List[ComplexityComparison] = []
    for k in k_values:
        g = gamma(k)
        s = sigma(k)
        rows.append(
            ComplexityComparison(
                k=k,
                gamma_k=g,
                sigma_k=s,
                base_ratio=g / s,
                speedup_n100=(s / g) ** 100,
            )
        )
    return rows
