"""k-defective clique predicates (Definitions 2.1 and 2.2 of the paper).

A vertex set ``C`` is a *k-defective clique* of a graph ``G`` if the subgraph
induced by ``C`` misses at most ``k`` edges from being complete.  The property
is hereditary: every subset of a k-defective clique is itself a k-defective
clique, which is what makes branch-and-bound with greedy vertex additions
sound.
"""

from __future__ import annotations

from typing import Iterable, List, Set, Tuple

from ..exceptions import InvalidParameterError
from ..graphs.graph import Graph, Vertex

__all__ = [
    "missing_edge_count",
    "missing_edges",
    "is_k_defective_clique",
    "is_maximal_k_defective_clique",
    "defect",
    "validate_k",
]


def validate_k(k: int) -> int:
    """Validate the defectiveness parameter ``k`` (must be a non-negative integer)."""
    if not isinstance(k, int) or isinstance(k, bool):
        raise InvalidParameterError(f"k must be an integer, got {k!r}")
    if k < 0:
        raise InvalidParameterError(f"k must be non-negative, got {k}")
    return k


def missing_edge_count(graph: Graph, vertices: Iterable[Vertex]) -> int:
    """Return the number of non-edges in the subgraph induced by ``vertices``.

    This is :math:`|\\bar{E}(S)|` in the paper's notation.
    """
    return graph.count_missing_edges(vertices)


def missing_edges(graph: Graph, vertices: Iterable[Vertex]) -> List[Tuple[Vertex, Vertex]]:
    """Return the non-edges of the subgraph induced by ``vertices``."""
    verts = list(set(vertices))
    result: List[Tuple[Vertex, Vertex]] = []
    for i, u in enumerate(verts):
        nbrs = graph.neighbors(u)
        for v in verts[i + 1:]:
            if v not in nbrs:
                result.append((u, v))
    return result


def defect(graph: Graph, vertices: Iterable[Vertex]) -> int:
    """Alias of :func:`missing_edge_count`: how many edges the set is short of a clique."""
    return missing_edge_count(graph, vertices)


def is_k_defective_clique(graph: Graph, vertices: Iterable[Vertex], k: int) -> bool:
    """Return ``True`` if ``vertices`` induce a k-defective clique of ``graph``.

    Parameters
    ----------
    graph:
        Host graph.
    vertices:
        Candidate vertex set; must all be present in ``graph``.
    k:
        Maximum number of tolerated missing edges (``k = 0`` tests for a clique).
    """
    validate_k(k)
    return missing_edge_count(graph, vertices) <= k


def is_maximal_k_defective_clique(graph: Graph, vertices: Iterable[Vertex], k: int) -> bool:
    """Return ``True`` if ``vertices`` is a k-defective clique that no vertex can extend.

    A k-defective clique ``C`` is maximal when for every vertex ``v`` outside
    ``C``, the set ``C ∪ {v}`` misses more than ``k`` edges.
    """
    validate_k(k)
    vset: Set[Vertex] = set(vertices)
    current_missing = missing_edge_count(graph, vset)
    if current_missing > k:
        return False
    for v in graph:
        if v in vset:
            continue
        extra = sum(1 for u in vset if not graph.has_edge(u, v))
        if current_missing + extra <= k:
            return False
    return True
