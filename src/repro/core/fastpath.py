"""Bitset fast-path implementations of BR, RR1–RR5 and UB1–UB3.

This module is the word-parallel twin of :mod:`repro.core.branching`,
:mod:`repro.core.reductions` and :mod:`repro.core.bounds`: every rule has the
same pruning semantics as its set-based counterpart (so both backends return
identical optimal sizes), but operates on the packed
:class:`~repro.core.bitset_state.BitsetSearchState` representation.

Performance notes
-----------------
Pure-Python bit iteration is the dominant cost of a bitset kernel, so the
inner loops share two disciplines:

* candidate scans materialise the set bits once via
  :func:`~repro.core.bitset_state.bits_of` (a byte-table walk over
  ``int.to_bytes`` whose per-element cost is several times lower than
  repeated ``mask & -mask`` extraction) and then iterate the list at C speed;
* the engine extracts the candidate list and the instance-graph degrees once
  per node and shares them between UB3, UB1 and the branching rule — the
  state is not mutated between those steps.

:class:`BitsetEngine` is the branch-and-bound driver over that state.  It is
deliberately incumbent-*sharing*: the caller hands it a mutable ``incumbent``
list which the engine grows in place whenever it finds a larger k-defective
clique.  The degeneracy decomposition in :mod:`repro.core.decompose` exploits
this to thread one global lower bound through hundreds of ego subproblems, so
RR5/UB pruning discards most of them without branching.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Sequence, Tuple

from .bitset_state import BitsetSearchState, bits_of
from .config import SolverConfig
from .result import SearchStats

__all__ = [
    "bitset_rr1",
    "bitset_rr2",
    "bitset_rr3",
    "bitset_rr4",
    "bitset_rr5",
    "bitset_apply_reductions",
    "bitset_ub1_improved_coloring",
    "bitset_ub2_min_degree",
    "bitset_ub3_degree_sequence",
    "bitset_select_branching_vertex",
    "BitsetEngine",
]


# --------------------------------------------------------------------------- #
# Reduction rules
# --------------------------------------------------------------------------- #
def bitset_rr1(state: BitsetSearchState, stats: Optional[SearchStats] = None) -> int:
    """RR1 (excess-removal): drop candidates whose inclusion would exceed ``k`` missing edges."""
    budget = state.k - state.missing_in_solution
    non_nbrs = state.non_nbrs
    removed = 0
    for v in bits_of(state.cand_bits):
        if non_nbrs[v] > budget:
            state.remove_candidate(v)
            removed += 1
    if stats is not None:
        stats.count_reduction("RR1", removed)
    return removed


def bitset_rr2(state: BitsetSearchState, stats: Optional[SearchStats] = None) -> int:
    """RR2 (high-degree): greedily move candidates adjacent to all but ≤ 1 vertex of ``g`` into ``S``."""
    adj = state.adj
    non_nbrs = state.non_nbrs
    moved = 0
    progress = True
    while progress:
        progress = False
        verts = state.solution_bits | state.cand_bits
        budget = state.k - state.missing_in_solution
        for v in bits_of(state.cand_bits):
            # "adjacent to all but at most one vertex of g": the non-neighbour
            # mask of v inside g (minus v itself) has at most one bit set.
            if non_nbrs[v] <= budget:
                others = (verts & ~adj[v]) ^ (1 << v)
                if not (others & (others - 1)):
                    state.add_to_solution(v)
                    moved += 1
                    progress = True
                    # Moving a vertex into S changes the non-neighbour
                    # counters of the remaining candidates: restart the scan.
                    break
    if stats is not None and moved:
        stats.rr2_additions += moved
    return moved


def bitset_rr3(
    state: BitsetSearchState, lower_bound: int, stats: Optional[SearchStats] = None
) -> int:
    """RR3 (degree-sequence-based): remove candidates that UB3 proves useless."""
    needed = lower_bound - len(state.solution)
    cand = state.cand_bits
    if needed < 0 or not cand:
        return 0
    non_nbrs = state.non_nbrs
    # Pack (cost, vertex) into one int so the sort needs no key function.
    shift = len(state.adj).bit_length()
    mask = (1 << shift) - 1
    ordered = [(non_nbrs[v] << shift) | v for v in bits_of(cand)]
    ordered.sort()
    if needed >= len(ordered):
        return 0
    prefix_cost = sum(code >> shift for code in ordered[:needed])
    threshold = state.slack() - prefix_cost
    removed = 0
    for code in ordered[needed:]:
        if (code >> shift) > threshold:
            state.remove_candidate(code & mask)
            removed += 1
    if stats is not None:
        stats.count_reduction("RR3", removed)
    return removed


def bitset_rr4(
    state: BitsetSearchState, lower_bound: int, stats: Optional[SearchStats] = None
) -> int:
    """RR4 (second-order): pairwise bound with the last-added solution vertex.

    Semantically identical to :func:`repro.core.reductions.apply_rr4`; the
    neighbourhood intersections become single ``&``/popcount operations.
    """
    u = state.last_added
    cand = state.cand_bits
    if u is None or not cand:
        return 0
    k = state.k
    adj = state.adj
    non_nbrs = state.non_nbrs
    missing = state.missing_in_solution
    u_nbrs_in_cand = adj[u] & cand
    nu_total = u_nbrs_in_cand.bit_count()
    total = cand.bit_count() - 1
    base = len(state.solution) + 1

    to_remove: List[int] = []
    for v in bits_of(cand):
        missing_s_prime = missing + non_nbrs[v]
        if missing_s_prime > k:
            continue  # RR1 will remove it
        slack = k - missing_s_prime
        nu = nu_total - 1 if (u_nbrs_in_cand >> v) & 1 else nu_total
        v_nbrs_in_cand = adj[v] & cand
        cn = (u_nbrs_in_cand & v_nbrs_in_cand).bit_count()
        dv = v_nbrs_in_cand.bit_count()
        xn = (nu - cn) + (dv - cn)
        cnon = total - cn - xn
        if slack > xn:
            tail = xn + min(cnon, (slack - xn) // 2)
            if tail > slack:
                tail = slack
        else:
            tail = slack
        if base + cn + tail <= lower_bound:
            to_remove.append(v)

    for v in to_remove:
        state.remove_candidate(v)
    if stats is not None:
        stats.count_reduction("RR4", len(to_remove))
    return len(to_remove)


def bitset_rr5(
    state: BitsetSearchState, lower_bound: int, stats: Optional[SearchStats] = None
) -> Tuple[int, bool]:
    """RR5 (degree / core): remove candidates of degree < ``lb - k`` in the instance graph.

    Returns ``(removed, prune)``; ``prune`` is ``True`` when a *solution*
    vertex violates the degree requirement.
    """
    threshold = lower_bound - state.k
    if threshold <= 0:
        return 0, False
    adj = state.adj
    removed = 0
    progress = True
    while progress:
        progress = False
        verts = state.solution_bits | state.cand_bits
        for u in state.solution:
            if (adj[u] & verts).bit_count() < threshold:
                if stats is not None:
                    stats.count_reduction("RR5", removed)
                return removed, True
        for v in bits_of(state.cand_bits):
            if (adj[v] & verts).bit_count() < threshold:
                state.remove_candidate(v)
                verts = state.solution_bits | state.cand_bits
                removed += 1
                progress = True
    if stats is not None:
        stats.count_reduction("RR5", removed)
    return removed, False


def bitset_apply_reductions(
    state: BitsetSearchState,
    config: SolverConfig,
    lower_bound: int,
    stats: Optional[SearchStats] = None,
    rr1_dirty: bool = True,
    rr5_dirty: bool = True,
) -> bool:
    """Exhaustively apply the enabled reduction rules (Line 4 of Algorithms 1/2).

    Reaches the same fixpoint as
    :func:`repro.core.reductions.apply_reductions` (RR1/RR2 always,
    RR3/RR4/RR5 when enabled, RR4 at most once per call) but re-runs each
    rule only when an event that can actually re-enable it has happened:

    * RR1 depends only on ``|\\bar{E}(S)|`` and the per-candidate
      ``|\\bar{N}_S(·)|`` counters, which change exclusively when RR2 moves a
      vertex into ``S`` — candidate *removals* never re-enable RR1;
    * RR2 additions keep the instance vertex set and all degrees unchanged,
      so they never re-enable RR5; every removal does;
    * RR3 removes only candidates outside its reserved cheapest prefix, so
      it is a self-fixpoint; RR2 additions and foreign removals re-enable it.

    The same invalidation logic extends across branch transitions, which is
    why the engine may pass ``rr1_dirty=False`` (the branch removed a
    candidate but left ``S`` and the incumbent untouched) or
    ``rr5_dirty=False`` (the branch moved one vertex into ``S``, changing no
    degree and no incumbent) for the *initial* state of the flags.

    This skips the full verification pass the dict/set backend pays at every
    node.  Returns ``True`` when RR5 proves the instance can be discarded.
    """
    use_rr5 = config.use_rr5
    use_rr3 = config.use_rr3
    rr4_pending = config.use_rr4
    rr2_dirty = True
    rr5_dirty = rr5_dirty and use_rr5
    rr3_dirty = use_rr3
    while rr1_dirty or rr2_dirty or rr5_dirty or rr3_dirty or rr4_pending:
        if rr1_dirty:
            rr1_dirty = False
            if bitset_rr1(state, stats):
                rr2_dirty = True
                rr5_dirty = use_rr5
                rr3_dirty = use_rr3
        if rr2_dirty:
            rr2_dirty = False
            if bitset_rr2(state, stats):
                rr1_dirty = True
                rr3_dirty = use_rr3
        if rr5_dirty:
            rr5_dirty = False
            removed, prune = bitset_rr5(state, lower_bound, stats)
            if prune:
                return True
            if removed:
                rr2_dirty = True
                rr3_dirty = use_rr3
        if rr3_dirty:
            rr3_dirty = False
            if bitset_rr3(state, lower_bound, stats):
                rr2_dirty = True
                rr5_dirty = use_rr5
        if rr4_pending:
            rr4_pending = False
            if bitset_rr4(state, lower_bound, stats):
                rr2_dirty = True
                rr5_dirty = use_rr5
                rr3_dirty = use_rr3
    return False


# --------------------------------------------------------------------------- #
# Upper bounds
# --------------------------------------------------------------------------- #
def bitset_ub1_improved_coloring(
    state: BitsetSearchState,
    cand_list: Optional[List[int]] = None,
    degrees: Optional[List[int]] = None,
) -> int:
    """The paper's improved coloring-based upper bound **UB1** on bitmasks.

    Colour classes are bitmasks; the "is this class independent from v"
    test of the greedy coloring is a single ``&`` against ``adj[v]``.

    When ``degrees`` is given (as the engine does at every node), candidates
    are coloured in non-increasing instance-degree order — the same order as
    the set backend, which keeps the bound equally tight.  Without it the
    coloring runs in ``cand_list`` order (default: ascending bit order),
    which is still a valid independent-set partition, just potentially
    looser.
    """
    budget = state.slack()
    if budget < 0:
        return len(state.solution)
    adj = state.adj
    if cand_list is None:
        cand_list = bits_of(state.cand_bits)
    if degrees is not None:
        # Pack (n - degree, vertex) into one int: a plain ascending sort
        # yields non-increasing degree with ties towards smaller ids.
        n = len(adj)
        shift = n.bit_length()
        id_mask = (1 << shift) - 1
        order = [((n - degrees[v]) << shift) | v for v in cand_list]
        order.sort()
        cand_list = [code & id_mask for code in order]

    class_masks: List[int] = []
    class_members: List[List[int]] = []
    for v in cand_list:
        adjacency = adj[v]
        for i, mask in enumerate(class_masks):
            if not (mask & adjacency):
                class_masks[i] = mask | (1 << v)
                class_members[i].append(v)
                break
        else:
            class_masks.append(1 << v)
            class_members.append([v])

    # Greedy cheapest-weight selection against the budget.  Every selectable
    # weight lies in 0..budget, so a counting sort replaces the global sort;
    # within a class the weight cost + j is strictly increasing, allowing the
    # early break.
    non_nbrs = state.non_nbrs
    counts = [0] * (budget + 1)
    for members in class_members:
        costs = sorted(non_nbrs[v] for v in members)
        for j, cost in enumerate(costs):
            w = cost + j
            if w > budget:
                break
            counts[w] += 1
    count = counts[0]
    for w in range(1, budget + 1):
        avail = counts[w]
        if not avail:
            continue
        affordable = budget // w
        if affordable < avail:
            count += affordable
            break
        budget -= avail * w
        count += avail
    return len(state.solution) + count


def bitset_ub2_min_degree(state: BitsetSearchState) -> int:
    """The min-degree bound **UB2**: ``min_{u ∈ S} d_g(u) + 1 + k``.

    Computes the |S| solution-vertex degrees itself: the engine's shared
    ``degrees`` array covers candidates only, so reusing it here would be
    incorrect (and UB2 runs before that scan anyway).
    """
    if not state.solution:
        return state.graph_size
    adj = state.adj
    verts = state.solution_bits | state.cand_bits
    return min((adj[u] & verts).bit_count() for u in state.solution) + 1 + state.k


def bitset_ub3_degree_sequence(
    state: BitsetSearchState, cand_list: Optional[List[int]] = None
) -> int:
    """The degree-sequence bound **UB3** of KDBB.

    Equivalent to the sort-based set implementation, but because every
    selectable cost lies in ``0..slack`` the greedy prefix is computed by
    counting sort in O(|candidates| + k).
    """
    budget = state.slack()
    if budget < 0:
        return len(state.solution)
    non_nbrs = state.non_nbrs
    if cand_list is None:
        cand_list = bits_of(state.cand_bits)
    counts = [0] * (budget + 1)
    for v in cand_list:
        c = non_nbrs[v]
        if c <= budget:
            counts[c] += 1
    count = counts[0]
    for c in range(1, budget + 1):
        avail = counts[c]
        if not avail:
            continue
        affordable = budget // c
        if affordable < avail:
            count += affordable
            break
        budget -= avail * c
        count += avail
    return len(state.solution) + count


# --------------------------------------------------------------------------- #
# Branching rule BR
# --------------------------------------------------------------------------- #
def bitset_select_branching_vertex(
    state: BitsetSearchState,
    degrees: Optional[List[int]] = None,
    cand_list: Optional[List[int]] = None,
) -> Optional[int]:
    """Branching rule BR on bitmasks (same preference order as the set backend).

    Prefers a candidate with at least one non-neighbour in ``S`` — fewest
    non-neighbours first, ties towards highest degree — and falls back to a
    maximum-degree candidate when every candidate is fully adjacent to ``S``.
    """
    if cand_list is None:
        cand_list = bits_of(state.cand_bits)
    if not cand_list:
        return None
    adj = state.adj
    verts = state.solution_bits | state.cand_bits
    non_nbrs = state.non_nbrs

    best_vertex = -1
    best_count = -1
    best_degree = -1
    fallback_vertex = -1
    fallback_degree = -1
    for v in cand_list:
        count = non_nbrs[v]
        if count == 0:
            if best_vertex < 0:
                degree = degrees[v] if degrees is not None else (adj[v] & verts).bit_count()
                if degree > fallback_degree:
                    fallback_degree = degree
                    fallback_vertex = v
            continue
        if best_count == -1 or count <= best_count:
            degree = degrees[v] if degrees is not None else (adj[v] & verts).bit_count()
            if count < best_count or best_count == -1 or degree > best_degree:
                best_count = count
                best_degree = degree
                best_vertex = v
    if best_vertex >= 0:
        return best_vertex
    return fallback_vertex


# --------------------------------------------------------------------------- #
# Branch-and-bound engine
# --------------------------------------------------------------------------- #
class BitsetEngine:
    """Branch-and-bound over :class:`BitsetSearchState` with a shared incumbent.

    Parameters
    ----------
    config:
        Feature flags (budgets are enforced via ``check_budget``, not here).
    stats:
        Counters updated in place (shared with the owning solver).
    check_budget:
        Zero-argument callable invoked once per node; raises
        :class:`~repro.exceptions.BudgetExceededError` to interrupt.
    incumbent:
        Mutable list of vertex ids (in the *caller's* id space) holding the
        best solution known so far.  Grown in place on every improvement, so
        several engine runs (e.g. the decomposition's subproblems) share one
        lower bound.
    to_global:
        Optional mapping from this engine's local vertex ids to the caller's
        id space; identity when ``None``.
    """

    def __init__(
        self,
        config: SolverConfig,
        stats: SearchStats,
        check_budget: Callable[[], None],
        incumbent: List[int],
        to_global: Optional[Sequence[int]] = None,
    ) -> None:
        self.config = config
        self.stats = stats
        self.check_budget = check_budget
        self.incumbent = incumbent
        self.to_global = to_global

    def run(
        self,
        adj: Sequence[int],
        vertices_bits: int,
        k: int,
        forced: Optional[int] = None,
    ) -> None:
        """Solve one instance, improving ``self.incumbent`` in place.

        Parameters
        ----------
        adj:
            Packed adjacency rows over local vertex ids.
        vertices_bits:
            Bitmask of the instance's vertices.
        k:
            Defectiveness parameter.
        forced:
            Optional local vertex id committed to ``S`` before branching
            (the decomposition forces each subproblem's anchor vertex).

        Notes
        -----
        The search is driven by an explicit stack rather than recursion:
        instances are popped and processed in exactly the recursive DFS
        order (node, then its include subtree, then its exclude subtree), so
        node counts, pruning decisions and the returned sizes are identical
        to the earlier recursive engine — but arbitrarily deep branches
        need no ``sys.setrecursionlimit`` fiddling, which matters inside
        :mod:`multiprocessing` workers, and the per-node budget poll happens
        at the single loop head.
        """
        state = BitsetSearchState.initial(adj, k, vertices_bits)
        if forced is not None:
            state.add_to_solution(forced)

        config = self.config
        stats = self.stats
        check_budget = self.check_budget
        # Stack frames: (state, depth, rr1_dirty, rr5_dirty).  Pushing the
        # exclude branch below the include branch reproduces the recursive
        # visit order, so both engines explore — and prune — identically.
        stack: List[Tuple[BitsetSearchState, int, bool, bool]] = [(state, 1, True, True)]
        while stack:
            state, depth, rr1_dirty, rr5_dirty = stack.pop()
            check_budget()
            stats.nodes += 1
            if depth > stats.max_depth:
                stats.max_depth = depth

            # Line 4: reduction rules.  The dirty flags encode how this state
            # was reached (see bitset_apply_reductions): an exclude branch
            # cannot re-enable RR1, an include branch with an unchanged
            # incumbent cannot re-enable RR5.
            lb_used = len(self.incumbent)
            if bitset_apply_reductions(
                state, config, lower_bound=lb_used, stats=stats,
                rr1_dirty=rr1_dirty, rr5_dirty=rr5_dirty,
            ):
                continue

            # Line 5: if the whole instance graph is a k-defective clique, record it.
            if state.is_defective_clique():
                stats.leaves += 1
                self._record(state.graph_vertices())
                continue

            # Upper-bound pruning, cheapest bound first (no-op for kDC-t).
            # UB2 needs no candidate scan at all; UB3 and UB1 reuse one
            # materialised candidate list; the degree scan is deferred past
            # all three bounds.
            incumbent = len(self.incumbent)
            if config.use_ub2 and bitset_ub2_min_degree(state) <= incumbent:
                stats.prunes_by_bound += 1
                continue
            cand_list = bits_of(state.cand_bits)
            if config.use_ub3 and bitset_ub3_degree_sequence(state, cand_list) <= incumbent:
                stats.prunes_by_bound += 1
                continue

            # One shared degree scan for UB1's coloring order and the
            # branching rule (the state is not mutated in between).
            # Recomputing the order from *current* instance degrees keeps UB1
            # as tight as the set backend's; a static order was measured to
            # cost far more nodes than the per-node sort saves.
            adj_rows = state.adj
            verts = state.solution_bits | state.cand_bits
            degrees = [0] * len(adj_rows)
            for v in cand_list:
                degrees[v] = (adj_rows[v] & verts).bit_count()

            if config.use_ub1 and bitset_ub1_improved_coloring(state, cand_list, degrees) <= incumbent:
                stats.prunes_by_bound += 1
                continue

            # The partial solution S itself is a valid k-defective clique.
            self._record(state.solution)

            # Line 6: branching vertex via rule BR.
            branching_vertex = bitset_select_branching_vertex(state, degrees, cand_list)
            if branching_vertex is None:
                continue

            # Line 7/8: the include branch copies the state, the exclude
            # branch mutates it in place (it is not needed otherwise).  The
            # include branch changes no degree, so RR5 stays at its fixpoint
            # unless the incumbent moved during this node; the exclude branch
            # leaves S untouched, so RR1 (incumbent-independent) stays clean.
            left = state.copy()
            left.add_to_solution(branching_vertex)
            state.remove_candidate(branching_vertex)
            stack.append((state, depth + 1, False, True))
            stack.append((left, depth + 1, True, len(self.incumbent) != lb_used))

    # -------------------------------------------------------------- #
    def _record(self, vertices: List[int]) -> None:
        if len(vertices) > len(self.incumbent):
            if self.to_global is not None:
                vertices = [self.to_global[v] for v in vertices]
            self.incumbent[:] = vertices
            self.stats.improvements += 1
